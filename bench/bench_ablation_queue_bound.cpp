// Ablation AB2: the per-instance queue bound k = floor(Ts/Tr) (Equation 1).
//
// Sweeps the negotiated response time Ts, which drives k, on a shortened web
// scenario. Larger k lets each instance run closer to saturation before the
// model scales up (fewer VM-hours) but stretches in-queue waiting towards
// Ts; k = 1 degenerates to an Erlang loss system that needs the most
// instances. Response-time violations must stay at zero for every k — that
// is Equation 1's guarantee.
#include <iostream>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "util/cli.h"

using namespace cloudprov;

int main(int argc, char** argv) {
  ArgParser args("Ablation: queue bound k via the negotiated Ts (web scenario).");
  args.add_flag("scale", "0.05", "workload scale factor", "<double>");
  args.add_flag("days", "1", "simulated days", "<int>");
  args.add_flag("reps", "2", "replications per setting", "<int>");
  args.add_flag("seed", "42", "base random seed", "<int>");
  if (!args.parse(argc, argv)) return 0;

  const auto reps = static_cast<std::size_t>(args.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const double horizon = static_cast<double>(args.get_int("days")) * 86400.0;

  std::cout << "=== Ablation: queue bound k (web, scale "
            << args.get_double("scale") << ") ===\n\n";

  TextTable table({"Ts (ms)", "k", "rejection", "utilization", "vm_hours",
                   "avg_resp_ms", "p99_resp_ms", "violations"});
  for (double ts_ms : {150.0, 250.0, 450.0, 850.0, 1650.0}) {
    ScenarioConfig config = web_scenario(args.get_double("scale"));
    config.horizon = horizon;
    config.web.horizon = horizon;
    config.qos.max_response_time = ts_ms / 1000.0;
    const std::size_t k =
        queue_bound(config.qos.max_response_time,
                    config.initial_service_time_estimate);

    const auto runs =
        run_replications(config, PolicySpec::adaptive(), reps, seed);
    const AggregateMetrics agg = aggregate(runs);
    double p99 = 0.0;
    for (const RunMetrics& run : runs) p99 += run.p99_response_time;
    p99 /= static_cast<double>(runs.size());

    table.add_row({fmt(ts_ms, 0), std::to_string(k),
                   fmt(agg.rejection_rate.mean, 4), fmt(agg.utilization.mean, 3),
                   fmt(agg.vm_hours.mean, 1),
                   fmt(agg.avg_response_time.mean * 1000.0, 1),
                   fmt(p99 * 1000.0, 1), fmt(agg.qos_violations.mean, 1)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: deeper queues (larger k) cut VM-hours but push p99\n"
         "response time towards Ts. Two caveats the sweep exposes, documented\n"
         "in EXPERIMENTS.md: (1) Equation 1 uses the MEAN service time, so\n"
         "with 0-10%% heterogeneity the guarantee needs k * Tr_max <= Ts —\n"
         "at Ts=850 ms, k=8 gives 8 * 110 ms = 880 ms > Ts and violations\n"
         "appear; (2) the modeler's blocking tolerance is calibrated for\n"
         "k=2 — for large k the Tq <= Ts check admits near-overload pools,\n"
         "so rejection grows. The paper's scenarios both sit at k = 2,\n"
         "where neither effect bites.\n";
  return 0;
}
