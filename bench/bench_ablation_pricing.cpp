// Ablation AB7: billing granularity vs the adaptive policy's VM-hour saving.
//
// The paper reports raw VM-hours, "independent from pricing policies"
// (Section V-A). Real IaaS bills in quanta: classic EC2 charged per started
// hour, modern clouds per second with a 60 s minimum. Hourly quanta penalize
// the adaptive policy's churn (every drain/boot rounds up), so part of the
// paper's saving can evaporate under coarse billing. This bench reruns the
// web scenario and prices the same VM lifetimes under several policies.
#include <iostream>
#include <memory>

#include "cloud/broker.h"
#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "core/provisioning_policy.h"
#include "market/pricing.h"
#include "experiment/report.h"
#include "experiment/scenario.h"
#include "predict/periodic_profile.h"
#include "util/cli.h"

using namespace cloudprov;

namespace {

std::vector<SimTime> run_and_collect_lifetimes(const ScenarioConfig& config,
                                               bool adaptive,
                                               std::size_t static_size,
                                               std::uint64_t seed,
                                               double* rejection) {
  Simulation sim;
  Datacenter datacenter(sim, config.datacenter,
                        std::make_unique<LeastLoadedPlacement>());
  ProvisionerConfig prov_config;
  prov_config.initial_service_time_estimate = config.initial_service_time_estimate;
  ApplicationProvisioner provisioner(sim, datacenter, config.qos, prov_config);
  WebWorkload workload(config.web);
  Broker broker(sim, workload, provisioner, Rng(seed));
  std::unique_ptr<ProvisioningPolicy> policy;
  if (adaptive) {
    policy = std::make_unique<AdaptivePolicy>(
        sim,
        std::make_shared<PeriodicProfilePredictor>(
            web_profile_predictor(config.web)),
        config.modeler, config.analyzer);
  } else {
    policy = std::make_unique<StaticPolicy>(config.scaled_instances(static_size));
  }
  policy->attach(provisioner);
  broker.start();
  sim.run(config.horizon);
  *rejection = provisioner.rejection_rate();
  return datacenter.vm_lifetimes();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("Ablation: billing granularity (web scenario).");
  args.add_flag("scale", "0.1", "workload scale factor", "<double>");
  args.add_flag("seed", "42", "random seed", "<int>");
  if (!args.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const ScenarioConfig config = web_scenario(args.get_double("scale"));

  double adaptive_rejection = 0.0;
  double static_rejection = 0.0;
  const auto adaptive_lifetimes =
      run_and_collect_lifetimes(config, true, 0, seed, &adaptive_rejection);
  const auto static_lifetimes = run_and_collect_lifetimes(
      config, false, 150, seed, &static_rejection);

  const std::vector<PricingPolicy> policies{
      {"per-second", 1.0, 1.0, 0.0},
      {"per-second-60s-min", 1.0, 1.0, 60.0},
      {"per-minute", 1.0, 60.0, 0.0},
      {"per-hour (classic EC2)", 1.0, 3600.0, 0.0},
  };

  std::cout << "=== Ablation: billing granularity (web, scale "
            << args.get_double("scale") << ", one week) ===\n\n";
  std::cout << "VM count: adaptive " << adaptive_lifetimes.size() << ", static "
            << static_lifetimes.size() << " (rejection "
            << fmt(adaptive_rejection, 4) << " / " << fmt(static_rejection, 4)
            << ")\n\n";

  TextTable table({"billing policy", "adaptive cost", "static-peak cost",
                   "saving", "adaptive overhead vs raw"});
  const double adaptive_raw = raw_cost(adaptive_lifetimes, policies[0]);
  for (const PricingPolicy& policy : policies) {
    const double adaptive_bill = billed_cost(adaptive_lifetimes, policy);
    const double static_bill = billed_cost(static_lifetimes, policy);
    table.add_row({policy.name, fmt(adaptive_bill, 1), fmt(static_bill, 1),
                   fmt(1.0 - adaptive_bill / static_bill, 3),
                   fmt(adaptive_bill / adaptive_raw - 1.0, 3)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: per-second billing realizes the paper's raw VM-hour\n"
         "saving; hourly quanta add a churn surcharge to the adaptive policy\n"
         "(every short-lived VM rounds up to a full hour) while the static\n"
         "pool, whose VMs live the whole week, is barely affected.\n";
  return 0;
}
