// Ablation AB9: VM placement policy vs energy.
//
// The paper's placement rule ("the host with fewer running virtualized
// application instances", Section V-A) spreads VMs — great for interference
// isolation, terrible for the power bill: every occupied host draws its idle
// floor. Consolidating placement (first-fit) powers the fewest hosts at
// identical VM-hours and QoS (no time-sharing means no interference in this
// model). This bench runs the scientific scenario adaptively under all three
// placement policies and prices the energy.
#include <iostream>
#include <memory>

#include "cloud/broker.h"
#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "experiment/energy.h"
#include "experiment/report.h"
#include "experiment/scenario.h"
#include "predict/periodic_profile.h"
#include "util/cli.h"

using namespace cloudprov;

namespace {

struct Row {
  std::string placement;
  double rejection;
  double vm_hours;
  double host_hours;
  double energy;
};

Row run_once(std::unique_ptr<PlacementPolicy> placement, const std::string& label,
             std::uint64_t seed) {
  const ScenarioConfig config = scientific_scenario(1.0);
  Simulation sim;
  Datacenter datacenter(sim, config.datacenter, std::move(placement));
  ProvisionerConfig prov_config;
  prov_config.initial_service_time_estimate = config.initial_service_time_estimate;
  ApplicationProvisioner provisioner(sim, datacenter, config.qos, prov_config);
  BotWorkload workload(config.bot);
  Broker broker(sim, workload, provisioner, Rng(seed));
  AdaptivePolicy policy(sim,
                        std::make_shared<PeriodicProfilePredictor>(
                            bot_profile_predictor(config.bot)),
                        config.modeler, config.analyzer);
  policy.attach(provisioner);
  broker.start();
  sim.run(config.horizon);
  return Row{label, provisioner.rejection_rate(), datacenter.vm_hours(),
             datacenter.host_powered_hours(),
             energy_kwh(datacenter, PowerModel{})};
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Ablation: placement policy vs host energy (scientific scenario, "
      "adaptive policy, 150/250 W linear host power model).");
  args.add_flag("seed", "42", "random seed", "<int>");
  if (!args.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "=== Ablation: placement policy vs energy (scientific, one "
               "day) ===\n\n";
  TextTable table({"placement", "rejection", "vm_hours", "host_on_hours",
                   "energy_kwh"});
  {
    const Row row =
        run_once(std::make_unique<LeastLoadedPlacement>(), "least-loaded (paper)",
                 seed);
    table.add_row({row.placement, fmt(row.rejection, 4), fmt(row.vm_hours, 1),
                   fmt(row.host_hours, 1), fmt(row.energy, 1)});
  }
  {
    const Row row =
        run_once(std::make_unique<FirstFitPlacement>(), "first-fit", seed);
    table.add_row({row.placement, fmt(row.rejection, 4), fmt(row.vm_hours, 1),
                   fmt(row.host_hours, 1), fmt(row.energy, 1)});
  }
  {
    const Row row =
        run_once(std::make_unique<RandomPlacement>(Rng(seed + 1)), "random", seed);
    table.add_row({row.placement, fmt(row.rejection, 4), fmt(row.vm_hours, 1),
                   fmt(row.host_hours, 1), fmt(row.energy, 1)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: VM-hours and QoS are placement-invariant (no CPU\n"
         "time-sharing => no interference), but the idle power floor makes\n"
         "host-on-hours the energy driver: first-fit packs the pool into\n"
         "~1/8th the hosts of least-loaded and cuts energy ~5x — the\n"
         "consolidation-versus-spreading trade the paper leaves to the\n"
         "IaaS resource provisioner.\n";
  return 0;
}
