#!/usr/bin/env python3
"""Diff two run provenance manifests and flag regressions.

Manifests are written by `run_scenario --manifest-out` (schema
cloudprov-run-manifest/1). Two modes:

  # validate one manifest (exit 2 on parse/schema failure)
  python3 bench/compare_runs.py --self-check run.json [--min-coverage 0.9]

  # diff two manifests (exit 1 when a regression is flagged)
  python3 bench/compare_runs.py baseline.json candidate.json \
      [--tolerance 0.02] [--wall-tolerance 0.25]

The diff compares every metric: integer metrics must match exactly unless
the runs differ in scenario/seed (then they are reported, not flagged);
float metrics compare with a relative tolerance. Metrics where higher is
worse (rejection_rate, qos_violations, avg_response_time, ...) flag a
regression when the candidate exceeds the baseline beyond tolerance. The
wall section compares total wall_seconds and per-category self time with a
looser tolerance (wall time is machine-noisy).

Exit codes: 0 ok, 1 regression found, 2 parse/validation error.
"""

import argparse
import json
import sys

SCHEMA = "cloudprov-run-manifest/1"

# Metrics where a higher candidate value is a regression. Everything else in
# the metrics block is either neutral bookkeeping (counts that just changed
# with the scenario) or better-when-higher (handled below).
WORSE_WHEN_HIGHER = [
    "rejected",
    "qos_violations",
    "avg_response_time",
    "std_response_time",
    "p95_response_time",
    "p99_response_time",
    "rejection_rate",
    "lost_requests",
    "slo_response_alerts",
    "slo_rejection_alerts",
    "drift_response_mape",
    "billed_cost",
    "client_failed",
    "client_timeouts",
    "retry_budget_denied",
    "breaker_fast_fails",
    "lambda_miss_mean",
]
WORSE_WHEN_LOWER = [
    "completed",
    "availability",
    "utilization",
    "client_succeeded",
    "cache_hit_ratio",
]

# Wall categories that are waiting, not work: barrier self-time is worker
# threads parked at the window sync (it legitimately appears/scales with
# --shards and can exceed wall clock when summed across threads), so it is
# reported but never flagged.
IDLE_WALL_CATEGORIES = {"shard.barrier"}

REQUIRED_SECTIONS = ["build", "scenario", "metrics", "wall"]
REQUIRED_METRICS = ["generated", "accepted", "rejected", "wall_seconds",
                    "simulated_events"]


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot parse {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != SCHEMA:
        print(f"error: {path}: schema {doc.get('schema')!r} != {SCHEMA!r}",
              file=sys.stderr)
        sys.exit(2)
    return doc


def validate(doc, path, min_coverage):
    problems = []
    for section in REQUIRED_SECTIONS:
        if not isinstance(doc.get(section), dict):
            problems.append(f"missing section {section!r}")
    # Multi-tenant manifests (run_scenario --tenants) carry a multi_tenant
    # section with per-tenant metric blocks instead of seed_streams (each
    # tenant derives its own streams from the master seed).
    multi_tenant = doc.get("multi_tenant")
    if multi_tenant is not None:
        rows = multi_tenant.get("tenant_metrics")
        if not isinstance(rows, list) or not rows:
            problems.append("multi_tenant.tenant_metrics is not a "
                            "non-empty list")
        else:
            if len(rows) != multi_tenant.get("tenants"):
                problems.append(
                    f"multi_tenant.tenants = {multi_tenant.get('tenants')} "
                    f"but {len(rows)} tenant_metrics rows")
            for row in rows:
                if not {"id", "kind", "metrics"} <= set(row):
                    problems.append(f"malformed tenant row: "
                                    f"{sorted(row)}")
                    break
        if multi_tenant.get("shards", 0) < 1:
            problems.append("multi_tenant.shards < 1")
    metrics = doc.get("metrics", {})
    for key in REQUIRED_METRICS:
        if key not in metrics:
            problems.append(f"missing metric {key!r}")
    if metrics.get("generated", 0) <= 0:
        problems.append("metrics.generated is not positive")
    accepted = metrics.get("accepted", 0)
    rejected = metrics.get("rejected", 0)
    # Admission counts are per attempt: with the retry gateway on, each
    # logical request can hit admission several times, so the conservation
    # law is against client_attempts, not broker arrivals.
    attempts = metrics.get("client_attempts", 0)
    expected = attempts if attempts > 0 else metrics.get("generated", -1)
    if accepted + rejected != expected:
        problems.append(f"accepted + rejected = {accepted + rejected} != "
                        f"{expected} (attempts or generated)")
    wall = doc.get("wall", {})
    if wall.get("wall_seconds", -1.0) < 0.0:
        problems.append("wall.wall_seconds is negative")
    breakdown = wall.get("breakdown")
    if not isinstance(breakdown, list):
        problems.append("wall.breakdown is not a list")
    else:
        for row in breakdown:
            if not {"category", "self_seconds", "count"} <= set(row):
                problems.append(f"malformed breakdown row: {row}")
                break
    coverage = wall.get("covered_fraction")
    if min_coverage > 0.0:
        if coverage is None:
            problems.append("no wall.covered_fraction (run with --profile?)")
        elif coverage < min_coverage:
            problems.append(
                f"wall breakdown covers {coverage:.1%} of wall_seconds "
                f"(< {min_coverage:.0%})")
    if multi_tenant is None:
        seeds = doc.get("seed_streams", {})
        expected_streams = {"workload", "placement", "fault", "market",
                            "lookahead", "resilience", "apptier"}
        if set(seeds) != expected_streams:
            problems.append(f"seed_streams keys {sorted(seeds)} != "
                            f"{sorted(expected_streams)}")
    # Multi-tier manifests carry the cache-tier block; sanity-bound the hit
    # ratio and require the lookup counters that derive it.
    if doc.get("scenario", {}).get("apptier_enabled"):
        ratio = metrics.get("cache_hit_ratio")
        if ratio is None:
            problems.append("apptier enabled but no metrics.cache_hit_ratio")
        elif not 0.0 <= ratio <= 1.0:
            problems.append(f"cache_hit_ratio {ratio} outside [0, 1]")
        if "cache_hits" not in metrics or "cache_misses" not in metrics:
            problems.append("apptier enabled but cache_hits/cache_misses "
                            "missing")

    if problems:
        for p in problems:
            print(f"error: {path}: {p}", file=sys.stderr)
        sys.exit(2)
    cov = f", breakdown covers {coverage:.1%} of wall" if coverage else ""
    mt = (f", {multi_tenant['tenants']} tenants / "
          f"{multi_tenant['shards']} shard(s)" if multi_tenant else "")
    tiers = (f", cache tier hit ratio {metrics.get('cache_hit_ratio', 0):.3f}"
             if doc.get("scenario", {}).get("apptier_enabled") else "")
    print(f"{path}: valid {SCHEMA} manifest "
          f"(policy {doc.get('policy')!r}, seed {doc.get('seed')}, "
          f"{metrics['generated']} requests{mt}{tiers}{cov})")


def same_run_identity(a, b):
    return (a.get("scenario") == b.get("scenario")
            and a.get("seed") == b.get("seed")
            and a.get("policy") == b.get("policy"))


def rel_delta(base, cand):
    if base == cand:
        return 0.0
    denom = max(abs(base), abs(cand), 1e-12)
    return (cand - base) / denom


def diff(base_doc, cand_doc, base_path, cand_path, tolerance, wall_tolerance):
    regressions = []
    notes = []
    identical_inputs = same_run_identity(base_doc, cand_doc)
    if not identical_inputs:
        notes.append("scenario/seed/policy differ: metric deltas are "
                     "reported but integer mismatches are not regressions")
    if base_doc["build"].get("git_commit") != cand_doc["build"].get("git_commit"):
        notes.append(f"commits: {base_doc['build'].get('git_commit')} -> "
                     f"{cand_doc['build'].get('git_commit')}")

    base_m, cand_m = base_doc["metrics"], cand_doc["metrics"]
    for key in sorted(set(base_m) | set(cand_m)):
        if key == "wall_seconds":
            continue  # handled with the wall section
        b, c = base_m.get(key), cand_m.get(key)
        if b is None or c is None:
            notes.append(f"metric {key} present in only one manifest")
            continue
        if b == c:
            continue
        delta = rel_delta(b, c)
        line = f"  {key}: {b} -> {c} ({delta:+.2%})"
        if key in WORSE_WHEN_HIGHER and delta > tolerance:
            regressions.append(line)
        elif key in WORSE_WHEN_LOWER and delta < -tolerance:
            regressions.append(line)
        elif identical_inputs and isinstance(b, int) and isinstance(c, int):
            # Same scenario + seed should be deterministic: any integer
            # drift means behavior changed, which is worth failing loudly.
            regressions.append(line + " [determinism]")
        else:
            notes.append(line)

    # Multi-tenant manifests additionally diff the arbiter history and every
    # per-tenant metrics block. Shard count is free to differ: sharding is
    # bit-identical by construction, so on an identical population ANY
    # integer drift — aggregate, arbiter, or per-tenant — is a determinism
    # failure even across different --shards values.
    base_mt = base_doc.get("multi_tenant")
    cand_mt = cand_doc.get("multi_tenant")
    if base_mt is not None and cand_mt is not None:
        if base_mt.get("shards") != cand_mt.get("shards"):
            notes.append(f"shards: {base_mt.get('shards')} -> "
                         f"{cand_mt.get('shards')} (must not move results)")
        for key in ("windows", "capacity", "grant_clips", "instances_denied",
                    "peak_granted", "simulated_events"):
            b, c = base_mt.get(key), cand_mt.get(key)
            if b == c:
                continue
            line = f"  multi_tenant.{key}: {b} -> {c}"
            if identical_inputs:
                regressions.append(line + " [determinism]")
            else:
                notes.append(line)
        base_rows = {r["id"]: r for r in base_mt.get("tenant_metrics", [])}
        cand_rows = {r["id"]: r for r in cand_mt.get("tenant_metrics", [])}
        for tid in sorted(set(base_rows) | set(cand_rows)):
            if tid not in base_rows or tid not in cand_rows:
                notes.append(f"tenant {tid} present in only one manifest")
                continue
            bm = base_rows[tid]["metrics"]
            cm = cand_rows[tid]["metrics"]
            for key in sorted(set(bm) | set(cm)):
                if key == "wall_seconds":
                    continue
                b, c = bm.get(key), cm.get(key)
                if b is None or c is None:
                    notes.append(f"tenant[{tid}].{key} present in only "
                                 f"one manifest")
                    continue
                if b == c:
                    continue
                delta = rel_delta(b, c)
                line = f"  tenant[{tid}].{key}: {b} -> {c} ({delta:+.2%})"
                if key in WORSE_WHEN_HIGHER and delta > tolerance:
                    regressions.append(line)
                elif key in WORSE_WHEN_LOWER and delta < -tolerance:
                    regressions.append(line)
                elif (identical_inputs and isinstance(b, int)
                        and isinstance(c, int)):
                    regressions.append(line + " [determinism]")
                else:
                    notes.append(line)
    elif (base_mt is None) != (cand_mt is None):
        notes.append("only one manifest is multi-tenant")

    # Multi-tier manifests get a per-tier summary block: cache tier and
    # backend tier side by side. The individual cache_* deltas are already
    # diffed (and flagged) by the generic metrics loop above; this block
    # groups the headline signals per tier so tier-sizing shifts read at a
    # glance.
    tier_lines = []
    if (base_doc.get("scenario", {}).get("apptier_enabled")
            or cand_doc.get("scenario", {}).get("apptier_enabled")):
        for label, key in (("cache.hit_ratio", "cache_hit_ratio"),
                           ("cache.vm_hours", "cache_vm_hours"),
                           ("cache.utilization", "cache_utilization"),
                           ("cache.avg_instances", "cache_avg_instances"),
                           ("backend.vm_hours", "vm_hours"),
                           ("backend.lambda_miss", "lambda_miss_mean"),
                           ("backend.utilization", "utilization")):
            b = base_m.get(key, 0.0)
            c = cand_m.get(key, 0.0)
            tier_lines.append(
                f"  {label}: {b:.4g} -> {c:.4g} ({rel_delta(b, c):+.2%})")

    base_w, cand_w = base_doc["wall"], cand_doc["wall"]
    bw, cw = base_w.get("wall_seconds", 0.0), cand_w.get("wall_seconds", 0.0)
    if bw > 0.0 and cw > 0.0 and bw != cw:
        delta = rel_delta(bw, cw)
        line = f"  wall_seconds: {bw:.3f} -> {cw:.3f} ({delta:+.2%})"
        (regressions if delta > wall_tolerance else notes).append(line)
    base_cats = {r["category"]: r for r in base_w.get("breakdown", [])}
    cand_cats = {r["category"]: r for r in cand_w.get("breakdown", [])}
    for cat in sorted(set(base_cats) | set(cand_cats)):
        b = base_cats.get(cat, {}).get("self_seconds", 0.0)
        c = cand_cats.get(cat, {}).get("self_seconds", 0.0)
        if b == c:
            continue
        delta = rel_delta(b, c)
        line = f"  wall[{cat}]: {b:.4f}s -> {c:.4f}s ({delta:+.2%})"
        # Absolute floor: categories in the noise (sub-50ms) never flag.
        if (delta > wall_tolerance and c - b > 0.05
                and cat not in IDLE_WALL_CATEGORIES):
            regressions.append(line)
        else:
            notes.append(line)

    print(f"baseline:  {base_path} ({base_doc.get('policy')}, "
          f"seed {base_doc.get('seed')})")
    print(f"candidate: {cand_path} ({cand_doc.get('policy')}, "
          f"seed {cand_doc.get('seed')})")
    if tier_lines:
        print("\nper-tier (cache + backend):")
        for line in tier_lines:
            print(line)
    if notes:
        print("\nchanges (informational):")
        for n in notes:
            print(n)
    if regressions:
        print("\nREGRESSIONS:")
        for r in regressions:
            print(r)
        return 1
    print("\nno regressions flagged")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff two cloudprov run manifests.")
    parser.add_argument("manifests", nargs="+",
                        help="one manifest with --self-check, else two")
    parser.add_argument("--self-check", action="store_true",
                        help="validate a single manifest instead of diffing")
    parser.add_argument("--min-coverage", type=float, default=0.0,
                        help="with --self-check: require the wall breakdown "
                             "to cover at least this fraction of wall_seconds")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="relative tolerance for float metric regressions")
    parser.add_argument("--wall-tolerance", type=float, default=0.25,
                        help="relative tolerance for wall-time regressions")
    args = parser.parse_args()

    if args.self_check:
        if len(args.manifests) != 1:
            parser.error("--self-check takes exactly one manifest")
        validate(load(args.manifests[0]), args.manifests[0],
                 args.min_coverage)
        return 0
    if len(args.manifests) != 2:
        parser.error("diff mode takes exactly two manifests")
    base_path, cand_path = args.manifests
    return diff(load(base_path), load(cand_path), base_path, cand_path,
                args.tolerance, args.wall_tolerance)


if __name__ == "__main__":
    sys.exit(main())
