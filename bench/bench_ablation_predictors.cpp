// Ablation AB1: predictor choice inside the adaptive mechanism.
//
// The paper evaluates only the time-based profile predictor and names QRSM
// and ARMAX as future work (Section VII). This bench runs the same adaptive
// mechanism with every predictor in the library — model-derived (profile,
// oracle) and history-based (EWMA, max-window moving average, AR(4), QRSM) —
// on a shortened web scenario, separating the cost of prediction error from
// the provisioning algorithm itself.
#include <iostream>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "util/cli.h"

using namespace cloudprov;

int main(int argc, char** argv) {
  ArgParser args("Ablation: arrival-rate predictor choice (web scenario).");
  args.add_flag("scale", "0.05", "workload scale factor", "<double>");
  args.add_flag("days", "2", "simulated days (paper horizon: 7)", "<int>");
  args.add_flag("reps", "2", "replications per predictor", "<int>");
  args.add_flag("seed", "42", "base random seed", "<int>");
  if (!args.parse(argc, argv)) return 0;

  ScenarioConfig config = web_scenario(args.get_double("scale"));
  const double horizon = static_cast<double>(args.get_int("days")) * 86400.0;
  config.horizon = horizon;
  config.web.horizon = horizon;
  const auto reps = static_cast<std::size_t>(args.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "=== Ablation: predictor choice (web, scale "
            << args.get_double("scale") << ", " << args.get_int("days")
            << " days, " << reps << " reps) ===\n\n";

  std::vector<AggregateMetrics> results;
  for (PredictorKind kind :
       {PredictorKind::kProfile, PredictorKind::kOracle, PredictorKind::kEwma,
        PredictorKind::kMovingAverage, PredictorKind::kAr,
        PredictorKind::kQrsm}) {
    const auto runs =
        run_replications(config, PolicySpec::adaptive(kind), reps, seed);
    results.push_back(aggregate(runs));
  }
  print_policy_table(std::cout, results);

  std::cout
      << "\nReading: on the slowly-drifting web sinusoid every predictor\n"
         "keeps rejection near zero, but the model-derived ones (profile,\n"
         "oracle) do it with the smallest pools and fewest VM-hours, while\n"
         "the history-based ones chase per-window noise and over-provision\n"
         "(higher max instances / VM-hours). The decisive case for proactive\n"
         "prediction is sharp ramps — see bench_ablation_interval, where a\n"
         "reactive predictor leaks up to ~17% rejection at the BoT 8 a.m.\n"
         "step while the profile predictor does not.\n";
  return 0;
}
