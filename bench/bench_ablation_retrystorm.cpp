// Ablation AB12: retry-storm metastability and the resilience ladder.
//
// A static web-serving pool takes a correlated capacity hit (host crashes)
// while the IaaS allocation API is in an outage, so the reconciler cannot
// heal until the outage lifts. Impatient clients (attempt timeout + an
// 8-second patience deadline) keep retrying. Four configurations:
//
//   no-fault   the same client stack, no trigger — the goodput yardstick
//   naive      unbounded retries, no budget/breaker/shed: the trigger tips
//              the system into a *metastable* failure — after capacity is
//              fully restored, amplified retries plus capacity wasted on
//              requests whose clients already timed out keep goodput pinned
//              near zero indefinitely
//   budgeted   bounded attempts + token-bucket retry budget + circuit
//              breaker: amplification is capped, the storm drains, and
//              post-trigger goodput recovers to >= 90% of no-fault
//   shedding   budgeted + deadline/brownout admission shedding: the server
//              also refuses doomed work, keeping the p99 response time of
//              requests it *does* serve within the QoS target
//
// Goodput = logical client requests whose reply arrived within the client's
// patience, measured over the post-trigger window [outage end, horizon] —
// i.e. after the root cause is gone.
//
// --smoke additionally asserts the three regimes (and a neutral-layer
// no-op check) and exits non-zero on violation, so CI catches both a broken
// resilience layer and a silently vanished metastable regime.
#include <cstdlib>
#include <iostream>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "util/cli.h"

using namespace cloudprov;

namespace {

struct Window {
  std::uint64_t requests = 0;
  std::uint64_t succeeded = 0;
};

struct Row {
  std::string label;
  RunMetrics metrics;
  Window post;  ///< client traffic in [trigger end, horizon]
  double post_goodput() const {
    return post.requests == 0
               ? 0.0
               : static_cast<double>(post.succeeded) /
                     static_cast<double>(post.requests);
  }
};

constexpr SimTime kTriggerStart = 3600.0;
constexpr SimTime kTriggerEnd = 5400.0;

/// Static pool spread evenly across few hosts so the scripted host crashes
/// remove a known fraction of capacity (the survivors can absorb the full
/// pool after the heal: 8 cores per host).
ScenarioConfig base_config(double scale, SimTime horizon) {
  ScenarioConfig config = web_scenario(scale);
  config.horizon = horizon;
  config.web.horizon = horizon;
  config.datacenter.host_count = 5;
  // Impatient clients with unbounded retries: the naive default.
  config.resilience.enabled = true;
  config.resilience.attempt_timeout = 0.15;
  config.resilience.request_deadline = 8.0;
  config.resilience.retry.max_attempts = 0;  // unbounded
  config.resilience.retry.base = 0.05;
  config.resilience.retry.cap = 0.5;
  return config;
}

/// The trigger: three of five hosts crash at the start of a 30-minute IaaS
/// allocation outage, so the reconciler can only heal after the outage.
void add_trigger(ScenarioConfig& config) {
  config.fault.outages.push_back({kTriggerStart, kTriggerEnd});
  for (std::size_t host = 0; host < 3; ++host) {
    config.fault.scripted.push_back(
        {ScriptedFault::Kind::kHostCrash, kTriggerStart, host});
  }
  config.reconciler.enabled = true;
  config.reconciler.interval = 60.0;
}

void add_protection(ScenarioConfig& config) {
  config.resilience.retry.max_attempts = 4;
  config.resilience.budget.enabled = true;
  config.resilience.budget.ratio = 0.2;
  config.resilience.budget.burst = 10.0;
  config.resilience.breaker.enabled = true;
}

void add_shedding(ScenarioConfig& config) {
  config.resilience.shed.deadline_enabled = true;
  config.resilience.shed.brownout_enabled = true;
  config.resilience.shed.brownout_utilization = 0.85;
  config.resilience.shed.brownout_fraction = 0.5;
  config.resilience.shed.brownout_priority = 1;
}

Row run_once(const ScenarioConfig& config, const std::string& label,
             std::size_t pool, std::uint64_t seed) {
  World world(config, PolicySpec::fixed(pool), seed, std::nullopt);
  world.start();
  world.run_to(kTriggerEnd);
  const RetryGateway* gateway = world.gateway();
  const std::uint64_t requests_at_end = gateway->client_requests();
  const std::uint64_t succeeded_at_end = gateway->client_succeeded();
  world.run_to(config.horizon);
  Row row;
  row.label = label;
  row.metrics = world.finish().metrics;
  row.post.requests = row.metrics.client_requests - requests_at_end;
  row.post.succeeded = row.metrics.client_succeeded - succeeded_at_end;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Ablation: retry-storm metastability vs budget/breaker/shedding (web).");
  args.add_flag("scale", "0.1", "workload scale factor", "<double>");
  args.add_flag("pool", "150",
                "static pool size (paper scale; scaled like Static-N)",
                "<int>");
  args.add_flag("hours", "4", "simulated hours", "<int>");
  args.add_flag("seed", "42", "random seed", "<int>");
  args.add_flag("smoke", "false",
                "CI smoke mode: 2-hour horizon, assert the three regimes and "
                "the neutral no-op, exit non-zero on violation");
  if (!args.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const bool smoke = args.get_bool("smoke");
  const double scale = args.get_double("scale");
  const auto pool = static_cast<std::size_t>(args.get_int("pool"));
  const SimTime horizon =
      smoke ? 2.0 * 3600.0
            : static_cast<double>(args.get_int("hours")) * 3600.0;

  std::cout << "=== Ablation: retry storm (static web pool, 3/5 hosts crash "
               "at t=3600 s, 30-min allocation outage) ===\n\n";

  const Row no_fault =
      run_once(base_config(scale, horizon), "no-fault", pool, seed);
  ScenarioConfig naive_config = base_config(scale, horizon);
  add_trigger(naive_config);
  const Row naive = run_once(naive_config, "naive retries", pool, seed);
  ScenarioConfig budgeted_config = naive_config;
  add_protection(budgeted_config);
  const Row budgeted = run_once(budgeted_config, "budget+breaker", pool, seed);
  ScenarioConfig shed_config = budgeted_config;
  add_shedding(shed_config);
  const Row shedding = run_once(shed_config, "+shedding", pool, seed);

  TextTable table({"configuration", "post-trigger goodput", "ok", "failed",
                   "retries", "budget_deny", "br_open", "fast_fail", "shed",
                   "wasted", "p99_resp"});
  for (const Row* row : {&no_fault, &naive, &budgeted, &shedding}) {
    const RunMetrics& m = row->metrics;
    table.add_row({row->label, fmt(row->post_goodput(), 4),
                   std::to_string(m.client_succeeded),
                   std::to_string(m.client_failed),
                   std::to_string(m.client_retries),
                   std::to_string(m.retry_budget_denied),
                   std::to_string(m.breaker_opens),
                   std::to_string(m.breaker_fast_fails),
                   std::to_string(m.shed_deadline + m.shed_brownout),
                   std::to_string(m.wasted_completions),
                   fmt(m.p99_response_time, 3)});
  }
  table.print(std::cout);

  const double target = naive_config.qos.max_response_time;
  std::cout
      << "\nReading: the trigger clears at t=5400 s with the pool fully\n"
         "healed, yet the naive configuration never recovers — every failed\n"
         "request retries for its whole 8-second patience while the pool\n"
         "burns capacity on requests whose clients already left (wasted\n"
         "column): a metastable failure sustained by the client stack, not\n"
         "the fault. The retry budget caps amplification at ~1.1x and the\n"
         "breaker sheds the residual storm, so goodput snaps back once the\n"
         "root cause is gone. Admission shedding additionally keeps served\n"
         "p99 at " << fmt(shedding.metrics.p99_response_time, 3)
      << " s (target " << fmt(target, 3) << " s).\n";

  if (!smoke) return 0;

  int failures = 0;
  const auto check = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "SMOKE FAIL: " << what << '\n';
      ++failures;
    }
  };
  check(no_fault.post_goodput() > 0.95,
        "no-fault post-trigger goodput should be ~1");
  check(naive.post_goodput() < 0.5 * no_fault.post_goodput(),
        "naive unbounded retries should stay metastable after the trigger");
  check(budgeted.post_goodput() >= 0.9 * no_fault.post_goodput(),
        "budget+breaker should restore >= 90% of no-fault goodput");
  check(budgeted.post_goodput() > naive.post_goodput(),
        "budget+breaker should beat naive goodput");
  check(shedding.metrics.p99_response_time <= target,
        "shedding should keep served p99 within the QoS target");
  check(shedding.metrics.shed_deadline + shedding.metrics.shed_brownout > 0,
        "shedding should actually shed during the storm");

  // Neutral no-op: enabling the layer with every feature off must not move
  // a single simulation observable.
  ScenarioConfig neutral = base_config(scale, horizon);
  neutral.resilience = ResilienceConfig{};
  const RunMetrics off =
      run_scenario(neutral, PolicySpec::fixed(pool), seed).metrics;
  neutral.resilience.enabled = true;
  const RunMetrics on =
      run_scenario(neutral, PolicySpec::fixed(pool), seed).metrics;
  check(off.generated == on.generated && off.completed == on.completed &&
            off.rejected == on.rejected &&
            off.avg_response_time == on.avg_response_time &&
            off.vm_hours == on.vm_hours &&
            off.simulated_events == on.simulated_events,
        "neutral-enabled resilience layer must be a strict no-op");

  if (failures != 0) return 1;
  std::cout << "\nsmoke checks passed\n";
  return 0;
}
