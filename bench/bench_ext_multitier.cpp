// Extension bench: multi-tier (composite-service) provisioning.
//
// A two-tier web application — 70 ms frontend + 35 ms backend work per
// request, end-to-end Ts = 500 ms — under the Wikipedia workload, comparing:
//   * the multi-tier adaptive policy (one Algorithm-1 modeler per tier), and
//   * static per-tier pools sized for the peak.
// Also prints the analytic tandem-model prediction next to the simulation,
// closing the loop on the paper's "composite services" future work
// (Section VII).
#include <iostream>
#include <memory>

#include "cloud/broker.h"
#include "core/multitier.h"
#include "experiment/report.h"
#include "experiment/scenario.h"
#include "predict/periodic_profile.h"
#include "queueing/tandem.h"
#include "util/cli.h"

using namespace cloudprov;

namespace {

MultiTierConfig app_config() {
  MultiTierConfig config;
  config.qos.max_response_time = 0.500;
  config.qos.min_utilization = 0.80;
  config.tiers.push_back(TierConfig{
      "frontend", std::make_shared<ScaledUniformDistribution>(0.070, 0.10),
      0.0735, VmSpec{}});
  config.tiers.push_back(TierConfig{
      "backend", std::make_shared<ScaledUniformDistribution>(0.035, 0.10),
      0.03675, VmSpec{}});
  return config;
}

struct Row {
  std::string policy;
  double loss;
  double end_to_end_ms;
  double violations;
  std::string pools;
  double vm_hours;
};

Row run_adaptive(const ScenarioConfig& scenario, std::uint64_t seed) {
  Simulation sim;
  Datacenter datacenter(sim, scenario.datacenter,
                        std::make_unique<LeastLoadedPlacement>());
  MultiTierApplication app(sim, datacenter, app_config(), Rng(seed));
  auto predictor = std::make_shared<PeriodicProfilePredictor>(
      web_profile_predictor(scenario.web));
  MultiTierAdaptivePolicy policy(sim, predictor, scenario.modeler,
                                 scenario.analyzer);
  policy.attach(app);
  WebWorkload workload(scenario.web);
  Broker broker(sim, workload, app, Rng(seed + 1));
  broker.start();
  sim.run(scenario.horizon);
  return Row{"MultiTierAdaptive", app.end_to_end_loss_rate(),
             1e3 * app.end_to_end_response().mean(),
             static_cast<double>(app.end_to_end_violations()),
             std::to_string(app.tier(0).active_instances()) + "+" +
                 std::to_string(app.tier(1).active_instances()),
             datacenter.vm_hours()};
}

Row run_static(const ScenarioConfig& scenario, std::size_t m0, std::size_t m1,
               std::uint64_t seed) {
  Simulation sim;
  Datacenter datacenter(sim, scenario.datacenter,
                        std::make_unique<LeastLoadedPlacement>());
  MultiTierApplication app(sim, datacenter, app_config(), Rng(seed));
  app.tier(0).scale_to(m0);
  app.tier(1).scale_to(m1);
  WebWorkload workload(scenario.web);
  Broker broker(sim, workload, app, Rng(seed + 1));
  broker.start();
  sim.run(scenario.horizon);
  return Row{"Static-" + std::to_string(m0) + "+" + std::to_string(m1),
             app.end_to_end_loss_rate(), 1e3 * app.end_to_end_response().mean(),
             static_cast<double>(app.end_to_end_violations()),
             std::to_string(m0) + "+" + std::to_string(m1),
             datacenter.vm_hours()};
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("Extension: multi-tier adaptive provisioning (web workload).");
  args.add_flag("scale", "0.1", "workload scale factor", "<double>");
  args.add_flag("days", "1", "simulated days", "<int>");
  args.add_flag("seed", "42", "random seed", "<int>");
  if (!args.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  ScenarioConfig scenario = web_scenario(args.get_double("scale"));
  scenario.horizon = static_cast<double>(args.get_int("days")) * 86400.0;
  scenario.web.horizon = scenario.horizon;

  std::cout << "=== Extension: two-tier web application (scale "
            << args.get_double("scale") << ") ===\n\n";

  // Analytic sizing for the peak (Tuesday-like 1200 req/s scaled):
  const double peak_rate = 1200.0 * args.get_double("scale");
  const MultiTierConfig app = app_config();
  const std::size_t k0 = queue_bound(0.500 * 2.0 / 3.0, 0.0735);
  const std::size_t k1 = queue_bound(0.500 / 3.0, 0.03675);
  const queueing::TandemMetrics model = queueing::solve_tandem(
      peak_rate,
      {queueing::TandemTier{
           static_cast<std::size_t>(peak_rate * 0.0735 / 0.85) + 1,
           1.0 / 0.0735, k0},
       queueing::TandemTier{
           static_cast<std::size_t>(peak_rate * 0.03675 / 0.85) + 1,
           1.0 / 0.03675, k1}});
  std::cout << "tandem model at peak (" << peak_rate << " req/s): response "
            << fmt(1e3 * model.end_to_end_response, 1) << " ms, acceptance "
            << fmt(model.end_to_end_acceptance, 4) << ", bottleneck tier "
            << model.bottleneck_tier << "\n\n";

  TextTable table({"policy", "loss_rate", "e2e_resp_ms", "violations",
                   "final_pools", "vm_hours"});
  const Row adaptive = run_adaptive(scenario, seed);
  table.add_row({adaptive.policy, fmt(adaptive.loss, 4),
                 fmt(adaptive.end_to_end_ms, 1), fmt(adaptive.violations, 0),
                 adaptive.pools, fmt(adaptive.vm_hours, 1)});
  // Peak-sized static pools (frontend ~ peak*0.0735/0.85, backend half).
  const auto m0 = static_cast<std::size_t>(peak_rate * 0.0735 / 0.85) + 1;
  const auto m1 = static_cast<std::size_t>(peak_rate * 0.03675 / 0.85) + 1;
  const Row fixed = run_static(scenario, m0, m1, seed);
  table.add_row({fixed.policy, fmt(fixed.loss, 4), fmt(fixed.end_to_end_ms, 1),
                 fmt(fixed.violations, 0), fixed.pools, fmt(fixed.vm_hours, 1)});
  table.print(std::cout);

  std::cout
      << "\nReading: the per-tier Algorithm-1 modelers keep both pools sized\n"
         "to their own service times (frontend ~2x the backend pool), meet\n"
         "the end-to-end 500 ms budget with zero violations, and spend fewer\n"
         "VM-hours than peak-sized static pools. The analytic tandem model\n"
         "predicts the measured end-to-end response within the decomposition\n"
         "approximation.\n";
  (void)app;
  return 0;
}
