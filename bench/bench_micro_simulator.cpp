// Microbenchmark MB4: end-to-end simulator throughput.
//
// Measures simulated requests per wall-clock second for a served Poisson
// workload (broker -> admission -> round-robin -> VM service -> stats),
// and for raw workload generation. These rates determine the wall time of a
// paper-scale (--scale 1) Figure 5 replication: ~500M requests.
#include <benchmark/benchmark.h>

#include <memory>
#include <optional>

#include "cloud/broker.h"
#include "core/application_provisioner.h"
#include "experiment/multi_tenant.h"
#include "experiment/world.h"
#include "profile/wall_profiler.h"
#include "resilience/retry_gateway.h"
#include "telemetry/telemetry.h"
#include "workload/bot_workload.h"
#include "workload/poisson_source.h"
#include "workload/web_workload.h"

namespace cloudprov {
namespace {

void BM_ServedPoissonRequests(benchmark::State& state) {
  const auto instances = static_cast<std::size_t>(state.range(0));
  std::uint64_t total_requests = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim;
    DatacenterConfig dc_config;
    dc_config.host_count = instances / 8 + 1;
    Datacenter datacenter(sim, dc_config, std::make_unique<LeastLoadedPlacement>());
    QosTargets qos;
    qos.max_response_time = 0.250;
    ProvisionerConfig prov_config;
    prov_config.initial_service_time_estimate = 0.105;
    ApplicationProvisioner provisioner(sim, datacenter, qos, prov_config);
    provisioner.scale_to(instances);
    const double lambda = 8.0 * static_cast<double>(instances);  // rho = 0.84
    PoissonSource source(lambda,
                         std::make_shared<ScaledUniformDistribution>(0.1, 0.1),
                         0.0, 100000.0 / lambda);
    Broker broker(sim, source, provisioner, Rng(7));
    broker.start();
    state.ResumeTiming();
    sim.run();
    total_requests += broker.generated();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_requests));
}
BENCHMARK(BM_ServedPoissonRequests)->Arg(2)->Arg(16)->Arg(150)
    ->Unit(benchmark::kMillisecond);

// Telemetry overhead on the served-request hot path: arg 0 selects the
// configuration (0 = telemetry off, 1 = monitors on + spans sampled at 5%,
// 2 = monitors on + every request traced). Compare items/s against
// configuration 0 to price the observability subsystem.
void BM_ServedRequestsTelemetry(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  constexpr std::size_t kInstances = 16;
  std::uint64_t total_requests = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::unique_ptr<Telemetry> telemetry;
    if (mode > 0) {
      TelemetryOptions options;
      options.span_sample_rate = mode == 1 ? 0.05 : 1.0;
      options.drift_enabled = true;
      options.slo_enabled = true;
      options.slo.log_alerts = false;
      telemetry = std::make_unique<Telemetry>(options);
    }
    Simulation sim;
    sim.set_telemetry(telemetry.get());
    DatacenterConfig dc_config;
    dc_config.host_count = kInstances / 8 + 1;
    Datacenter datacenter(sim, dc_config, std::make_unique<LeastLoadedPlacement>());
    datacenter.set_telemetry(telemetry.get());
    QosTargets qos;
    qos.max_response_time = 0.250;
    ProvisionerConfig prov_config;
    prov_config.initial_service_time_estimate = 0.105;
    ApplicationProvisioner provisioner(sim, datacenter, qos, prov_config);
    provisioner.set_telemetry(telemetry.get());
    provisioner.scale_to(kInstances);
    const double lambda = 8.0 * static_cast<double>(kInstances);  // rho = 0.84
    PoissonSource source(lambda,
                         std::make_shared<ScaledUniformDistribution>(0.1, 0.1),
                         0.0, 100000.0 / lambda);
    Broker broker(sim, source, provisioner, Rng(7));
    broker.start();
    state.ResumeTiming();
    sim.run();
    total_requests += broker.generated();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_requests));
}
BENCHMARK(BM_ServedRequestsTelemetry)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Overhead of the neutral resilience gateway on the served-request hot
// path: arg 0 wires the Broker straight to the provisioner, arg 1 inserts a
// RetryGateway with every feature off (attempt 1 forwards verbatim, no
// timers, no RNG). Compare items/s: the delta prices the per-request
// accounting the layer adds when merely enabled.
void BM_RetryPathOverhead(benchmark::State& state) {
  const bool gated = state.range(0) != 0;
  constexpr std::size_t kInstances = 16;
  std::uint64_t total_requests = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim;
    DatacenterConfig dc_config;
    dc_config.host_count = kInstances / 8 + 1;
    Datacenter datacenter(sim, dc_config,
                          std::make_unique<LeastLoadedPlacement>());
    QosTargets qos;
    qos.max_response_time = 0.250;
    ProvisionerConfig prov_config;
    prov_config.initial_service_time_estimate = 0.105;
    ApplicationProvisioner provisioner(sim, datacenter, qos, prov_config);
    provisioner.scale_to(kInstances);
    std::optional<RetryGateway> gateway;
    if (gated) {
      ResilienceConfig resilience;
      resilience.enabled = true;  // every feature at its neutral default
      gateway.emplace(sim, provisioner, resilience, Rng(11));
    }
    RequestSink& sink = gated ? static_cast<RequestSink&>(*gateway)
                              : static_cast<RequestSink&>(provisioner);
    const double lambda = 8.0 * kInstances;  // rho = 0.84
    PoissonSource source(lambda,
                         std::make_shared<ScaledUniformDistribution>(0.1, 0.1),
                         0.0, 100000.0 / lambda);
    Broker broker(sim, source, sink, Rng(7));
    broker.start();
    state.ResumeTiming();
    sim.run();
    total_requests += broker.generated();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_requests));
}
BENCHMARK(BM_RetryPathOverhead)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Wall-clock profiler overhead on the served-request hot path: arg 0 runs
// with no profiler attached (the null-pointer fast path — must be free),
// arg 1 attaches a WallProfiler so the run loop pays the stride-gated
// snapshot check plus one scope around the whole run. Compare items/s
// against arg 0: the delta must stay under 2% (the profiler deliberately
// scopes subsystem hooks, not individual events).
void BM_ProfilerOverhead(benchmark::State& state) {
  const bool profiled = state.range(0) != 0;
  constexpr std::size_t kInstances = 16;
  std::uint64_t total_requests = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::optional<WallProfiler> profiler;
    if (profiled) profiler.emplace(/*snapshot_interval_seconds=*/0.01);
    Simulation sim;
    sim.set_profiler(profiler.has_value() ? &*profiler : nullptr);
    DatacenterConfig dc_config;
    dc_config.host_count = kInstances / 8 + 1;
    Datacenter datacenter(sim, dc_config,
                          std::make_unique<LeastLoadedPlacement>());
    QosTargets qos;
    qos.max_response_time = 0.250;
    ProvisionerConfig prov_config;
    prov_config.initial_service_time_estimate = 0.105;
    ApplicationProvisioner provisioner(sim, datacenter, qos, prov_config);
    provisioner.scale_to(kInstances);
    const double lambda = 8.0 * kInstances;  // rho = 0.84
    PoissonSource source(lambda,
                         std::make_shared<ScaledUniformDistribution>(0.1, 0.1),
                         0.0, 100000.0 / lambda);
    Broker broker(sim, source, provisioner, Rng(7));
    broker.start();
    state.ResumeTiming();
    sim.run();
    total_requests += broker.generated();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_requests));
}
BENCHMARK(BM_ProfilerOverhead)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Cost of one what-if fork: snapshot the whole world (telemetry and
// decision logs off, as LookaheadPolicy's clones run) and restore it into a
// fresh World with every pending event re-pushed. This prices a lookahead
// candidate before its forecast windows even run; the arg is how many
// simulated hours of the web day the world has already executed (pool
// history, VM records, and pending events all grow the state).
void BM_WorldSnapshotClone(benchmark::State& state) {
  const auto hours = static_cast<double>(state.range(0));
  ScenarioConfig config = web_scenario(0.02);
  config.horizon = 86400.0;
  config.web.horizon = config.horizon;
  World world(config, PolicySpec::adaptive(), 42);
  world.start();
  world.run_to(hours * 3600.0);
  std::uint64_t clones = 0;
  for (auto _ : state) {
    World::SnapshotOptions options;
    options.include_telemetry = false;
    options.include_decisions = false;
    const WorldState snap = world.snapshot(options);
    World clone(config, PolicySpec::adaptive(), 42, snap);
    benchmark::DoNotOptimize(clone.now());
    ++clones;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(clones));
}
BENCHMARK(BM_WorldSnapshotClone)->Arg(1)->Arg(6)->Arg(18)
    ->Unit(benchmark::kMicrosecond);

void BM_WebWorkloadGeneration(benchmark::State& state) {
  std::uint64_t generated = 0;
  for (auto _ : state) {
    WebWorkloadConfig config;
    config.scale = 0.01;
    config.horizon = 86400.0;
    WebWorkload workload(config);
    Rng rng(3);
    while (workload.next(rng)) ++generated;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(generated));
}
BENCHMARK(BM_WebWorkloadGeneration)->Unit(benchmark::kMillisecond);

void BM_BotWorkloadGeneration(benchmark::State& state) {
  std::uint64_t generated = 0;
  for (auto _ : state) {
    BotWorkload workload{};
    Rng rng(3);
    while (workload.next(rng)) ++generated;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(generated));
}
BENCHMARK(BM_BotWorkloadGeneration)->Unit(benchmark::kMillisecond);

// Sharded multi-tenant scale-out: 16 tenants contending for shared capacity,
// partitioned across N worker shards with a barrier commit every 60 s
// analysis window. Items/s counts aggregate completed requests, measured on
// wall clock (UseRealTime) — thread-parallel shards only help elapsed time,
// not CPU time. Results are bit-identical across shard counts (see
// tests/multi_tenant_test.cc), so this isolates pure execution cost:
// speedup tracks available cores (flat on a single-core host).
void BM_ShardedMultiTenant(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  MultiTenantConfig config;
  config.tenants = 64;
  config.seed = 42;
  config.horizon = 600.0;
  config.window = 60.0;
  config.tenant_scale = 0.01;
  config.capacity = 256;
  std::uint64_t completed = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    MultiTenantOptions options;
    options.shards = shards;
    const MultiTenantResult result = run_multi_tenant(config, options);
    completed += result.aggregate.completed;
    events += result.simulated_events;
    benchmark::DoNotOptimize(result.aggregate.avg_response_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedMultiTenant)->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cloudprov
