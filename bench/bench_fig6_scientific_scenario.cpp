// Figure 6 reproduction: the scientific (Bag-of-Tasks) scenario.
//
// One simulated day of the Iosup-model BoT workload (~8.3k requests of 300 s
// each), adaptive vs Static-{15,30,45,60,75}. Unlike the web scenario this
// is cheap, so the paper's full scale (1.0) and 10 replications are the
// defaults.
#include <fstream>
#include <iostream>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "util/cli.h"
#include "util/log.h"

using namespace cloudprov;

int main(int argc, char** argv) {
  ArgParser args(
      "Reproduces Figure 6 of Calheiros et al., ICPP 2011: adaptive vs "
      "static provisioning on the Grid Workloads Archive BoT workload.");
  args.add_flag("scale", "1.0", "workload + baseline scale factor", "<double>");
  args.add_flag("reps", "10", "replications per policy (paper: 10)", "<int>");
  args.add_flag("parallelism", "1",
                "replication worker threads (0 = one per hardware thread); "
                "results are identical at any level",
                "<int>");
  args.add_flag("seed", "42", "base random seed", "<int>");
  args.add_flag("csv", "", "also write results to this CSV file", "<path>");
  args.add_flag("log", "warn", "log level (trace..off)", "<level>");
  if (!args.parse(argc, argv)) return 0;
  Logger::instance().set_level(Logger::parse_level(args.get_string("log")));

  const double scale = args.get_double("scale");
  const auto reps = static_cast<std::size_t>(args.get_int("reps"));
  const auto parallelism = static_cast<std::size_t>(args.get_int("parallelism"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const ScenarioConfig config = scientific_scenario(scale);
  std::vector<PolicySpec> policies{PolicySpec::adaptive()};
  for (std::size_t n : paper_static_sizes(WorkloadKind::kScientific)) {
    policies.push_back(PolicySpec::fixed(n));
  }

  std::cout << "=== Figure 6: scientific scenario (scale " << scale << ", "
            << reps << " reps) ===\n\n";

  std::vector<AggregateMetrics> results;
  double adaptive_vm_hours = 0.0;
  double adaptive_util = 0.0;
  double adaptive_min_m = 0.0;
  double adaptive_max_m = 0.0;
  double static45_rejection = 0.0;
  double static75_vm_hours = 0.0;
  double static75_util = 0.0;
  for (const PolicySpec& policy : policies) {
    const auto runs =
        run_replications(config, policy, reps, seed, {}, parallelism);
    const AggregateMetrics agg = aggregate(runs);
    if (policy.kind == PolicySpec::Kind::kAdaptive) {
      adaptive_vm_hours = agg.vm_hours.mean;
      adaptive_util = agg.utilization.mean;
      adaptive_min_m = agg.min_instances.mean;
      adaptive_max_m = agg.max_instances.mean;
    } else if (policy.static_instances == 45) {
      static45_rejection = agg.rejection_rate.mean;
    } else if (policy.static_instances == 75) {
      static75_vm_hours = agg.vm_hours.mean;
      static75_util = agg.utilization.mean;
    }
    results.push_back(agg);
  }

  print_policy_table(std::cout, results);

  std::cout << "\nHeadline claims (Section V-C2; shape, not absolute numbers):\n";
  print_claim(std::cout, "adaptive min instances (paper: 13)", 13.0 * scale,
              adaptive_min_m, 1);
  print_claim(std::cout, "adaptive max instances (paper: 80)", 80.0 * scale,
              adaptive_max_m, 1);
  print_claim(std::cout,
              "adaptive utilization slightly below 0.8 floor (paper: 0.78)",
              0.78, adaptive_util);
  print_claim(std::cout, "Static-45 rejection (paper: ~31.7%)", 0.317,
              static45_rejection, 3);
  if (static75_vm_hours > 0.0) {
    print_claim(std::cout, "VM-hour saving vs Static-75 (paper: ~46%)", 0.46,
                1.0 - adaptive_vm_hours / static75_vm_hours);
    print_claim(std::cout, "Static-75 utilization (paper: ~42%)", 0.42,
                static75_util);
  }

  if (const std::string path = args.get_string("csv"); !path.empty()) {
    std::ofstream out(path);
    write_policy_csv(out, results);
    std::cout << "\nCSV written to " << path << '\n';
  }
  return 0;
}
