// Ablation AB8: flash crowds — load spikes outside the workload model.
//
// Overlays an unannounced 1-hour Poisson burst (3x the base rate) on the web
// workload and compares three adaptive configurations: the paper's pure
// profile predictor (blind to the spike), a pure reactive EWMA, and the
// HybridPredictor (max of both). The hybrid should match the profile's
// economy off-spike and the reactive's coverage on-spike.
#include <iostream>
#include <memory>

#include "cloud/broker.h"
#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "experiment/report.h"
#include "experiment/scenario.h"
#include "predict/ewma.h"
#include "predict/hybrid.h"
#include "predict/periodic_profile.h"
#include "telemetry/telemetry.h"
#include "util/cli.h"
#include "workload/spike_overlay.h"

using namespace cloudprov;

namespace {

struct Row {
  std::string predictor;
  double rejection_overall;
  double rejection_in_spike;
  double vm_hours;
  double max_instances;
  std::uint64_t slo_alerts;
  double worst_burn;
};

Row run_once(const ScenarioConfig& config, const SpikeConfig& spike,
             std::shared_ptr<ArrivalRatePredictor> predictor,
             const std::string& label, std::uint64_t seed) {
  Simulation sim;
  // SLO burn-rate alerting rides along (observational only): an unabsorbed
  // flash crowd should burn the rejection budget fast enough to page.
  TelemetryOptions telemetry_options;
  telemetry_options.slo_enabled = true;
  telemetry_options.slo.log_alerts = false;
  Telemetry telemetry(telemetry_options);
  Datacenter datacenter(sim, config.datacenter,
                        std::make_unique<LeastLoadedPlacement>());
  ProvisionerConfig prov_config;
  prov_config.initial_service_time_estimate = config.initial_service_time_estimate;
  ApplicationProvisioner provisioner(sim, datacenter, config.qos, prov_config);
  provisioner.set_telemetry(&telemetry);

  SpikeOverlaySource source(std::make_unique<WebWorkload>(config.web), spike);
  Broker broker(sim, source, provisioner, Rng(seed));
  AdaptivePolicy policy(sim, std::move(predictor), config.modeler,
                        config.analyzer);
  policy.attach(provisioner);
  broker.start();

  // Sample rejection counters at the spike boundaries.
  std::uint64_t rejected_at_spike_start = 0;
  std::uint64_t total_at_spike_start = 0;
  std::uint64_t rejected_at_spike_end = 0;
  std::uint64_t total_at_spike_end = 0;
  sim.schedule_at(spike.start, [&] {
    rejected_at_spike_start = provisioner.rejected();
    total_at_spike_start = provisioner.total_arrivals();
  });
  sim.schedule_at(spike.end, [&] {
    rejected_at_spike_end = provisioner.rejected();
    total_at_spike_end = provisioner.total_arrivals();
  });
  sim.run(config.horizon);

  const auto spike_total = total_at_spike_end - total_at_spike_start;
  const auto spike_rejected = rejected_at_spike_end - rejected_at_spike_start;
  TimeWeightedValue history = provisioner.instance_history();
  history.advance(sim.now());
  telemetry.slo()->evaluate(sim.now());  // final reading at the horizon
  return Row{label, provisioner.rejection_rate(),
             spike_total == 0 ? 0.0
                              : static_cast<double>(spike_rejected) /
                                    static_cast<double>(spike_total),
             datacenter.vm_hours(), history.max(),
             telemetry.slo()->response_alerts() +
                 telemetry.slo()->rejection_alerts(),
             telemetry.slo()->worst_burn_rate()};
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("Ablation: flash crowd outside the workload model (web).");
  args.add_flag("scale", "0.1", "workload scale factor", "<double>");
  args.add_flag("days", "1", "simulated days", "<int>");
  args.add_flag("spike-factor", "3.0", "spike rate as multiple of base rate",
                "<double>");
  args.add_flag("seed", "42", "random seed", "<int>");
  args.add_flag("smoke", "false",
                "CI smoke mode: small scale, horizon cut after the spike "
                "window");
  if (!args.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const bool smoke = args.get_bool("smoke");

  ScenarioConfig config =
      web_scenario(smoke ? 0.05 : args.get_double("scale"));
  config.horizon = smoke ? 16.0 * 3600.0
                         : static_cast<double>(args.get_int("days")) * 86400.0;
  config.web.horizon = config.horizon;

  // One-hour spike starting 14:00, (factor-1)x the base rate on top.
  WebWorkload base_model(config.web);
  SpikeConfig spike;
  spike.start = 14.0 * 3600.0;
  spike.end = 15.0 * 3600.0;
  spike.extra_rate = (args.get_double("spike-factor") - 1.0) *
                     base_model.expected_rate(14.5 * 3600.0);
  spike.service_demand =
      std::make_shared<ScaledUniformDistribution>(config.web.service_base,
                                                  config.web.service_spread);

  std::cout << "=== Ablation: flash crowd (web, 1-hour "
            << args.get_double("spike-factor") << "x spike at 14:00) ===\n\n";

  TextTable table({"predictor", "rejection overall", "rejection in spike",
                   "vm_hours", "max_inst", "slo_alerts", "worst_burn"});
  const auto add_row = [&table](const Row& row) {
    table.add_row({row.predictor, fmt(row.rejection_overall, 4),
                   fmt(row.rejection_in_spike, 4), fmt(row.vm_hours, 1),
                   fmt(row.max_instances, 1), std::to_string(row.slo_alerts),
                   fmt(row.worst_burn, 1)});
  };
  std::uint64_t total_alerts = 0;
  {
    auto profile = std::make_shared<PeriodicProfilePredictor>(
        web_profile_predictor(config.web));
    const Row row = run_once(config, spike, profile, "profile (paper)", seed);
    total_alerts += row.slo_alerts;
    add_row(row);
  }
  {
    auto reactive = std::make_shared<EwmaPredictor>(0.4, 0.15);
    const Row row = run_once(config, spike, reactive, "ewma (reactive)", seed);
    total_alerts += row.slo_alerts;
    add_row(row);
  }
  {
    // The hybrid's reactive arm uses no headroom: off-spike the profile
    // envelope dominates the max (keeping profile economy); the reactive arm
    // only takes over when observed load genuinely exceeds the model.
    auto hybrid = std::make_shared<HybridPredictor>(
        std::make_shared<PeriodicProfilePredictor>(
            web_profile_predictor(config.web)),
        std::make_shared<EwmaPredictor>(0.4, 0.0));
    const Row row = run_once(config, spike, hybrid, "hybrid (extension)", seed);
    total_alerts += row.slo_alerts;
    add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nSLO alerts (all configurations): " << total_alerts << '\n';

  std::cout
      << "\nReading: the profile predictor cannot see the spike (its model\n"
         "doesn't contain it) and rejects heavily inside the spike window;\n"
         "the reactive EWMA covers the spike after a one-interval lag but\n"
         "tracks noisily all day; the hybrid takes max(profile, reactive):\n"
         "profile economy in normal operation, reactive coverage during the\n"
         "crowd. The slo_alerts column counts multi-window burn-rate alerts\n"
         "raised during the run (the spike should page at least the blind\n"
         "profile configuration).\n";
  return 0;
}
