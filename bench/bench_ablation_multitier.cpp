// Ablation AB14: multi-tier applications — cache + backend tiers under
// Zipf traffic with per-tier autoscaling (src/apptier).
//
// The same Zipf(alpha) key-value workload is served two ways:
//
//   single-tier  the paper's Algorithm 1 sizes ONE backend pool for the
//                total arrival rate lambda (every request pays a full
//                backend service demand);
//   tiered       a look-aside cache tier absorbs the hot head of the key
//                popularity, the TieredProvisioner runs Algorithm 1 per
//                tier, and the backend is sized for the miss flow
//                lambda_miss = lambda * (1 - h) from the cache tier's live
//                hit ratio.
//
// Four sections:
//
//   sizing      single-tier vs tiered on identically-seeded workloads at
//               several scales: equal-or-better SLO with fewer backend
//               VM-hours is the headline claim.
//   curve       per-tier latency vs throughput: each tier's measured mean
//               response against its own offered load as lambda grows.
//   warmup      a seeded cache-VM crash mid-run: the modulo slot remap
//               invalidates resident entries and the per-window hit-ratio
//               series shows the dip-and-recover transient.
//   TTL storm   a full directory flush mid-run: the backend eats the whole
//               lambda until refills rebuild the working set.
//
// --smoke (CI): short horizon; asserts (1) a run with apptier fields
// touched but enabled=false is bit-identical to the untouched baseline,
// (2) the tiered backend spends fewer VM-hours than the single-tier pool at
// equal QoS, (3) the crash transient invalidates and recovers, (4) the TTL
// storm flushes and recovers. Exits non-zero on violation.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "util/cli.h"

using namespace cloudprov;

namespace {

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Bit-level equality on the headline metrics: any drift means the disabled
/// apptier config leaked into the simulation.
bool runs_identical(const RunMetrics& a, const RunMetrics& b,
                    std::string& why) {
  const auto check = [&why](bool same, const char* field) {
    if (!same && why.empty()) why = field;
    return same;
  };
  bool ok = true;
  ok &= check(a.generated == b.generated, "generated");
  ok &= check(a.accepted == b.accepted, "accepted");
  ok &= check(a.rejected == b.rejected, "rejected");
  ok &= check(a.completed == b.completed, "completed");
  ok &= check(a.qos_violations == b.qos_violations, "qos_violations");
  ok &= check(double_bits(a.avg_response_time) ==
                  double_bits(b.avg_response_time),
              "avg_response_time");
  ok &= check(double_bits(a.p99_response_time) ==
                  double_bits(b.p99_response_time),
              "p99_response_time");
  ok &= check(double_bits(a.vm_hours) == double_bits(b.vm_hours), "vm_hours");
  ok &= check(double_bits(a.utilization) == double_bits(b.utilization),
              "utilization");
  ok &= check(a.simulated_events == b.simulated_events, "simulated_events");
  ok &= check(a.cache_hits == 0 && b.cache_hits == 0, "cache_hits != 0");
  return ok;
}

ScenarioConfig tiered_config(double scale, double ttl = 300.0) {
  ScenarioConfig config = zipf_scenario(scale);
  config.apptier.enabled = true;
  config.apptier.ttl = ttl;
  return config;
}

/// Mean window hit ratio over series samples with begin <= t < end.
double mean_hit_ratio(const std::vector<ApptierState::WindowSample>& series,
                      SimTime begin, SimTime end) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& sample : series) {
    if (sample.t < begin || sample.t >= end) continue;
    sum += sample.hit_ratio;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Ablation: cache + backend tiers under Zipf traffic with per-tier "
      "autoscaling, vs a single-tier pool sized for the total rate.");
  args.add_flag("scale", "0.02", "workload scale of the sizing section",
                "<double>");
  args.add_flag("hours", "24", "simulated hours", "<int>");
  args.add_flag("seed", "42", "base random seed", "<int>");
  args.add_flag("smoke", "false",
                "CI smoke mode: short horizon, assert tiers-off bit-identity, "
                "backend VM-hour savings at equal QoS, and both transients; "
                "exit non-zero on violation");
  if (!args.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const bool smoke = args.get_bool("smoke");
  const double scale = args.get_double("scale");
  const SimTime horizon =
      smoke ? 4.0 * 3600.0 : static_cast<double>(args.get_int("hours")) * 3600.0;
  const PolicySpec adaptive = PolicySpec::adaptive(PredictorKind::kProfile);
  int failures = 0;
  const auto check = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "SMOKE FAIL: " << what << '\n';
      ++failures;
    }
  };

  std::cout << "=== Ablation: multi-tier cache + backend vs single tier "
               "(Zipf key-value traffic) ===\n\n";

  // --- Section 0 (smoke only): disabled apptier config must be inert ------
  if (smoke) {
    ScenarioConfig plain = zipf_scenario(scale);
    plain.horizon = plain.zipf.horizon = horizon;
    ScenarioConfig touched = plain;
    touched.apptier.ttl = 5.0;               // enabled stays false:
    touched.apptier.cache_vms = 64;          // none of this may matter
    touched.apptier.cache_capacity_per_vm = 1;
    const RunMetrics a = run_scenario(plain, adaptive, seed).metrics;
    const RunMetrics b = run_scenario(touched, adaptive, seed).metrics;
    std::string why;
    const bool identical = runs_identical(a, b, why);
    check(identical, "tiers-off runs must be bit-identical (" + why + ")");
    std::cout << "tiers-off bit-identity: "
              << (identical ? "ok" : "FAILED (" + why + ")") << "\n\n";
  }

  // --- Section 1: equal-QoS sizing, single-tier vs tiered -----------------
  std::cout << "--- sizing: single-tier (total lambda) vs tiered "
               "(lambda_miss) ---\n";
  TextTable sizing({"config", "hit_ratio", "backend_vmh", "cache_vmh",
                    "avg_resp", "p99_resp", "rejection", "violations",
                    "lambda_miss"});
  std::vector<RunMetrics> sized;
  for (const bool tiers : {false, true}) {
    ScenarioConfig config = tiers ? tiered_config(scale) : zipf_scenario(scale);
    config.horizon = config.zipf.horizon = horizon;
    RunOutput output = run_scenario(config, adaptive, seed);
    const RunMetrics& m = output.metrics;
    sizing.add_row({tiers ? "tiered" : "single-tier",
                    fmt(m.cache_hit_ratio, 3), fmt(m.vm_hours, 1),
                    fmt(m.cache_vm_hours, 1), fmt(m.avg_response_time, 4),
                    fmt(m.p99_response_time, 4), fmt(m.rejection_rate, 4),
                    std::to_string(m.qos_violations),
                    fmt(m.lambda_miss_mean, 2)});
    sized.push_back(m);
  }
  sizing.print(std::cout);
  const ScenarioConfig reference = zipf_scenario(scale);
  const RunMetrics& single = sized.front();
  const RunMetrics& tiered = sized.back();
  std::cout << "\nReading: the cache absorbs the Zipf hot head, so the tiered\n"
               "backend plans for lambda_miss = lambda * (1 - h) and spends\n"
            << fmt(single.vm_hours - tiered.vm_hours, 1)
            << " fewer backend VM-hours while the end-to-end response mixes\n"
               "fast hits with full-demand misses.\n\n";
  if (smoke) {
    check(tiered.vm_hours < single.vm_hours,
          "tiered backend must spend fewer VM-hours than single-tier");
    check(tiered.avg_response_time <= reference.qos.max_response_time,
          "tiered run must meet the response-time QoS target");
    check(single.avg_response_time <= reference.qos.max_response_time,
          "single-tier run must meet the response-time QoS target");
    check(tiered.rejection_rate <=
              single.rejection_rate + reference.qos.max_rejection_rate + 0.02,
          "tiered rejection must stay comparable to single-tier");
    check(tiered.cache_hit_ratio > 0.3,
          "Zipf hot head should produce a substantial hit ratio");
  }

  // --- Section 2: per-tier latency vs throughput --------------------------
  std::cout << "--- per-tier latency vs throughput (tiered, scale sweep) "
               "---\n";
  TextTable curve({"scale", "lambda", "hit_ratio", "lambda_cache",
                   "lambda_miss", "cache_resp", "backend_resp", "e2e_resp",
                   "cache_vms", "backend_vms"});
  const std::vector<double> sweep_scales =
      smoke ? std::vector<double>{0.01, 0.02}
            : std::vector<double>{0.005, 0.01, 0.02, 0.04, 0.08};
  for (const double s : sweep_scales) {
    ScenarioConfig config = tiered_config(s);
    config.horizon = config.zipf.horizon = horizon;
    const RunMetrics m = run_scenario(config, adaptive, seed).metrics;
    const double lambda = s * config.zipf.base_rate;
    curve.add_row({fmt(s, 3), fmt(lambda, 1), fmt(m.cache_hit_ratio, 3),
                   fmt(lambda * m.cache_hit_ratio, 1),
                   fmt(m.lambda_miss_mean, 1),
                   fmt(m.cache_avg_response_time, 4),
                   fmt(m.backend_avg_response_time, 4),
                   fmt(m.avg_response_time, 4), fmt(m.cache_avg_instances, 1),
                   fmt(m.avg_instances, 1)});
  }
  curve.print(std::cout);
  std::cout << "\nReading: each tier rides its own latency-throughput curve —\n"
               "cache hits stay an order of magnitude faster than backend\n"
               "misses at every load, and both pools grow with their OWN\n"
               "offered flow (lambda*h vs lambda*(1-h)), not the total.\n\n";

  // --- Section 3: cache-warmup transient after a seeded cache-VM crash ----
  std::cout << "--- warmup transient: cache-VM crash at t=" << horizon / 2.0
            << " s ---\n";
  ScenarioConfig crash_config = tiered_config(scale);
  crash_config.horizon = crash_config.zipf.horizon = horizon;
  const SimTime crash_at = horizon / 2.0;
  crash_config.apptier.cache_crash_at = {crash_at};
  RunOutput crash_run = run_scenario(crash_config, adaptive, seed);
  const RunMetrics& cm = crash_run.metrics;
  const double before_crash =
      mean_hit_ratio(crash_run.apptier_series, 0.25 * horizon, crash_at);
  const double after_crash = mean_hit_ratio(
      crash_run.apptier_series, crash_at, crash_at + 0.1 * horizon);
  const double recovered =
      mean_hit_ratio(crash_run.apptier_series, 0.9 * horizon, horizon);
  std::cout << "invalidations " << cm.cache_invalidations
            << "; window hit ratio " << fmt(before_crash, 3)
            << " before -> " << fmt(after_crash, 3) << " after crash -> "
            << fmt(recovered, 3) << " by the horizon\n\n";
  if (smoke) {
    check(cm.cache_invalidations > 0,
          "cache-VM crash must invalidate resident entries via slot remap");
    check(recovered > after_crash,
          "hit ratio must recover after the crash transient");
  }

  // --- Section 4: TTL storm (full directory flush) ------------------------
  std::cout << "--- TTL storm: directory flush at t=" << horizon / 2.0
            << " s ---\n";
  ScenarioConfig storm_config = tiered_config(scale);
  storm_config.horizon = storm_config.zipf.horizon = horizon;
  const SimTime flush_at = horizon / 2.0;
  storm_config.apptier.flush_at = {flush_at};
  RunOutput storm_run = run_scenario(storm_config, adaptive, seed);
  const RunMetrics& sm = storm_run.metrics;
  const double before_storm =
      mean_hit_ratio(storm_run.apptier_series, 0.25 * horizon, flush_at);
  const double after_storm = mean_hit_ratio(
      storm_run.apptier_series, flush_at, flush_at + 0.05 * horizon);
  const double storm_recovered =
      mean_hit_ratio(storm_run.apptier_series, 0.9 * horizon, horizon);
  std::cout << "flushes " << sm.cache_flushes << "; window hit ratio "
            << fmt(before_storm, 3) << " before -> " << fmt(after_storm, 3)
            << " right after the flush -> " << fmt(storm_recovered, 3)
            << " by the horizon\n";
  std::cout << "\nReading: the storm sends the full lambda to the backend\n"
               "until refills rebuild the working set; the next planning\n"
               "windows see the hit-ratio collapse through lambda_miss and\n"
               "re-grow the backend, then shrink it again as the cache\n"
               "re-warms.\n";
  if (smoke) {
    check(sm.cache_flushes == 1, "exactly one flush event must fire");
    check(after_storm < before_storm,
          "hit ratio must collapse right after the flush");
    check(storm_recovered > after_storm,
          "hit ratio must recover after the TTL storm");
  }

  if (!smoke) return 0;
  if (failures != 0) return 1;
  std::cout << "\nsmoke checks passed\n";
  return 0;
}
