// Ablation AB4: the workload analyzer's re-evaluation cadence.
//
// The paper's analyzer alerts "before the expected time for the rate to
// change". A time-based profile predictor makes the cadence nearly moot (it
// reads the future profile directly), so this sweep uses the reactive EWMA
// predictor, where the analysis interval *is* the reaction lag, on the
// scientific scenario whose 8 a.m. ramp multiplies the arrival rate ~12x.
// The profile predictor at the default cadence is included as the proactive
// reference.
#include <iostream>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "util/cli.h"

using namespace cloudprov;

int main(int argc, char** argv) {
  ArgParser args(
      "Ablation: provisioning re-evaluation interval with a reactive "
      "predictor (scientific scenario).");
  args.add_flag("scale", "1.0", "workload scale factor", "<double>");
  args.add_flag("reps", "5", "replications per setting", "<int>");
  args.add_flag("seed", "42", "base random seed", "<int>");
  if (!args.parse(argc, argv)) return 0;

  const auto reps = static_cast<std::size_t>(args.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "=== Ablation: analysis interval (scientific, EWMA predictor, "
            << reps << " reps) ===\n\n";

  TextTable table({"predictor", "interval (s)", "rejection", "utilization",
                   "vm_hours", "max_inst", "violations"});
  for (double interval : {30.0, 60.0, 300.0, 900.0, 3600.0}) {
    ScenarioConfig config = scientific_scenario(args.get_double("scale"));
    config.analyzer.analysis_interval = interval;
    config.analyzer.lead_time = interval;

    const auto runs = run_replications(
        config, PolicySpec::adaptive(PredictorKind::kEwma), reps, seed);
    const AggregateMetrics agg = aggregate(runs);
    table.add_row({"ewma", fmt(interval, 0), fmt(agg.rejection_rate.mean, 4),
                   fmt(agg.utilization.mean, 3), fmt(agg.vm_hours.mean, 1),
                   fmt(agg.max_instances.mean, 1),
                   fmt(agg.qos_violations.mean, 1)});
  }
  {
    // Proactive reference: the paper's profile predictor at the default
    // cadence.
    ScenarioConfig config = scientific_scenario(args.get_double("scale"));
    const auto runs =
        run_replications(config, PolicySpec::adaptive(), reps, seed);
    const AggregateMetrics agg = aggregate(runs);
    table.add_row({"profile", fmt(config.analyzer.analysis_interval, 0),
                   fmt(agg.rejection_rate.mean, 4), fmt(agg.utilization.mean, 3),
                   fmt(agg.vm_hours.mean, 1), fmt(agg.max_instances.mean, 1),
                   fmt(agg.qos_violations.mean, 1)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: with a reactive predictor every interval of lag at the\n"
         "8 a.m. ramp converts directly into rejected requests (requests run\n"
         "300 s, so a stale pool cannot drain its way out). The proactive\n"
         "profile predictor sidesteps the cadence entirely — the paper's\n"
         "core argument for model-driven alerts issued before the change.\n";
  return 0;
}
