// Microbenchmarks MB1/MB2: the discrete-event kernel and the random-variate
// library — the two components on the simulator's per-request critical path
// (the paper-scale web scenario executes ~1.5 billion events per
// replication).
#include <benchmark/benchmark.h>

#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace cloudprov {
namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto pending = static_cast<std::size_t>(state.range(0));
  EventQueue queue;
  Rng rng(1);
  for (std::size_t i = 0; i < pending; ++i) {
    queue.push(rng.uniform(0.0, 1000.0), [] {});
  }
  double t = 1000.0;
  for (auto _ : state) {
    queue.push(t, [] {});
    benchmark::DoNotOptimize(queue.pop());
    t += 0.001;
  }
  state.SetItemsProcessed(state.iterations());
}
// The pending-set size in the paper's scenarios: ~150 departures + controls.
BENCHMARK(BM_EventQueuePushPop)->Arg(16)->Arg(256)->Arg(4096);

void BM_EventQueueCancel(benchmark::State& state) {
  EventQueue queue;
  for (auto _ : state) {
    const EventId id = queue.push(1.0, [] {});
    queue.cancel(id);
    benchmark::DoNotOptimize(queue.empty());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueCancel);

void BM_SimulationSelfScheduling(benchmark::State& state) {
  // A single self-rescheduling event chain: pure kernel dispatch overhead
  // through the typed inline-delegate path (no per-event allocation).
  struct Chain {
    Simulation* sim;
    std::uint64_t remaining;
    void fire() {
      if (--remaining > 0) {
        sim->schedule_in(0.001, EventAction::method<&Chain::fire>(this));
      }
    }
  };
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim;
    Chain chain{&sim, 100000};
    sim.schedule_at(0.0, EventAction::method<&Chain::fire>(&chain));
    state.ResumeTiming();
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulationSelfScheduling)->Unit(benchmark::kMillisecond);

void BM_SimulationSelfSchedulingBoxed(benchmark::State& state) {
  // Same chain through the rare-path escape hatch (a capturing closure too
  // large for the inline budget): prices the boxed fallback.
  struct Chain {
    Simulation* sim;
    std::uint64_t remaining;
    std::uint64_t pad[2] = {0, 0};  // force the closure past 16 bytes
    void fire() {
      if (--remaining > 0) {
        Chain* self = this;
        const std::uint64_t pad0 = pad[0];
        const std::uint64_t pad1 = pad[1];
        sim->schedule_in(0.001, [self, pad0, pad1] {
          benchmark::DoNotOptimize(pad0 + pad1);
          self->fire();
        });
      }
    }
  };
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim;
    Chain chain{&sim, 100000};
    sim.schedule_at(0.0, EventAction::method<&Chain::fire>(&chain));
    state.ResumeTiming();
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulationSelfSchedulingBoxed)->Unit(benchmark::kMillisecond);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.exponential(10.0));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

void BM_RngWeibull(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.weibull(4.25, 7.86));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngWeibull);

void BM_RngNormal(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal(0.0, 1.0));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNormal);

void BM_RngPoisson(benchmark::State& state) {
  Rng rng(1);
  const double mean = static_cast<double>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(rng.poisson(mean));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngPoisson)->Arg(3)->Arg(120);  // Knuth vs PTRS paths

}  // namespace
}  // namespace cloudprov
