// Ablation AB11: model-predictive (lookahead) provisioning vs the paper's
// reactive adaptive mechanism.
//
// Algorithm 1 sizes the pool from the analytical model alone; the lookahead
// provisioner (src/lookahead) additionally forks cheap what-if clones of the
// whole world at each analysis window, simulates candidate pool sizes (and
// spot bids) a few windows ahead under a Poisson forecast, and commits the
// cheapest candidate whose clone kept QoS no worse than Algorithm 1's own
// choice.
//
//   A. No-search guard. Lookahead with K = 1 and no bid levels never
//      consults the what-if engine and must be bit-identical to the
//      adaptive baseline — same headline metrics, same executed event
//      count. Exits nonzero on any mismatch, so CI pins the guarantee.
//   B. Checkpoint guard. Snapshot a live market run mid-flight, push it
//      through the binary disk codec, restore, continue — and require the
//      finished run bit-identical to the uninterrupted one. Exits nonzero
//      on any mismatch.
//   C. AB11 table. Web scenario on a live spot market with SLO burn-rate
//      alerting: reactive adaptive (profile / EWMA / oracle predictors)
//      vs lookahead. Columns: billed cost, VM hours, rejection rate, QoS
//      violations, SLO alerts. The claim under test: lookahead meets QoS
//      (never more SLO alerts than the reactive profile baseline) at a
//      lower billed cost.
#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "experiment/world.h"
#include "lookahead/checkpoint.h"
#include "util/cli.h"

using namespace cloudprov;

namespace {

ScenarioConfig base_scenario(bool smoke) {
  ScenarioConfig config = web_scenario(smoke ? 0.02 : 0.05);
  if (smoke) {
    // CI smoke: 6 simulated hours instead of a day.
    config.horizon = 6.0 * 3600.0;
    config.web.horizon = config.horizon;
  }
  return config;
}

ScenarioConfig market_scenario(bool smoke) {
  ScenarioConfig config = base_scenario(smoke);
  config.market.enabled = true;
  config.market.acquisition.spot_fraction = 0.5;
  config.market.acquisition.bid = 0.70;
  config.reconciler.enabled = true;
  config.reconciler.interval = 60.0;
  return config;
}

TelemetryOptions slo_telemetry(const ScenarioConfig& config) {
  TelemetryOptions opts;
  opts.trace_requests = false;
  opts.slo_enabled = true;
  opts.slo.log_alerts = false;
  opts.drift_enabled = true;
  opts.drift.qos_max_response_time = config.qos.max_response_time;
  return opts;
}

// The headline RunMetrics the guards pin. Exact (bitwise) equality: the
// disabled search and the checkpoint roundtrip must not move a single
// double.
bool identical(const RunMetrics& a, const RunMetrics& b) {
  return a.generated == b.generated && a.completed == b.completed &&
         a.rejected == b.rejected && a.avg_response_time == b.avg_response_time &&
         a.p95_response_time == b.p95_response_time &&
         a.utilization == b.utilization && a.vm_hours == b.vm_hours &&
         a.qos_violations == b.qos_violations &&
         a.rejection_rate == b.rejection_rate &&
         a.avg_instances == b.avg_instances && a.max_instances == b.max_instances &&
         a.billed_cost == b.billed_cost &&
         a.spot_revocations == b.spot_revocations &&
         a.simulated_events == b.simulated_events;
}

void print_ab11_row(std::ostream& out, const RunMetrics& m) {
  out << "  " << std::left << std::setw(26) << m.policy << std::right
      << std::setw(10) << fmt(m.billed_cost, 2) << std::setw(10)
      << fmt(m.vm_hours, 2) << std::setw(9) << fmt(100.0 * m.rejection_rate, 2)
      << '%' << std::setw(8) << m.qos_violations << std::setw(8)
      << (m.slo_response_alerts + m.slo_rejection_alerts) << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Ablation AB11: lookahead (model-predictive) provisioning vs reactive "
      "adaptive — no-search guard, checkpoint roundtrip guard, and cost/QoS "
      "comparison on a live spot market (web scenario).");
  args.add_flag("seed", "42", "base random seed", "<int>");
  args.add_flag("smoke", "false",
                "short-horizon run for CI smoke testing", "<bool>");
  if (!args.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const bool smoke = args.get_bool("smoke");

  // --- A: K = 1, no bid levels — search disabled, bit-identical ----------
  std::cout << "=== A. No-search guard: lookahead(1,1) vs adaptive ===\n\n";
  {
    const ScenarioConfig config = base_scenario(smoke);
    RunMetrics adaptive =
        run_scenario(config, PolicySpec::adaptive(), seed).metrics;
    RunMetrics lookahead =
        run_scenario(config, PolicySpec::lookahead_spec(1, 1), seed).metrics;
    print_policy_table(std::cout,
                       {aggregate({adaptive}), aggregate({lookahead})});
    if (!identical(adaptive, lookahead)) {
      std::cout << "\nFAIL: disabled lookahead search perturbed the "
                   "simulation (headline metrics differ)\n";
      return 1;
    }
    std::cout << "\nOK: headline metrics (incl. simulated_events="
              << adaptive.simulated_events << ") bit-identical.\n";
  }

  // --- B: checkpoint -> disk -> restore -> continue ----------------------
  std::cout << "\n=== B. Checkpoint guard: disk roundtrip mid-run ===\n\n";
  {
    const ScenarioConfig config = market_scenario(smoke);
    const PolicySpec policy = PolicySpec::adaptive();
    const RunMetrics full = run_scenario(config, policy, seed).metrics;

    World world(config, policy, seed);
    world.start();
    world.run_to(config.horizon / 3.0);
    const std::string path = "bench_lookahead_ckpt.bin";
    write_checkpoint_file(path, world.snapshot());
    const WorldState state = read_checkpoint_file(path);
    std::remove(path.c_str());

    World resumed(config, policy, seed, state);
    resumed.run_to(config.horizon);
    const RunMetrics continued = resumed.finish().metrics;
    if (!identical(full, continued)) {
      std::cout << "FAIL: checkpoint/restore diverged from the "
                   "uninterrupted run\n";
      return 1;
    }
    std::cout << "OK: snapshot at t=" << fmt(config.horizon / 3.0, 0)
              << "s, restored from disk, continued to the horizon; all "
                 "headline metrics (incl. billed cost "
              << fmt(continued.billed_cost, 2) << " and simulated_events="
              << continued.simulated_events << ") bit-identical.\n";
  }

  // --- C: AB11 — reactive vs lookahead on the spot market ----------------
  std::cout << "\n=== C. AB11: reactive adaptive vs lookahead (spot market, "
               "SLO alerting) ===\n\n";
  {
    const ScenarioConfig config = market_scenario(smoke);
    const std::size_t candidates = smoke ? 3 : 5;
    const std::size_t horizon_windows = 2;
    const std::vector<std::pair<std::string, PolicySpec>> contenders = {
        {"Adaptive(profile)", PolicySpec::adaptive()},
        {"Adaptive(ewma)", PolicySpec::adaptive(PredictorKind::kEwma)},
        {"Adaptive(oracle)", PolicySpec::adaptive(PredictorKind::kOracle)},
        {"Lookahead",
         PolicySpec::lookahead_spec(candidates, horizon_windows)},
        {"Lookahead+bids",
         PolicySpec::lookahead_spec(candidates, horizon_windows,
                                    PredictorKind::kProfile, {0.45, 1.0})},
    };

    std::vector<RunMetrics> rows;
    for (const auto& [label, policy] : contenders) {
      RunMetrics m =
          run_scenario(config, policy, seed, slo_telemetry(config)).metrics;
      m.policy = label;
      rows.push_back(std::move(m));
    }

    std::cout << "  " << std::left << std::setw(26) << "policy" << std::right
              << std::setw(10) << "billed" << std::setw(10) << "VM-h"
              << std::setw(10) << "rej" << std::setw(8) << "QoSv"
              << std::setw(8) << "alerts" << '\n';
    for (const RunMetrics& m : rows) print_ab11_row(std::cout, m);

    const RunMetrics& profile = rows[0];
    const RunMetrics& ewma = rows[1];
    const RunMetrics& best_lookahead =
        rows[3].billed_cost <= rows[4].billed_cost ? rows[3] : rows[4];
    const std::uint64_t profile_alerts =
        profile.slo_response_alerts + profile.slo_rejection_alerts;
    const std::uint64_t la_alerts = best_lookahead.slo_response_alerts +
                                    best_lookahead.slo_rejection_alerts;
    std::cout << "\nReading: the what-if clones certify each cut before it "
                 "is committed, so the\nlookahead bill ("
              << fmt(best_lookahead.billed_cost, 2)
              << ") undercuts reactive profile ("
              << fmt(profile.billed_cost, 2) << ") and EWMA ("
              << fmt(ewma.billed_cost, 2) << ")\nwhile SLO alerts stay at "
              << la_alerts << " vs " << profile_alerts
              << " for the reactive baseline.\n";
    if (best_lookahead.billed_cost > profile.billed_cost ||
        best_lookahead.billed_cost > ewma.billed_cost ||
        la_alerts > profile_alerts) {
      std::cout << "\nFAIL: lookahead did not dominate the reactive "
                   "baseline (cost or alerts)\n";
      return 1;
    }
  }
  return 0;
}
