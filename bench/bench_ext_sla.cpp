// Extension bench: SLA classes with priorities and incentives under
// resource contention (Section VII, final paragraph of future work).
//
// Two request classes share an under-provisioned pool (offered load 2x
// capacity, mimicking "intense competition for resources and limited
// resource availability"): premium (25% of traffic, high revenue, steep
// rejection penalty) and best-effort. Compares FIFO admission against
// PriorityAwareAdmission with swept reservation sizes, reporting per-class
// completion and net revenue.
#include <iostream>
#include <memory>

#include "core/application_provisioner.h"
#include "core/sla.h"
#include "experiment/report.h"
#include "util/cli.h"

using namespace cloudprov;

namespace {

std::vector<SlaClass> classes() {
  SlaClass best_effort;
  best_effort.name = "best-effort";
  best_effort.priority_threshold = 0;
  best_effort.max_response_time = 1.0;
  best_effort.revenue_per_request = 1.0;
  SlaClass premium;
  premium.name = "premium";
  premium.priority_threshold = 5;
  premium.max_response_time = 0.5;
  premium.revenue_per_request = 10.0;
  premium.rejection_penalty = 20.0;
  premium.violation_penalty = 10.0;
  return {best_effort, premium};
}

struct Row {
  std::string admission;
  double premium_completion;
  double best_effort_completion;
  double revenue;
};

Row run_once(std::unique_ptr<AdmissionPolicy> admission,
             const std::string& label, std::uint64_t seed) {
  Simulation sim;
  DatacenterConfig dc;
  dc.host_count = 2;
  Datacenter datacenter(sim, dc, std::make_unique<LeastLoadedPlacement>());
  QosTargets qos;
  qos.max_response_time = 0.5;
  ProvisionerConfig config;
  config.initial_service_time_estimate = 0.1;
  ApplicationProvisioner provisioner(sim, datacenter, qos, config,
                                     std::move(admission));
  provisioner.scale_to(4);

  SlaManager sla(classes());
  provisioner.set_completion_listener(
      [&](const Request& r, double response) { sla.on_completed(r, response); });

  Rng rng(seed);
  double t = 0.0;
  std::uint64_t id = 0;
  while (t < 600.0) {
    t += rng.exponential(80.0);  // 2x the pool's comfortable load
    Request r;
    r.id = ++id;
    r.arrival_time = t;
    r.priority = rng.bernoulli(0.25) ? 9 : 0;
    r.service_demand = 0.1 * rng.uniform(1.0, 1.1);
    sim.schedule_at(t, [&sla, &provisioner, r]() mutable {
      sla.on_arrival(r);
      if (!provisioner.try_submit(r)) sla.on_rejected(r);
    });
  }
  sim.run();

  const SlaClassReport premium = sla.report(1);
  const SlaClassReport best = sla.report(0);
  return Row{label,
             static_cast<double>(premium.completed) /
                 static_cast<double>(premium.offered),
             static_cast<double>(best.completed) /
                 static_cast<double>(best.offered),
             sla.total_revenue()};
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("Extension: SLA classes and priority admission under contention.");
  args.add_flag("seed", "42", "random seed", "<int>");
  if (!args.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "=== Extension: SLA revenue under 2x contention "
            << "(25% premium traffic) ===\n\n";
  TextTable table({"admission", "premium completion", "best-effort completion",
                   "net revenue"});
  {
    const Row row = run_once(std::make_unique<KBoundAdmission>(), "FIFO (paper)",
                             seed);
    table.add_row({row.admission, fmt(row.premium_completion, 3),
                   fmt(row.best_effort_completion, 3), fmt(row.revenue, 0)});
  }
  for (std::size_t reserved : {2u, 6u, 12u}) {
    const Row row = run_once(
        std::make_unique<PriorityAwareAdmission>(reserved, 5),
        "priority(reserve=" + std::to_string(reserved) + ")", seed);
    table.add_row({row.admission, fmt(row.premium_completion, 3),
                   fmt(row.best_effort_completion, 3), fmt(row.revenue, 0)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: FIFO admission starves the premium class exactly in\n"
         "proportion to overload, and its steep rejection penalties push net\n"
         "revenue down; reserving pool slots for premium traffic trades\n"
         "best-effort completions (worth 1 each) for premium ones (worth 10,\n"
         "penalty 20). Larger reservations help until the premium class is\n"
         "fully served; beyond that they only idle capacity.\n";
  return 0;
}
