#!/usr/bin/env python3
"""Record microbenchmark results into a tracked trajectory file.

Runs the google-benchmark binaries in JSON mode and appends one labelled
entry (git commit, date, name -> items/s) to BENCH_kernel.json at the repo
root, so kernel performance is tracked across PRs rather than asserted in
prose. Re-running with an existing label replaces that entry in place, which
keeps the file idempotent under repeated local runs.

Usage:
    python3 bench/record_bench.py --build-dir build --label after-slab-kernel
    python3 bench/record_bench.py --label ci-smoke --min-time 0.01 \
        --output /tmp/bench_check.json --no-compare
    python3 bench/record_bench.py --check --min-time 0.01

With --check the script becomes a regression gate instead of a recorder: it
runs the benchmarks, compares items/s against the stored baseline entry in
BENCH_kernel.json (the newest entry, or the one named by --baseline-label),
and exits non-zero when any shared benchmark regresses by more than
--tolerance (default 15%). The trajectory file is never modified in this
mode. Benchmarks present on only one side are reported but never fail the
gate, so adding a new benchmark does not require re-recording first.

Exit status is non-zero when a benchmark binary is missing or fails, so CI
can use this script as a smoke test for the perf tooling itself.
"""
import argparse
import datetime
import json
import pathlib
import re
import socket
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BENCHMARKS = ["bench/bench_micro_kernel", "bench/bench_micro_simulator"]


def git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def cpu_model() -> str:
    try:
        for line in pathlib.Path("/proc/cpuinfo").read_text().splitlines():
            if line.lower().startswith("model name"):
                return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return "unknown"


def compiler_info(build_dir: pathlib.Path) -> str:
    """Compiler id + version from the build dir's CMake cache, e.g.
    'GNU 12.2.0 (/usr/bin/c++)'. Numbers on the same machine are only
    comparable if this string matches."""
    cache = build_dir / "CMakeCache.txt"
    compiler = ""
    try:
        match = re.search(r"^CMAKE_CXX_COMPILER:\w+=(.+)$",
                          cache.read_text(), re.MULTILINE)
        if match:
            compiler = match.group(1).strip()
    except OSError:
        pass
    if not compiler:
        return "unknown"
    try:
        out = subprocess.run([compiler, "--version"], capture_output=True,
                             text=True, check=True)
        first_line = out.stdout.splitlines()[0] if out.stdout else ""
        version = re.search(r"\d+\.\d+(?:\.\d+)?", first_line)
        ident = "clang" if "clang" in first_line.lower() else "GNU"
        if version:
            return f"{ident} {version.group(0)} ({compiler})"
    except (subprocess.CalledProcessError, FileNotFoundError, OSError):
        pass
    return compiler


def run_benchmark(binary: pathlib.Path, min_time: str, bench_filter: str) -> dict:
    cmd = [str(binary), "--benchmark_format=json"]
    if min_time:
        cmd.append(f"--benchmark_min_time={min_time}")
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    print(f"running {' '.join(cmd)}", file=sys.stderr)
    out = subprocess.run(cmd, capture_output=True, text=True, check=True)
    try:
        report = json.loads(out.stdout)
    except json.JSONDecodeError:
        # google-benchmark exits 0 with non-JSON output when --benchmark_filter
        # matches nothing in this binary; treat that as an empty result set.
        print(f"warning: no parsable output from {binary.name}", file=sys.stderr)
        return {}
    results = {}
    for bench in report.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bench.get("run_type") == "aggregate":
            continue
        if "items_per_second" in bench:
            results[bench["name"]] = bench["items_per_second"]
    return results


def check_against_baseline(results: dict, trajectory: list,
                           baseline_label: str, tolerance: float) -> int:
    """Compare a fresh run against a stored entry; 1 on regression, else 0."""
    if baseline_label:
        matches = [e for e in trajectory if e["label"] == baseline_label]
        if not matches:
            print(f"error: no baseline entry labelled '{baseline_label}'",
                  file=sys.stderr)
            return 1
        baseline = matches[-1]
    else:
        if not trajectory:
            print("error: baseline trajectory file has no entries",
                  file=sys.stderr)
            return 1
        baseline = trajectory[-1]

    shared = sorted(set(results) & set(baseline["results"]))
    if not shared:
        print("error: no benchmarks in common with the baseline",
              file=sys.stderr)
        return 1

    print(f"checking {len(shared)} benchmarks against baseline "
          f"'{baseline['label']}' (commit {baseline['commit']}, "
          f"tolerance {tolerance:.0%}):")
    regressions = []
    for name in shared:
        base = baseline["results"][name]
        ratio = results[name] / base
        flag = ""
        if ratio < 1.0 - tolerance:
            regressions.append(name)
            flag = "  REGRESSION"
        print(f"  {name:45s} {results[name] / 1e6:8.2f}M vs "
              f"{base / 1e6:8.2f}M  x{ratio:.2f}{flag}")
    for name in sorted(set(results) - set(baseline["results"])):
        print(f"  {name:45s} {results[name] / 1e6:8.2f}M  (new, not gated)")
    for name in sorted(set(baseline["results"]) - set(results)):
        print(f"  {name:45s} missing from this run (not gated)")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{tolerance:.0%}: {', '.join(regressions)}", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {tolerance:.0%}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory holding bench binaries")
    parser.add_argument("--label",
                        help="entry label, e.g. 'before' or 'after-slab-kernel' "
                             "(required unless --check)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_kernel.json"),
                        help="trajectory file to append to (or, with --check, "
                             "the baseline file to compare against)")
    parser.add_argument("--benchmarks", nargs="*", default=DEFAULT_BENCHMARKS,
                        help="bench binaries relative to the build dir")
    parser.add_argument("--min-time", default="",
                        help="forwarded as --benchmark_min_time in seconds (e.g. '0.01' for CI)")
    parser.add_argument("--filter", default="",
                        help="forwarded as --benchmark_filter")
    parser.add_argument("--no-compare", action="store_true",
                        help="skip the ratio table against the previous entry")
    parser.add_argument("--check", action="store_true",
                        help="compare against the stored baseline instead of "
                             "recording; exit non-zero on regression")
    parser.add_argument("--baseline-label", default="",
                        help="with --check: baseline entry label "
                             "(default: newest entry)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="with --check: allowed items/s drop before "
                             "failing (default 0.15 = 15%%)")
    args = parser.parse_args()
    if not args.check and not args.label:
        parser.error("--label is required unless --check is given")

    build_dir = pathlib.Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = REPO_ROOT / build_dir

    results = {}
    for rel in args.benchmarks:
        binary = build_dir / rel
        if not binary.exists():
            print(f"error: benchmark binary not found: {binary}", file=sys.stderr)
            return 1
        results.update(run_benchmark(binary, args.min_time, args.filter))
    if not results:
        print("error: no benchmark results collected", file=sys.stderr)
        return 1

    output = pathlib.Path(args.output)
    if args.check:
        trajectory = []
        if output.exists():
            trajectory = json.loads(output.read_text())["entries"]
        else:
            print(f"error: baseline file not found: {output}", file=sys.stderr)
            return 1
        return check_against_baseline(results, trajectory,
                                      args.baseline_label, args.tolerance)
    trajectory = []
    if output.exists():
        trajectory = json.loads(output.read_text())["entries"]

    # Machine/compiler provenance: numbers in the trajectory are only
    # comparable between entries recorded on the same machine with the same
    # toolchain. --check reads only label/commit/results, so older entries
    # without these fields stay valid.
    entry = {
        "label": args.label,
        "commit": git_commit(),
        "date": datetime.datetime.now(datetime.timezone.utc)
                .strftime("%Y-%m-%d"),
        "machine": socket.gethostname(),
        "cpu": cpu_model(),
        "compiler": compiler_info(build_dir),
        "results": results,
    }
    previous = trajectory[-1] if trajectory else None
    trajectory = [e for e in trajectory if e["label"] != args.label]
    trajectory.append(entry)
    output.write_text(json.dumps({"entries": trajectory}, indent=2) + "\n")
    print(f"recorded '{args.label}' ({len(results)} benchmarks) -> {output}",
          file=sys.stderr)

    if previous is not None and not args.no_compare:
        print(f"\nitems/s vs previous entry '{previous['label']}':")
        for name in sorted(results):
            if name in previous["results"]:
                ratio = results[name] / previous["results"][name]
                print(f"  {name:45s} {results[name] / 1e6:8.2f}M  x{ratio:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
