#!/usr/bin/env python3
"""Record microbenchmark results into a tracked trajectory file.

Runs the google-benchmark binaries in JSON mode and appends one labelled
entry (git commit, date, name -> items/s) to BENCH_kernel.json at the repo
root, so kernel performance is tracked across PRs rather than asserted in
prose. Re-running with an existing label replaces that entry in place, which
keeps the file idempotent under repeated local runs.

Usage:
    python3 bench/record_bench.py --build-dir build --label after-slab-kernel
    python3 bench/record_bench.py --label ci-smoke --min-time 0.01 \
        --output /tmp/bench_check.json --no-compare

Exit status is non-zero when a benchmark binary is missing or fails, so CI
can use this script as a smoke test for the perf tooling itself.
"""
import argparse
import datetime
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BENCHMARKS = ["bench/bench_micro_kernel", "bench/bench_micro_simulator"]


def git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def run_benchmark(binary: pathlib.Path, min_time: str, bench_filter: str) -> dict:
    cmd = [str(binary), "--benchmark_format=json"]
    if min_time:
        cmd.append(f"--benchmark_min_time={min_time}")
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    print(f"running {' '.join(cmd)}", file=sys.stderr)
    out = subprocess.run(cmd, capture_output=True, text=True, check=True)
    report = json.loads(out.stdout)
    results = {}
    for bench in report.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bench.get("run_type") == "aggregate":
            continue
        if "items_per_second" in bench:
            results[bench["name"]] = bench["items_per_second"]
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory holding bench binaries")
    parser.add_argument("--label", required=True,
                        help="entry label, e.g. 'before' or 'after-slab-kernel'")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_kernel.json"),
                        help="trajectory file to append to")
    parser.add_argument("--benchmarks", nargs="*", default=DEFAULT_BENCHMARKS,
                        help="bench binaries relative to the build dir")
    parser.add_argument("--min-time", default="",
                        help="forwarded as --benchmark_min_time in seconds (e.g. '0.01' for CI)")
    parser.add_argument("--filter", default="",
                        help="forwarded as --benchmark_filter")
    parser.add_argument("--no-compare", action="store_true",
                        help="skip the ratio table against the previous entry")
    args = parser.parse_args()

    build_dir = pathlib.Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = REPO_ROOT / build_dir

    results = {}
    for rel in args.benchmarks:
        binary = build_dir / rel
        if not binary.exists():
            print(f"error: benchmark binary not found: {binary}", file=sys.stderr)
            return 1
        results.update(run_benchmark(binary, args.min_time, args.filter))
    if not results:
        print("error: no benchmark results collected", file=sys.stderr)
        return 1

    output = pathlib.Path(args.output)
    trajectory = []
    if output.exists():
        trajectory = json.loads(output.read_text())["entries"]

    entry = {
        "label": args.label,
        "commit": git_commit(),
        "date": datetime.datetime.now(datetime.timezone.utc)
                .strftime("%Y-%m-%d"),
        "results": results,
    }
    previous = trajectory[-1] if trajectory else None
    trajectory = [e for e in trajectory if e["label"] != args.label]
    trajectory.append(entry)
    output.write_text(json.dumps({"entries": trajectory}, indent=2) + "\n")
    print(f"recorded '{args.label}' ({len(results)} benchmarks) -> {output}",
          file=sys.stderr)

    if previous is not None and not args.no_compare:
        print(f"\nitems/s vs previous entry '{previous['label']}':")
        for name in sorted(results):
            if name in previous["results"]:
                ratio = results[name] / previous["results"][name]
                print(f"  {name:45s} {results[name] / 1e6:8.2f}M  x{ratio:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
