// Ablation AB10: cost-aware provisioning on a live IaaS spot market.
//
// The paper prices capacity in raw VM-hours, deliberately "independent from
// pricing policies applied by specific IaaS Cloud vendors" (Section V-A).
// This ablation re-runs the web scenario against the src/market layer and
// asks what the adaptive mechanism's bill looks like when capacity is bought
// on a market — and what revocable spot capacity costs in QoS.
//
//   A. No-op guard. The market with a pure on-demand catalog at flat price
//      must be a strict no-op: every headline metric (including the executed
//      event count) bit-identical to a market-less run. The process exits
//      nonzero on any mismatch, so CI can pin the guarantee.
//   B. Spot-fraction sweep. Fixed bid, growing spot share of the commanded
//      pool: billed cost falls with the spot share while revocation kills
//      (and the requests they lose) rise — the cost/QoS frontier.
//   C. Bid sweep. Fixed spot share, growing bid: a low bid is revoked by
//      every minor price spike, a bid above the spike ceiling is never
//      revoked but pays spot's realized price.
//
// All spot runs enable the reconciler so revoked deficits are healed by
// on-demand fallback within one check interval (ISSUE 5 acceptance).
#include <cstdint>
#include <iostream>
#include <vector>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "util/cli.h"

using namespace cloudprov;

namespace {

ScenarioConfig base_scenario(bool smoke) {
  ScenarioConfig config = web_scenario(smoke ? 0.02 : 0.05);
  if (smoke) {
    // CI smoke: 6 simulated hours instead of a day.
    config.horizon = 6.0 * 3600.0;
    config.web.horizon = config.horizon;
  }
  return config;
}

ScenarioConfig market_scenario(bool smoke, double spot_frac, double bid) {
  ScenarioConfig config = base_scenario(smoke);
  config.market.enabled = true;
  config.market.acquisition.spot_fraction = spot_frac;
  config.market.acquisition.bid = bid;
  config.reconciler.enabled = true;
  config.reconciler.interval = 60.0;
  return config;
}

// The headline RunMetrics the no-op guard pins. Exact (bitwise) equality:
// a market that schedules zero events must not move a single double.
bool identical(const RunMetrics& a, const RunMetrics& b) {
  return a.generated == b.generated && a.completed == b.completed &&
         a.rejected == b.rejected && a.avg_response_time == b.avg_response_time &&
         a.p95_response_time == b.p95_response_time &&
         a.utilization == b.utilization && a.vm_hours == b.vm_hours &&
         a.qos_violations == b.qos_violations &&
         a.rejection_rate == b.rejection_rate &&
         a.avg_instances == b.avg_instances && a.max_instances == b.max_instances &&
         a.simulated_events == b.simulated_events;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Ablation: spot-market provisioning — no-op guard, spot-fraction sweep "
      "(billed cost vs QoS), and bid-strategy sweep (web scenario).");
  args.add_flag("seed", "42", "base random seed", "<int>");
  args.add_flag("smoke", "false",
                "short-horizon run for CI smoke testing", "<bool>");
  if (!args.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const bool smoke = args.get_bool("smoke");
  const PolicySpec policy = PolicySpec::adaptive();

  // --- A: pure on-demand market is a strict no-op ------------------------
  std::cout << "=== A. No-op guard: market off vs pure on-demand market ===\n\n";
  {
    RunMetrics off = run_scenario(base_scenario(smoke), policy, seed).metrics;
    ScenarioConfig on_demand = base_scenario(smoke);
    on_demand.market.enabled = true;  // flat catalog, spot_fraction 0, bid 0
    RunMetrics on = run_scenario(on_demand, policy, seed).metrics;
    off.policy += " market=off";
    on.policy += " market=od";
    print_policy_table(std::cout, {aggregate({off}), aggregate({on})});
    if (!identical(off, on)) {
      std::cout << "\nFAIL: pure on-demand market perturbed the simulation "
                   "(headline metrics differ)\n";
      return 1;
    }
    std::cout << "\nOK: headline metrics (incl. simulated_events="
              << off.simulated_events << ") bit-identical; billed cost "
              << fmt(on.billed_cost, 2) << " for " << on.on_demand_purchases
              << " on-demand purchases.\n";
  }

  // --- B: spot-fraction sweep at a fixed bid -----------------------------
  std::cout << "\n=== B. Spot-fraction sweep (bid 0.70/h, reconciler 60 s) "
               "===\n\n";
  {
    std::vector<RunMetrics> rows;
    const std::vector<double> fractions =
        smoke ? std::vector<double>{0.0, 0.5, 1.0}
              : std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0};
    for (const double frac : fractions) {
      ScenarioConfig config = market_scenario(smoke, frac, 0.70);
      RunMetrics m = run_scenario(config, policy, seed).metrics;
      m.policy += " spot=" + fmt(frac, 2);
      rows.push_back(std::move(m));
    }
    print_market_table(std::cout, rows);
    std::cout << "\nReading: the spot share trades billed cost against QoS —\n"
                 "each price spike past the bid revokes the whole spot slice,\n"
                 "draining VMs finish their in-flight requests inside the\n"
                 "notice window, stragglers are hard-killed (kills/lost\n"
                 "columns), and the reconciler heals the deficit on-demand.\n";
  }

  // --- C: bid-strategy sweep at a fixed spot share -----------------------
  std::cout << "\n=== C. Bid sweep (spot fraction 0.5) ===\n\n";
  {
    std::vector<RunMetrics> rows;
    const std::vector<double> bids =
        smoke ? std::vector<double>{0.45, 1.0}
              : std::vector<double>{0.45, 0.70, 1.0, 1.5};
    for (const double bid : bids) {
      ScenarioConfig config = market_scenario(smoke, 0.5, bid);
      RunMetrics m = run_scenario(config, policy, seed).metrics;
      m.policy += " bid=" + fmt(bid, 2);
      rows.push_back(std::move(m));
    }
    print_market_table(std::cout, rows);
    std::cout << "\nReading: a bid near the calm price is revoked by every\n"
                 "minor fluctuation; raising it buys stability but chases the\n"
                 "realized spot price upward — above the spike ceiling the\n"
                 "fleet is never revoked and the bill is pure market price.\n";
  }
  return 0;
}
