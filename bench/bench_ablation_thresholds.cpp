// Ablation AB3: the modeler's decision thresholds.
//
// The paper leaves the model-side rejection tolerance unstated (DESIGN.md);
// our default 0.28 together with the 0.8 utilization floor reproduces the
// paper's instance counts. This bench sweeps both knobs on the scientific
// scenario (paper scale — its 8 a.m./5 p.m. cliffs exercise both the growth
// and the bisection paths of Algorithm 1, unlike the web sinusoid where the
// pool drifts by one instance at a time and only the tolerance edge binds).
#include <iostream>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "util/cli.h"

using namespace cloudprov;

int main(int argc, char** argv) {
  ArgParser args(
      "Ablation: modeler rejection tolerance / utilization floor "
      "(scientific scenario, paper scale).");
  args.add_flag("scale", "1.0", "workload scale factor", "<double>");
  args.add_flag("reps", "5", "replications per setting", "<int>");
  args.add_flag("seed", "42", "base random seed", "<int>");
  if (!args.parse(argc, argv)) return 0;

  const auto reps = static_cast<std::size_t>(args.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "=== Ablation: modeler thresholds (scientific, scale "
            << args.get_double("scale") << ", " << reps << " reps) ===\n\n";

  TextTable table({"tolerance", "util_floor", "rejection", "utilization",
                   "vm_hours", "min_inst", "max_inst", "violations"});
  for (double tolerance : {0.05, 0.15, 0.28, 0.50}) {
    for (double floor : {0.60, 0.80}) {
      ScenarioConfig config = scientific_scenario(args.get_double("scale"));
      config.modeler.rejection_tolerance = tolerance;
      config.qos.min_utilization = floor;

      const auto runs =
          run_replications(config, PolicySpec::adaptive(), reps, seed);
      const AggregateMetrics agg = aggregate(runs);
      table.add_row({fmt(tolerance, 2), fmt(floor, 2),
                     fmt(agg.rejection_rate.mean, 4),
                     fmt(agg.utilization.mean, 3), fmt(agg.vm_hours.mean, 1),
                     fmt(agg.min_instances.mean, 1),
                     fmt(agg.max_instances.mean, 1),
                     fmt(agg.qos_violations.mean, 1)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the tolerance sets the scale-up edge (VM-hours fall and\n"
         "rejection rises as it loosens); the floor sets where the post-peak\n"
         "bisection descent lands (a 0.60 floor keeps larger pools after\n"
         "17:00). The paper-calibrated (0.28, 0.80) pair sits at the knee:\n"
         "near-zero rejection at ~0.78 utilization, matching Figure 6.\n";
  return 0;
}
