// Figure 5 reproduction: the web (Wikipedia) scenario.
//
// Runs the adaptive policy and the five static baselines over the one-week
// web workload and prints the paper's four panels as one table per run set:
//   (a) min/max application instances     (c) VM hours
//   (b) rejection + utilization rates     (d) avg response time +- stddev
//
// --scale multiplies arrival rates AND static pool sizes (see DESIGN.md);
// --scale 1 --reps 10 reproduces the paper's exact setup (~500M requests per
// replication; expect minutes of wall time per run on one core).
#include <fstream>
#include <iostream>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "util/cli.h"
#include "util/log.h"

using namespace cloudprov;

int main(int argc, char** argv) {
  ArgParser args(
      "Reproduces Figure 5 of Calheiros et al., ICPP 2011: adaptive vs "
      "static provisioning on the Wikipedia-model web workload.");
  args.add_flag("scale", "0.1",
                "workload + baseline scale factor (1.0 = paper scale)",
                "<double>");
  args.add_flag("reps", "2", "replications per policy (paper: 10)", "<int>");
  args.add_flag("parallelism", "1",
                "replication worker threads (0 = one per hardware thread); "
                "results are identical at any level",
                "<int>");
  args.add_flag("seed", "42", "base random seed", "<int>");
  args.add_flag("csv", "", "also write results to this CSV file", "<path>");
  args.add_flag("log", "warn", "log level (trace..off)", "<level>");
  args.add_flag("adaptive-only", "false", "skip the static baselines");
  args.add_flag("statics", "",
                "comma-separated paper-scale static sizes (default: 50,75,100,125,150)",
                "<list>");
  if (!args.parse(argc, argv)) return 0;
  Logger::instance().set_level(Logger::parse_level(args.get_string("log")));

  const double scale = args.get_double("scale");
  const auto reps = static_cast<std::size_t>(args.get_int("reps"));
  const auto parallelism = static_cast<std::size_t>(args.get_int("parallelism"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const ScenarioConfig config = web_scenario(scale);
  std::vector<PolicySpec> policies{PolicySpec::adaptive()};
  if (!args.get_bool("adaptive-only")) {
    std::vector<std::size_t> sizes = paper_static_sizes(WorkloadKind::kWeb);
    if (const std::string list = args.get_string("statics"); !list.empty()) {
      sizes.clear();
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string token =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        sizes.push_back(static_cast<std::size_t>(std::stoul(token)));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }
    for (std::size_t n : sizes) policies.push_back(PolicySpec::fixed(n));
  }

  std::cout << "=== Figure 5: web scenario (scale " << scale << ", " << reps
            << " reps) ===\n\n";

  std::vector<AggregateMetrics> results;
  double adaptive_vm_hours = 0.0;
  double adaptive_max_m = 0.0;
  double largest_static_vm_hours = 0.0;
  double largest_static_util = 0.0;
  for (const PolicySpec& policy : policies) {
    const auto runs = run_replications(config, policy, reps, seed,
                                       [&](const RunMetrics& m) {
                                         std::cerr << "  " << m.policy
                                                   << " seed=" << m.seed
                                                   << " done in " << fmt(m.wall_seconds, 1)
                                                   << "s (" << m.generated
                                                   << " requests)\n";
                                       },
                                       parallelism);
    const AggregateMetrics agg = aggregate(runs);
    if (policy.kind == PolicySpec::Kind::kAdaptive) {
      adaptive_vm_hours = agg.vm_hours.mean;
      adaptive_max_m = agg.max_instances.mean;
    } else if (policy.static_instances == 150) {
      largest_static_vm_hours = agg.vm_hours.mean;
      largest_static_util = agg.utilization.mean;
    }
    results.push_back(agg);
  }

  print_policy_table(std::cout, results);

  if (!args.get_bool("adaptive-only") && largest_static_vm_hours > 0.0) {
    std::cout << "\nHeadline claims (Section V-C1; shape, not absolute numbers):\n";
    print_claim(std::cout,
                "VM-hour saving vs rejection-free static (paper: ~26%)", 0.26,
                1.0 - adaptive_vm_hours / largest_static_vm_hours);
    print_claim(std::cout,
                "peak-capable static utilization (paper: <60%)", 0.60,
                largest_static_util);
    print_claim(std::cout, "adaptive peak instances (scaled paper value 153)",
                153.0 * scale, adaptive_max_m, 1);
  }

  if (const std::string path = args.get_string("csv"); !path.empty()) {
    std::ofstream out(path);
    write_policy_csv(out, results);
    std::cout << "\nCSV written to " << path << '\n';
  }
  return 0;
}
