// Figure 3 + Table II reproduction: the web workload's arrival-rate curve.
//
// Prints (a) Table II — the per-weekday min/max requests/second driving
// Equation 2 — and (b) the Figure 3 series: realized average requests/second
// received by the data center over one simulated week, next to the
// analytical Equation-2 value, so the generator can be eyeballed against the
// paper's plot.
#include <fstream>
#include <iostream>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "util/cli.h"
#include "util/csv.h"

using namespace cloudprov;

int main(int argc, char** argv) {
  ArgParser args(
      "Reproduces Figure 3 and Table II of Calheiros et al., ICPP 2011: the "
      "Wikipedia-derived web workload model.");
  args.add_flag("scale", "0.1", "workload scale factor", "<double>");
  args.add_flag("reps", "3", "replications to average (paper plots the mean)",
                "<int>");
  args.add_flag("window", "3600", "averaging window in seconds", "<double>");
  args.add_flag("seed", "42", "base random seed", "<int>");
  args.add_flag("csv", "", "write the full series to this CSV file", "<path>");
  if (!args.parse(argc, argv)) return 0;

  const double scale = args.get_double("scale");
  const ScenarioConfig config = web_scenario(scale);

  std::cout << "=== Table II: requests per second on each week day ===\n\n";
  TextTable table({"week day", "maximum", "minimum"});
  static constexpr const char* kDays[] = {"Monday",   "Tuesday", "Wednesday",
                                          "Thursday", "Friday",  "Saturday",
                                          "Sunday"};
  for (std::size_t d = 0; d < 7; ++d) {
    table.add_row({kDays[d], fmt(config.web.week[d].max * scale, 0),
                   fmt(config.web.week[d].min * scale, 0)});
  }
  table.print(std::cout);

  const double window = args.get_double("window");
  const auto reps = static_cast<std::size_t>(args.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto curve = workload_rate_curve(config, window, reps, seed);

  const WebWorkload model(config.web);
  std::cout << "\n=== Figure 3: average requests/second over one week "
            << "(scale " << scale << ", " << window << " s windows) ===\n\n";
  TextTable series({"t (h)", "realized req/s", "Eq.2 req/s", "bar"});
  double peak = 0.0;
  for (const auto& point : curve) peak = std::max(peak, point.value);
  for (std::size_t i = 0; i < curve.size(); i += (curve.size() > 60 ? 4u : 1u)) {
    const auto& point = curve[i];
    const double analytic = model.expected_rate(point.time + window / 2.0);
    const auto bar_len = static_cast<std::size_t>(point.value / peak * 40.0);
    series.add_row({fmt(point.time / 3600.0, 0), fmt(point.value, 2),
                    fmt(analytic, 2), std::string(bar_len, '#')});
  }
  series.print(std::cout);

  // Shape checks the caption implies: weekday peaks exceed weekend peaks;
  // peak-to-trough ratio ~ Rmax/Rmin.
  const double monday_peak = model.expected_rate(12 * 3600.0);
  const double sunday_peak = model.expected_rate((6 * 24 + 12) * 3600.0);
  std::cout << '\n';
  print_claim(std::cout, "Tuesday/Monday peak ratio (paper: 1200/1000)", 1.2,
              model.expected_rate((24 + 12) * 3600.0) / monday_peak);
  print_claim(std::cout, "Sunday peak vs Monday peak (paper: 900/1000)", 0.9,
              sunday_peak / monday_peak);

  if (const std::string path = args.get_string("csv"); !path.empty()) {
    std::ofstream out(path);
    CsvWriter csv(out);
    csv.write_header({"time_s", "realized_rate", "analytic_rate"});
    for (const auto& point : curve) {
      csv.write_row({CsvWriter::format(point.time), CsvWriter::format(point.value),
                     CsvWriter::format(
                         model.expected_rate(point.time + window / 2.0))});
    }
    std::cout << "CSV written to " << path << '\n';
  }
  return 0;
}
