// Microbenchmarks MB3: the analytic layer — queueing solvers and Algorithm 1.
//
// The paper argues its models are "simple and still efficient"; Algorithm 1
// runs on every workload-analyzer alert (every 60 s of simulated time), so
// its cost bounds how fine the provisioning cadence can be in a real
// deployment. Also covers the complexity claim of Section IV-B: computing
// time dominated by the repeat loop, constant work per iteration.
#include <benchmark/benchmark.h>

#include "core/performance_modeler.h"
#include "queueing/birth_death.h"
#include "queueing/erlang.h"
#include "queueing/mm1k.h"
#include "queueing/mmc.h"

namespace cloudprov {
namespace {

void BM_Mm1kSolve(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(queueing::mm1k(8.0, 10.0, k));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Mm1kSolve)->Arg(2)->Arg(16)->Arg(128);

void BM_ErlangB(benchmark::State& state) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queueing::erlang_b(0.8 * static_cast<double>(servers), servers));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ErlangB)->Arg(10)->Arg(100)->Arg(1000);

void BM_BirthDeathSolve(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queueing::birth_death_queue_metrics(80.0, 1.0, 100, capacity));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BirthDeathSolve)->Arg(200)->Arg(2000)->Arg(20000);

void BM_Algorithm1(benchmark::State& state) {
  // Full Algorithm 1 run at the paper's web-peak operating point, seeded
  // from different starting pools (worst case: far-off start).
  QosTargets qos;
  qos.max_response_time = 0.250;
  qos.min_utilization = 0.80;
  ModelerConfig config;
  config.max_vms = 8000;
  PerformanceModeler modeler(qos, config);
  const auto start = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(modeler.required_instances(start, 1200.0, 0.105, 2));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Algorithm1)->Arg(1)->Arg(153)->Arg(8000);

void BM_Algorithm1IterationScaling(benchmark::State& state) {
  // Section IV-B claims the loop count scales with the search range
  // (log-like via bisection + 1.5x growth). Measure iterations as a counter.
  QosTargets qos;
  qos.max_response_time = 0.250;
  qos.min_utilization = 0.80;
  ModelerConfig config;
  config.max_vms = static_cast<std::size_t>(state.range(0));
  PerformanceModeler modeler(qos, config);
  std::size_t iterations = 0;
  std::size_t calls = 0;
  for (auto _ : state) {
    const ModelerDecision d = modeler.required_instances(1, 1200.0, 0.105, 2);
    iterations += d.iterations;
    ++calls;
    benchmark::DoNotOptimize(d.instances);
  }
  state.counters["iters_per_call"] =
      static_cast<double>(iterations) / static_cast<double>(calls);
}
BENCHMARK(BM_Algorithm1IterationScaling)->Arg(200)->Arg(2000)->Arg(20000);

}  // namespace
}  // namespace cloudprov
