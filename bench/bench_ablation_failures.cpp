// Ablation AB6: robustness under fault injection ("uncertain behavior",
// Section I — motivated but not evaluated by the paper).
//
// Three experiments on the scientific scenario, all through the standard
// run_scenario harness (so fault streams are seeded reproducibly and
// independently of the workload):
//
//   A. Stochastic VM-crash MTBF sweep. The adaptive mechanism implicitly
//      heals the pool at its next provisioning cycle; adding the reconciler
//      shrinks the repair window to its check interval; the static baseline
//      without a reconciler decays permanently.
//   B. Correlated host crashes (fault domains). Five hosts of a deliberately
//      small 20-host data center crash mid-run, each taking every VM placed
//      on it. The reconciler restores the commanded pool within one check
//      interval; the bare static pool shows the loss in final_m.
//   C. Compound failure: VM crashes + boot failures + straggler boots +
//      boot-timeout watchdog + a one-hour IaaS allocation outage. Heals
//      attempted during the outage fall short, driving bounded
//      backoff retries and (if the outage outlasts the budget) one abort —
//      visible in the retries/aborts columns — with full recovery after the
//      outage lifts.
#include <iostream>
#include <vector>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "util/cli.h"

using namespace cloudprov;

namespace {

ScenarioConfig base_scenario(bool smoke) {
  ScenarioConfig config = scientific_scenario(1.0);
  if (smoke) {
    // CI smoke: 4 simulated hours instead of a day.
    config.horizon = 4.0 * 3600.0;
    config.bot.horizon = config.horizon;
  }
  return config;
}

RunMetrics run_one(ScenarioConfig config, const PolicySpec& policy,
                   bool reconcile, std::uint64_t seed) {
  config.reconciler.enabled = reconcile;
  RunMetrics m = run_scenario(config, policy, seed).metrics;
  if (reconcile) m.policy += "+rec";
  return m;
}

std::vector<RunMetrics> run_policy_grid(const ScenarioConfig& config,
                                        std::uint64_t seed) {
  std::vector<RunMetrics> rows;
  for (const bool adaptive : {true, false}) {
    const PolicySpec policy =
        adaptive ? PolicySpec::adaptive() : PolicySpec::fixed(75);
    for (const bool reconcile : {false, true}) {
      rows.push_back(run_one(config, policy, reconcile, seed));
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Ablation: fault-domain failures and self-healing, adaptive vs static "
      "with and without the reconciler (scientific scenario, paper scale).");
  args.add_flag("seed", "42", "base random seed", "<int>");
  args.add_flag("smoke", "false",
                "short-horizon run for CI smoke testing", "<bool>");
  if (!args.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const bool smoke = args.get_bool("smoke");

  // --- A: stochastic VM-crash MTBF sweep ---------------------------------
  std::cout << "=== A. VM-crash MTBF sweep (exponential per-instance "
               "lifetimes) ===\n\n";
  {
    std::vector<RunMetrics> rows;
    const std::vector<double> mtbf_hours =
        smoke ? std::vector<double>{3.0} : std::vector<double>{48.0, 12.0, 3.0};
    // Fault-free reference rows first.
    for (RunMetrics& m : run_policy_grid(base_scenario(smoke), seed)) {
      m.policy += " mtbf=inf";
      rows.push_back(std::move(m));
    }
    for (const double mtbf : mtbf_hours) {
      ScenarioConfig config = base_scenario(smoke);
      config.fault.vm_mtbf = mtbf * 3600.0;
      for (RunMetrics& m : run_policy_grid(config, seed)) {
        m.policy += " mtbf=" + fmt(mtbf, 0) + "h";
        rows.push_back(std::move(m));
      }
    }
    print_fault_table(std::cout, rows);
  }

  // --- B: correlated host crashes (fault domains) ------------------------
  std::cout << "\n=== B. Correlated host crashes (5 of 20 hosts at t=T/4) "
               "===\n\n";
  {
    ScenarioConfig config = base_scenario(smoke);
    // Small data center so instances concentrate: 20 hosts x 8 cores = 160
    // VM slots; losing 5 hosts still leaves room to re-place the pool.
    config.datacenter.host_count = 20;
    // Offset from the reconciler's 30 s tick grid so the repair window is
    // visible in mttr_s instead of a same-timestamp heal.
    const SimTime crash_time = config.horizon / 4.0 + 7.0;
    for (std::size_t h = 0; h < 5; ++h) {
      config.fault.scripted.push_back(
          {ScriptedFault::Kind::kHostCrash, crash_time, h});
    }
    print_fault_table(std::cout, run_policy_grid(config, seed));
    std::cout << "\nReading: each crashed host kills every VM placed on it.\n"
                 "With the reconciler, the commanded pool is restored within\n"
                 "one check interval (30 s; see mttr_s); the bare static\n"
                 "pool never heals (final_m stays short by the killed VMs).\n"
                 "The adaptive loop heals by itself at its next analysis\n"
                 "tick, so +rec mainly tightens its repair time.\n";
  }

  // --- C: compound failure: outage + boot faults + crashes ---------------
  std::cout << "\n=== C. Allocation outage + boot failures + stragglers + "
               "watchdog ===\n\n";
  {
    ScenarioConfig config = base_scenario(smoke);
    config.datacenter.vm_boot_delay = 60.0;
    config.boot_timeout = 300.0;
    config.fault.vm_mtbf = 2.0 * 3600.0;
    config.fault.boot_fail_prob = 0.15;
    config.fault.straggler_prob = 0.15;
    const SimTime outage_start = config.horizon / 3.0;
    config.fault.outages.push_back({outage_start, outage_start + 3600.0});
    print_fault_table(std::cout, run_policy_grid(config, seed));
    std::cout
        << "\nReading: during the one-hour outage create_vm fails, so heals\n"
           "fall short and the reconciler escalates through its bounded\n"
           "exponential backoff (retries column); if the outage outlasts the\n"
           "retry budget it aborts once and degrades to plain interval\n"
           "cadence — no retry storm, no deadlock — then restores the pool\n"
           "when the outage lifts. Boot failures and timed-out stragglers\n"
           "show up in the boot/timeout columns and are replaced the same\n"
           "way as crashes.\n";
  }
  return 0;
}
