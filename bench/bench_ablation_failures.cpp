// Ablation AB6: robustness to instance failures ("uncertain behavior",
// Section I — motivated but not evaluated by the paper).
//
// Sweeps the per-instance MTBF on the scientific scenario. The adaptive
// mechanism implicitly heals the pool: every analyzer alert re-runs
// Algorithm 1 and scale_to() replaces crashed capacity within one analysis
// interval. The static baseline has no such loop, so each crash permanently
// shrinks its pool.
#include <iostream>
#include <memory>

#include "cloud/broker.h"
#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "core/failure_injector.h"
#include "core/provisioning_policy.h"
#include "experiment/report.h"
#include "experiment/scenario.h"
#include "predict/periodic_profile.h"
#include "util/cli.h"

using namespace cloudprov;

namespace {

struct Row {
  std::string policy;
  double mtbf_hours;
  std::uint64_t failures;
  std::uint64_t lost;
  double rejection;
  double final_instances;
};

Row run_once(const ScenarioConfig& config, bool adaptive, double mtbf_hours,
             std::uint64_t seed) {
  Simulation sim;
  Datacenter datacenter(sim, config.datacenter,
                        std::make_unique<LeastLoadedPlacement>());
  ProvisionerConfig prov_config;
  prov_config.initial_service_time_estimate = config.initial_service_time_estimate;
  ApplicationProvisioner provisioner(sim, datacenter, config.qos, prov_config);
  BotWorkload workload(config.bot);
  Broker broker(sim, workload, provisioner, Rng(seed));

  std::unique_ptr<ProvisioningPolicy> policy;
  if (adaptive) {
    policy = std::make_unique<AdaptivePolicy>(
        sim,
        std::make_shared<PeriodicProfilePredictor>(
            bot_profile_predictor(config.bot)),
        config.modeler, config.analyzer);
  } else {
    policy = std::make_unique<StaticPolicy>(75);
  }
  FailureConfig fconfig;
  // mtbf_hours == 0 means "no failures": keep a valid config, never start.
  fconfig.mtbf_per_instance = (mtbf_hours > 0.0 ? mtbf_hours : 1.0) * 3600.0;
  FailureInjector injector(sim, provisioner, fconfig, Rng(seed + 1));

  policy->attach(provisioner);
  broker.start();
  if (mtbf_hours > 0.0) injector.start();
  sim.run(config.horizon);

  return Row{policy->name(), mtbf_hours, injector.failures_injected(),
             provisioner.lost_to_failures(), provisioner.rejection_rate(),
             static_cast<double>(provisioner.live_instances())};
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Ablation: instance-failure robustness, adaptive vs static "
      "(scientific scenario, paper scale).");
  args.add_flag("seed", "42", "random seed", "<int>");
  if (!args.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const ScenarioConfig config = scientific_scenario(1.0);
  std::cout << "=== Ablation: instance failures (scientific, one day) ===\n\n";
  TextTable table({"policy", "MTBF (h)", "failures", "lost_reqs", "rejection",
                   "final_pool"});
  for (double mtbf : {0.0, 48.0, 12.0, 3.0}) {
    for (bool adaptive : {true, false}) {
      const Row row = run_once(config, adaptive, mtbf, seed);
      table.add_row({row.policy, mtbf == 0.0 ? "inf" : fmt(row.mtbf_hours, 0),
                     std::to_string(row.failures), std::to_string(row.lost),
                     fmt(row.rejection, 4), fmt(row.final_instances, 0)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the adaptive loop replaces crashed instances at the next\n"
         "analysis tick, so rejection stays near baseline even at MTBF = 3 h\n"
         "(~hundreds of crashes/day across the pool); the static pool decays\n"
         "monotonically and its rejection grows with every failure. Lost\n"
         "in-flight requests (~1 per crash during peak) are intrinsic to\n"
         "crash-failures and affect both policies alike.\n";
  return 0;
}
