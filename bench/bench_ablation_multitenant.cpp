// Ablation AB13: sharded multi-tenant scale-out.
//
// One datacenter's worth of shared instance capacity, N independent SaaS
// tenants (mixed web serving and BoT/scientific, jittered QoS targets), one
// shared spot market. Tenants are partitioned across worker shards, each
// shard running its own event kernel; a conservative barrier at every 60 s
// analysis window runs the deterministic capacity arbiter (ascending
// tenant-id order), so results are bit-identical for EVERY shard count.
//
// Two questions, two sections:
//
//   scaling     the same population executed at shard counts 1/2/4/8 —
//               identical answers, different wall clock. Speedup tracks the
//               machine's cores (flat on a single-core host; the golden
//               tests still prove the threading correct there).
//   contention  shared capacity squeezed from ample to starved — the
//               arbiter's clip/denial counters and the tenants' QoS
//               degradation quantify multi-tenant interference that a
//               single-application evaluation (the paper's setting) never
//               sees.
//
// --smoke (CI): 64 tenants, shorter horizon, asserts bit-identity across
// the shard sweep, arbiter-counter conservation, and real contention in the
// starved row; exits non-zero on violation.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/multi_tenant.h"
#include "experiment/report.h"
#include "util/cli.h"

using namespace cloudprov;

namespace {

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Bit-level equality on the fields that must not depend on shard count.
bool tenants_identical(const MultiTenantResult& a, const MultiTenantResult& b,
                       std::string& why) {
  if (a.tenants.size() != b.tenants.size()) {
    why = "tenant count";
    return false;
  }
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    const RunMetrics& x = a.tenants[i].metrics;
    const RunMetrics& y = b.tenants[i].metrics;
    const bool same =
        x.generated == y.generated && x.accepted == y.accepted &&
        x.rejected == y.rejected && x.completed == y.completed &&
        x.qos_violations == y.qos_violations &&
        double_bits(x.avg_response_time) == double_bits(y.avg_response_time) &&
        double_bits(x.p99_response_time) == double_bits(y.p99_response_time) &&
        double_bits(x.vm_hours) == double_bits(y.vm_hours) &&
        double_bits(x.billed_cost) == double_bits(y.billed_cost) &&
        x.capacity_clips == y.capacity_clips &&
        x.capacity_denied == y.capacity_denied;
    if (!same) {
      why = "tenant " + std::to_string(i);
      return false;
    }
  }
  if (a.grant_clips != b.grant_clips ||
      a.instances_denied != b.instances_denied ||
      a.peak_granted != b.peak_granted ||
      a.simulated_events != b.simulated_events) {
    why = "arbiter/event totals";
    return false;
  }
  return true;
}

MultiTenantConfig population(std::size_t tenants, std::uint64_t seed,
                             SimTime horizon, double scale,
                             std::size_t capacity) {
  MultiTenantConfig config;
  config.tenants = tenants;
  config.seed = seed;
  config.horizon = horizon;
  config.window = 60.0;
  config.bot_fraction = 0.25;
  config.tenant_scale = scale;
  config.capacity = capacity;
  config.market_enabled = true;
  config.spot_fraction = 0.3;
  config.bid = 0.7;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Ablation: sharded multi-tenant scale-out (N tenants, shared capacity, "
      "barrier-synced windows).");
  args.add_flag("tenants", "64", "tenant population size", "<int>");
  args.add_flag("hours", "2", "simulated hours", "<int>");
  args.add_flag("scale", "0.01", "mean per-tenant workload scale", "<double>");
  args.add_flag("seed", "42", "master seed", "<int>");
  args.add_flag("smoke", "false",
                "CI smoke mode: short horizon, assert shard-count "
                "bit-identity and contention, exit non-zero on violation");
  if (!args.parse(argc, argv)) return 0;
  const auto tenants = static_cast<std::size_t>(args.get_int("tenants"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const bool smoke = args.get_bool("smoke");
  const double scale = args.get_double("scale");
  const SimTime horizon =
      smoke ? 1200.0 : static_cast<double>(args.get_int("hours")) * 3600.0;

  std::cout << "=== Ablation: multi-tenant sharding (" << tenants
            << " tenants, mixed web/BoT, shared market) ===\n\n";

  // --- Section 1: shard-count sweep on an amply provisioned population ---
  const MultiTenantConfig ample =
      population(tenants, seed, horizon, scale, 4 * tenants);
  std::vector<MultiTenantResult> sweep;
  const std::vector<std::size_t> shard_counts{1, 2, 4, 8};
  for (const std::size_t shards : shard_counts) {
    MultiTenantOptions options;
    options.shards = shards;
    sweep.push_back(run_multi_tenant(ample, options));
  }

  TextTable scaling({"shards", "wall_s", "speedup", "events/s", "completed",
                     "avg_resp", "identical"});
  int failures = 0;
  for (const MultiTenantResult& row : sweep) {
    std::string why;
    const bool identical = tenants_identical(sweep.front(), row, why);
    if (!identical) {
      std::cerr << "DIVERGED at " << row.shards << " shards: " << why << '\n';
      ++failures;
    }
    scaling.add_row(
        {std::to_string(row.shards), fmt(row.wall_seconds, 3),
         fmt(sweep.front().wall_seconds / row.wall_seconds, 2),
         fmt(static_cast<double>(row.simulated_events) / row.wall_seconds, 0),
         std::to_string(row.aggregate.completed),
         fmt(row.aggregate.avg_response_time, 4), identical ? "yes" : "NO"});
  }
  scaling.print(std::cout);
  std::cout << "\nSpeedup is wall-clock and bounded by physical cores; the\n"
               "'identical' column is the point — per-tenant metrics and\n"
               "arbiter history match shards=1 bit for bit.\n\n";

  // --- Section 2: capacity squeeze at a fixed shard count -----------------
  std::cout << "--- shared-capacity squeeze (" << tenants
            << " tenants, 2 shards) ---\n";
  TextTable squeeze({"capacity", "peak_granted", "clips", "denied",
                     "qos_violations", "rejection", "avg_resp", "util"});
  std::vector<MultiTenantResult> rows;
  const std::vector<std::size_t> capacities{4 * tenants, 2 * tenants, tenants,
                                            tenants / 2};
  for (const std::size_t capacity : capacities) {
    const MultiTenantConfig config =
        population(tenants, seed, horizon, scale, capacity);
    MultiTenantOptions options;
    options.shards = 2;
    rows.push_back(run_multi_tenant(config, options));
    const MultiTenantResult& r = rows.back();
    squeeze.add_row({std::to_string(capacity), std::to_string(r.peak_granted),
                     std::to_string(r.grant_clips),
                     std::to_string(r.instances_denied),
                     std::to_string(r.aggregate.qos_violations),
                     fmt(r.aggregate.rejection_rate, 4),
                     fmt(r.aggregate.avg_response_time, 4),
                     fmt(r.aggregate.utilization, 3)});
  }
  squeeze.print(std::cout);
  std::cout << "\nReading: with ample capacity the arbiter never clips; as\n"
               "shared capacity tightens, grants saturate at the ceiling,\n"
               "denied instance-rounds accumulate, and tenant QoS erodes —\n"
               "interference between tenants, not within any one workload.\n";

  if (!smoke) return failures == 0 ? 0 : 1;

  const auto check = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "SMOKE FAIL: " << what << '\n';
      ++failures;
    }
  };
  check(sweep.front().aggregate.completed > 0,
        "population should complete work");
  check(sweep.front().windows > 0, "windows should have committed");
  for (const MultiTenantResult& row : sweep) {
    check(row.windows == sweep.front().windows,
          "window count must not depend on shard count");
  }
  const MultiTenantResult& ample_row = rows.front();
  const MultiTenantResult& starved = rows.back();
  check(ample_row.instances_denied == 0,
        "ample capacity should never deny instances");
  check(starved.instances_denied > 0,
        "starved capacity should deny instances");
  check(starved.grant_clips > 0, "starved capacity should clip grants");
  check(starved.peak_granted <= starved.capacity,
        "grants must never exceed shared capacity");
  std::uint64_t tenant_denied = 0;
  for (const TenantResult& tenant : starved.tenants) {
    tenant_denied += tenant.metrics.capacity_denied;
  }
  check(tenant_denied == starved.instances_denied,
        "per-tenant denial counters must sum to the arbiter total");
  // Starvation shows up as admission rejections (requests denied a slot),
  // not as served-request latency: with the pool pinned small, the requests
  // that ARE admitted see a short queue.
  check(starved.aggregate.rejection_rate >
            2.0 * ample_row.aggregate.rejection_rate,
        "starvation should drive the aggregate rejection rate up");

  if (failures != 0) return 1;
  std::cout << "\nsmoke checks passed\n";
  return 0;
}
