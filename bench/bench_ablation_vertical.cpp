// Ablation AB5: horizontal vs vertical scaling (future work, Section VII:
// "support not only changes in number of VMs but also changes in each VM
// capacity").
//
// Runs the scientific scenario under (a) the paper's horizontal adaptive
// policy and (b) the VerticalScalingPolicy extension, which keeps a fixed
// pool and resizes each VM's capacity. Cost is compared in capacity-hours:
// for horizontal scaling that equals VM-hours (unit-speed VMs); for vertical
// scaling it is the integral of pool speed over time.
#include <cstdio>
#include <iostream>
#include <memory>

#include "cloud/broker.h"
#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "core/vertical_policy.h"
#include "experiment/report.h"
#include "experiment/scenario.h"
#include "predict/periodic_profile.h"
#include "util/cli.h"

using namespace cloudprov;

namespace {

struct Row {
  std::string policy;
  double rejection = 0.0;
  double capacity_hours = 0.0;
  double avg_response = 0.0;
  double violations = 0.0;
  std::size_t max_instances = 0;
};

Row run_horizontal(const ScenarioConfig& config, std::uint64_t seed) {
  Simulation sim;
  Datacenter datacenter(sim, config.datacenter,
                        std::make_unique<LeastLoadedPlacement>());
  ProvisionerConfig prov_config;
  prov_config.initial_service_time_estimate = config.initial_service_time_estimate;
  ApplicationProvisioner provisioner(sim, datacenter, config.qos, prov_config);
  BotWorkload workload(config.bot);
  Broker broker(sim, workload, provisioner, Rng(seed));
  auto predictor = std::make_shared<PeriodicProfilePredictor>(
      bot_profile_predictor(config.bot));
  AdaptivePolicy policy(sim, predictor, config.modeler, config.analyzer);
  policy.attach(provisioner);
  broker.start();
  sim.run(config.horizon);
  TimeWeightedValue history = provisioner.instance_history();
  history.advance(sim.now());
  return Row{"Horizontal (paper)", provisioner.rejection_rate(),
             datacenter.vm_hours(),
             provisioner.response_time_stats().mean(),
             static_cast<double>(provisioner.qos_violations()),
             static_cast<std::size_t>(history.max())};
}

Row run_vertical(const ScenarioConfig& config, std::size_t instances,
                 std::uint64_t seed) {
  Simulation sim;
  Datacenter datacenter(sim, config.datacenter,
                        std::make_unique<LeastLoadedPlacement>());
  ProvisionerConfig prov_config;
  prov_config.initial_service_time_estimate = config.initial_service_time_estimate;
  ApplicationProvisioner provisioner(sim, datacenter, config.qos, prov_config);
  BotWorkload workload(config.bot);
  Broker broker(sim, workload, provisioner, Rng(seed));
  auto predictor = std::make_shared<PeriodicProfilePredictor>(
      bot_profile_predictor(config.bot));
  VerticalScalingConfig vconfig;
  vconfig.instances = instances;
  vconfig.target_utilization = 0.8;
  vconfig.base_service_time = config.initial_service_time_estimate;
  vconfig.min_speed = 0.1;
  vconfig.max_speed = 8.0;
  VerticalScalingPolicy policy(sim, predictor, vconfig, config.analyzer);
  policy.attach(provisioner);
  broker.start();
  sim.run(config.horizon);

  // Capacity-hours: m * integral of speed dt.
  TimeWeightedValue speed_integral(0.0, 1.0);
  for (const auto& record : policy.history()) {
    speed_integral.update(record.time, record.speed);
  }
  speed_integral.advance(config.horizon);
  const double capacity_hours = static_cast<double>(instances) *
                                speed_integral.integral() / 3600.0;
  return Row{"Vertical-" + std::to_string(instances),
             provisioner.rejection_rate(), capacity_hours,
             provisioner.response_time_stats().mean(),
             static_cast<double>(provisioner.qos_violations()), instances};
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Ablation: horizontal (paper) vs vertical (future-work) scaling on the "
      "scientific scenario.");
  args.add_flag("seed", "42", "random seed", "<int>");
  if (!args.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const ScenarioConfig config = scientific_scenario(1.0);
  std::vector<Row> rows;
  rows.push_back(run_horizontal(config, seed));
  for (std::size_t m : {20u, 40u, 80u}) {
    rows.push_back(run_vertical(config, m, seed));
  }

  std::cout << "=== Ablation: horizontal vs vertical scaling (scientific, "
               "paper scale) ===\n\n";
  TextTable table({"policy", "rejection", "capacity_hours", "avg_resp_s",
                   "violations", "instances"});
  for (const Row& row : rows) {
    table.add_row({row.policy, fmt(row.rejection, 4), fmt(row.capacity_hours, 1),
                   fmt(row.avg_response, 1), fmt(row.violations, 0),
                   std::to_string(row.max_instances)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: vertical scaling is QoS-viable only above a speed floor\n"
         "(base service time / Ts, enforced by the policy: a slower VM could\n"
         "not finish even one request within Ts). That floor makes large\n"
         "fixed pools waste capacity off-peak (Vertical-80 burns ~45% more\n"
         "capacity-hours than horizontal), while small fixed pools lack\n"
         "admission slots for bursts and ride speed transitions with in-queue\n"
         "work (occasional violations at Vertical-20). Horizontal scaling\n"
         "adjusts slots and capacity together — why the paper scales instance\n"
         "counts and leaves capacity scaling as future work.\n";
  return 0;
}
