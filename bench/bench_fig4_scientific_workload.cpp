// Figure 4 reproduction: the scientific (BoT) workload's arrival-rate curve.
//
// Prints the realized average requests/second received by the data center
// over one simulated day next to the model's expected rate. The paper's plot
// shows the dense 8 a.m.-5 p.m. peak plateau (~0.2 req/s with high
// variability) over a sparse off-peak floor.
#include <fstream>
#include <iostream>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "util/cli.h"
#include "util/csv.h"

using namespace cloudprov;

int main(int argc, char** argv) {
  ArgParser args(
      "Reproduces Figure 4 of Calheiros et al., ICPP 2011: the Grid "
      "Workloads Archive Bag-of-Tasks workload model.");
  args.add_flag("scale", "1.0", "workload scale factor", "<double>");
  args.add_flag("reps", "10", "replications to average", "<int>");
  args.add_flag("window", "1800", "averaging window in seconds", "<double>");
  args.add_flag("seed", "42", "base random seed", "<int>");
  args.add_flag("csv", "", "write the full series to this CSV file", "<path>");
  if (!args.parse(argc, argv)) return 0;

  const double scale = args.get_double("scale");
  const ScenarioConfig config = scientific_scenario(scale);
  const double window = args.get_double("window");
  const auto reps = static_cast<std::size_t>(args.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const auto curve = workload_rate_curve(config, window, reps, seed);
  const BotWorkload model(config.bot);

  std::cout << "=== Figure 4: average requests/second over one day (scale "
            << scale << ", " << window << " s windows, " << reps
            << " reps) ===\n\n";
  TextTable series({"t (h)", "realized req/s", "model req/s", "bar"});
  double peak_value = 0.0;
  for (const auto& point : curve) peak_value = std::max(peak_value, point.value);
  for (const auto& point : curve) {
    const double analytic = model.expected_rate(point.time + window / 2.0);
    const auto bar_len = peak_value > 0.0
                             ? static_cast<std::size_t>(point.value / peak_value * 40.0)
                             : 0;
    series.add_row({fmt(point.time / 3600.0, 1), fmt(point.value, 4),
                    fmt(analytic, 4), std::string(bar_len, '#')});
  }
  series.print(std::cout);

  // Aggregate shape checks.
  double peak_mean = 0.0;
  std::size_t peak_bins = 0;
  double off_mean = 0.0;
  std::size_t off_bins = 0;
  for (const auto& point : curve) {
    const double mid = point.time + window / 2.0;
    if (mid >= 8 * 3600.0 && mid < 17 * 3600.0) {
      peak_mean += point.value;
      ++peak_bins;
    } else {
      off_mean += point.value;
      ++off_bins;
    }
  }
  peak_mean /= static_cast<double>(peak_bins);
  off_mean /= static_cast<double>(off_bins);
  std::cout << '\n';
  print_claim(std::cout, "peak-hours mean rate (model: ~0.226 req/s)",
              0.226 * scale, peak_mean, 3);
  print_claim(std::cout, "off-peak mean rate (model: ~0.019 req/s)",
              0.019 * scale, off_mean, 3);
  print_claim(std::cout, "requests per simulated day (paper: ~8286)",
              8286.0 * scale,
              (peak_mean * 9.0 + off_mean * 15.0) * 3600.0, 0);

  if (const std::string path = args.get_string("csv"); !path.empty()) {
    std::ofstream out(path);
    CsvWriter csv(out);
    csv.write_header({"time_s", "realized_rate", "analytic_rate"});
    for (const auto& point : curve) {
      csv.write_row({CsvWriter::format(point.time), CsvWriter::format(point.value),
                     CsvWriter::format(
                         model.expected_rate(point.time + window / 2.0))});
    }
    std::cout << "CSV written to " << path << '\n';
  }
  return 0;
}
