// M/M/1/k: single server, at most k requests in the system.
//
// This is the paper's model of one virtualized application instance
// (Section IV-B, Figure 2). `k = floor(Ts / Tr)` bounds the queue so that an
// accepted request can always finish within the negotiated response time;
// arrivals that would exceed k are rejected by admission control, and the
// performance modeler sizes the instance pool from this model's blocking
// probability Pr(S_k) and response time Tq.
#pragma once

#include <cstddef>
#include <vector>

#include "queueing/types.h"

namespace cloudprov::queueing {

/// Steady-state metrics for M/M/1/k, defined for any lambda >= 0, including
/// overload (rho >= 1) — the chain is finite and always ergodic.
QueueMetrics mm1k(double arrival_rate, double service_rate, std::size_t capacity);

/// Full stationary distribution p_0..p_k of M/M/1/k.
std::vector<double> mm1k_distribution(double arrival_rate, double service_rate,
                                      std::size_t capacity);

}  // namespace cloudprov::queueing
