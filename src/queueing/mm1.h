// M/M/1: single server, unbounded queue.
#pragma once

#include "queueing/types.h"

namespace cloudprov::queueing {

/// Steady-state metrics for M/M/1. Requires lambda < mu (otherwise no steady
/// state exists and the call throws std::invalid_argument).
QueueMetrics mm1(double arrival_rate, double service_rate);

}  // namespace cloudprov::queueing
