// M/M/inf: infinite-server station.
//
// The paper models the application provisioner itself as M/M/inf
// (Section IV-B): dispatch adds latency but never queues, so the station
// contributes a pure delay and the number in "service" is Poisson(a).
#pragma once

#include "queueing/types.h"

namespace cloudprov::queueing {

QueueMetrics mminf(double arrival_rate, double service_rate);

/// P(N = n) for M/M/inf: Poisson(a) pmf evaluated without factorials.
double mminf_occupancy_pmf(double arrival_rate, double service_rate, std::size_t n);

}  // namespace cloudprov::queueing
