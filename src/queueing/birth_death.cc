#include "queueing/birth_death.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudprov::queueing {

std::vector<double> birth_death_stationary(const std::vector<double>& birth_rates,
                                           const std::vector<double>& death_rates) {
  ensure_arg(birth_rates.size() == death_rates.size(),
             "birth_death_stationary: rate ladders must have equal length");
  const std::size_t k = birth_rates.size();
  std::vector<double> unnormalized(k + 1);
  unnormalized[0] = 1.0;
  for (std::size_t n = 0; n < k; ++n) {
    ensure_arg(birth_rates[n] >= 0.0, "birth_death_stationary: negative birth rate");
    ensure_arg(death_rates[n] > 0.0, "birth_death_stationary: death rate must be > 0");
    unnormalized[n + 1] = unnormalized[n] * birth_rates[n] / death_rates[n];
    // Rescale downwards when the running product approaches overflow. Only
    // relative magnitudes matter: the final normalization absorbs the
    // factor. Terms that underflow to zero are left alone — they are
    // already negligible relative to the (rescaled-to-1) dominant terms,
    // and rescaling *up* would overflow those dominant terms instead.
    if (unnormalized[n + 1] > 1e100) {
      const double factor = 1.0 / unnormalized[n + 1];
      for (std::size_t i = 0; i <= n + 1; ++i) unnormalized[i] *= factor;
    }
  }
  double total = 0.0;
  for (double x : unnormalized) total += x;
  ensure(total > 0.0 && std::isfinite(total),
         "birth_death_stationary: normalization failed");
  for (double& x : unnormalized) x /= total;
  return unnormalized;
}

QueueMetrics birth_death_queue_metrics(double arrival_rate, double service_rate,
                                       std::size_t servers, std::size_t capacity) {
  ensure_arg(arrival_rate >= 0.0, "birth_death_queue_metrics: lambda must be >= 0");
  ensure_arg(service_rate > 0.0, "birth_death_queue_metrics: mu must be > 0");
  ensure_arg(servers >= 1, "birth_death_queue_metrics: need at least one server");
  ensure_arg(capacity >= servers,
             "birth_death_queue_metrics: capacity must be >= servers");

  std::vector<double> births(capacity, arrival_rate);
  std::vector<double> deaths(capacity);
  for (std::size_t n = 0; n < capacity; ++n) {
    deaths[n] = static_cast<double>(std::min(n + 1, servers)) * service_rate;
  }
  const std::vector<double> p = birth_death_stationary(births, deaths);

  QueueMetrics m;
  m.arrival_rate = arrival_rate;
  m.service_rate = service_rate;
  m.servers = servers;
  m.capacity = capacity;
  m.offered_load = arrival_rate / service_rate;
  m.probability_empty = p[0];
  m.blocking_probability = p[capacity];

  double mean_in_system = 0.0;
  double mean_busy = 0.0;
  for (std::size_t n = 0; n <= capacity; ++n) {
    mean_in_system += static_cast<double>(n) * p[n];
    mean_busy += static_cast<double>(std::min(n, servers)) * p[n];
  }
  m.mean_in_system = mean_in_system;
  m.mean_in_queue = mean_in_system - mean_busy;
  m.server_utilization = mean_busy / static_cast<double>(servers);
  m.throughput = arrival_rate * (1.0 - m.blocking_probability);
  if (m.throughput > 0.0) {
    m.mean_response_time = mean_in_system / m.throughput;  // Little's law
    m.mean_waiting_time = m.mean_in_queue / m.throughput;
  } else {
    m.mean_response_time = 0.0;
    m.mean_waiting_time = 0.0;
  }
  return m;
}

}  // namespace cloudprov::queueing
