// Erlang loss and delay formulas.
//
// Computed with the standard numerically-stable recurrences (never through
// factorials), valid for hundreds of servers.
#pragma once

#include <cstddef>

namespace cloudprov::queueing {

/// Erlang B: blocking probability of M/M/c/c with offered load `a` erlangs.
double erlang_b(double offered_load, std::size_t servers);

/// Erlang C: probability an arrival waits in M/M/c (requires a < c for a
/// meaningful steady state; returns 1.0 when a >= c).
double erlang_c(double offered_load, std::size_t servers);

}  // namespace cloudprov::queueing
