// Non-exponential service models.
//
// The simulated service times are 100 ms x U(1, 1.1) — far less variable
// than the exponential the paper's M/M/1/k model assumes (SCV ~ 0.0009 vs
// 1). These models quantify what the exponential assumption over-estimates:
//
//  * mg1(): exact M/G/1 via Pollaczek–Khinchine (unbounded queue),
//  * ggc_allen_cunneen(): the standard two-moment G/G/c waiting-time
//    approximation,
//
// used by the tests to bound the model conservatism and available to users
// who want a sharper capacity model than the paper's.
#pragma once

#include <cstddef>

#include "queueing/types.h"

namespace cloudprov::queueing {

/// M/G/1 steady state (Pollaczek–Khinchine). `service_scv` is the squared
/// coefficient of variation Var[S]/E[S]^2 (1 = exponential, 0 =
/// deterministic). Requires lambda * mean_service < 1.
QueueMetrics mg1(double arrival_rate, double mean_service_time,
                 double service_scv);

/// Allen–Cunneen G/G/c approximation: Wq ~ Wq(M/M/c) * (ca2 + cs2) / 2.
/// `arrival_scv` is the interarrival SCV (1 = Poisson). Requires
/// lambda < c / mean_service.
QueueMetrics ggc_allen_cunneen(double arrival_rate, double arrival_scv,
                               double mean_service_time, double service_scv,
                               std::size_t servers);

}  // namespace cloudprov::queueing
