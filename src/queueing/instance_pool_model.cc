#include "queueing/instance_pool_model.h"

#include "queueing/mm1k.h"
#include "util/check.h"

namespace cloudprov::queueing {

InstancePoolMetrics solve_instance_pool(const InstancePoolModel& model) {
  ensure_arg(model.instances >= 1, "solve_instance_pool: need at least one instance");
  ensure_arg(model.service_rate > 0.0, "solve_instance_pool: mu must be > 0");
  ensure_arg(model.total_arrival_rate >= 0.0,
             "solve_instance_pool: lambda must be >= 0");
  ensure_arg(model.queue_capacity >= 1, "solve_instance_pool: k must be >= 1");

  const double per_instance_lambda =
      model.total_arrival_rate / static_cast<double>(model.instances);
  const QueueMetrics q =
      mm1k(per_instance_lambda, model.service_rate, model.queue_capacity);

  InstancePoolMetrics out;
  out.per_instance = q;
  out.rejection_probability = q.blocking_probability;
  out.mean_response_time = q.mean_response_time;
  out.pool_utilization = q.server_utilization;  // identical instances
  out.offered_per_instance = q.offered_load;
  out.total_throughput = q.throughput * static_cast<double>(model.instances);
  out.mean_in_system_total = q.mean_in_system * static_cast<double>(model.instances);
  return out;
}

}  // namespace cloudprov::queueing
