#include "queueing/mmc.h"

#include "queueing/birth_death.h"
#include "queueing/erlang.h"
#include "util/check.h"

namespace cloudprov::queueing {

QueueMetrics mmc(double arrival_rate, double service_rate, std::size_t servers) {
  ensure_arg(arrival_rate >= 0.0, "mmc: lambda must be >= 0");
  ensure_arg(service_rate > 0.0, "mmc: mu must be > 0");
  ensure_arg(servers >= 1, "mmc: need at least one server");
  const double a = arrival_rate / service_rate;
  const auto c = static_cast<double>(servers);
  ensure_arg(a < c, "mmc: unstable (lambda >= c * mu)");

  const double wait_probability = erlang_c(a, servers);

  QueueMetrics m;
  m.arrival_rate = arrival_rate;
  m.service_rate = service_rate;
  m.servers = servers;
  m.capacity = 0;
  m.offered_load = a;
  m.server_utilization = a / c;
  m.blocking_probability = 0.0;
  m.throughput = arrival_rate;
  m.mean_waiting_time =
      arrival_rate > 0.0
          ? wait_probability / (c * service_rate - arrival_rate)
          : 0.0;
  m.mean_response_time = m.mean_waiting_time + 1.0 / service_rate;
  m.mean_in_queue = arrival_rate * m.mean_waiting_time;
  m.mean_in_system = arrival_rate * m.mean_response_time;
  // P0 from the Erlang-C normalization: reuse the birth-death ladder only for
  // the empty-system probability of the truncation-free system:
  // P0 = 1 / (sum_{n<c} a^n/n! + a^c/c! * 1/(1 - rho)). Computed iteratively.
  double term = 1.0;  // a^0/0!
  double sum = 1.0;
  for (std::size_t n = 1; n < servers; ++n) {
    term *= a / static_cast<double>(n);
    sum += term;
  }
  term *= a / c;                    // a^c / c!
  sum += term / (1.0 - a / c);      // geometric tail
  m.probability_empty = 1.0 / sum;
  return m;
}

QueueMetrics mmck(double arrival_rate, double service_rate, std::size_t servers,
                  std::size_t capacity) {
  return birth_death_queue_metrics(arrival_rate, service_rate, servers, capacity);
}

}  // namespace cloudprov::queueing
