// M/M/c (Erlang delay system) and M/M/c/K (finite-capacity multiserver).
#pragma once

#include <cstddef>

#include "queueing/types.h"

namespace cloudprov::queueing {

/// Steady-state metrics for M/M/c with unbounded queue. Requires
/// lambda < c * mu.
QueueMetrics mmc(double arrival_rate, double service_rate, std::size_t servers);

/// Steady-state metrics for M/M/c/K (capacity = max in system, >= servers).
/// Defined for any lambda >= 0, including overload.
QueueMetrics mmck(double arrival_rate, double service_rate, std::size_t servers,
                  std::size_t capacity);

}  // namespace cloudprov::queueing
