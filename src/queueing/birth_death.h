// General finite birth–death chain solver.
//
// Every Markovian queue in this library (M/M/1/k, M/M/c, M/M/c/K, M/M/inf
// truncated) is a birth–death process; this solver computes the stationary
// distribution directly from the rate ladders. The closed-form models use it
// as an independent cross-check in the test suite, and M/M/c/K uses it as the
// primary implementation.
#pragma once

#include <cstddef>
#include <vector>

#include "queueing/types.h"

namespace cloudprov::queueing {

/// Stationary distribution of a birth–death chain on states 0..K where
/// birth_rates[n] is the rate n -> n+1 (size K) and death_rates[n] is the
/// rate n+1 -> n (size K). All death rates must be positive.
/// Products are renormalized on the fly, so K in the tens of thousands is fine.
std::vector<double> birth_death_stationary(const std::vector<double>& birth_rates,
                                           const std::vector<double>& death_rates);

/// Convenience: full queue metrics for a birth–death queue where state n has
/// min(n, servers) busy servers, per-server rate `service_rate`, and
/// state-independent arrival rate `arrival_rate` (blocked in state K).
QueueMetrics birth_death_queue_metrics(double arrival_rate, double service_rate,
                                       std::size_t servers, std::size_t capacity);

}  // namespace cloudprov::queueing
