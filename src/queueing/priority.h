// Non-preemptive priority M/G/1 (Cobham's formulas).
//
// The analytic counterpart of Vm priority queueing: with classes 1..P
// (1 = highest) each Poisson(lambda_p) with mean service E[S_p] and second
// moment E[S_p^2], the mean waiting time of class p is
//
//     Wq_p = W0 / ((1 - sigma_{p-1}) (1 - sigma_p)),
//     W0   = sum_i lambda_i E[S_i^2] / 2,
//     sigma_p = sum_{i <= p} rho_i.
//
// Used to predict per-class response times in the SLA extension and
// validated against the simulator in the test suite.
#pragma once

#include <vector>

namespace cloudprov::queueing {

struct PriorityClassInput {
  double arrival_rate = 0.0;        ///< lambda_p
  double mean_service = 0.0;        ///< E[S_p]
  double service_second_moment = 0.0;  ///< E[S_p^2]
};

struct PriorityClassMetrics {
  double utilization = 0.0;     ///< rho_p = lambda_p E[S_p]
  double mean_waiting = 0.0;    ///< Wq_p
  double mean_response = 0.0;   ///< Wq_p + E[S_p]
};

/// Classes ordered highest priority first. Requires total utilization < 1.
std::vector<PriorityClassMetrics> priority_mg1(
    const std::vector<PriorityClassInput>& classes);

}  // namespace cloudprov::queueing
