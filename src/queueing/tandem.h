// Composite (multi-tier) service models — the paper's future work:
// "we intend to improve the queueing model to allow modeling composite
// services" (Section VII).
//
// solve_tandem() models a request that traverses a chain of tiers (web ->
// app -> db ...), each tier an instance pool of parallel M/M/1/k queues like
// Figure 2. It uses the standard decomposition approximation: tier i+1's
// input is treated as Poisson at tier i's accepted throughput. Exact for
// unbounded exponential tiers (Burke's theorem); an approximation once
// blocking truncates the flow, validated against simulation in the test
// suite.
#pragma once

#include <cstddef>
#include <vector>

#include "queueing/instance_pool_model.h"

namespace cloudprov::queueing {

struct TandemTier {
  std::size_t instances = 1;
  double service_rate = 1.0;      ///< per-instance mu
  std::size_t queue_capacity = 1; ///< per-instance k
};

struct TandemTierMetrics {
  double input_rate = 0.0;  ///< offered lambda at this tier
  InstancePoolMetrics pool;
};

struct TandemMetrics {
  /// Mean end-to-end response time of requests accepted at every tier.
  double end_to_end_response = 0.0;
  /// Probability a request survives every tier's admission control.
  double end_to_end_acceptance = 1.0;
  /// Requests/second completing the full chain.
  double throughput = 0.0;
  /// Index of the tier with the highest per-instance offered load.
  std::size_t bottleneck_tier = 0;
  std::vector<TandemTierMetrics> tiers;
};

TandemMetrics solve_tandem(double arrival_rate,
                           const std::vector<TandemTier>& tiers);

}  // namespace cloudprov::queueing
