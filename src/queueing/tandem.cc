#include "queueing/tandem.h"

#include "util/check.h"

namespace cloudprov::queueing {

TandemMetrics solve_tandem(double arrival_rate,
                           const std::vector<TandemTier>& tiers) {
  ensure_arg(arrival_rate >= 0.0, "solve_tandem: lambda must be >= 0");
  ensure_arg(!tiers.empty(), "solve_tandem: need at least one tier");

  TandemMetrics result;
  result.tiers.reserve(tiers.size());
  double flow = arrival_rate;
  double bottleneck_load = -1.0;
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const TandemTier& tier = tiers[i];
    InstancePoolModel model;
    model.total_arrival_rate = flow;
    model.service_rate = tier.service_rate;
    model.instances = tier.instances;
    model.queue_capacity = tier.queue_capacity;
    const InstancePoolMetrics pool = solve_instance_pool(model);

    result.tiers.push_back(TandemTierMetrics{flow, pool});
    result.end_to_end_response += pool.mean_response_time;
    result.end_to_end_acceptance *= 1.0 - pool.rejection_probability;
    if (pool.offered_per_instance > bottleneck_load) {
      bottleneck_load = pool.offered_per_instance;
      result.bottleneck_tier = i;
    }
    flow = pool.total_throughput;  // decomposition: downstream input
  }
  result.throughput = flow;
  return result;
}

}  // namespace cloudprov::queueing
