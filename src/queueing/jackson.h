// Open Jackson network solver.
//
// Generalizes the tandem model to arbitrary probabilistic routing between
// service stations (e.g. an app tier that calls the cache with probability
// 0.8 and the database with 0.2, with retries looping back). Each node is an
// M/M/c station with unbounded queue; the product-form result makes the
// per-node metrics exact given the traffic-equation solution.
#pragma once

#include <cstddef>
#include <vector>

#include "queueing/types.h"

namespace cloudprov::queueing {

struct JacksonNode {
  std::size_t servers = 1;
  double service_rate = 1.0;  ///< per-server mu
};

struct JacksonNetwork {
  std::vector<JacksonNode> nodes;
  /// External Poisson arrival rate into each node.
  std::vector<double> external_arrivals;
  /// routing[i][j]: probability a completion at node i proceeds to node j.
  /// Row sums must be <= 1; the remainder leaves the network.
  std::vector<std::vector<double>> routing;
};

struct JacksonMetrics {
  /// Total arrival rate (external + internal) at each node, from the
  /// traffic equations lambda_j = a_j + sum_i lambda_i r_ij.
  std::vector<double> node_arrival_rates;
  /// Per-node steady state (exact M/M/c by the product-form theorem).
  std::vector<QueueMetrics> node_metrics;
  /// Mean number of requests in the whole network.
  double mean_in_network = 0.0;
  /// Mean sojourn time of an external arrival (Little on the whole network).
  double mean_sojourn_time = 0.0;
};

/// Solves the traffic equations and per-node M/M/c models. Throws
/// std::invalid_argument on malformed routing or if any node is unstable
/// (lambda_j >= c_j * mu_j).
JacksonMetrics solve_jackson(const JacksonNetwork& network);

}  // namespace cloudprov::queueing
