#include "queueing/jackson.h"

#include "queueing/mmc.h"
#include "util/check.h"
#include "util/linalg.h"

namespace cloudprov::queueing {

JacksonMetrics solve_jackson(const JacksonNetwork& network) {
  const std::size_t n = network.nodes.size();
  ensure_arg(n >= 1, "solve_jackson: need at least one node");
  ensure_arg(network.external_arrivals.size() == n,
             "solve_jackson: external_arrivals size mismatch");
  ensure_arg(network.routing.size() == n, "solve_jackson: routing size mismatch");
  double total_external = 0.0;
  for (double a : network.external_arrivals) {
    ensure_arg(a >= 0.0, "solve_jackson: negative external arrival rate");
    total_external += a;
  }
  for (const auto& row : network.routing) {
    ensure_arg(row.size() == n, "solve_jackson: routing row size mismatch");
    double row_sum = 0.0;
    for (double p : row) {
      ensure_arg(p >= 0.0 && p <= 1.0, "solve_jackson: routing probability");
      row_sum += p;
    }
    ensure_arg(row_sum <= 1.0 + 1e-12, "solve_jackson: routing row sum > 1");
  }

  // Traffic equations: lambda_j - sum_i lambda_i r_ij = a_j, i.e.
  // (I - R^T) lambda = a.
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    matrix[j][j] = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      matrix[j][i] -= network.routing[i][j];
    }
  }
  JacksonMetrics result;
  result.node_arrival_rates =
      solve_linear_system(std::move(matrix), network.external_arrivals);

  result.node_metrics.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double lambda = result.node_arrival_rates[j];
    ensure_arg(lambda >= -1e-9, "solve_jackson: negative solved arrival rate");
    const JacksonNode& node = network.nodes[j];
    const QueueMetrics metrics =
        mmc(std::max(0.0, lambda), node.service_rate, node.servers);
    result.mean_in_network += metrics.mean_in_system;
    result.node_metrics.push_back(metrics);
  }
  result.mean_sojourn_time =
      total_external > 0.0 ? result.mean_in_network / total_external : 0.0;
  return result;
}

}  // namespace cloudprov::queueing
