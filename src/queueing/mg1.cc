#include "queueing/mg1.h"

#include "queueing/mmc.h"
#include "util/check.h"

namespace cloudprov::queueing {

QueueMetrics mg1(double arrival_rate, double mean_service_time,
                 double service_scv) {
  ensure_arg(arrival_rate >= 0.0, "mg1: lambda must be >= 0");
  ensure_arg(mean_service_time > 0.0, "mg1: mean service time must be > 0");
  ensure_arg(service_scv >= 0.0, "mg1: SCV must be >= 0");
  const double rho = arrival_rate * mean_service_time;
  ensure_arg(rho < 1.0, "mg1: unstable (rho >= 1)");

  QueueMetrics m;
  m.arrival_rate = arrival_rate;
  m.service_rate = 1.0 / mean_service_time;
  m.servers = 1;
  m.capacity = 0;
  m.offered_load = rho;
  m.server_utilization = rho;
  m.probability_empty = 1.0 - rho;
  m.blocking_probability = 0.0;
  // Pollaczek–Khinchine: Wq = lambda E[S^2] / (2 (1 - rho)), with
  // E[S^2] = E[S]^2 (1 + scv).
  m.mean_waiting_time = rho * mean_service_time * (1.0 + service_scv) /
                        (2.0 * (1.0 - rho));
  m.mean_response_time = m.mean_waiting_time + mean_service_time;
  m.mean_in_queue = arrival_rate * m.mean_waiting_time;
  m.mean_in_system = arrival_rate * m.mean_response_time;
  m.throughput = arrival_rate;
  return m;
}

QueueMetrics ggc_allen_cunneen(double arrival_rate, double arrival_scv,
                               double mean_service_time, double service_scv,
                               std::size_t servers) {
  ensure_arg(arrival_scv >= 0.0 && service_scv >= 0.0,
             "ggc_allen_cunneen: SCVs must be >= 0");
  QueueMetrics m = mmc(arrival_rate, 1.0 / mean_service_time, servers);
  const double variability = (arrival_scv + service_scv) / 2.0;
  m.mean_waiting_time *= variability;
  m.mean_response_time = m.mean_waiting_time + mean_service_time;
  m.mean_in_queue = arrival_rate * m.mean_waiting_time;
  m.mean_in_system = arrival_rate * m.mean_response_time;
  return m;
}

}  // namespace cloudprov::queueing
