// The paper's queueing network (Figure 2): an M/M/inf application
// provisioner feeding m identical parallel M/M/1/k application instances,
// with arrivals split evenly (round-robin approximated as a Poisson split of
// rate lambda/m per instance).
//
// This is the model the load predictor and performance modeler solves to
// decide whether a candidate pool size m meets QoS. It intentionally models
// only what an application provider can observe (Section IV-B): per-instance
// service time and the aggregate arrival rate — nothing about hosts or
// networks.
//
// Note on conservatism: real round-robin dispatch feeds each instance a
// smoother-than-Poisson stream, and the simulator's admission control rejects
// only when *all* instances are full, so the model's blocking estimate is an
// upper bound on simulated rejection. The paper exploits exactly this slack.
#pragma once

#include <cstddef>

#include "queueing/types.h"

namespace cloudprov::queueing {

struct InstancePoolModel {
  double total_arrival_rate = 0.0;  ///< lambda at the provisioner
  double service_rate = 0.0;        ///< per-instance mu = 1 / Tm
  std::size_t instances = 1;        ///< m
  std::size_t queue_capacity = 1;   ///< k (max requests per instance)
};

struct InstancePoolMetrics {
  QueueMetrics per_instance;      ///< one M/M/1/k at lambda/m
  double rejection_probability = 0.0;  ///< Pr(S_k) under the even-split model
  double mean_response_time = 0.0;     ///< Tq of accepted requests
  double pool_utilization = 0.0;       ///< busy fraction averaged over instances
  double offered_per_instance = 0.0;   ///< rho = lambda / (m * mu)
  double total_throughput = 0.0;       ///< accepted requests/second, all instances
  double mean_in_system_total = 0.0;   ///< expected requests across the pool
};

/// Solves the Figure-2 network for a candidate configuration.
InstancePoolMetrics solve_instance_pool(const InstancePoolModel& model);

}  // namespace cloudprov::queueing
