#include "queueing/mminf.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace cloudprov::queueing {

QueueMetrics mminf(double arrival_rate, double service_rate) {
  ensure_arg(arrival_rate >= 0.0, "mminf: lambda must be >= 0");
  ensure_arg(service_rate > 0.0, "mminf: mu must be > 0");
  const double a = arrival_rate / service_rate;

  QueueMetrics m;
  m.arrival_rate = arrival_rate;
  m.service_rate = service_rate;
  m.servers = std::numeric_limits<std::size_t>::max();
  m.capacity = 0;
  m.offered_load = a;
  m.server_utilization = 0.0;  // infinitely many servers
  m.probability_empty = std::exp(-a);
  m.blocking_probability = 0.0;
  m.mean_in_system = a;
  m.mean_in_queue = 0.0;
  m.mean_response_time = 1.0 / service_rate;
  m.mean_waiting_time = 0.0;
  m.throughput = arrival_rate;
  return m;
}

double mminf_occupancy_pmf(double arrival_rate, double service_rate, std::size_t n) {
  ensure_arg(arrival_rate >= 0.0, "mminf: lambda must be >= 0");
  ensure_arg(service_rate > 0.0, "mminf: mu must be > 0");
  const double a = arrival_rate / service_rate;
  if (a == 0.0) return n == 0 ? 1.0 : 0.0;
  // exp(n ln a - a - lgamma(n+1)) avoids overflow for large n.
  const auto nd = static_cast<double>(n);
  return std::exp(nd * std::log(a) - a - std::lgamma(nd + 1.0));
}

}  // namespace cloudprov::queueing
