#include "queueing/erlang.h"

#include "util/check.h"

namespace cloudprov::queueing {

double erlang_b(double offered_load, std::size_t servers) {
  ensure_arg(offered_load >= 0.0, "erlang_b: offered load must be >= 0");
  if (offered_load == 0.0) return 0.0;
  double b = 1.0;  // B(a, 0)
  for (std::size_t n = 1; n <= servers; ++n) {
    b = offered_load * b / (static_cast<double>(n) + offered_load * b);
  }
  return b;
}

double erlang_c(double offered_load, std::size_t servers) {
  ensure_arg(servers >= 1, "erlang_c: need at least one server");
  const auto c = static_cast<double>(servers);
  if (offered_load >= c) return 1.0;
  const double b = erlang_b(offered_load, servers);
  return c * b / (c - offered_load * (1.0 - b));
}

}  // namespace cloudprov::queueing
