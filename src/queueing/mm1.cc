#include "queueing/mm1.h"

#include "util/check.h"

namespace cloudprov::queueing {

QueueMetrics mm1(double arrival_rate, double service_rate) {
  ensure_arg(arrival_rate >= 0.0, "mm1: lambda must be >= 0");
  ensure_arg(service_rate > 0.0, "mm1: mu must be > 0");
  const double rho = arrival_rate / service_rate;
  ensure_arg(rho < 1.0, "mm1: unstable (lambda >= mu)");

  QueueMetrics m;
  m.arrival_rate = arrival_rate;
  m.service_rate = service_rate;
  m.servers = 1;
  m.capacity = 0;
  m.offered_load = rho;
  m.server_utilization = rho;
  m.probability_empty = 1.0 - rho;
  m.blocking_probability = 0.0;
  m.mean_in_system = rho / (1.0 - rho);
  m.mean_in_queue = rho * rho / (1.0 - rho);
  m.mean_response_time = 1.0 / (service_rate - arrival_rate);
  m.mean_waiting_time = m.mean_response_time - 1.0 / service_rate;
  m.throughput = arrival_rate;
  return m;
}

}  // namespace cloudprov::queueing
