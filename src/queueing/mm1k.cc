#include "queueing/mm1k.h"

#include <cmath>

#include "util/check.h"

namespace cloudprov::queueing {
namespace {

// Treat rho within this band of 1 as the rho == 1 limit to avoid catastrophic
// cancellation in (1 - rho^(k+1)).
constexpr double kUnitRhoBand = 1e-9;

}  // namespace

std::vector<double> mm1k_distribution(double arrival_rate, double service_rate,
                                      std::size_t capacity) {
  ensure_arg(arrival_rate >= 0.0, "mm1k: lambda must be >= 0");
  ensure_arg(service_rate > 0.0, "mm1k: mu must be > 0");
  ensure_arg(capacity >= 1, "mm1k: capacity must be >= 1");
  const double rho = arrival_rate / service_rate;
  const std::size_t k = capacity;
  std::vector<double> p(k + 1);
  if (std::abs(rho - 1.0) < kUnitRhoBand) {
    const double uniform = 1.0 / static_cast<double>(k + 1);
    for (double& x : p) x = uniform;
    return p;
  }
  const double p0 = (1.0 - rho) / (1.0 - std::pow(rho, static_cast<double>(k + 1)));
  double term = p0;
  for (std::size_t n = 0; n <= k; ++n) {
    p[n] = term;
    term *= rho;
  }
  return p;
}

QueueMetrics mm1k(double arrival_rate, double service_rate, std::size_t capacity) {
  const std::vector<double> p =
      mm1k_distribution(arrival_rate, service_rate, capacity);
  const double rho = arrival_rate / service_rate;
  const std::size_t k = capacity;

  QueueMetrics m;
  m.arrival_rate = arrival_rate;
  m.service_rate = service_rate;
  m.servers = 1;
  m.capacity = k;
  m.offered_load = rho;
  m.probability_empty = p[0];
  m.blocking_probability = p[k];
  m.server_utilization = 1.0 - p[0];

  double mean = 0.0;
  for (std::size_t n = 0; n <= k; ++n) mean += static_cast<double>(n) * p[n];
  m.mean_in_system = mean;
  m.mean_in_queue = mean - m.server_utilization;
  m.throughput = arrival_rate * (1.0 - m.blocking_probability);
  if (m.throughput > 0.0) {
    m.mean_response_time = m.mean_in_system / m.throughput;
    m.mean_waiting_time = m.mean_in_queue / m.throughput;
  }
  return m;
}

}  // namespace cloudprov::queueing
