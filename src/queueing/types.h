// Common result type for analytic queueing models.
//
// All models report the same steady-state summary so the performance modeler
// and the tests can treat M/M/1, M/M/1/k, M/M/c, M/M/c/K, and M/M/inf
// uniformly. Times are in the same unit as 1/rate inputs (seconds here).
#pragma once

#include <cstddef>

namespace cloudprov::queueing {

struct QueueMetrics {
  // Inputs echoed back.
  double arrival_rate = 0.0;  ///< offered lambda (before any blocking)
  double service_rate = 0.0;  ///< per-server mu
  std::size_t servers = 1;
  std::size_t capacity = 0;  ///< max in system; 0 means unbounded

  // Steady-state results.
  double offered_load = 0.0;            ///< a = lambda/mu (erlangs)
  double server_utilization = 0.0;      ///< busy fraction per server
  double probability_empty = 0.0;       ///< P0
  double blocking_probability = 0.0;    ///< P(arrival rejected); Pr(S_k) in the paper
  double mean_in_system = 0.0;          ///< L
  double mean_in_queue = 0.0;           ///< Lq
  double mean_response_time = 0.0;      ///< W (accepted customers); Tq in the paper
  double mean_waiting_time = 0.0;       ///< Wq
  double throughput = 0.0;              ///< effective lambda = lambda * (1 - blocking)
};

}  // namespace cloudprov::queueing
