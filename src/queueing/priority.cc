#include "queueing/priority.h"

#include "util/check.h"

namespace cloudprov::queueing {

std::vector<PriorityClassMetrics> priority_mg1(
    const std::vector<PriorityClassInput>& classes) {
  ensure_arg(!classes.empty(), "priority_mg1: need at least one class");
  double w0 = 0.0;
  double total_rho = 0.0;
  for (const PriorityClassInput& c : classes) {
    ensure_arg(c.arrival_rate >= 0.0, "priority_mg1: negative arrival rate");
    ensure_arg(c.mean_service > 0.0, "priority_mg1: mean service must be > 0");
    ensure_arg(c.service_second_moment >= c.mean_service * c.mean_service,
               "priority_mg1: E[S^2] must be >= E[S]^2");
    w0 += c.arrival_rate * c.service_second_moment / 2.0;
    total_rho += c.arrival_rate * c.mean_service;
  }
  ensure_arg(total_rho < 1.0, "priority_mg1: unstable (total rho >= 1)");

  std::vector<PriorityClassMetrics> out;
  out.reserve(classes.size());
  double sigma_prev = 0.0;  // sigma_{p-1}
  for (const PriorityClassInput& c : classes) {
    const double rho = c.arrival_rate * c.mean_service;
    const double sigma = sigma_prev + rho;
    PriorityClassMetrics m;
    m.utilization = rho;
    m.mean_waiting = w0 / ((1.0 - sigma_prev) * (1.0 - sigma));
    m.mean_response = m.mean_waiting + c.mean_service;
    out.push_back(m);
    sigma_prev = sigma;
  }
  return out;
}

}  // namespace cloudprov::queueing
