// Quadratic response-surface predictor (QRSM-lite) — the second prediction
// technique the paper's future work points to (Myers et al., Response Surface
// Methodology).
//
// Fits rate(t) = b0 + b1*t + b2*t^2 by least squares over a sliding window of
// (window midpoint, observed rate) points and extrapolates to the requested
// future time. Times are centered on the newest observation before fitting to
// keep the normal equations well conditioned.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "predict/predictor.h"

namespace cloudprov {

class QrsmPredictor final : public ArrivalRatePredictor {
 public:
  QrsmPredictor(std::size_t history, double headroom = 0.1);

  void observe(SimTime window_start, SimTime window_end,
               double observed_rate) override;
  double predict(SimTime t) const override;
  std::string name() const override { return "qrsm"; }

  void save_state(std::vector<double>& out) const override;
  void load_state(const std::vector<double>& in) override;

 private:
  struct Observation {
    SimTime midpoint;
    double rate;
  };

  std::size_t history_limit_;
  double headroom_;
  std::deque<Observation> history_;
};

}  // namespace cloudprov
