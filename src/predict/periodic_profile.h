// Time-based profile predictor — the predictor the paper actually evaluates.
//
// "Workload analyzer predicts requests arrival rate for the web workload by
// dividing each day into six periods" (Section V-B1); the scientific
// workload uses a two-phase (peak / off-peak) profile with explicit
// over-estimation factors (Section V-B2). Both are instances of a periodic
// weekly profile: a list of (day-of-week, time-of-day, rate) entries, where
// the rate holds from the entry's start until the next entry.
#pragma once

#include <string>
#include <vector>

#include "predict/predictor.h"
#include "workload/bot_workload.h"
#include "workload/web_workload.h"

namespace cloudprov {

struct ProfileEntry {
  /// Day offset from simulation start this entry applies to; -1 = every day.
  int day = -1;
  /// Seconds into the day at which this rate takes effect.
  SimTime time_of_day = 0.0;
  /// Predicted arrival rate from this boundary on.
  double rate = 0.0;
};

class PeriodicProfilePredictor final : public ArrivalRatePredictor {
 public:
  /// `period_days` is the cycle length (7 for the weekly web profile, 1 for
  /// the daily scientific profile).
  PeriodicProfilePredictor(std::vector<ProfileEntry> entries, int period_days,
                           std::string label = "periodic-profile");

  /// Profiles are precomputed from the workload model; observations are
  /// accepted (so the analyzer can treat all predictors uniformly) but
  /// ignored.
  void observe(SimTime, SimTime, double) override {}

  double predict(SimTime t) const override;
  std::string name() const override { return label_; }

  const std::vector<ProfileEntry>& entries() const { return entries_; }

 private:
  std::vector<ProfileEntry> entries_;  // sorted by (day, time_of_day)
  int period_days_;
  std::string label_;
};

/// Builds the literal six-period web profile of Section V-B1 (period
/// boundaries at 2:00, 7:00, 11:30, 12:30, 16:00 and 20:00), each period
/// predicted at the maximum of Equation 2 over the period — a conservative
/// upper envelope.
///
/// Note: this envelope never predicts below ~650 req/s (the 20:00 rate), so
/// a pool sized from it cannot shrink towards the paper's reported minimum
/// of 55 instances; the paper's own numbers imply its analyzer tracked the
/// Equation-2 trough. web_profile_predictor() below is that tracker.
PeriodicProfilePredictor web_six_period_profile(const WebWorkloadConfig& config);

/// Fine-grained web profile: one entry per `window` seconds per weekday,
/// predicting the maximum of Equation 2 over the upcoming window —
/// conservative within a window but tracking the full diurnal curve,
/// reproducing the paper's reported 55..153 instance range. This is the
/// predictor the experiment scenarios use.
PeriodicProfilePredictor web_profile_predictor(const WebWorkloadConfig& config,
                                               SimTime window = 1800.0);

/// Builds the paper's scientific profile: during peak the mode-based task
/// rate (size mode / interarrival mode) inflated by `peak_factor` (paper:
/// 1.2); off-peak the mode of the 30-minute job count times `offpeak_factor`
/// (paper: 2.6) spread over the window.
PeriodicProfilePredictor bot_profile_predictor(const BotWorkloadConfig& config,
                                               double peak_factor = 1.2,
                                               double offpeak_factor = 2.6);

}  // namespace cloudprov
