// Autoregressive AR(p) predictor — the "ARMAX" direction of the paper's
// future work (Section VII), without exogenous inputs.
//
// Fits x_t = c + sum_i a_i * x_{t-i} by ordinary least squares over a sliding
// history of observed window rates and predicts one window ahead. The normal
// equations are solved with Gaussian elimination with partial pivoting
// (p is small — typically 2-8 — so no factorization library is needed).
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "predict/predictor.h"
#include "util/linalg.h"

namespace cloudprov {

class ArPredictor final : public ArrivalRatePredictor {
 public:
  /// order: p. history: number of observations retained for fitting
  /// (must be > 2 * order for a meaningful fit; until then the predictor
  /// falls back to the latest observation). headroom: safety inflation.
  ArPredictor(std::size_t order, std::size_t history, double headroom = 0.1);

  void observe(SimTime window_start, SimTime window_end,
               double observed_rate) override;
  double predict(SimTime t) const override;
  std::string name() const override;

  /// Last fitted coefficients [c, a_1..a_p]; empty before the first fit.
  const std::vector<double>& coefficients() const { return coefficients_; }

  void save_state(std::vector<double>& out) const override;
  void load_state(const std::vector<double>& in) override;

 private:
  void refit();

  std::size_t order_;
  std::size_t history_limit_;
  double headroom_;
  std::deque<double> history_;
  std::vector<double> coefficients_;
};

}  // namespace cloudprov
