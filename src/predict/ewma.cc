#include "predict/ewma.h"

#include "util/check.h"

namespace cloudprov {

EwmaPredictor::EwmaPredictor(double alpha, double headroom)
    : alpha_(alpha), headroom_(headroom) {
  ensure_arg(alpha > 0.0 && alpha <= 1.0, "EwmaPredictor: alpha must be in (0,1]");
  ensure_arg(headroom >= 0.0, "EwmaPredictor: headroom must be >= 0");
}

void EwmaPredictor::observe(SimTime, SimTime, double observed_rate) {
  if (!primed_) {
    value_ = observed_rate;
    primed_ = true;
    return;
  }
  value_ = alpha_ * observed_rate + (1.0 - alpha_) * value_;
}

double EwmaPredictor::predict(SimTime) const { return value_ * (1.0 + headroom_); }

std::string EwmaPredictor::name() const {
  return "ewma(alpha=" + std::to_string(alpha_) + ")";
}

void EwmaPredictor::save_state(std::vector<double>& out) const {
  out.push_back(value_);
  out.push_back(primed_ ? 1.0 : 0.0);
}

void EwmaPredictor::load_state(const std::vector<double>& in) {
  ensure_arg(in.size() == 2, "EwmaPredictor::load_state: bad encoding");
  value_ = in[0];
  primed_ = in[1] != 0.0;
}

}  // namespace cloudprov
