// Exponentially weighted moving-average predictor.
//
// History-based alternative to the paper's time-based profile: the predicted
// rate is an EWMA of observed window rates times a safety headroom. Reactive
// (lags rate ramps by ~1/alpha windows) — the predictor-ablation bench
// quantifies the cost of that lag against the proactive profile predictor.
#pragma once

#include <string>

#include "predict/predictor.h"

namespace cloudprov {

class EwmaPredictor final : public ArrivalRatePredictor {
 public:
  /// alpha in (0, 1]: weight of the newest observation.
  /// headroom >= 0: prediction = ewma * (1 + headroom).
  explicit EwmaPredictor(double alpha, double headroom = 0.1);

  void observe(SimTime window_start, SimTime window_end,
               double observed_rate) override;
  double predict(SimTime t) const override;
  std::string name() const override;

  double current() const { return value_; }

  void save_state(std::vector<double>& out) const override;
  void load_state(const std::vector<double>& in) override;

 private:
  double alpha_;
  double headroom_;
  double value_ = 0.0;
  bool primed_ = false;
};

}  // namespace cloudprov
