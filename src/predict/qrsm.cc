#include "predict/qrsm.h"

#include <algorithm>
#include <cmath>

#include "predict/ar_model.h"  // solve_linear_system
#include "util/check.h"

namespace cloudprov {

QrsmPredictor::QrsmPredictor(std::size_t history, double headroom)
    : history_limit_(history), headroom_(headroom) {
  ensure_arg(history >= 3, "QrsmPredictor: history must be >= 3");
  ensure_arg(headroom >= 0.0, "QrsmPredictor: headroom must be >= 0");
}

void QrsmPredictor::observe(SimTime window_start, SimTime window_end,
                            double observed_rate) {
  history_.push_back(Observation{0.5 * (window_start + window_end), observed_rate});
  if (history_.size() > history_limit_) history_.pop_front();
}

double QrsmPredictor::predict(SimTime t) const {
  if (history_.empty()) return 0.0;
  if (history_.size() < 3) return history_.back().rate * (1.0 + headroom_);

  const SimTime origin = history_.back().midpoint;
  // Scale time to O(1) units for conditioning.
  const double span =
      std::max(1.0, history_.back().midpoint - history_.front().midpoint);

  std::vector<std::vector<double>> xtx(3, std::vector<double>(3, 0.0));
  std::vector<double> xty(3, 0.0);
  for (const Observation& obs : history_) {
    const double u = (obs.midpoint - origin) / span;
    const double x[3] = {1.0, u, u * u};
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) xtx[i][j] += x[i] * x[j];
      xty[i] += x[i] * obs.rate;
    }
  }
  for (std::size_t i = 0; i < 3; ++i) xtx[i][i] += 1e-10;

  std::vector<double> beta;
  try {
    beta = solve_linear_system(std::move(xtx), std::move(xty));
  } catch (const std::invalid_argument&) {
    return history_.back().rate * (1.0 + headroom_);
  }
  const double u = (t - origin) / span;
  const double forecast = beta[0] + beta[1] * u + beta[2] * u * u;
  return std::max(0.0, forecast) * (1.0 + headroom_);
}

void QrsmPredictor::save_state(std::vector<double>& out) const {
  out.push_back(static_cast<double>(history_.size()));
  for (const Observation& obs : history_) {
    out.push_back(obs.midpoint);
    out.push_back(obs.rate);
  }
}

void QrsmPredictor::load_state(const std::vector<double>& in) {
  ensure_arg(!in.empty(), "QrsmPredictor::load_state: bad encoding");
  const auto count = static_cast<std::size_t>(in[0]);
  ensure_arg(in.size() == 1 + 2 * count, "QrsmPredictor::load_state: bad encoding");
  history_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    history_.push_back(Observation{in[1 + 2 * i], in[2 + 2 * i]});
  }
}

}  // namespace cloudprov
