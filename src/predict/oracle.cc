#include "predict/oracle.h"

#include "util/check.h"

namespace cloudprov {

OraclePredictor::OraclePredictor(const RequestSource& source, double margin)
    : source_(source), margin_(margin) {
  ensure_arg(margin >= 0.0, "OraclePredictor: margin must be >= 0");
}

double OraclePredictor::predict(SimTime t) const {
  return source_.expected_rate(t) * (1.0 + margin_);
}

}  // namespace cloudprov
