// Hybrid predictor: proactive profile with a reactive safety net.
//
// The paper's time-based profile is blind to events outside its model —
// a flash crowd ("highly variable load spikes in demand ... depending on
// the popularity of an application", Section I) sails straight past it.
// The hybrid predictor returns the maximum of a model-derived predictor and
// a history-based one, so the pool is sized for whichever is larger: the
// planned profile or the load actually being observed.
#pragma once

#include <memory>
#include <string>

#include "predict/predictor.h"

namespace cloudprov {

class HybridPredictor final : public ArrivalRatePredictor {
 public:
  HybridPredictor(std::shared_ptr<ArrivalRatePredictor> proactive,
                  std::shared_ptr<ArrivalRatePredictor> reactive);

  void observe(SimTime window_start, SimTime window_end,
               double observed_rate) override;
  double predict(SimTime t) const override;
  std::string name() const override;

  void save_state(std::vector<double>& out) const override;
  void load_state(const std::vector<double>& in) override;

 private:
  std::shared_ptr<ArrivalRatePredictor> proactive_;
  std::shared_ptr<ArrivalRatePredictor> reactive_;
};

}  // namespace cloudprov
