// Arrival-rate prediction interface (the estimation side of the paper's
// Workload Analyzer, Section IV-A).
//
// The analyzer feeds each completed observation window's realized arrival
// rate to the predictor and asks for the expected rate of an upcoming window.
// "Prediction can be based on different information; for example ... on
// historical data about resources usage, or based on statistical models
// derived from known application workloads" — both families are implemented:
// model-derived (PeriodicProfilePredictor, OraclePredictor) and history-based
// (EWMA, moving average, AR(p), QRSM), the latter two being the QRSM/ARMAX
// direction the paper lists as future work.
#pragma once

#include <string>
#include <vector>

#include "util/units.h"

namespace cloudprov {

class ArrivalRatePredictor {
 public:
  virtual ~ArrivalRatePredictor() = default;

  /// Reports the realized mean arrival rate over [window_start, window_end).
  virtual void observe(SimTime window_start, SimTime window_end,
                       double observed_rate) = 0;

  /// Expected arrival rate (requests/second) at future time t.
  virtual double predict(SimTime t) const = 0;

  virtual std::string name() const = 0;

  // --- checkpoint support (src/lookahead) --------------------------------
  /// Appends the predictor's mutable fit state (histories, smoothed values)
  /// to `out` as a flat double encoding; load_state consumes the same
  /// encoding on an identically configured predictor. Stateless predictors
  /// (profile, oracle) keep the default no-ops.
  virtual void save_state(std::vector<double>& out) const { (void)out; }
  virtual void load_state(const std::vector<double>& in) { (void)in; }
};

}  // namespace cloudprov
