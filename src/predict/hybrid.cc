#include "predict/hybrid.h"

#include <algorithm>

#include "util/check.h"

namespace cloudprov {

HybridPredictor::HybridPredictor(std::shared_ptr<ArrivalRatePredictor> proactive,
                                 std::shared_ptr<ArrivalRatePredictor> reactive)
    : proactive_(std::move(proactive)), reactive_(std::move(reactive)) {
  ensure_arg(proactive_ != nullptr && reactive_ != nullptr,
             "HybridPredictor: null component");
}

void HybridPredictor::observe(SimTime window_start, SimTime window_end,
                              double observed_rate) {
  proactive_->observe(window_start, window_end, observed_rate);
  reactive_->observe(window_start, window_end, observed_rate);
}

double HybridPredictor::predict(SimTime t) const {
  return std::max(proactive_->predict(t), reactive_->predict(t));
}

std::string HybridPredictor::name() const {
  return "hybrid(" + proactive_->name() + ", " + reactive_->name() + ")";
}

void HybridPredictor::save_state(std::vector<double>& out) const {
  // Length-prefix each component so the combined encoding self-describes.
  std::vector<double> part;
  proactive_->save_state(part);
  out.push_back(static_cast<double>(part.size()));
  out.insert(out.end(), part.begin(), part.end());
  part.clear();
  reactive_->save_state(part);
  out.push_back(static_cast<double>(part.size()));
  out.insert(out.end(), part.begin(), part.end());
}

void HybridPredictor::load_state(const std::vector<double>& in) {
  ensure_arg(!in.empty(), "HybridPredictor::load_state: bad encoding");
  std::size_t pos = 0;
  for (ArrivalRatePredictor* part : {proactive_.get(), reactive_.get()}) {
    ensure_arg(pos < in.size(), "HybridPredictor::load_state: bad encoding");
    const auto len = static_cast<std::size_t>(in[pos++]);
    ensure_arg(pos + len <= in.size(), "HybridPredictor::load_state: bad encoding");
    part->load_state(std::vector<double>(in.begin() + static_cast<std::ptrdiff_t>(pos),
                                         in.begin() + static_cast<std::ptrdiff_t>(pos + len)));
    pos += len;
  }
  ensure_arg(pos == in.size(), "HybridPredictor::load_state: bad encoding");
}

}  // namespace cloudprov
