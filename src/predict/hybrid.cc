#include "predict/hybrid.h"

#include <algorithm>

#include "util/check.h"

namespace cloudprov {

HybridPredictor::HybridPredictor(std::shared_ptr<ArrivalRatePredictor> proactive,
                                 std::shared_ptr<ArrivalRatePredictor> reactive)
    : proactive_(std::move(proactive)), reactive_(std::move(reactive)) {
  ensure_arg(proactive_ != nullptr && reactive_ != nullptr,
             "HybridPredictor: null component");
}

void HybridPredictor::observe(SimTime window_start, SimTime window_end,
                              double observed_rate) {
  proactive_->observe(window_start, window_end, observed_rate);
  reactive_->observe(window_start, window_end, observed_rate);
}

double HybridPredictor::predict(SimTime t) const {
  return std::max(proactive_->predict(t), reactive_->predict(t));
}

std::string HybridPredictor::name() const {
  return "hybrid(" + proactive_->name() + ", " + reactive_->name() + ")";
}

}  // namespace cloudprov
