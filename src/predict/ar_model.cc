#include "predict/ar_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/linalg.h"

namespace cloudprov {

ArPredictor::ArPredictor(std::size_t order, std::size_t history, double headroom)
    : order_(order), history_limit_(history), headroom_(headroom) {
  ensure_arg(order >= 1, "ArPredictor: order must be >= 1");
  ensure_arg(history > 2 * order, "ArPredictor: history must exceed 2 * order");
  ensure_arg(headroom >= 0.0, "ArPredictor: headroom must be >= 0");
}

void ArPredictor::observe(SimTime, SimTime, double observed_rate) {
  history_.push_back(observed_rate);
  if (history_.size() > history_limit_) history_.pop_front();
  refit();
}

void ArPredictor::refit() {
  // Need at least order+1 regression rows for a determined system.
  if (history_.size() < 2 * order_ + 1) {
    coefficients_.clear();
    return;
  }
  const std::size_t p = order_;
  const std::size_t dim = p + 1;  // intercept + p lags
  const std::size_t rows = history_.size() - p;
  // Normal equations X'X beta = X'y with X = [1, x_{t-1}, ..., x_{t-p}].
  std::vector<std::vector<double>> xtx(dim, std::vector<double>(dim, 0.0));
  std::vector<double> xty(dim, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> x(dim);
    x[0] = 1.0;
    for (std::size_t i = 1; i <= p; ++i) x[i] = history_[r + p - i];
    const double y = history_[r + p];
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j < dim; ++j) xtx[i][j] += x[i] * x[j];
      xty[i] += x[i] * y;
    }
  }
  // Ridge-regularize slightly: observed rates can sit on a flat segment,
  // making the lag columns collinear.
  for (std::size_t i = 0; i < dim; ++i) xtx[i][i] += 1e-8;
  try {
    coefficients_ = solve_linear_system(std::move(xtx), std::move(xty));
  } catch (const std::invalid_argument&) {
    coefficients_.clear();
  }
}

double ArPredictor::predict(SimTime) const {
  if (history_.empty()) return 0.0;
  if (coefficients_.empty()) {
    return history_.back() * (1.0 + headroom_);  // cold-start fallback
  }
  double forecast = coefficients_[0];
  for (std::size_t i = 1; i <= order_; ++i) {
    forecast += coefficients_[i] * history_[history_.size() - i];
  }
  forecast = std::max(0.0, forecast);
  return forecast * (1.0 + headroom_);
}

std::string ArPredictor::name() const {
  return "ar(" + std::to_string(order_) + ")";
}

void ArPredictor::save_state(std::vector<double>& out) const {
  out.push_back(static_cast<double>(history_.size()));
  for (double r : history_) out.push_back(r);
}

void ArPredictor::load_state(const std::vector<double>& in) {
  ensure_arg(!in.empty(), "ArPredictor::load_state: bad encoding");
  const auto count = static_cast<std::size_t>(in[0]);
  ensure_arg(in.size() == 1 + count, "ArPredictor::load_state: bad encoding");
  history_.assign(in.begin() + 1, in.end());
  refit();  // coefficients are a pure function of the history
}

}  // namespace cloudprov
