#include "predict/periodic_profile.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudprov {

PeriodicProfilePredictor::PeriodicProfilePredictor(std::vector<ProfileEntry> entries,
                                                   int period_days,
                                                   std::string label)
    : entries_(std::move(entries)), period_days_(period_days), label_(std::move(label)) {
  ensure_arg(!entries_.empty(), "PeriodicProfilePredictor: need at least one entry");
  ensure_arg(period_days_ >= 1, "PeriodicProfilePredictor: period must be >= 1 day");
  for (const ProfileEntry& e : entries_) {
    ensure_arg(e.day >= -1 && e.day < period_days_,
               "PeriodicProfilePredictor: entry day out of range");
    ensure_arg(e.time_of_day >= 0.0 && e.time_of_day < duration::kDay,
               "PeriodicProfilePredictor: time_of_day out of range");
    ensure_arg(e.rate >= 0.0, "PeriodicProfilePredictor: negative rate");
  }
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const ProfileEntry& a, const ProfileEntry& b) {
                     return a.time_of_day < b.time_of_day;
                   });
}

double PeriodicProfilePredictor::predict(SimTime t) const {
  if (t < 0.0) t = 0.0;
  const int day = static_cast<int>(day_index(t) % period_days_);
  const SimTime tod = seconds_into_day(t);

  // Find the latest entry applicable to (day, tod); if none has fired yet
  // today, wrap to the last entry of the previous day in the cycle.
  auto applicable = [&](int d, SimTime before_tod) -> const ProfileEntry* {
    const ProfileEntry* best = nullptr;
    for (const ProfileEntry& e : entries_) {
      if (e.day != -1 && e.day != d) continue;
      if (e.time_of_day <= before_tod) best = &e;  // entries sorted by tod
    }
    return best;
  };

  if (const ProfileEntry* entry = applicable(day, tod)) return entry->rate;
  for (int back = 1; back <= period_days_; ++back) {
    const int d = ((day - back) % period_days_ + period_days_) % period_days_;
    if (const ProfileEntry* entry = applicable(d, duration::kDay)) {
      return entry->rate;
    }
  }
  return entries_.front().rate;
}

PeriodicProfilePredictor web_six_period_profile(const WebWorkloadConfig& config) {
  // The paper's six periods (Section V-B1). Each period's prediction is the
  // maximum of Equation 2 over the period, scanned at one-minute granularity.
  static constexpr double kBoundaries[] = {2.0 * 3600.0,  7.0 * 3600.0,
                                           11.5 * 3600.0, 12.5 * 3600.0,
                                           16.0 * 3600.0, 20.0 * 3600.0};
  const WebWorkload model(config);
  std::vector<ProfileEntry> entries;
  const int days = 7;
  for (int day = 0; day < days; ++day) {
    for (std::size_t p = 0; p < std::size(kBoundaries); ++p) {
      const SimTime start = kBoundaries[p];
      const SimTime end = kBoundaries[(p + 1) % std::size(kBoundaries)];
      double peak = 0.0;
      // Scan the period (wrapping across midnight for the 20:00-02:00 one).
      const SimTime span = end > start ? end - start : duration::kDay - start + end;
      for (SimTime offset = 0.0; offset <= span; offset += duration::kMinute) {
        const SimTime tod = std::fmod(start + offset, duration::kDay);
        const int sample_day =
            (start + offset >= duration::kDay) ? (day + 1) % days : day;
        const SimTime t = static_cast<double>(sample_day) * duration::kDay + tod;
        peak = std::max(peak, model.expected_rate(std::fmod(
                                  t, static_cast<double>(days) * duration::kDay)));
      }
      entries.push_back(ProfileEntry{day, start, peak});
    }
  }
  return PeriodicProfilePredictor(std::move(entries), days, "web-six-period");
}

PeriodicProfilePredictor web_profile_predictor(const WebWorkloadConfig& config,
                                               SimTime window) {
  ensure_arg(window > 0.0 && window <= duration::kDay,
             "web_profile_predictor: window must be in (0, 1 day]");
  const WebWorkload model(config);
  const int days = 7;
  std::vector<ProfileEntry> entries;
  for (int day = 0; day < days; ++day) {
    for (SimTime start = 0.0; start < duration::kDay; start += window) {
      double peak = 0.0;
      const SimTime end = std::min(start + window, duration::kDay);
      for (SimTime t = start; t <= end; t += duration::kMinute) {
        const SimTime abs_t = static_cast<double>(day) * duration::kDay +
                              std::min(t, duration::kDay - 1.0);
        peak = std::max(peak, model.expected_rate(abs_t));
      }
      entries.push_back(ProfileEntry{day, start, peak});
    }
  }
  return PeriodicProfilePredictor(std::move(entries), days, "web-eq2-profile");
}

PeriodicProfilePredictor bot_profile_predictor(const BotWorkloadConfig& config,
                                               double peak_factor,
                                               double offpeak_factor) {
  const BotWorkload model(config);
  // Section V-B2: the tasks-per-job estimate is the size-class mode (1.309)
  // "increased by 20%" (peak_factor) in both phases.
  const double tasks_per_job = model.size_mode() * peak_factor;
  // Peak: inflated tasks-per-job over the interarrival-time mode.
  const double peak_rate =
      tasks_per_job / (model.interarrival_mode() / config.scale);
  // Off-peak: mode of the per-window job count times 2.6 (offpeak_factor,
  // absorbing the Weibull count variability), expanded to tasks and spread
  // over the window. Reproduces the paper's reported minimum of 13 VMs.
  const double offpeak_rate = model.offpeak_count_mode() * config.scale *
                              offpeak_factor * tasks_per_job /
                              config.offpeak_window;
  std::vector<ProfileEntry> entries{
      ProfileEntry{-1, 0.0, offpeak_rate},
      ProfileEntry{-1, config.peak_start, peak_rate},
      ProfileEntry{-1, config.peak_end, offpeak_rate},
  };
  return PeriodicProfilePredictor(std::move(entries), 1, "bot-peak-offpeak");
}

}  // namespace cloudprov
