// Oracle predictor: reads the workload's ground-truth expected rate.
//
// Not realizable in production — it exists to upper-bound what any predictor
// could achieve, which the predictor-ablation bench uses to separate
// "prediction error" from "provisioning-algorithm error".
#pragma once

#include <string>

#include "predict/predictor.h"
#include "workload/source.h"

namespace cloudprov {

class OraclePredictor final : public ArrivalRatePredictor {
 public:
  /// `source` must outlive the predictor. `margin` inflates the truth, since
  /// an exact-mean prediction still under-provisions half the time.
  explicit OraclePredictor(const RequestSource& source, double margin = 0.05);

  void observe(SimTime, SimTime, double) override {}
  double predict(SimTime t) const override;
  std::string name() const override { return "oracle"; }

 private:
  const RequestSource& source_;
  double margin_;
};

}  // namespace cloudprov
