#include "predict/moving_average.h"

#include <algorithm>

#include "util/check.h"

namespace cloudprov {

MovingAveragePredictor::MovingAveragePredictor(std::size_t window, Mode mode,
                                               double headroom)
    : window_(window), mode_(mode), headroom_(headroom) {
  ensure_arg(window >= 1, "MovingAveragePredictor: window must be >= 1");
  ensure_arg(headroom >= 0.0, "MovingAveragePredictor: headroom must be >= 0");
}

void MovingAveragePredictor::observe(SimTime, SimTime, double observed_rate) {
  history_.push_back(observed_rate);
  if (history_.size() > window_) history_.pop_front();
}

double MovingAveragePredictor::predict(SimTime) const {
  if (history_.empty()) return 0.0;
  double value = 0.0;
  if (mode_ == Mode::kMean) {
    for (double r : history_) value += r;
    value /= static_cast<double>(history_.size());
  } else {
    value = *std::max_element(history_.begin(), history_.end());
  }
  return value * (1.0 + headroom_);
}

void MovingAveragePredictor::save_state(std::vector<double>& out) const {
  out.push_back(static_cast<double>(history_.size()));
  for (double r : history_) out.push_back(r);
}

void MovingAveragePredictor::load_state(const std::vector<double>& in) {
  ensure_arg(!in.empty(), "MovingAveragePredictor::load_state: bad encoding");
  const auto count = static_cast<std::size_t>(in[0]);
  ensure_arg(in.size() == 1 + count,
             "MovingAveragePredictor::load_state: bad encoding");
  history_.assign(in.begin() + 1, in.end());
}

std::string MovingAveragePredictor::name() const {
  return std::string("moving-average(") +
         (mode_ == Mode::kMean ? "mean" : "max") + "," +
         std::to_string(window_) + ")";
}

}  // namespace cloudprov
