// Sliding-window moving-average predictor with optional max-of-window mode.
#pragma once

#include <deque>
#include <string>

#include "predict/predictor.h"

namespace cloudprov {

class MovingAveragePredictor final : public ArrivalRatePredictor {
 public:
  enum class Mode {
    kMean,  ///< predict the window mean (tracks the center of the rate)
    kMax,   ///< predict the window max (conservative envelope)
  };

  MovingAveragePredictor(std::size_t window, Mode mode = Mode::kMean,
                         double headroom = 0.1);

  void observe(SimTime window_start, SimTime window_end,
               double observed_rate) override;
  double predict(SimTime t) const override;
  std::string name() const override;

  void save_state(std::vector<double>& out) const override;
  void load_state(const std::vector<double>& in) override;

 private:
  std::size_t window_;
  Mode mode_;
  double headroom_;
  std::deque<double> history_;
};

}  // namespace cloudprov
