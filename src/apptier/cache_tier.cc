#include "apptier/cache_tier.h"

#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

CacheTier::CacheTier(Simulation& sim, const ApptierConfig& config,
                     QosTargets qos, ApplicationProvisioner& cache_pool,
                     ApplicationProvisioner& backend_pool,
                     RequestSink& backend_sink, Rng rng, Telemetry* telemetry)
    : sim_(sim),
      config_(config),
      qos_(qos),
      cache_pool_(cache_pool),
      backend_pool_(backend_pool),
      backend_sink_(backend_sink),
      rng_(rng),
      telemetry_(telemetry),
      cache_demand_(config.cache_service_base, config.cache_service_spread) {
  ensure_arg(config_.cache_capacity_per_vm > 0,
             "CacheTier: capacity per VM must be > 0");
  ensure_arg(config_.ttl > 0.0, "CacheTier: ttl must be > 0");
  ensure_arg(config_.hit_ewma_alpha > 0.0 && config_.hit_ewma_alpha <= 1.0,
             "CacheTier: hit_ewma_alpha must be in (0, 1]");
  ensure_arg(
      config_.assumed_hit_ratio >= 0.0 && config_.assumed_hit_ratio < 1.0,
      "CacheTier: assumed_hit_ratio must be in [0, 1)");
  // Chain completion listeners: the tier interposes after whatever is
  // already installed (the resilience gateway registers first), so both see
  // every completion in a fixed order — tier accounting/fill, then chain.
  ApplicationProvisioner::CompletionListener backend_prev =
      backend_pool_.completion_listener();
  backend_pool_.set_completion_listener(
      [this, backend_prev = std::move(backend_prev)](const Request& request,
                                                     double response_time) {
        on_backend_complete(request, response_time);
        if (backend_prev) backend_prev(request, response_time);
      });
  ApplicationProvisioner::CompletionListener cache_prev =
      cache_pool_.completion_listener();
  cache_pool_.set_completion_listener(
      [this, cache_prev = std::move(cache_prev)](const Request& request,
                                                 double response_time) {
        on_cache_complete(request, response_time);
        if (cache_prev) cache_prev(request, response_time);
      });
}

void CacheTier::start() {
  flush_events_.assign(config_.flush_at.size(), kInvalidEventId);
  for (std::size_t i = 0; i < config_.flush_at.size(); ++i) {
    flush_events_[i] = sim_.schedule_at(config_.flush_at[i],
                                        [this, i] { fire_flush(i); });
  }
  crash_events_.assign(config_.cache_crash_at.size(), kInvalidEventId);
  for (std::size_t i = 0; i < config_.cache_crash_at.size(); ++i) {
    crash_events_[i] = sim_.schedule_at(config_.cache_crash_at[i],
                                        [this, i] { fire_crash(i); });
  }
}

std::size_t CacheTier::directory_capacity() const {
  return config_.cache_capacity_per_vm * cache_pool_.active_instances();
}

std::uint32_t CacheTier::slot_for(std::uint64_t key) const {
  const std::size_t active = cache_pool_.active_instances();
  return active > 0 ? static_cast<std::uint32_t>(key % active) : 0;
}

void CacheTier::erase_entry(std::uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

void CacheTier::on_request(const Request& request) {
  ++window_arrivals_;
  ++window_lookups_;
  const SimTime now = sim_.now();
  bool hit = false;
  if (request.key != 0 && cache_pool_.active_instances() > 0) {
    auto it = index_.find(request.key);
    if (it != index_.end()) {
      Entry& entry = *it->second;
      if (entry.expiry <= now) {
        ++expirations_;
        erase_entry(request.key);
      } else if (entry.slot != slot_for(request.key)) {
        // Modulo-sharded slot moved (crash/resize): the resident copy is on
        // the wrong cache VM now — a real fleet would miss here too.
        ++invalidations_;
        erase_entry(request.key);
      } else {
        hit = true;
        lru_.splice(lru_.begin(), lru_, it->second);  // LRU touch
      }
    }
  }
  if (hit) {
    ++hits_;
    ++window_hits_;
    Request served = request;
    served.service_demand = cache_demand_.sample(rng_);
    cache_pool_.on_request(served);  // admission + accounting in the pool
  } else {
    ++misses_;
    backend_sink_.on_request(request);
  }
  // After dispatch, so the span tracer's pending trace (created by the
  // pool's request_arrival) exists when the lookup tags its tier.
  if (telemetry_ != nullptr) {
    telemetry_->cache_lookup(now, request.id, hit);
  }
}

std::uint64_t CacheTier::take_window_arrivals() {
  const std::uint64_t n = window_arrivals_;
  window_arrivals_ = 0;
  return n;
}

double CacheTier::fold_window() {
  if (window_lookups_ > 0) {
    const double ratio = static_cast<double>(window_hits_) /
                         static_cast<double>(window_lookups_);
    last_window_hit_ratio_ = ratio;
    hit_ewma_ = hit_ewma_ < 0.0
                    ? ratio
                    : config_.hit_ewma_alpha * ratio +
                          (1.0 - config_.hit_ewma_alpha) * hit_ewma_;
    window_hits_ = 0;
    window_lookups_ = 0;
  }
  return hit_ewma_;
}

void CacheTier::record_window_sample(SimTime t, double lambda_miss,
                                     double predicted_response) {
  series_.push_back(ApptierState::WindowSample{
      t, last_window_hit_ratio_, lambda_miss, predicted_response});
  lambda_miss_sum_ += lambda_miss;
  ++windows_;
}

double CacheTier::hit_ratio() const {
  const std::uint64_t total = hits_ + misses_;
  return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total)
                   : 0.0;
}

double CacheTier::planning_hit_ratio() const {
  return hit_ewma_ >= 0.0 ? hit_ewma_ : config_.assumed_hit_ratio;
}

void CacheTier::on_cache_complete(const Request& request,
                                  double response_time) {
  (void)request;
  record_completion(response_time);
}

void CacheTier::on_backend_complete(const Request& request,
                                    double response_time) {
  record_completion(response_time);
  if (request.key == 0) return;
  const std::size_t capacity = directory_capacity();
  if (capacity == 0) return;  // no active cache VMs: nothing to fill into
  const SimTime now = sim_.now();
  erase_entry(request.key);
  lru_.push_front(
      Entry{request.key, now + config_.ttl, slot_for(request.key)});
  index_[request.key] = lru_.begin();
  ++fills_;
  if (telemetry_ != nullptr) telemetry_->cache_fill(now, request.id);
  while (lru_.size() > capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

void CacheTier::record_completion(double response_time) {
  response_stats_.add(response_time);
  p95_.add(response_time);
  p99_.add(response_time);
  if (response_time > qos_.max_response_time) ++qos_violations_;
}

void CacheTier::fire_flush(std::size_t index) {
  flush_events_[index] = kInvalidEventId;
  const std::size_t dropped = lru_.size();
  lru_.clear();
  index_.clear();
  ++flushes_;
  if (telemetry_ != nullptr) {
    telemetry_->cache_flush(sim_.now(), dropped);
  }
  CLOUDPROV_LOG(Debug) << "apptier: TTL storm at t=" << sim_.now()
                       << " dropped " << dropped << " entries";
}

void CacheTier::fire_crash(std::size_t index) {
  crash_events_[index] = kInvalidEventId;
  if (cache_pool_.live_instances() == 0) return;
  const std::size_t lost = cache_pool_.inject_instance_failure(0);
  CLOUDPROV_LOG(Debug) << "apptier: cache VM crash at t=" << sim_.now()
                       << " lost " << lost << " in-flight hits";
}

void CacheTier::capture(ApptierState& state) const {
  state.directory.clear();
  state.directory.reserve(lru_.size());
  for (const Entry& entry : lru_) {
    state.directory.push_back(
        ApptierState::DirectoryEntry{entry.key, entry.expiry, entry.slot});
  }
  state.rng = rng_.state();
  state.hits = hits_;
  state.misses = misses_;
  state.fills = fills_;
  state.evictions = evictions_;
  state.expirations = expirations_;
  state.invalidations = invalidations_;
  state.flushes = flushes_;
  state.window_arrivals = window_arrivals_;
  state.window_hits = window_hits_;
  state.window_lookups = window_lookups_;
  state.hit_ewma = hit_ewma_;
  state.last_window_hit_ratio = last_window_hit_ratio_;
  state.lambda_miss_sum = lambda_miss_sum_;
  state.windows = windows_;
  state.response_stats = response_stats_;
  state.p95 = p95_;
  state.p99 = p99_;
  state.qos_violations = qos_violations_;
  state.series = series_;
  state.flush_events.clear();
  for (EventId id : flush_events_) state.flush_events.push_back(sim_.stamp(id));
  state.crash_events.clear();
  for (EventId id : crash_events_) state.crash_events.push_back(sim_.stamp(id));
}

void CacheTier::restore(const ApptierState& state) {
  ensure(lru_.empty() && flush_events_.empty() && crash_events_.empty(),
         "CacheTier::restore: tier already started");
  for (const ApptierState::DirectoryEntry& entry : state.directory) {
    lru_.push_back(Entry{entry.key, entry.expiry, entry.slot});
    index_[entry.key] = std::prev(lru_.end());
  }
  rng_.set_state(state.rng);
  hits_ = state.hits;
  misses_ = state.misses;
  fills_ = state.fills;
  evictions_ = state.evictions;
  expirations_ = state.expirations;
  invalidations_ = state.invalidations;
  flushes_ = state.flushes;
  window_arrivals_ = state.window_arrivals;
  window_hits_ = state.window_hits;
  window_lookups_ = state.window_lookups;
  hit_ewma_ = state.hit_ewma;
  last_window_hit_ratio_ = state.last_window_hit_ratio;
  lambda_miss_sum_ = state.lambda_miss_sum;
  windows_ = state.windows;
  response_stats_ = state.response_stats;
  p95_ = state.p95;
  p99_ = state.p99;
  qos_violations_ = state.qos_violations;
  series_ = state.series;
  ensure_arg(state.flush_events.size() == config_.flush_at.size() &&
                 state.crash_events.size() == config_.cache_crash_at.size(),
             "CacheTier::restore: chaos schedule mismatch");
  flush_events_.assign(config_.flush_at.size(), kInvalidEventId);
  for (std::size_t i = 0; i < state.flush_events.size(); ++i) {
    if (state.flush_events[i].has_value()) {
      flush_events_[i] = sim_.schedule_stamped(*state.flush_events[i],
                                               [this, i] { fire_flush(i); });
    }
  }
  crash_events_.assign(config_.cache_crash_at.size(), kInvalidEventId);
  for (std::size_t i = 0; i < state.crash_events.size(); ++i) {
    if (state.crash_events[i].has_value()) {
      crash_events_[i] = sim_.schedule_stamped(*state.crash_events[i],
                                               [this, i] { fire_crash(i); });
    }
  }
}

}  // namespace cloudprov
