// Per-tier Algorithm 1: the multi-tier analog of AdaptivePolicy.
//
// One workload analyzer taps the cache tier's front door, so the predictor
// sees the TOTAL expected arrival rate lambda. Every analysis window the
// provisioner then plans both pools:
//
//   cache tier   : Algorithm 1 at lambda_cache = lambda * h      (hits)
//   backend tier : Algorithm 1 at lambda_miss  = lambda * (1-h)  (misses)
//
// where h is the cache tier's live planning hit ratio (EWMA over closed
// windows) — the feedback loop that lets the backend shrink as the cache
// warms. Before the first window closes the cache plans with the configured
// assumed hit ratio while the backend conservatively assumes h = 0.
//
// The decomposed miss path (cache lookup stage -> backend stage) is solved
// through queueing::solve_tandem for a predicted end-to-end response time,
// recorded per window in the cache tier's series: predicted E2E =
// h * R_cache + (1-h) * R_tandem(miss path).
//
// Checkpointing reuses AdaptivePolicy::State verbatim for the backend half
// (analyzer + shared predictor + backend decision log), so WorldState.policy
// and the disk codec need no new shape; the cache-tier decision log rides in
// ApptierState.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "apptier/cache_tier.h"
#include "core/adaptive_policy.h"
#include "core/performance_modeler.h"
#include "core/workload_analyzer.h"

namespace cloudprov {

class TieredProvisioner {
 public:
  TieredProvisioner(Simulation& sim,
                    std::shared_ptr<ArrivalRatePredictor> predictor,
                    ModelerConfig backend_modeler_config,
                    AnalyzerConfig analyzer_config, ApptierConfig config);

  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Binds both pools and the tier, performs initial sizing (cache pool to
  /// config.cache_vms, backend via the initial alert), and starts the
  /// analysis process.
  void attach(ApplicationProvisioner& backend, ApplicationProvisioner& cache,
              CacheTier& tier);

  /// Backend-half checkpoint, shape-compatible with AdaptivePolicy::State.
  AdaptivePolicy::State checkpoint() const;
  /// Restore counterpart of attach(): no initial sizing, analyzer re-armed
  /// under its snapshot stamp.
  void restore_attach(ApplicationProvisioner& backend,
                      ApplicationProvisioner& cache, CacheTier& tier,
                      const AdaptivePolicy::State& state);

  const std::vector<AdaptivePolicy::DecisionRecord>& decisions() const {
    return decisions_;
  }
  const std::vector<AdaptivePolicy::DecisionRecord>& cache_decisions() const {
    return cache_decisions_;
  }
  /// Snapshot/restore of the cache-tier decision log (ApptierState).
  void restore_cache_decisions(
      std::vector<AdaptivePolicy::DecisionRecord> decisions) {
    cache_decisions_ = std::move(decisions);
  }

  std::string name() const { return "tiered(cache+backend)"; }

 private:
  void bind(ApplicationProvisioner& backend, ApplicationProvisioner& cache,
            CacheTier& tier);
  void on_rate_alert(SimTime t, double expected_rate);

  Simulation& sim_;
  std::shared_ptr<ArrivalRatePredictor> predictor_;
  ModelerConfig backend_modeler_config_;
  AnalyzerConfig analyzer_config_;
  ApptierConfig config_;
  Telemetry* telemetry_ = nullptr;

  ApplicationProvisioner* backend_ = nullptr;
  ApplicationProvisioner* cache_ = nullptr;
  CacheTier* tier_ = nullptr;
  std::optional<PerformanceModeler> backend_modeler_;
  std::optional<PerformanceModeler> cache_modeler_;
  std::optional<WorkloadAnalyzer> analyzer_;
  std::vector<AdaptivePolicy::DecisionRecord> decisions_;        ///< backend
  std::vector<AdaptivePolicy::DecisionRecord> cache_decisions_;  ///< cache
};

}  // namespace cloudprov
