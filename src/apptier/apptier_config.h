// Multi-tier application configuration (cache tier + backend tier).
//
// Models the application as a tandem: a cache tier with a finite keyed
// directory (Zipf traffic's hot head lives here) in front of the existing
// VM-pool backend. Request flow is look-aside: cache hit -> fast reply from
// a cache VM, cache miss -> backend service -> cache fill with a TTL.
// Disabled (the default) the subsystem constructs nothing and every run is
// bit-identical to a single-tier world.
#pragma once

#include <cstddef>
#include <vector>

#include "cloud/vm.h"
#include "core/performance_modeler.h"
#include "core/qos.h"
#include "util/units.h"

namespace cloudprov {

struct ApptierConfig {
  bool enabled = false;

  // --- cache pool (its own datacenter + provisioner) ----------------------
  /// Shape of a cache VM; cache VMs are deliberately cheap (paper-shape 1
  /// core) and sized by directory capacity, not compute.
  VmSpec cache_vm_spec;
  /// Hosts backing the cache pool's private datacenter.
  std::size_t cache_hosts = 200;
  /// Directory entries one cache VM holds; total capacity scales with the
  /// active cache pool, so scale-downs and crashes shed the LRU tail.
  std::size_t cache_capacity_per_vm = 4096;
  /// Service demand of a cache hit: base x U(1, 1 + spread) — an order of
  /// magnitude below a backend miss.
  double cache_service_base = 0.010;
  double cache_service_spread = 0.10;
  /// Tm seed for the cache pool before its first completion.
  double initial_cache_service_estimate = 0.011;

  /// Time-to-live of a cache fill (lazy expiry at lookup).
  SimTime ttl = 300.0;

  /// Initial / static cache pool size (static policy keeps it fixed; the
  /// tiered provisioner re-plans it every analysis window).
  std::size_t cache_vms = 4;

  /// Algorithm 1 configuration for the cache tier (the backend keeps the
  /// scenario's main modeler config).
  ModelerConfig cache_modeler;
  /// Cache tier's own response-time target (hits should be fast).
  QosTargets cache_qos{0.050, 0.0, 0.5};

  /// EWMA weight of the latest window's hit ratio in the planning estimate
  /// h that derives the backend offered load lambda_miss = lambda * (1 - h).
  double hit_ewma_alpha = 0.3;
  /// Planning hit ratio assumed for the cache pool before the first window
  /// closes (the backend conservatively assumes h = 0 until then).
  double assumed_hit_ratio = 0.5;

  // --- seeded chaos -------------------------------------------------------
  /// Crash one cache VM at each time (warmup-transient experiments: the
  /// slot remap invalidates resident entries and the pool re-heals on the
  /// next planning window).
  std::vector<SimTime> cache_crash_at;
  /// Flush the whole directory at each time (TTL storm: a warm cache goes
  /// cold instantly and the backend eats the full lambda).
  std::vector<SimTime> flush_at;
};

}  // namespace cloudprov
