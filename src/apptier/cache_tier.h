// Cache tier: a keyed look-aside cache pool in front of the VM-pool backend.
//
// Sits between the broker (or whatever delivers requests) and the backend
// request sink. Every request does a synchronous directory lookup:
//
//   hit  -> the request is served by the cache pool with a small service
//           demand drawn from the apptier RNG stream (LRU touch);
//   miss -> the request is forwarded unchanged to the backend sink; when the
//           backend completes it, the key is filled with expiry now + TTL.
//
// The directory is an LRU list + index with lazy TTL expiry. Entries are
// tagged with the modulo shard slot (key % active cache VMs) current at fill
// time; a lookup whose recomputed slot disagrees counts as an invalidation —
// so cache-VM crashes and resizes produce the realistic warmup transient of
// a consistent-hashing-free memcached fleet. Total capacity scales with the
// active cache pool (capacity_per_vm x active VMs).
//
// The tier also owns the END-TO-END request accounting (response stats, tail
// quantiles, QoS violations across both pools), since neither pool alone
// sees every completion.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "apptier/apptier_config.h"
#include "cloud/broker.h"
#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "stats/quantile.h"
#include "stats/running_stats.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace cloudprov {

class Telemetry;

/// Mutable apptier state for WorldState snapshot/restore and the disk
/// checkpoint codec (appended as an optional at codec version 3).
struct ApptierState {
  Datacenter::Snapshot cache_datacenter;
  ApplicationProvisioner::Snapshot cache_provisioner;

  /// Directory in LRU order (front = most recently used).
  struct DirectoryEntry {
    std::uint64_t key = 0;
    SimTime expiry = 0.0;
    std::uint32_t slot = 0;
  };
  std::vector<DirectoryEntry> directory;

  Rng::State rng;  ///< cache service-demand stream

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t flushes = 0;
  std::uint64_t window_arrivals = 0;
  std::uint64_t window_hits = 0;
  std::uint64_t window_lookups = 0;
  double hit_ewma = -1.0;  ///< <0 = no window closed yet
  double last_window_hit_ratio = 0.0;
  double lambda_miss_sum = 0.0;
  std::uint64_t windows = 0;

  // End-to-end accounting across both pools.
  RunningStats response_stats;
  P2Quantile p95{0.95};
  P2Quantile p99{0.99};
  std::uint64_t qos_violations = 0;

  /// One sample per analysis window: the warmup-transient time series.
  struct WindowSample {
    SimTime t = 0.0;
    double hit_ratio = 0.0;  ///< instantaneous window ratio
    double lambda_miss = 0.0;
    double predicted_response = 0.0;  ///< tandem-model end-to-end prediction
  };
  std::vector<WindowSample> series;

  /// Pending seeded-chaos events, parallel to config.flush_at /
  /// config.cache_crash_at; disengaged once fired.
  std::vector<std::optional<EventStamp>> flush_events;
  std::vector<std::optional<EventStamp>> crash_events;

  /// TieredProvisioner's cache-tier decision log (the backend tier's log
  /// rides in WorldState.policy.decisions).
  std::vector<AdaptivePolicy::DecisionRecord> cache_decisions;
};

class CacheTier final : public RequestSink {
 public:
  /// `backend_sink` is where misses go (the resilience gateway when enabled,
  /// else the backend provisioner); `backend_pool` is the pool whose
  /// completion listener is wrapped for cache fills. The tier chains any
  /// previously installed listeners on both pools.
  CacheTier(Simulation& sim, const ApptierConfig& config, QosTargets qos,
            ApplicationProvisioner& cache_pool,
            ApplicationProvisioner& backend_pool, RequestSink& backend_sink,
            Rng rng, Telemetry* telemetry);

  /// Schedules the configured TTL-storm flushes and cache-VM crashes.
  /// Call once per fresh world; restored worlds re-arm via restore().
  void start();

  // --- RequestSink (the broker's sink in tiered worlds) -------------------
  void on_request(const Request& request) override;

  // --- windowed observation (TieredProvisioner, per analysis window) ------
  /// Front-door arrivals since the last call (the analyzer's tap).
  std::uint64_t take_window_arrivals();
  /// Folds the closing window's hit ratio into the planning EWMA and resets
  /// the window. Returns the EWMA (<0 until a window with lookups closed).
  double fold_window();
  /// Appends one warmup-transient series sample.
  void record_window_sample(SimTime t, double lambda_miss,
                            double predicted_response);

  // --- live signals -------------------------------------------------------
  double hit_ratio() const;  ///< lifetime hits / lookups
  /// Planning estimate h: the EWMA, or the configured assumption before the
  /// first closed window.
  double planning_hit_ratio() const;
  double last_window_hit_ratio() const { return last_window_hit_ratio_; }
  std::size_t directory_size() const { return lru_.size(); }
  std::size_t directory_capacity() const;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t fills() const { return fills_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t expirations() const { return expirations_; }
  std::uint64_t invalidations() const { return invalidations_; }
  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t lookups() const { return hits_ + misses_; }
  double lambda_miss_mean() const {
    return windows_ > 0 ? lambda_miss_sum_ / static_cast<double>(windows_)
                        : 0.0;
  }

  // --- end-to-end accounting ----------------------------------------------
  const RunningStats& response_time_stats() const { return response_stats_; }
  double response_p95() const { return p95_.value(); }
  double response_p99() const { return p99_.value(); }
  std::uint64_t qos_violations() const { return qos_violations_; }

  ApplicationProvisioner& cache_pool() { return cache_pool_; }
  const std::vector<ApptierState::WindowSample>& series() const {
    return series_;
  }

  // --- snapshot/restore (src/lookahead) -----------------------------------
  /// Fills the tier-owned part of `state` (directory, RNG, counters, stats,
  /// series, pending chaos-event stamps). The cache datacenter/provisioner
  /// snapshots and the decision logs are captured by their owners.
  void capture(ApptierState& state) const;
  /// Restores the tier-owned part and re-arms pending chaos events under
  /// their original stamps. Must run on a freshly constructed tier (before
  /// start(), which it replaces).
  void restore(const ApptierState& state);

 private:
  struct Entry {
    std::uint64_t key = 0;
    SimTime expiry = 0.0;
    std::uint32_t slot = 0;
  };

  std::uint32_t slot_for(std::uint64_t key) const;
  void erase_entry(std::uint64_t key);
  void on_cache_complete(const Request& request, double response_time);
  void on_backend_complete(const Request& request, double response_time);
  void record_completion(double response_time);
  void fire_flush(std::size_t index);
  void fire_crash(std::size_t index);

  Simulation& sim_;
  ApptierConfig config_;
  QosTargets qos_;
  ApplicationProvisioner& cache_pool_;
  ApplicationProvisioner& backend_pool_;
  RequestSink& backend_sink_;
  Rng rng_;
  Telemetry* telemetry_ = nullptr;
  ScaledUniformDistribution cache_demand_;

  std::list<Entry> lru_;  ///< front = MRU
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t fills_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t window_arrivals_ = 0;
  std::uint64_t window_hits_ = 0;
  std::uint64_t window_lookups_ = 0;
  double hit_ewma_ = -1.0;
  double last_window_hit_ratio_ = 0.0;
  double lambda_miss_sum_ = 0.0;
  std::uint64_t windows_ = 0;

  RunningStats response_stats_;
  P2Quantile p95_{0.95};
  P2Quantile p99_{0.99};
  std::uint64_t qos_violations_ = 0;

  std::vector<ApptierState::WindowSample> series_;

  std::vector<EventId> flush_events_;
  std::vector<EventId> crash_events_;
};

}  // namespace cloudprov
