#include "apptier/tiered_provisioner.h"

#include <algorithm>

#include "profile/wall_profiler.h"
#include "queueing/tandem.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

TieredProvisioner::TieredProvisioner(
    Simulation& sim, std::shared_ptr<ArrivalRatePredictor> predictor,
    ModelerConfig backend_modeler_config, AnalyzerConfig analyzer_config,
    ApptierConfig config)
    : sim_(sim),
      predictor_(std::move(predictor)),
      backend_modeler_config_(backend_modeler_config),
      analyzer_config_(analyzer_config),
      config_(std::move(config)) {
  ensure_arg(predictor_ != nullptr, "TieredProvisioner: null predictor");
  ensure_arg(config_.enabled, "TieredProvisioner: apptier must be enabled");
}

void TieredProvisioner::bind(ApplicationProvisioner& backend,
                             ApplicationProvisioner& cache, CacheTier& tier) {
  ensure(backend_ == nullptr, "TieredProvisioner: attached twice");
  backend_ = &backend;
  cache_ = &cache;
  tier_ = &tier;
  backend_modeler_.emplace(backend.qos(), backend_modeler_config_);
  cache_modeler_.emplace(cache.qos(), config_.cache_modeler);
  analyzer_.emplace(
      sim_, [&tier] { return tier.take_window_arrivals(); }, predictor_,
      analyzer_config_);
}

void TieredProvisioner::attach(ApplicationProvisioner& backend,
                               ApplicationProvisioner& cache,
                               CacheTier& tier) {
  bind(backend, cache, tier);
  // Pre-provision the cache pool so the directory has somewhere to live
  // before the first planning window.
  cache.scale_to(std::max<std::size_t>(config_.cache_vms, 1));
  analyzer_->start(
      [this](SimTime t, double rate) { on_rate_alert(t, rate); });
}

AdaptivePolicy::State TieredProvisioner::checkpoint() const {
  ensure(analyzer_.has_value(), "TieredProvisioner::checkpoint: not attached");
  AdaptivePolicy::State state;
  state.analyzer = analyzer_->checkpoint();
  predictor_->save_state(state.predictor);
  state.decisions = decisions_;
  return state;
}

void TieredProvisioner::restore_attach(ApplicationProvisioner& backend,
                                       ApplicationProvisioner& cache,
                                       CacheTier& tier,
                                       const AdaptivePolicy::State& state) {
  bind(backend, cache, tier);
  predictor_->load_state(state.predictor);
  decisions_ = state.decisions;
  analyzer_->restore(
      [this](SimTime t, double rate) { on_rate_alert(t, rate); },
      state.analyzer);
}

void TieredProvisioner::on_rate_alert(SimTime t, double expected_rate) {
  ProfileScope profile(sim_.profiler(), ProfileCategory::kPolicyDecision);
  const double ewma = tier_->fold_window();
  // The cache plans with the assumed warmup ratio until real windows exist;
  // the backend stays conservative (h = 0) so a cold cache cannot starve it.
  const double h_cache =
      ewma >= 0.0 ? ewma : config_.assumed_hit_ratio;
  const double h_backend = ewma >= 0.0 ? ewma : 0.0;

  // --- cache tier: Algorithm 1 at the hit flow ---------------------------
  const double lambda_cache = expected_rate * h_cache;
  const double tm_cache = cache_->monitored_service_time();
  const std::size_t k_cache = cache_->current_queue_bound();
  const ModelerDecision cache_decision = cache_modeler_->required_instances(
      std::max<std::size_t>(cache_->active_instances(), 1), lambda_cache,
      tm_cache, k_cache);
  const std::size_t cache_achieved = cache_->scale_to(cache_decision.instances);
  cache_decisions_.push_back(AdaptivePolicy::DecisionRecord{
      t, lambda_cache, tm_cache, k_cache, cache_decision.instances,
      cache_achieved, cache_decision.predicted_response_time,
      cache_decision.predicted_rejection, cache_decision.predicted_utilization});

  // --- backend tier: Algorithm 1 at the miss flow ------------------------
  const double lambda_miss = expected_rate * (1.0 - h_backend);
  const double tm_backend = backend_->monitored_service_time();
  const std::size_t k_backend = backend_->current_queue_bound();
  const ModelerDecision backend_decision =
      backend_modeler_->required_instances(
          std::max<std::size_t>(backend_->active_instances(), 1), lambda_miss,
          tm_backend, k_backend);
  const std::size_t backend_achieved =
      backend_->scale_to(backend_decision.instances);
  decisions_.push_back(AdaptivePolicy::DecisionRecord{
      t, lambda_miss, tm_backend, k_backend, backend_decision.instances,
      backend_achieved, backend_decision.predicted_response_time,
      backend_decision.predicted_rejection,
      backend_decision.predicted_utilization});

  // --- tandem model: predicted end-to-end response -----------------------
  // Miss-path requests traverse cache lookup then backend service; solve the
  // decomposed tandem for that path and mix with the hit-path prediction.
  double predicted_e2e = cache_decision.predicted_response_time;
  if (lambda_miss > 0.0) {
    const std::vector<queueing::TandemTier> tandem{
        queueing::TandemTier{std::max<std::size_t>(cache_achieved, 1),
                             1.0 / std::max(tm_cache, 1e-9), k_cache},
        queueing::TandemTier{std::max<std::size_t>(backend_achieved, 1),
                             1.0 / std::max(tm_backend, 1e-9), k_backend}};
    const queueing::TandemMetrics miss_path =
        queueing::solve_tandem(lambda_miss, tandem);
    predicted_e2e = h_backend * cache_decision.predicted_response_time +
                    (1.0 - h_backend) * miss_path.end_to_end_response;
  }
  tier_->record_window_sample(t, lambda_miss, predicted_e2e);

  if (telemetry_ != nullptr) {
    telemetry_->scaling_decision(t, lambda_miss, tm_backend, k_backend,
                                 backend_decision.instances, backend_achieved);
    telemetry_->tier_decision(t, expected_rate, h_backend, lambda_miss,
                              cache_decision.instances,
                              backend_decision.instances);
    telemetry_->cache_instance_count(t, cache_->active_instances(),
                                     cache_->draining_instances());
    if (DriftMonitor* drift = telemetry_->drift(); drift != nullptr) {
      DriftMonitor::Prediction prediction;
      prediction.response_time = backend_decision.predicted_response_time;
      prediction.rejection = backend_decision.predicted_rejection;
      prediction.utilization = backend_decision.predicted_utilization;
      prediction.lambda = lambda_miss;
      prediction.tm = tm_backend;
      prediction.queue_bound = k_backend;
      prediction.instances = backend_achieved;
      const Datacenter& datacenter = backend_->datacenter();
      drift->on_decision(t, prediction, datacenter.vm_hours(),
                         datacenter.busy_vm_hours());
    }
  }
  CLOUDPROV_LOG(Debug) << "tiered: t=" << t << " lambda=" << expected_rate
                       << " h=" << h_backend << " miss=" << lambda_miss
                       << " -> cache m=" << cache_decision.instances
                       << " backend m=" << backend_decision.instances;
}

}  // namespace cloudprov
