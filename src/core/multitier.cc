#include "core/multitier.h"

#include <algorithm>

#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

MultiTierApplication::MultiTierApplication(Simulation& sim,
                                           Datacenter& datacenter,
                                           MultiTierConfig config, Rng rng)
    : Entity(sim, "multitier-application"),
      config_(std::move(config)),
      rng_(rng) {
  ensure_arg(!config_.tiers.empty(), "MultiTierApplication: need >= 1 tier");
  double total_estimate = 0.0;
  for (const TierConfig& tier : config_.tiers) {
    ensure_arg(tier.service_demand != nullptr,
               "MultiTierApplication: tier needs a demand distribution");
    ensure_arg(tier.initial_service_time_estimate > 0.0,
               "MultiTierApplication: tier estimate must be > 0");
    total_estimate += tier.initial_service_time_estimate;
  }
  // Split the end-to-end response budget proportionally to the tier
  // estimates: sum of per-tier budgets equals Ts, so if every tier meets its
  // own bound the chain meets the end-to-end bound.
  tiers_.reserve(config_.tiers.size());
  budgets_.reserve(config_.tiers.size());
  for (std::size_t i = 0; i < config_.tiers.size(); ++i) {
    const TierConfig& tier = config_.tiers[i];
    const double budget = config_.qos.max_response_time *
                          tier.initial_service_time_estimate / total_estimate;
    budgets_.push_back(budget);

    QosTargets tier_qos = config_.qos;
    tier_qos.max_response_time = budget;
    ProvisionerConfig prov_config;
    prov_config.vm_spec = tier.vm_spec;
    prov_config.initial_service_time_estimate = tier.initial_service_time_estimate;
    tiers_.push_back(std::make_unique<ApplicationProvisioner>(
        sim, datacenter, tier_qos, prov_config));
    tiers_.back()->set_completion_listener(
        [this, i](const Request& request, double) { on_tier_complete(i, request); });
  }
}

double MultiTierApplication::end_to_end_loss_rate() const {
  const std::uint64_t lost = rejected_entry_ + dropped_;
  return entered_ == 0 ? 0.0
                       : static_cast<double>(lost) / static_cast<double>(entered_);
}

void MultiTierApplication::on_request(const Request& request) {
  ++entered_;
  Request entry = request;
  entry.arrival_time = now();
  if (!tiers_.front()->try_submit(entry)) {
    ++rejected_entry_;
    return;
  }
  in_flight_.emplace(request.id, now());
}

void MultiTierApplication::forward(std::size_t next_tier, const Request& request) {
  Request next = request;
  next.arrival_time = now();
  next.service_demand = config_.tiers[next_tier].service_demand->sample(rng_);
  if (!tiers_[next_tier]->try_submit(next)) {
    ++dropped_;
    in_flight_.erase(request.id);
  }
}

void MultiTierApplication::on_tier_complete(std::size_t tier_index,
                                            const Request& request) {
  if (tier_index + 1 < tiers_.size()) {
    forward(tier_index + 1, request);
    return;
  }
  const auto it = in_flight_.find(request.id);
  ensure(it != in_flight_.end(), "multitier: completion for unknown request");
  const double response = now() - it->second;
  in_flight_.erase(it);
  end_to_end_.add(response);
  if (response > config_.qos.max_response_time) ++violations_;
}

MultiTierAdaptivePolicy::MultiTierAdaptivePolicy(
    Simulation& sim, std::shared_ptr<ArrivalRatePredictor> predictor,
    ModelerConfig modeler_config, AnalyzerConfig analyzer_config)
    : sim_(sim),
      predictor_(std::move(predictor)),
      modeler_config_(modeler_config),
      analyzer_config_(analyzer_config) {
  ensure_arg(predictor_ != nullptr, "MultiTierAdaptivePolicy: null predictor");
}

void MultiTierAdaptivePolicy::attach(MultiTierApplication& application) {
  ensure(application_ == nullptr, "MultiTierAdaptivePolicy: attached twice");
  application_ = &application;
  modelers_.reserve(application.tier_count());
  targets_.assign(application.tier_count(), 1);
  for (std::size_t i = 0; i < application.tier_count(); ++i) {
    modelers_.emplace_back(application.tier(i).qos(), modeler_config_);
  }
  // The analyzer observes the entry tier's arrivals; downstream tiers see
  // (nearly) the same rate, thinned only by upstream rejections, so one
  // rate estimate drives all per-tier modelers — conservative downstream.
  analyzer_.emplace(sim_, application.tier(0), predictor_, analyzer_config_);
  analyzer_->start([this](SimTime t, double rate) { on_rate_alert(t, rate); });
}

void MultiTierAdaptivePolicy::on_rate_alert(SimTime t, double expected_rate) {
  for (std::size_t i = 0; i < application_->tier_count(); ++i) {
    ApplicationProvisioner& tier = application_->tier(i);
    const ModelerDecision decision = modelers_[i].required_instances(
        std::max<std::size_t>(tier.active_instances(), 1), expected_rate,
        tier.monitored_service_time(), tier.current_queue_bound());
    targets_[i] = decision.instances;
    tier.scale_to(decision.instances);
  }
  CLOUDPROV_LOG(Debug) << "multitier: t=" << t << " lambda=" << expected_rate;
}

}  // namespace cloudprov
