// Adaptive provisioning policy — the paper's contribution (Section IV),
// assembling the three components: workload analyzer -> load predictor and
// performance modeler -> application provisioner.
//
// On every analyzer alert the modeler runs Algorithm 1 against the expected
// arrival rate and the monitored service time; the resulting pool size is
// applied through ApplicationProvisioner::scale_to, which handles graceful
// drain/resurrect semantics.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/performance_modeler.h"
#include "core/provisioning_policy.h"
#include "core/workload_analyzer.h"
#include "predict/predictor.h"

namespace cloudprov {

class Telemetry;

class AdaptivePolicy final : public ProvisioningPolicy {
 public:
  AdaptivePolicy(Simulation& sim, std::shared_ptr<ArrivalRatePredictor> predictor,
                 ModelerConfig modeler_config, AnalyzerConfig analyzer_config);

  void attach(ApplicationProvisioner& provisioner) override;
  std::string name() const override { return "Adaptive"; }

  /// Attaches the replication's telemetry collector (null disables); every
  /// Algorithm 1 run is then recorded with its inputs (lambda, Tm, k) and
  /// the chosen instance count. Set before attach().
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  /// One provisioning decision (Algorithm 1 inputs + outcome), for
  /// diagnostics, the examples, and the decision-timeline CSV.
  struct DecisionRecord {
    SimTime time = 0.0;
    double expected_rate = 0.0;         ///< lambda fed to the modeler
    double monitored_service_time = 0.0;  ///< Tm at decision time
    std::size_t queue_bound = 0;        ///< k (Equation 1) at decision time
    std::size_t target_instances = 0;
    std::size_t achieved_instances = 0;
    // What the M/M/1/k model promised for the chosen pool size — paired
    // with the window's observations by the drift observatory.
    double predicted_response_time = 0.0;
    double predicted_rejection = 0.0;
    double predicted_utilization = 0.0;
  };
  const std::vector<DecisionRecord>& decisions() const { return decisions_; }

  const PerformanceModeler* modeler() const {
    return modeler_ ? &*modeler_ : nullptr;
  }

  // --- checkpoint support (src/lookahead) ---------------------------------
  /// Mutable policy state: the analyzer position, the predictor's fit state,
  /// and the decision log. The modeler is stateless.
  struct State {
    WorkloadAnalyzer::State analyzer;
    std::vector<double> predictor;
    std::vector<DecisionRecord> decisions;
  };
  State checkpoint() const;
  /// attach() variant for a restored world: binds the provisioner, restores
  /// the predictor fit and analyzer tick, and replays no initial sizing.
  void restore_attach(ApplicationProvisioner& provisioner, const State& state);

 private:
  void on_rate_alert(SimTime t, double expected_rate);

  Simulation& sim_;
  std::shared_ptr<ArrivalRatePredictor> predictor_;
  ModelerConfig modeler_config_;
  AnalyzerConfig analyzer_config_;

  ApplicationProvisioner* provisioner_ = nullptr;
  Telemetry* telemetry_ = nullptr;
  std::optional<PerformanceModeler> modeler_;
  std::optional<WorkloadAnalyzer> analyzer_;
  std::vector<DecisionRecord> decisions_;
};

}  // namespace cloudprov
