// SLA classes, per-class accounting, and revenue/penalty bookkeeping — the
// paper's final future-work item (Section VII): "extend the model to support
// other QoS parameters such as deadline and incentive/budget to ensure that
// high-priority requests are served first in case of intense competition for
// resources ... we will also address the problem of SLA management for
// trade-offs of QoS between different requests, potentially with different
// priorities and incentives".
//
// An SlaManager assigns each incoming request to an SLA class (by priority),
// stamps the class's deadline, and accounts outcomes per class: completions
// earn the class's revenue, rejections and late completions pay its penalty.
// Combined with PriorityAwareAdmission (core/admission.h), the provider can
// sacrifice low-value traffic under contention and the manager prices the
// trade-off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/running_stats.h"
#include "workload/request.h"

namespace cloudprov {

struct SlaClass {
  std::string name;
  /// Requests with priority >= this (and < the next class's threshold)
  /// belong to this class. Classes must be registered in increasing
  /// threshold order.
  int priority_threshold = 0;
  /// Response-time bound for this class (seconds); also stamped as a
  /// relative deadline on admission when `stamp_deadline` is set.
  double max_response_time = 0.0;
  bool stamp_deadline = false;
  /// Earned per request completed within the bound.
  double revenue_per_request = 0.0;
  /// Paid per rejected/dropped request.
  double rejection_penalty = 0.0;
  /// Paid per completion that misses the bound.
  double violation_penalty = 0.0;
};

struct SlaClassReport {
  std::string name;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t violations = 0;  ///< completions over the class bound
  double mean_response_time = 0.0;
  double revenue = 0.0;  ///< net: earnings - penalties
};

class SlaManager {
 public:
  /// `classes` ordered by increasing priority_threshold.
  explicit SlaManager(std::vector<SlaClass> classes);

  std::size_t class_count() const { return classes_.size(); }
  const SlaClass& sla_class(std::size_t index) const { return classes_.at(index); }

  /// Index of the class a request with this priority belongs to.
  std::size_t classify(int priority) const;

  /// Tags a request on arrival: stamps the deadline when configured and
  /// counts it as offered. Returns the class index.
  std::size_t on_arrival(Request& request);

  /// Records the admission decision and, later, the completion.
  void on_rejected(const Request& request);
  void on_completed(const Request& request, double response_time);

  SlaClassReport report(std::size_t class_index) const;
  std::vector<SlaClassReport> report_all() const;

  /// Net revenue over all classes.
  double total_revenue() const;

 private:
  struct ClassState {
    std::uint64_t offered = 0;
    std::uint64_t rejected = 0;
    std::uint64_t violations = 0;
    RunningStats response;
  };

  std::vector<SlaClass> classes_;
  std::vector<ClassState> state_;
};

}  // namespace cloudprov
