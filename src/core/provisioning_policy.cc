#include "core/provisioning_policy.h"

#include "util/check.h"

namespace cloudprov {

StaticPolicy::StaticPolicy(std::size_t instances) : instances_(instances) {
  ensure_arg(instances >= 1, "StaticPolicy: need at least one instance");
}

void StaticPolicy::attach(ApplicationProvisioner& provisioner) {
  provisioner.scale_to(instances_);
}

std::string StaticPolicy::name() const {
  return "Static-" + std::to_string(instances_);
}

}  // namespace cloudprov
