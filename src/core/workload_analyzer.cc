#include "core/workload_analyzer.h"

#include <cmath>

#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

WorkloadAnalyzer::WorkloadAnalyzer(Simulation& sim, ArrivalsTap tap,
                                   std::shared_ptr<ArrivalRatePredictor> predictor,
                                   AnalyzerConfig config)
    : sim_(sim),
      tap_(std::move(tap)),
      predictor_(std::move(predictor)),
      config_(config) {
  ensure_arg(static_cast<bool>(tap_), "WorkloadAnalyzer: empty arrivals tap");
  ensure_arg(predictor_ != nullptr, "WorkloadAnalyzer: null predictor");
  ensure_arg(config_.analysis_interval > 0.0,
             "WorkloadAnalyzer: analysis interval must be > 0");
  ensure_arg(config_.lead_time >= 0.0, "WorkloadAnalyzer: lead time must be >= 0");
  ensure_arg(config_.change_epsilon >= 0.0,
             "WorkloadAnalyzer: change epsilon must be >= 0");
}

WorkloadAnalyzer::WorkloadAnalyzer(Simulation& sim,
                                   ApplicationProvisioner& provisioner,
                                   std::shared_ptr<ArrivalRatePredictor> predictor,
                                   AnalyzerConfig config)
    : WorkloadAnalyzer(
          sim,
          [&provisioner] { return provisioner.take_window_arrivals(); },
          std::move(predictor), config) {}

void WorkloadAnalyzer::start(RateAlert alert) {
  ensure_arg(static_cast<bool>(alert), "WorkloadAnalyzer: empty alert callback");
  alert_ = std::move(alert);
  tap_();  // reset the observation window
  raise_alert(sim_.now());              // initial pool sizing
  process_.emplace(sim_, sim_.now() + config_.analysis_interval,
                   config_.analysis_interval, [this](SimTime t) { tick(t); });
}

void WorkloadAnalyzer::stop() {
  if (process_) process_->stop();
}

WorkloadAnalyzer::State WorkloadAnalyzer::checkpoint() const {
  State state;
  state.last_prediction = last_prediction_;
  if (process_) {
    if (auto stamp = process_->pending_stamp()) {
      state.running = true;
      state.tick = *stamp;
    }
  }
  return state;
}

void WorkloadAnalyzer::restore(RateAlert alert, const State& state) {
  ensure_arg(static_cast<bool>(alert), "WorkloadAnalyzer: empty alert callback");
  ensure(!process_, "WorkloadAnalyzer::restore: analyzer already started");
  alert_ = std::move(alert);
  last_prediction_ = state.last_prediction;
  if (state.running) {
    process_.emplace(sim_, state.tick, config_.analysis_interval,
                     [this](SimTime t) { tick(t); });
  }
}

void WorkloadAnalyzer::tick(SimTime t) {
  const double observed =
      static_cast<double>(tap_()) / config_.analysis_interval;
  predictor_->observe(t - config_.analysis_interval, t, observed);
  raise_alert(t);
}

void WorkloadAnalyzer::raise_alert(SimTime t) {
  const double expected = predictor_->predict(t + config_.lead_time);
  if (last_prediction_ >= 0.0 && config_.change_epsilon > 0.0) {
    const double reference = std::max(last_prediction_, 1e-12);
    if (std::abs(expected - last_prediction_) / reference < config_.change_epsilon) {
      return;  // rate not expected to change materially
    }
  }
  last_prediction_ = expected;
  CLOUDPROV_LOG(Debug) << "analyzer alert at t=" << t
                       << ": expected rate " << expected;
  alert_(t, expected);
}

}  // namespace cloudprov
