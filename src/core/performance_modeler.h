// Load predictor and performance modeler (Section IV-B, Algorithm 1).
//
// Given the expected arrival rate and the monitored mean service time, finds
// the number m of virtualized application instances that meets QoS while
// keeping utilization above the floor, by solving the Figure-2 queueing
// network (M/M/inf provisioner feeding m parallel M/M/1/k instances) for
// candidate values of m.
//
// The search is the paper's guarded expand/bisect loop: grow m by 50% while
// the model predicts QoS violations, bisect downwards while utilization is
// predicted below the floor, and track [min, max] bounds of tested values so
// no candidate is revisited ("It prevents loops in the process").
//
// Two published-vs-implemented notes, also covered by regression tests:
//  * Algorithm 1 line 11 prints "min <- m + 1" after m has already been
//    increased; the failing candidate is oldm, so we set min <- oldm + 1.
//  * The paper does not state numeric thresholds for the model-side QoS
//    check. The response-time check is Tq <= Ts verbatim; the rejection
//    check compares Pr(S_k) against `rejection_tolerance`, calibrated so the
//    per-instance offered load lands in the paper's implied ~[0.8, 0.9]
//    operating band (see DESIGN.md).
#pragma once

#include <cstddef>
#include <vector>

#include "core/qos.h"
#include "queueing/instance_pool_model.h"

namespace cloudprov {

struct ModelerConfig {
  /// MaxVMs: cap "dependent on both policy applied by the application
  /// provider and its previous negotiation with IaaS provider".
  std::size_t max_vms = 1000;
  /// Floor on the pool size (the paper searches from min = 1).
  std::size_t min_vms = 1;
  /// Model-side threshold on the predicted M/M/1/k blocking probability
  /// Pr(S_k). For k = 2 a tolerance of 0.28 corresponds to per-instance
  /// offered load rho ~= 0.85, which lands the paper's reported instance
  /// counts (153 web / 80 scientific) and keeps simulated rejection
  /// negligible (see DESIGN.md calibration note).
  double rejection_tolerance = 0.28;
  /// Saturation guard on the planned per-instance offered load
  /// lambda/(m*mu). A fixed blocking tolerance maps to different loads at
  /// different k (at k = 3, Pr(S_k) = 0.28 is only reached beyond rho = 1),
  /// so without this cap deeper queues would be planned into overload. The
  /// paper's k = 2 scenarios are unaffected (their tolerance edge sits at
  /// rho ~ 0.85 < 0.92).
  double max_offered_load = 0.92;
  /// Hard iteration cap; the bounds make the loop finite regardless, this
  /// guards against configuration pathologies.
  std::size_t max_iterations = 128;
};

struct ModelerDecision {
  std::size_t instances = 1;  ///< m returned by Algorithm 1
  double predicted_rejection = 0.0;
  double predicted_response_time = 0.0;
  /// Offered per-instance load lambda / (m * mu) used for the scale-down test.
  double predicted_utilization = 0.0;
  std::size_t iterations = 0;
  /// Every candidate m evaluated, in order (diagnostics and tests).
  std::vector<std::size_t> tested;
};

class PerformanceModeler {
 public:
  PerformanceModeler(QosTargets qos, ModelerConfig config);

  /// Algorithm 1. `current_instances` seeds the search; `arrival_rate` is
  /// the workload analyzer's expected lambda; `mean_service_time` is the
  /// monitored Tm; `bound` is the per-instance queue bound k.
  ModelerDecision required_instances(std::size_t current_instances,
                                     double arrival_rate,
                                     double mean_service_time,
                                     std::size_t bound) const;

  const QosTargets& qos() const { return qos_; }
  const ModelerConfig& config() const { return config_; }

 private:
  /// Solves the Figure-2 model for candidate m.
  queueing::InstancePoolMetrics evaluate(std::size_t m, double arrival_rate,
                                         double mean_service_time,
                                         std::size_t bound) const;

  QosTargets qos_;
  ModelerConfig config_;
};

}  // namespace cloudprov
