// Workload analyzer (Section IV-A).
//
// Periodically measures the realized arrival rate at the application
// provisioner, feeds it to an ArrivalRatePredictor, and raises a rate alert
// carrying the expected arrival rate for the near future. The alert "must be
// issued before the expected time for the rate to change", so the analyzer
// predicts `lead_time` ahead of the current clock — by the time the rate
// materializes, the provisioner has already resized the pool.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/application_provisioner.h"
#include "predict/predictor.h"
#include "sim/simulation.h"

namespace cloudprov {

struct AnalyzerConfig {
  /// Observation/alert cadence.
  SimTime analysis_interval = 60.0;
  /// How far ahead the alert looks; also the provisioning lead time.
  SimTime lead_time = 60.0;
  /// Minimum relative change in the predicted rate required to re-alert;
  /// 0 alerts on every tick (the modeler is cheap, so this is the default).
  double change_epsilon = 0.0;
};

class WorkloadAnalyzer {
 public:
  /// Fired with (current time, expected arrival rate at time + lead).
  using RateAlert = std::function<void(SimTime, double)>;

  /// Where the analyzer observes arrivals: returns (and resets) the count
  /// since the previous call. The classic form taps the provisioner's
  /// admission window; multi-tier worlds tap the cache front door instead,
  /// so the analyzer sees total lambda before hit-ratio offload.
  using ArrivalsTap = std::function<std::uint64_t()>;

  WorkloadAnalyzer(Simulation& sim, ArrivalsTap tap,
                   std::shared_ptr<ArrivalRatePredictor> predictor,
                   AnalyzerConfig config);

  WorkloadAnalyzer(Simulation& sim, ApplicationProvisioner& provisioner,
                   std::shared_ptr<ArrivalRatePredictor> predictor,
                   AnalyzerConfig config);

  /// Issues an immediate alert (initial pool sizing) and starts the
  /// periodic analysis process.
  void start(RateAlert alert);
  void stop();

  double last_prediction() const { return last_prediction_; }
  const ArrivalRatePredictor& predictor() const { return *predictor_; }
  ArrivalRatePredictor& mutable_predictor() { return *predictor_; }

  // --- checkpoint support (src/lookahead) ---------------------------------
  /// Analyzer position: the last alerted prediction and the pending periodic
  /// tick. Predictor fit state is checkpointed separately (the predictor may
  /// be shared between analyzers).
  struct State {
    double last_prediction = -1.0;
    bool running = false;
    EventStamp tick;  ///< pending tick stamp; meaningful when running
  };
  State checkpoint() const;
  /// Re-installs the alert callback and re-arms the periodic tick under its
  /// original stamp — without the initial-sizing alert that start() fires.
  /// Must run on a freshly constructed analyzer.
  void restore(RateAlert alert, const State& state);

 private:
  void tick(SimTime t);
  void raise_alert(SimTime t);

  Simulation& sim_;
  ArrivalsTap tap_;
  std::shared_ptr<ArrivalRatePredictor> predictor_;
  AnalyzerConfig config_;
  RateAlert alert_;
  std::optional<PeriodicProcess> process_;
  double last_prediction_ = -1.0;
};

}  // namespace cloudprov
