#include "core/sla.h"

#include "util/check.h"

namespace cloudprov {

SlaManager::SlaManager(std::vector<SlaClass> classes)
    : classes_(std::move(classes)), state_(classes_.size()) {
  ensure_arg(!classes_.empty(), "SlaManager: need at least one class");
  for (std::size_t i = 1; i < classes_.size(); ++i) {
    ensure_arg(classes_[i].priority_threshold > classes_[i - 1].priority_threshold,
               "SlaManager: classes must have increasing priority thresholds");
  }
  for (const SlaClass& c : classes_) {
    ensure_arg(c.max_response_time > 0.0,
               "SlaManager: class response bound must be positive");
  }
}

std::size_t SlaManager::classify(int priority) const {
  std::size_t index = 0;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (priority >= classes_[i].priority_threshold) index = i;
  }
  return index;
}

std::size_t SlaManager::on_arrival(Request& request) {
  const std::size_t index = classify(request.priority);
  ++state_[index].offered;
  if (classes_[index].stamp_deadline) {
    request.deadline = request.arrival_time + classes_[index].max_response_time;
  }
  return index;
}

void SlaManager::on_rejected(const Request& request) {
  ++state_[classify(request.priority)].rejected;
}

void SlaManager::on_completed(const Request& request, double response_time) {
  ClassState& s = state_[classify(request.priority)];
  s.response.add(response_time);
  if (response_time > classes_[classify(request.priority)].max_response_time) {
    ++s.violations;
  }
}

SlaClassReport SlaManager::report(std::size_t class_index) const {
  ensure_arg(class_index < classes_.size(), "SlaManager: class index out of range");
  const SlaClass& c = classes_[class_index];
  const ClassState& s = state_[class_index];
  SlaClassReport out;
  out.name = c.name;
  out.offered = s.offered;
  out.completed = s.response.count();
  out.rejected = s.rejected;
  out.violations = s.violations;
  out.mean_response_time = s.response.mean();
  const auto on_time = static_cast<double>(s.response.count() - s.violations);
  out.revenue = on_time * c.revenue_per_request -
                static_cast<double>(s.rejected) * c.rejection_penalty -
                static_cast<double>(s.violations) * c.violation_penalty;
  return out;
}

std::vector<SlaClassReport> SlaManager::report_all() const {
  std::vector<SlaClassReport> reports;
  reports.reserve(classes_.size());
  for (std::size_t i = 0; i < classes_.size(); ++i) reports.push_back(report(i));
  return reports;
}

double SlaManager::total_revenue() const {
  double total = 0.0;
  for (std::size_t i = 0; i < classes_.size(); ++i) total += report(i).revenue;
  return total;
}

}  // namespace cloudprov
