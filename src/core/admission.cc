#include "core/admission.h"

#include <cmath>

#include "util/check.h"

namespace cloudprov {

PriorityAwareAdmission::PriorityAwareAdmission(std::size_t reserved_slots,
                                               int priority_threshold)
    : reserved_slots_(reserved_slots), priority_threshold_(priority_threshold) {}

bool PriorityAwareAdmission::admit(const Request& request, const Vm& candidate,
                                   const PoolView& pool) const {
  // Deadline feasibility: the request would wait behind `load` requests and
  // then execute, each taking ~Tm.
  if (std::isfinite(request.deadline) && pool.mean_service_time > 0.0) {
    const double expected_completion =
        pool.now + static_cast<double>(candidate.load() + 1) * pool.mean_service_time;
    if (expected_completion > request.deadline) return false;
  }
  // Slot reservation: when the pool is nearly full, keep the remaining
  // capacity for high-priority requests.
  if (pool.total_free_slots <= reserved_slots_ &&
      request.priority < priority_threshold_) {
    return false;
  }
  return true;
}

}  // namespace cloudprov
