#include "core/application_provisioner.h"

#include <algorithm>

#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

ApplicationProvisioner::ApplicationProvisioner(
    Simulation& sim, Datacenter& datacenter, QosTargets qos,
    ProvisionerConfig config, std::unique_ptr<AdmissionPolicy> admission)
    : Entity(sim, "application-provisioner"),
      datacenter_(datacenter),
      qos_(qos),
      config_(config),
      admission_(std::move(admission)),
      instance_count_(sim.now(), 0.0) {
  ensure_arg(config_.initial_service_time_estimate > 0.0,
             "ApplicationProvisioner: service time estimate must be > 0");
  ensure_arg(admission_ != nullptr, "ApplicationProvisioner: null admission policy");
}

double ApplicationProvisioner::monitored_service_time() const {
  return service_stats_.empty() ? config_.initial_service_time_estimate
                                : service_stats_.mean();
}

std::size_t ApplicationProvisioner::current_queue_bound() const {
  if (config_.fixed_queue_bound > 0) return config_.fixed_queue_bound;
  // The adaptive bound only moves when the monitored mean moves, i.e. when a
  // completion lands in service_stats_; memoize on the completion count so
  // the per-arrival query costs two loads instead of two FP divisions.
  const std::uint64_t completions = service_stats_.count();
  if (completions != bound_cache_completions_) {
    bound_cache_ = queue_bound(qos_.max_response_time, monitored_service_time());
    bound_cache_completions_ = completions;
  }
  return bound_cache_;
}

double ApplicationProvisioner::rejection_rate() const {
  const std::uint64_t total = accepted_ + rejected_;
  return total == 0 ? 0.0
                    : static_cast<double>(rejected_) / static_cast<double>(total);
}

PoolView ApplicationProvisioner::pool_view() const {
  PoolView view;
  view.active_instances = instances_.size();
  view.queue_bound = current_queue_bound();
  view.mean_service_time = monitored_service_time();
  view.now = now();
  std::size_t free_slots = 0;
  for (const Vm* vm : instances_) {
    const std::size_t load = vm->load();
    if (load < view.queue_bound) free_slots += view.queue_bound - load;
  }
  view.total_free_slots = free_slots;
  return view;
}

Vm* ApplicationProvisioner::select_instance(const Request& request) {
  if (instances_.empty()) return nullptr;
  const std::size_t k = current_queue_bound();
  // The pool-wide view costs an O(n) scan per arrival; build it only for
  // policies that read it (the paper's k-bound baseline does not).
  PoolView view;
  if (admission_->needs_pool_view()) view = pool_view();
  const std::size_t n = instances_.size();
  // Round-robin scan starting at the cursor; the first instance with a free
  // slot that admission accepts gets the request ("following a round-robin
  // strategy", Section IV-C). Wrap by comparison, not modulo: the scan runs
  // per arrival and an integer division per step is measurable there.
  std::size_t index = rr_cursor_ % n;
  for (std::size_t step = 0; step < n; ++step) {
    Vm* vm = instances_[index];
    const std::size_t next = index + 1 == n ? 0 : index + 1;
    if (vm->state() == VmState::kRunning && vm->load() < k &&
        admission_->admit(request, *vm, view)) {
      rr_cursor_ = next;
      return vm;
    }
    index = next;
  }
  return nullptr;
}

void ApplicationProvisioner::on_request(const Request& request) {
  (void)try_submit(request);
}

bool ApplicationProvisioner::try_submit(const Request& request) {
  ++window_arrivals_;
  Vm* vm = select_instance(request);
  if (vm == nullptr) {
    // "If all virtualized application instances have k requests in their
    // queues, new requests are rejected."
    ++rejected_;
    if (telemetry_ != nullptr) {
      telemetry_->request_arrival(now(), request.id);
      telemetry_->request_rejected(now(), request.id);
    }
    return false;
  }
  ++accepted_;
  if (telemetry_ != nullptr) {
    telemetry_->request_arrival(now(), request.id);
    telemetry_->request_admitted(now(), request.id, vm->id());
  }
  vm->submit(request);
  return true;
}

void ApplicationProvisioner::install_callbacks(Vm& vm) {
  vm.set_completion_callback(
      [this](Vm& v, const Request& r, double response_time) {
        on_vm_complete(v, r, response_time);
      });
  vm.set_drained_callback([this](Vm& v) { on_vm_drained(v); });
  vm.set_failure_callback(
      [this](Vm& v, FaultCause cause, const std::vector<Request>& lost) {
        on_vm_failed(v, cause, lost);
      });
}

void ApplicationProvisioner::arm_boot_watchdog(Vm& vm,
                                               std::optional<EventStamp> stamp) {
  // Boot watchdog: the VM pointer stays valid for the whole run (the data
  // center owns the full VM history), so the check is state-based. The
  // record is erased when the event fires, pending records ride along in
  // checkpoints.
  Vm* watched = &vm;
  const std::uint64_t vm_id = vm.id();
  auto fire = [this, watched, vm_id] {
    for (std::size_t i = 0; i < watchdogs_.size(); ++i) {
      if (watchdogs_[i].vm_id == vm_id) {
        watchdogs_.erase(watchdogs_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    if (watched->state() == VmState::kBooting) {
      CLOUDPROV_LOG(Debug) << "boot timeout for vm-" << watched->id()
                           << " at t=" << now();
      (void)datacenter_.fail_vm(*watched, FaultCause::kBootTimeout);
    }
  };
  const EventId event =
      stamp ? sim().schedule_stamped(*stamp, std::move(fire))
            : sim().schedule_in(config_.boot_timeout, std::move(fire));
  watchdogs_.push_back(WatchdogRecord{event, vm_id});
}

Vm* ApplicationProvisioner::create_instance() {
  Vm* vm = vm_factory_ ? vm_factory_(config_.vm_spec)
                       : datacenter_.create_vm(config_.vm_spec);
  if (vm == nullptr) return nullptr;
  vm->set_priority_queueing(config_.priority_queueing);
  install_callbacks(*vm);
  if (config_.boot_timeout > 0.0 && vm->state() == VmState::kBooting) {
    arm_boot_watchdog(*vm, std::nullopt);
  }
  instances_.push_back(vm);
  return vm;
}

void ApplicationProvisioner::drain_instance(std::size_t index) {
  Vm* vm = instances_[index];
  instances_.erase(instances_.begin() + static_cast<std::ptrdiff_t>(index));
  if (rr_cursor_ >= instances_.size()) rr_cursor_ = 0;
  // drain() may synchronously invoke on_vm_drained when the instance is
  // idle, which destroys it; push to draining_ first so the callback finds it.
  draining_.push_back(vm);
  vm->drain();
}

std::size_t ApplicationProvisioner::scale_to(std::size_t target) {
  desired_target_ = target;
  std::size_t granted = target;
  if (granted > capacity_cap_) {
    granted = capacity_cap_;
    ++capacity_clips_;
    capacity_denied_ += target - granted;
  }
  return apply_target(granted);
}

void ApplicationProvisioner::set_capacity_cap(std::size_t cap) {
  capacity_cap_ = cap;
  const std::size_t granted = std::min(desired_target_, capacity_cap_);
  // Re-apply only on change: a no-op grant must not touch the pool (or the
  // time-weighted instance history) so arbitration without contention stays
  // bit-identical to the unarbitrated run.
  if (granted != commanded_target_) apply_target(granted);
}

std::size_t ApplicationProvisioner::apply_target(std::size_t target) {
  commanded_target_ = target;
  // Scale up: resurrect draining instances first, newest selections first
  // (they are the least drained). Revoked instances are skipped — the spot
  // market has already reclaimed them and will hard-kill any survivor.
  while (instances_.size() < target && !draining_.empty()) {
    std::size_t pick = draining_.size();
    for (std::size_t i = draining_.size(); i-- > 0;) {
      if (!draining_[i]->revoked()) {
        pick = i;
        break;
      }
    }
    if (pick == draining_.size()) break;  // every drainer is revoked
    Vm* vm = draining_[pick];
    draining_.erase(draining_.begin() + static_cast<std::ptrdiff_t>(pick));
    vm->undrain();
    instances_.push_back(vm);
  }
  // Then request fresh VMs from the data center's resource provisioner.
  while (instances_.size() < target) {
    if (create_instance() == nullptr) {
      CLOUDPROV_LOG(Warn) << "scale_to(" << target
                          << "): data center capacity exhausted at "
                          << instances_.size() << " instances";
      break;
    }
  }
  // Scale down: idle instances first, then the least-loaded ones.
  while (instances_.size() > target) {
    std::size_t victim = 0;
    std::size_t best_load = SIZE_MAX;
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      const std::size_t load = instances_[i]->load();
      if (load < best_load) {
        best_load = load;
        victim = i;
        if (load == 0) break;  // idle instance: destroy immediately
      }
    }
    drain_instance(victim);
  }
  update_deficit();
  record_instance_count();
  return instances_.size();
}

void ApplicationProvisioner::on_vm_complete(Vm& vm, const Request& request,
                                            double response_time) {
  response_stats_.add(response_time);
  const double service_time = request.service_demand / vm.spec().speed;
  service_stats_.add(service_time);
  if (config_.track_quantiles) {
    p95_.add(response_time);
    p99_.add(response_time);
  }
  const bool violation = response_time > qos_.max_response_time;
  if (violation) ++qos_violations_;
  if (telemetry_ != nullptr) {
    telemetry_->request_completed(now(), request.id, response_time,
                                  service_time, violation);
  }
  if (completion_listener_) completion_listener_(request, response_time);
}

void ApplicationProvisioner::on_vm_drained(Vm& vm) {
  const auto it = std::find(draining_.begin(), draining_.end(), &vm);
  ensure(it != draining_.end(), "drained VM not in draining list");
  draining_.erase(it);
  datacenter_.destroy_vm(vm);
  record_instance_count();
}

void ApplicationProvisioner::record_instance_count() {
  if (telemetry_ != nullptr) {
    if (cache_instance_lane_) {
      telemetry_->cache_instance_count(now(), instances_.size(),
                                       draining_.size());
    } else {
      telemetry_->instance_count(now(), instances_.size(), draining_.size());
    }
  }
  if (!instance_history_started_) {
    instance_history_started_ = true;
    instance_count_ = TimeWeightedValue(now(), static_cast<double>(live_instances()));
    return;
  }
  instance_count_.update(now(), static_cast<double>(live_instances()));
}

std::uint64_t ApplicationProvisioner::take_window_arrivals() {
  const std::uint64_t count = window_arrivals_;
  window_arrivals_ = 0;
  return count;
}

void ApplicationProvisioner::for_each_instance(
    const std::function<void(Vm&)>& fn) {
  for (Vm* vm : instances_) fn(*vm);
}

void ApplicationProvisioner::revoke_instance(Vm& vm) {
  vm.set_revoked();
  const auto it = std::find(instances_.begin(), instances_.end(), &vm);
  if (it == instances_.end()) {
    // Already draining (or not ours): the sticky revoked flag is enough.
    return;
  }
  const auto index = static_cast<std::size_t>(it - instances_.begin());
  if (vm.state() == VmState::kBooting) {
    // Never came up: nothing to drain, release the slot immediately.
    instances_.erase(it);
    if (rr_cursor_ >= instances_.size()) rr_cursor_ = 0;
    datacenter_.destroy_vm(vm);
  } else {
    drain_instance(index);
  }
  update_deficit();
  record_instance_count();
  CLOUDPROV_LOG(Debug) << "spot revocation notice for vm-" << vm.id()
                       << " at t=" << now();
}

std::size_t ApplicationProvisioner::inject_instance_failure(std::size_t index) {
  ensure_arg(index < live_instances(),
             "inject_instance_failure: index out of range");
  Vm* victim = index < instances_.size()
                   ? instances_[index]
                   : draining_[index - instances_.size()];
  // The VM's failure callback (on_vm_failed) removes it from the dispatch
  // lists and does all the accounting.
  return datacenter_.fail_vm(*victim, FaultCause::kVmCrash);
}

void ApplicationProvisioner::on_vm_failed(Vm& vm, FaultCause cause,
                                          const std::vector<Request>& lost) {
  const auto it = std::find(instances_.begin(), instances_.end(), &vm);
  if (it != instances_.end()) {
    instances_.erase(it);
    if (rr_cursor_ >= instances_.size() && !instances_.empty()) rr_cursor_ = 0;
  } else {
    const auto dit = std::find(draining_.begin(), draining_.end(), &vm);
    ensure(dit != draining_.end(), "on_vm_failed: VM not in the pool");
    draining_.erase(dit);
  }
  datacenter_.release_failed_vm(vm);
  lost_to_failures_ += lost.size();
  ++instance_failures_;
  failures_by_cause_[static_cast<std::size_t>(cause)] += 1;
  lost_by_cause_[static_cast<std::size_t>(cause)] += lost.size();
  if (telemetry_ != nullptr) {
    telemetry_->vm_failed(now(), vm.id(), lost.size(), to_string(cause));
    for (const Request& request : lost) {
      telemetry_->request_lost(now(), request.id);
    }
  }
  update_deficit();
  record_instance_count();
  CLOUDPROV_LOG(Debug) << "instance failure (" << to_string(cause)
                       << ") at t=" << now() << ", lost " << lost.size()
                       << " request(s)";
}

void ApplicationProvisioner::update_deficit() {
  const bool deficit = instances_.size() < commanded_target_;
  if (deficit && !in_deficit_) {
    in_deficit_ = true;
    deficit_since_ = now();
  } else if (!deficit && in_deficit_) {
    in_deficit_ = false;
    const SimTime repair = now() - deficit_since_;
    deficit_seconds_ += repair;
    recovery_stats_.add(repair);
    if (telemetry_ != nullptr) telemetry_->pool_recovered(now(), repair);
  }
}

double ApplicationProvisioner::deficit_seconds() const {
  double total = deficit_seconds_;
  if (in_deficit_) total += now() - deficit_since_;
  return total;
}

ApplicationProvisioner::Snapshot ApplicationProvisioner::checkpoint() const {
  Snapshot snap;
  snap.instances.reserve(instances_.size());
  for (const Vm* vm : instances_) snap.instances.push_back(vm->id());
  snap.draining.reserve(draining_.size());
  for (const Vm* vm : draining_) snap.draining.push_back(vm->id());
  snap.rr_cursor = rr_cursor_;
  for (const WatchdogRecord& record : watchdogs_) {
    if (auto stamp = sim().stamp(record.event)) {
      snap.watchdogs.push_back(Snapshot::Watchdog{*stamp, record.vm_id});
    }
  }
  snap.accepted = accepted_;
  snap.rejected = rejected_;
  snap.qos_violations = qos_violations_;
  snap.lost_to_failures = lost_to_failures_;
  snap.instance_failures = instance_failures_;
  snap.window_arrivals = window_arrivals_;
  snap.commanded_target = commanded_target_;
  snap.failures_by_cause = failures_by_cause_;
  snap.lost_by_cause = lost_by_cause_;
  snap.recovery_stats = recovery_stats_;
  snap.in_deficit = in_deficit_;
  snap.deficit_since = deficit_since_;
  snap.deficit_seconds = deficit_seconds_;
  snap.response_stats = response_stats_;
  snap.service_stats = service_stats_;
  snap.p95 = p95_;
  snap.p99 = p99_;
  snap.instance_count = instance_count_;
  snap.instance_history_started = instance_history_started_;
  return snap;
}

void ApplicationProvisioner::restore(const Snapshot& snap) {
  ensure(instances_.empty() && draining_.empty() && accepted_ == 0,
         "ApplicationProvisioner::restore: provisioner already used");
  instances_.clear();
  for (std::uint64_t id : snap.instances) {
    Vm* vm = datacenter_.find_vm(id);
    ensure(vm != nullptr, "restore: active instance missing from data center");
    install_callbacks(*vm);
    instances_.push_back(vm);
  }
  draining_.clear();
  for (std::uint64_t id : snap.draining) {
    Vm* vm = datacenter_.find_vm(id);
    ensure(vm != nullptr, "restore: draining instance missing from data center");
    install_callbacks(*vm);
    draining_.push_back(vm);
  }
  rr_cursor_ = snap.rr_cursor;
  watchdogs_.clear();
  for (const Snapshot::Watchdog& watchdog : snap.watchdogs) {
    Vm* vm = datacenter_.find_vm(watchdog.vm_id);
    ensure(vm != nullptr, "restore: watchdog target missing from data center");
    arm_boot_watchdog(*vm, watchdog.stamp);
  }
  accepted_ = snap.accepted;
  rejected_ = snap.rejected;
  qos_violations_ = snap.qos_violations;
  lost_to_failures_ = snap.lost_to_failures;
  instance_failures_ = snap.instance_failures;
  window_arrivals_ = snap.window_arrivals;
  commanded_target_ = snap.commanded_target;
  desired_target_ = snap.commanded_target;
  failures_by_cause_ = snap.failures_by_cause;
  lost_by_cause_ = snap.lost_by_cause;
  recovery_stats_ = snap.recovery_stats;
  in_deficit_ = snap.in_deficit;
  deficit_since_ = snap.deficit_since;
  deficit_seconds_ = snap.deficit_seconds;
  response_stats_ = snap.response_stats;
  service_stats_ = snap.service_stats;
  p95_ = snap.p95;
  p99_ = snap.p99;
  instance_count_ = snap.instance_count;
  instance_history_started_ = snap.instance_history_started;
  // The queue-bound memo recomputes lazily (it is a pure function of the
  // restored service statistics).
  bound_cache_completions_ = UINT64_MAX;
}

MonitoringSnapshot ApplicationProvisioner::snapshot() const {
  MonitoringSnapshot snap;
  snap.time = now();
  snap.mean_service_time = monitored_service_time();
  snap.completed_requests = response_stats_.count();
  snap.active_instances = instances_.size();
  // Pool utilization over the whole run so far (windowed utilization is the
  // experiment harness's job via the data center accounting).
  snap.pool_utilization = datacenter_.utilization();
  const SimTime elapsed = now();
  snap.observed_arrival_rate =
      elapsed > 0.0 ? static_cast<double>(total_arrivals()) / elapsed : 0.0;
  return snap;
}

}  // namespace cloudprov
