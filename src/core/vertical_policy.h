// Vertical-scaling policy (future-work extension, Section VII: "support not
// only changes in number of VMs but also changes in each VM capacity").
//
// Keeps a fixed pool of m instances and resizes their *capacity* (the VM
// speed multiplier, standing in for vCPU/clock changes) so that the offered
// per-instance load stays inside a target utilization band. Comparable
// against AdaptivePolicy in the ablation benches: horizontal scaling changes
// VM-hours, vertical scaling changes capacity-hours.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/provisioning_policy.h"
#include "core/workload_analyzer.h"
#include "predict/predictor.h"

namespace cloudprov {

struct VerticalScalingConfig {
  std::size_t instances = 10;       ///< fixed pool size
  double target_utilization = 0.85; ///< desired offered load per instance
  double min_speed = 0.5;           ///< capacity floor (fraction of baseline)
  double max_speed = 4.0;           ///< capacity ceiling
  /// Base mean service demand in seconds at speed 1.0 (for capacity math).
  double base_service_time = 0.1;
  /// Safety margin on the QoS-derived speed floor: a VM slowed to the point
  /// where one request alone takes Ts would violate QoS on any
  /// above-average demand, so the policy never drops speed below
  /// base_service_time / Ts * (1 + qos_speed_margin).
  double qos_speed_margin = 0.15;
};

class VerticalScalingPolicy final : public ProvisioningPolicy {
 public:
  VerticalScalingPolicy(Simulation& sim,
                        std::shared_ptr<ArrivalRatePredictor> predictor,
                        VerticalScalingConfig config,
                        AnalyzerConfig analyzer_config);

  void attach(ApplicationProvisioner& provisioner) override;
  std::string name() const override { return "Vertical"; }

  struct SpeedRecord {
    SimTime time = 0.0;
    double expected_rate = 0.0;
    double speed = 1.0;
  };
  const std::vector<SpeedRecord>& history() const { return history_; }

 private:
  void on_rate_alert(SimTime t, double expected_rate);

  Simulation& sim_;
  std::shared_ptr<ArrivalRatePredictor> predictor_;
  VerticalScalingConfig config_;
  AnalyzerConfig analyzer_config_;
  ApplicationProvisioner* provisioner_ = nullptr;
  std::optional<WorkloadAnalyzer> analyzer_;
  std::vector<SpeedRecord> history_;
};

}  // namespace cloudprov
