// Composite (multi-tier) SaaS applications — the paper's future work
// ("modeling composite services", Section VII), simulated end to end.
//
// A MultiTierApplication chains one instance pool (ApplicationProvisioner)
// per tier: an accepted request is served at tier 0, then forwarded to
// tier 1 with a fresh tier-1 service demand, and so on; it completes when
// the last tier finishes. A rejection at any tier drops the request
// (counted separately from entry rejections). The end-to-end response-time
// budget Ts is split across tiers proportionally to their estimated service
// times, so each tier's admission bound k_i = floor(Ts_i / Tm_i) preserves
// the end-to-end guarantee.
//
// MultiTierAdaptivePolicy runs the paper's mechanism per tier: one workload
// analyzer at the entry tier drives one Algorithm-1 modeler per tier, each
// sized with that tier's monitored service time — the analytic counterpart
// is queueing::solve_tandem.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "core/workload_analyzer.h"
#include "stats/running_stats.h"
#include "util/distributions.h"

namespace cloudprov {

struct TierConfig {
  std::string name;
  /// Service demand of this tier's work (seconds at unit speed).
  DistributionPtr service_demand;
  /// Seed for the tier's monitored service time (typically the demand mean).
  double initial_service_time_estimate = 0.1;
  VmSpec vm_spec;
};

struct MultiTierConfig {
  std::vector<TierConfig> tiers;
  /// End-to-end QoS: max_response_time covers the whole chain.
  QosTargets qos;
};

class MultiTierApplication final : public Entity, public RequestSink {
 public:
  MultiTierApplication(Simulation& sim, Datacenter& datacenter,
                       MultiTierConfig config, Rng rng);

  /// Entry point: submits to tier 0.
  void on_request(const Request& request) override;

  std::size_t tier_count() const { return tiers_.size(); }
  ApplicationProvisioner& tier(std::size_t index) { return *tiers_.at(index); }
  const ApplicationProvisioner& tier(std::size_t index) const {
    return *tiers_.at(index);
  }

  /// Per-tier share of the end-to-end response budget.
  double tier_budget(std::size_t index) const { return budgets_.at(index); }

  // --- end-to-end accounting -------------------------------------------
  std::uint64_t entered() const { return entered_; }
  /// Rejected at the entry tier.
  std::uint64_t rejected_at_entry() const { return rejected_entry_; }
  /// Accepted at entry but rejected at a later tier.
  std::uint64_t dropped_mid_chain() const { return dropped_; }
  std::uint64_t completed() const { return end_to_end_.count(); }
  const RunningStats& end_to_end_response() const { return end_to_end_; }
  std::uint64_t end_to_end_violations() const { return violations_; }
  double end_to_end_loss_rate() const;

 private:
  void forward(std::size_t next_tier, const Request& request);
  void on_tier_complete(std::size_t tier_index, const Request& request);

  MultiTierConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<ApplicationProvisioner>> tiers_;
  std::vector<double> budgets_;

  std::uint64_t entered_ = 0;
  std::uint64_t rejected_entry_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t violations_ = 0;
  RunningStats end_to_end_;
  /// Entry time of each in-flight request, keyed by request id.
  std::unordered_map<std::uint64_t, SimTime> in_flight_;
};

/// The paper's adaptive mechanism generalized to a tier chain: one analyzer
/// at the entry, one Algorithm-1 modeler per tier.
class MultiTierAdaptivePolicy {
 public:
  MultiTierAdaptivePolicy(Simulation& sim,
                          std::shared_ptr<ArrivalRatePredictor> predictor,
                          ModelerConfig modeler_config,
                          AnalyzerConfig analyzer_config);

  void attach(MultiTierApplication& application);

  /// Latest per-tier pool sizes (diagnostics).
  const std::vector<std::size_t>& current_targets() const { return targets_; }

 private:
  void on_rate_alert(SimTime t, double expected_rate);

  Simulation& sim_;
  std::shared_ptr<ArrivalRatePredictor> predictor_;
  ModelerConfig modeler_config_;
  AnalyzerConfig analyzer_config_;
  MultiTierApplication* application_ = nullptr;
  std::vector<PerformanceModeler> modelers_;
  std::optional<WorkloadAnalyzer> analyzer_;
  std::vector<std::size_t> targets_;
};

}  // namespace cloudprov
