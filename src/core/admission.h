// Admission policies (SaaS-layer admission control, Section IV).
//
// The paper's rule: "if all virtualized application instances have k requests
// in their queues, new requests are rejected, because they are likely to
// violate Ts". KBoundAdmission implements exactly that predicate per
// candidate instance. PriorityAwareAdmission adds the future-work extension
// (Section VII): under contention the last free slots are reserved for
// high-priority requests, and requests whose deadline is already infeasible
// are rejected up front.
#pragma once

#include <cstddef>
#include <string>

#include "cloud/vm.h"
#include "workload/request.h"

namespace cloudprov {

/// Pool state visible to admission decisions.
struct PoolView {
  std::size_t active_instances = 0;
  std::size_t queue_bound = 0;       ///< k
  std::size_t total_free_slots = 0;  ///< sum over active instances of k - load
  double mean_service_time = 0.0;    ///< monitored Tm
  SimTime now = 0.0;
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// True when `request` may be placed on `candidate` (whose load is known
  /// to be < k when called).
  virtual bool admit(const Request& request, const Vm& candidate,
                     const PoolView& pool) const = 0;

  /// Whether admit() reads the PoolView. Building the view is an O(pool)
  /// scan per arrival, so the provisioner skips it for policies (like the
  /// paper baseline) that decide per-candidate only. Defaults to true so
  /// custom policies stay correct without opting in.
  virtual bool needs_pool_view() const { return true; }

  virtual std::string name() const = 0;
};

/// Paper baseline: admit whenever the candidate has a free slot.
class KBoundAdmission final : public AdmissionPolicy {
 public:
  bool admit(const Request&, const Vm&, const PoolView&) const override {
    return true;
  }
  bool needs_pool_view() const override { return false; }
  std::string name() const override { return "k-bound"; }
};

/// Extension: reserve slots for priority traffic and enforce deadlines.
class PriorityAwareAdmission final : public AdmissionPolicy {
 public:
  /// `reserved_slots`: pool-wide free slots below which only requests with
  /// priority >= `priority_threshold` are admitted.
  PriorityAwareAdmission(std::size_t reserved_slots, int priority_threshold);

  bool admit(const Request& request, const Vm& candidate,
             const PoolView& pool) const override;
  std::string name() const override { return "priority-aware"; }

 private:
  std::size_t reserved_slots_;
  int priority_threshold_;
};

}  // namespace cloudprov
