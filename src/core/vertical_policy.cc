#include "core/vertical_policy.h"

#include <algorithm>

#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

VerticalScalingPolicy::VerticalScalingPolicy(
    Simulation& sim, std::shared_ptr<ArrivalRatePredictor> predictor,
    VerticalScalingConfig config, AnalyzerConfig analyzer_config)
    : sim_(sim),
      predictor_(std::move(predictor)),
      config_(config),
      analyzer_config_(analyzer_config) {
  ensure_arg(predictor_ != nullptr, "VerticalScalingPolicy: null predictor");
  ensure_arg(config_.instances >= 1, "VerticalScalingPolicy: need >= 1 instance");
  ensure_arg(config_.target_utilization > 0.0 && config_.target_utilization < 1.0,
             "VerticalScalingPolicy: target utilization must be in (0,1)");
  ensure_arg(config_.min_speed > 0.0 && config_.min_speed <= config_.max_speed,
             "VerticalScalingPolicy: need 0 < min_speed <= max_speed");
  ensure_arg(config_.base_service_time > 0.0,
             "VerticalScalingPolicy: base service time must be > 0");
}

void VerticalScalingPolicy::attach(ApplicationProvisioner& provisioner) {
  ensure(provisioner_ == nullptr, "VerticalScalingPolicy: attached twice");
  provisioner_ = &provisioner;
  // QoS floor: even an otherwise idle instance must finish one request
  // within Ts, with margin for demand heterogeneity.
  const double qos_floor = config_.base_service_time /
                           provisioner.qos().max_response_time *
                           (1.0 + config_.qos_speed_margin);
  config_.min_speed = std::max(config_.min_speed, qos_floor);
  ensure_arg(config_.min_speed <= config_.max_speed,
             "VerticalScalingPolicy: QoS-derived speed floor exceeds max_speed");
  provisioner.scale_to(config_.instances);
  analyzer_.emplace(sim_, provisioner, predictor_, analyzer_config_);
  analyzer_->start([this](SimTime t, double rate) { on_rate_alert(t, rate); });
}

void VerticalScalingPolicy::on_rate_alert(SimTime t, double expected_rate) {
  // Per-instance offered work: lambda/m requests/s, each needing
  // base_service_time/speed seconds. Choose speed so that offered load per
  // instance equals the target utilization:
  //   (lambda/m) * base / speed = target  =>  speed = lambda*base/(m*target).
  const double per_instance_rate =
      expected_rate / static_cast<double>(config_.instances);
  double speed = per_instance_rate * config_.base_service_time /
                 config_.target_utilization;
  speed = std::clamp(speed, config_.min_speed, config_.max_speed);
  provisioner_->for_each_instance([speed](Vm& vm) { vm.set_speed(speed); });
  history_.push_back(SpeedRecord{t, expected_rate, speed});
  CLOUDPROV_LOG(Debug) << "vertical: t=" << t << " lambda=" << expected_rate
                       << " -> speed=" << speed;
}

}  // namespace cloudprov
