#include "core/adaptive_policy.h"

#include "profile/wall_profiler.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

AdaptivePolicy::AdaptivePolicy(Simulation& sim,
                               std::shared_ptr<ArrivalRatePredictor> predictor,
                               ModelerConfig modeler_config,
                               AnalyzerConfig analyzer_config)
    : sim_(sim),
      predictor_(std::move(predictor)),
      modeler_config_(modeler_config),
      analyzer_config_(analyzer_config) {
  ensure_arg(predictor_ != nullptr, "AdaptivePolicy: null predictor");
}

void AdaptivePolicy::attach(ApplicationProvisioner& provisioner) {
  ensure(provisioner_ == nullptr, "AdaptivePolicy: attached twice");
  provisioner_ = &provisioner;
  modeler_.emplace(provisioner.qos(), modeler_config_);
  analyzer_.emplace(sim_, provisioner, predictor_, analyzer_config_);
  analyzer_->start(
      [this](SimTime t, double rate) { on_rate_alert(t, rate); });
}

AdaptivePolicy::State AdaptivePolicy::checkpoint() const {
  ensure(analyzer_.has_value(), "AdaptivePolicy::checkpoint: not attached");
  State state;
  state.analyzer = analyzer_->checkpoint();
  predictor_->save_state(state.predictor);
  state.decisions = decisions_;
  return state;
}

void AdaptivePolicy::restore_attach(ApplicationProvisioner& provisioner,
                                    const State& state) {
  ensure(provisioner_ == nullptr, "AdaptivePolicy: attached twice");
  provisioner_ = &provisioner;
  modeler_.emplace(provisioner.qos(), modeler_config_);
  predictor_->load_state(state.predictor);
  decisions_ = state.decisions;
  analyzer_.emplace(sim_, provisioner, predictor_, analyzer_config_);
  analyzer_->restore([this](SimTime t, double rate) { on_rate_alert(t, rate); },
                     state.analyzer);
}

void AdaptivePolicy::on_rate_alert(SimTime t, double expected_rate) {
  ProfileScope profile(sim_.profiler(), ProfileCategory::kPolicyDecision);
  const double tm = provisioner_->monitored_service_time();
  const std::size_t k = provisioner_->current_queue_bound();
  const ModelerDecision decision = modeler_->required_instances(
      std::max<std::size_t>(provisioner_->active_instances(), 1), expected_rate,
      tm, k);
  const std::size_t achieved = provisioner_->scale_to(decision.instances);
  decisions_.push_back(DecisionRecord{
      t, expected_rate, tm, k, decision.instances, achieved,
      decision.predicted_response_time, decision.predicted_rejection,
      decision.predicted_utilization});
  if (telemetry_ != nullptr) {
    telemetry_->scaling_decision(t, expected_rate, tm, k, decision.instances,
                                 achieved);
    if (DriftMonitor* drift = telemetry_->drift(); drift != nullptr) {
      DriftMonitor::Prediction prediction;
      prediction.response_time = decision.predicted_response_time;
      prediction.rejection = decision.predicted_rejection;
      prediction.utilization = decision.predicted_utilization;
      prediction.lambda = expected_rate;
      prediction.tm = tm;
      prediction.queue_bound = k;
      prediction.instances = achieved;
      const Datacenter& datacenter = provisioner_->datacenter();
      drift->on_decision(t, prediction, datacenter.vm_hours(),
                         datacenter.busy_vm_hours());
    }
  }
  CLOUDPROV_LOG(Debug) << "adaptive: t=" << t << " lambda=" << expected_rate
                       << " -> m=" << decision.instances
                       << " (achieved " << achieved << ")";
}

}  // namespace cloudprov
