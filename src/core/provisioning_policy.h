// VM provisioning policies.
//
// A policy decides, over time, how many application instances back the SaaS.
// StaticPolicy is the paper's baseline ("a fixed number of instances is made
// available"); AdaptivePolicy (adaptive_policy.h) is the paper's
// contribution. Both operate only through ApplicationProvisioner::scale_to,
// so they are interchangeable in every experiment.
#pragma once

#include <string>

#include "core/application_provisioner.h"

namespace cloudprov {

class ProvisioningPolicy {
 public:
  virtual ~ProvisioningPolicy() = default;

  /// Binds the policy to a provisioner and performs initial sizing.
  /// Called once, before the simulation starts running.
  virtual void attach(ApplicationProvisioner& provisioner) = 0;

  virtual std::string name() const = 0;
};

/// Baseline: a fixed pool of `instances` VMs for the whole run.
class StaticPolicy final : public ProvisioningPolicy {
 public:
  explicit StaticPolicy(std::size_t instances);

  void attach(ApplicationProvisioner& provisioner) override;
  std::string name() const override;

 private:
  std::size_t instances_;
};

}  // namespace cloudprov
