#include "core/performance_modeler.h"

#include <algorithm>

#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

PerformanceModeler::PerformanceModeler(QosTargets qos, ModelerConfig config)
    : qos_(qos), config_(config) {
  ensure_arg(config_.max_vms >= 1, "PerformanceModeler: max_vms must be >= 1");
  ensure_arg(config_.min_vms >= 1, "PerformanceModeler: min_vms must be >= 1");
  ensure_arg(config_.min_vms <= config_.max_vms,
             "PerformanceModeler: min_vms must be <= max_vms");
  ensure_arg(config_.rejection_tolerance >= 0.0 &&
                 config_.rejection_tolerance <= 1.0,
             "PerformanceModeler: rejection tolerance must be in [0,1]");
  ensure_arg(config_.max_offered_load > 0.0,
             "PerformanceModeler: max offered load must be positive");
  ensure_arg(qos_.max_response_time > 0.0,
             "PerformanceModeler: Ts must be positive");
}

queueing::InstancePoolMetrics PerformanceModeler::evaluate(
    std::size_t m, double arrival_rate, double mean_service_time,
    std::size_t bound) const {
  queueing::InstancePoolModel model;
  model.total_arrival_rate = arrival_rate;
  model.service_rate = 1.0 / mean_service_time;
  model.instances = m;
  model.queue_capacity = bound;
  return queueing::solve_instance_pool(model);
}

ModelerDecision PerformanceModeler::required_instances(
    std::size_t current_instances, double arrival_rate,
    double mean_service_time, std::size_t bound) const {
  ensure_arg(arrival_rate >= 0.0, "required_instances: lambda must be >= 0");
  ensure_arg(mean_service_time > 0.0, "required_instances: Tm must be > 0");
  ensure_arg(bound >= 1, "required_instances: queue bound must be >= 1");

  ModelerDecision decision;

  // Algorithm 1, lines 1-3.
  std::size_t m =
      std::clamp(current_instances, config_.min_vms, config_.max_vms);
  std::size_t lower = config_.min_vms;  // "min"
  std::size_t upper = config_.max_vms;  // "max"

  // Lines 4-22: repeat ... until oldm = m.
  for (std::size_t iteration = 0; iteration < config_.max_iterations;
       ++iteration) {
    ++decision.iterations;
    const std::size_t oldm = m;  // line 5
    decision.tested.push_back(m);

    // Lines 6-8: solve the queueing network at lambda_si = lambda / m.
    const queueing::InstancePoolMetrics metrics =
        evaluate(m, arrival_rate, mean_service_time, bound);
    decision.predicted_rejection = metrics.rejection_probability;
    decision.predicted_response_time = metrics.mean_response_time;
    decision.predicted_utilization = metrics.offered_per_instance;

    const bool qos_met =
        metrics.rejection_probability <= config_.rejection_tolerance &&
        metrics.mean_response_time <= qos_.max_response_time &&
        metrics.offered_per_instance <= config_.max_offered_load;

    if (!qos_met) {
      // Lines 9-14: QoS not met at oldm -> every m' <= oldm also fails.
      m = oldm + std::max<std::size_t>(oldm / 2, 1);  // m <- m + m/2
      lower = oldm + 1;  // published pseudocode prints "min <- m + 1" (typo)
      if (m > upper) m = upper;  // lines 12-13; if oldm == upper the loop
                                 // exits next check with the capped pool
    } else if (metrics.offered_per_instance < qos_.min_utilization) {
      // Lines 15-21: utilization below threshold -> try a smaller pool.
      upper = m;                        // line 16
      m = lower + (upper - lower) / 2;  // line 17
      // Lines 18-20: bisection collapsed onto the lower bound -> keep the
      // last value known to satisfy QoS and stop (next check sees oldm = m).
      if (m <= lower) m = oldm;
    }

    if (oldm == m) break;  // line 22
  }

  decision.instances = m;
  CLOUDPROV_LOG(Debug) << "modeler: lambda=" << arrival_rate
                       << " Tm=" << mean_service_time << " k=" << bound
                       << " -> m=" << m << " (rej="
                       << decision.predicted_rejection
                       << ", util=" << decision.predicted_utilization << ")";
  return decision;
}

}  // namespace cloudprov
