// QoS targets (Section III-B).
//
// The negotiated service level consists of a maximum response time Ts and a
// maximum request rejection rate Rej(Gs); the provider additionally sets a
// minimum utilization so the pool is not over-provisioned (Section IV-B).
#pragma once

#include <cstddef>

#include "util/check.h"
#include "util/units.h"

namespace cloudprov {

struct QosTargets {
  /// Ts: negotiated maximum response time of an accepted request (seconds).
  double max_response_time = 0.250;
  /// Maximum acceptable fraction of rejected requests (paper: 0).
  double max_rejection_rate = 0.0;
  /// Utilization floor below which capacity is released (paper: 0.8).
  double min_utilization = 0.8;
};

/// k = floor(Ts / Tr) (Equation 1): the per-instance queue bound that
/// guarantees an accepted request finishes within Ts. Clamped to >= 1 so an
/// instance can always hold the request it is serving.
inline std::size_t queue_bound(double max_response_time, double mean_service_time) {
  ensure_arg(max_response_time > 0.0, "queue_bound: Ts must be positive");
  ensure_arg(mean_service_time > 0.0, "queue_bound: Tr must be positive");
  // The relative epsilon keeps ratios that are integers up to floating-point
  // noise (e.g. a response budget computed as Ts * 0.2 / 0.3) on the
  // intended side of the floor.
  const double k = max_response_time / mean_service_time * (1.0 + 1e-9);
  if (k < 1.0) return 1;
  return static_cast<std::size_t>(k);
}

}  // namespace cloudprov
