// Application provisioner (Section IV-C).
//
// The main point of contact of the SaaS/PaaS system: it receives requests
// accepted by admission control, forwards them to virtualized application
// instances round-robin, and grows/shrinks the instance pool on command from
// the load predictor and performance modeler.
//
// Scale-down follows the paper's graceful protocol: idle instances are
// destroyed first; if more must go, the ones with the fewest requests in
// progress are selected; selected instances stop receiving work (DRAINING)
// and are destroyed only when their running requests finish. Scale-up first
// resurrects DRAINING instances ("removes them from the list of instances to
// be destroyed until the number of required instances is reached") and only
// then asks the data center's resource provisioner for fresh VMs.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cloud/broker.h"
#include "cloud/datacenter.h"
#include "cloud/monitor.h"
#include "core/admission.h"
#include "core/qos.h"
#include "stats/quantile.h"
#include "stats/running_stats.h"
#include "stats/timeseries.h"

namespace cloudprov {

struct ProvisionerConfig {
  /// Shape of every application VM (paper: 1 core, 2 GB).
  VmSpec vm_spec;
  /// Estimate of the mean request execution time used before any request
  /// has completed (seeds Tm and therefore k).
  double initial_service_time_estimate = 0.1;
  /// Optional fixed queue bound; 0 means "recompute k = floor(Ts/Tm) from the
  /// monitored service time" (Equation 1).
  std::size_t fixed_queue_bound = 0;
  /// Track P² tail quantiles of response time (small constant cost).
  bool track_quantiles = true;
  /// Serve waiting requests in priority order within each instance
  /// (Section VII extension); default FIFO as in the paper.
  bool priority_queueing = false;
  /// Boot watchdog: an instance still BOOTING after this many seconds is
  /// declared failed (FaultCause::kBootTimeout) and dropped from the pool,
  /// so stragglers do not occupy commanded slots forever. 0 disables.
  SimTime boot_timeout = 0.0;
};

class ApplicationProvisioner final : public Entity,
                                     public RequestSink,
                                     public MonitorSource {
 public:
  ApplicationProvisioner(Simulation& sim, Datacenter& datacenter,
                         QosTargets qos, ProvisionerConfig config,
                         std::unique_ptr<AdmissionPolicy> admission =
                             std::make_unique<KBoundAdmission>());

  /// Attaches the replication's telemetry collector (null disables):
  /// request admission outcomes, completion spans, and pool-size counter
  /// samples. Purely observational — enabling it never changes decisions.
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Routes this pool's size samples to the apptier cache lane instead of
  /// the (backend) instance lane — cache pools share the collector with the
  /// backend pool, and two pools must not fight over one counter lane.
  void set_cache_instance_lane(bool cache) { cache_instance_lane_ = cache; }

  /// Routes instance creation through an external supplier instead of the
  /// data center directly — the seam the IaaS market broker (src/market)
  /// plugs into so every scale-up becomes a purchase. The factory must
  /// return a VM from this provisioner's data center (or nullptr on
  /// capacity/outage denial); lifecycle callbacks and the boot watchdog are
  /// still installed here. Null restores direct creation.
  using VmFactory = std::function<Vm*(const VmSpec&)>;
  void set_vm_factory(VmFactory factory) { vm_factory_ = std::move(factory); }

  // --- RequestSink ------------------------------------------------------
  /// Admission control + round-robin dispatch of one end-user request.
  void on_request(const Request& request) override;

  /// Same as on_request but reports the admission outcome — used by
  /// composite-service chaining (core/multitier.h) to account for mid-chain
  /// drops.
  bool try_submit(const Request& request);

  /// Invoked after a request completes service (in addition to internal
  /// accounting). Used to chain tiers in multi-tier applications.
  using CompletionListener =
      std::function<void(const Request&, double response_time)>;
  void set_completion_listener(CompletionListener listener) {
    completion_listener_ = std::move(listener);
  }
  /// The currently installed listener (empty when none). Tier/gateway layers
  /// that interpose on completions capture this and chain to it, so stacking
  /// order (gateway first, cache tier second) composes instead of clobbering.
  const CompletionListener& completion_listener() const {
    return completion_listener_;
  }

  // --- capacity control (driven by the modeler) ---------------------------
  /// Adjusts the pool so that `target` instances accept requests.
  /// Returns the number actually accepting afterwards (the data center may
  /// run out of capacity). When a capacity cap is installed (multi-tenant
  /// arbitration), the raw desire is recorded but the commanded pool is
  /// clamped to the cap.
  std::size_t scale_to(std::size_t target);

  // --- multi-tenant capacity arbitration (src/experiment/multi_tenant) ----
  /// Installs an external capacity grant: the commanded pool may never
  /// exceed `cap` active instances. Raising the cap immediately regrows the
  /// pool toward the last desired target; lowering it drains down. The
  /// default (SIZE_MAX) leaves single-tenant behavior bit-identical.
  void set_capacity_cap(std::size_t cap);
  std::size_t capacity_cap() const { return capacity_cap_; }
  /// The last target requested through scale_to, before any cap clamping —
  /// what this application *wants*, which the arbiter reads at barriers.
  std::size_t desired_target() const { return desired_target_; }
  /// scale_to calls whose target exceeded the installed cap.
  std::uint64_t capacity_clips() const { return capacity_clips_; }
  /// Instances requested but denied by the cap, summed over clipped calls.
  std::uint64_t capacity_denied() const { return capacity_denied_; }

  /// Instances accepting new requests (RUNNING).
  std::size_t active_instances() const { return instances_.size(); }
  /// Instances draining towards destruction.
  std::size_t draining_instances() const { return draining_.size(); }
  /// All live instances (the paper's "application instances running in a
  /// single time").
  std::size_t live_instances() const {
    return instances_.size() + draining_.size();
  }

  // --- monitoring ---------------------------------------------------------
  MonitoringSnapshot snapshot() const override;

  /// Monitored average request execution time Tm (falls back to the
  /// configured estimate until the first completion).
  double monitored_service_time() const;
  /// Current per-instance queue bound k (Equation 1).
  std::size_t current_queue_bound() const;

  // --- output metrics (Section V-A) ----------------------------------------
  std::uint64_t total_arrivals() const { return accepted_ + rejected_; }
  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t completed() const { return response_stats_.count(); }
  /// Requests whose response time exceeded Ts.
  std::uint64_t qos_violations() const { return qos_violations_; }
  double rejection_rate() const;
  const RunningStats& response_time_stats() const { return response_stats_; }
  const RunningStats& service_time_stats() const { return service_stats_; }
  double response_p95() const { return p95_.value(); }
  double response_p99() const { return p99_.value(); }
  /// Time-weighted history of the live instance count (min/max/average),
  /// starting at the first scaling action (so a pre-provisioning count of
  /// zero does not pollute the minimum).
  const TimeWeightedValue& instance_history() const { return instance_count_; }

  /// Arrivals since the last call (used by the workload analyzer to compute
  /// the observed window rate).
  std::uint64_t take_window_arrivals();

  const QosTargets& qos() const { return qos_; }
  Datacenter& datacenter() { return datacenter_; }

  /// Applies `fn` to every active instance (vertical-scaling extension and
  /// white-box tests).
  void for_each_instance(const std::function<void(Vm&)>& fn);

  // --- failure injection (uncertain-behavior experiments) -----------------
  /// Crash-fails the index-th live instance (actives first, then draining).
  /// In-flight requests are lost and counted in lost_to_failures().
  /// Returns the number of requests lost. Precondition:
  /// index < live_instances().
  std::size_t inject_instance_failure(std::size_t index);

  // --- spot-market revocation (src/market) --------------------------------
  /// Serves a revocation notice on a pool instance: marks it revoked (barred
  /// from resurrection), then starts the graceful exit — a BOOTING instance
  /// is destroyed outright (it holds no requests), a RUNNING one drains so
  /// in-flight requests finish inside the notice window, and an already
  /// DRAINING one just keeps draining. The market's hard kill at notice
  /// expiry arrives through the fault path (FaultCause::kSpotRevocation).
  void revoke_instance(Vm& vm);

  /// Accepted requests that were lost to instance failures.
  std::uint64_t lost_to_failures() const { return lost_to_failures_; }
  /// Instance crash-failures (all causes) so far.
  std::uint64_t instance_failures() const { return instance_failures_; }

  // --- fault awareness & self-healing accounting ---------------------------
  /// The last pool size commanded through scale_to: the reconciler's heal
  /// target, and the reference line for availability/MTTR accounting.
  std::size_t commanded_target() const { return commanded_target_; }
  /// Crash-failures broken down by the fault taxonomy.
  std::uint64_t failures_by_cause(FaultCause cause) const {
    return failures_by_cause_[static_cast<std::size_t>(cause)];
  }
  /// Lost in-flight requests broken down by the fault taxonomy.
  std::uint64_t lost_by_cause(FaultCause cause) const {
    return lost_by_cause_[static_cast<std::size_t>(cause)];
  }
  /// Boot-watchdog kills (== failures_by_cause(kBootTimeout)).
  std::uint64_t boot_timeouts() const {
    return failures_by_cause(FaultCause::kBootTimeout);
  }
  /// Distribution of repair times: seconds from the active pool first
  /// dropping below the commanded target until it is restored (MTTR).
  const RunningStats& recovery_time_stats() const { return recovery_stats_; }
  /// Total seconds (up to now) the active pool spent below the commanded
  /// target; 1 - deficit_seconds()/elapsed is the pool availability.
  double deficit_seconds() const;

  // --- checkpoint support (src/lookahead) ---------------------------------
  /// Full mutable state: pool membership (by VM id), dispatch cursor, all
  /// counters/statistics, and pending boot-watchdog events. Callbacks and
  /// the VM factory are wiring, not state — the restoring side re-installs
  /// them (restore() reattaches the lifecycle callbacks itself; the factory
  /// is re-bound by whoever owns the market broker).
  struct Snapshot {
    std::vector<std::uint64_t> instances;  ///< RUNNING vm ids, rr order
    std::vector<std::uint64_t> draining;   ///< DRAINING vm ids
    std::size_t rr_cursor = 0;
    struct Watchdog {
      EventStamp stamp;
      std::uint64_t vm_id = 0;
    };
    std::vector<Watchdog> watchdogs;  ///< pending boot-timeout checks
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t qos_violations = 0;
    std::uint64_t lost_to_failures = 0;
    std::uint64_t instance_failures = 0;
    std::uint64_t window_arrivals = 0;
    std::size_t commanded_target = 0;
    std::array<std::uint64_t, kFaultCauseCount> failures_by_cause{};
    std::array<std::uint64_t, kFaultCauseCount> lost_by_cause{};
    RunningStats recovery_stats;
    bool in_deficit = false;
    SimTime deficit_since = 0.0;
    double deficit_seconds = 0.0;
    RunningStats response_stats;
    RunningStats service_stats;
    P2Quantile p95{0.95};
    P2Quantile p99{0.99};
    TimeWeightedValue instance_count;
    bool instance_history_started = false;
  };
  Snapshot checkpoint() const;
  /// Rebinds the pool against the (already restored) data center, reattaches
  /// lifecycle callbacks on every live pool VM, and re-arms pending boot
  /// watchdogs under their original event stamps. Must run on a freshly
  /// constructed provisioner with identical configuration.
  void restore(const Snapshot& snap);

 private:
  /// scale_to after cap clamping: the actual pool-adjustment protocol.
  std::size_t apply_target(std::size_t target);
  Vm* select_instance(const Request& request);
  Vm* create_instance();
  void install_callbacks(Vm& vm);
  void arm_boot_watchdog(Vm& vm, std::optional<EventStamp> stamp);
  void drain_instance(std::size_t index);
  void on_vm_complete(Vm& vm, const Request& request, double response_time);
  void on_vm_drained(Vm& vm);
  void on_vm_failed(Vm& vm, FaultCause cause, const std::vector<Request>& lost);
  void update_deficit();
  void record_instance_count();
  PoolView pool_view() const;

  Datacenter& datacenter_;
  QosTargets qos_;
  ProvisionerConfig config_;
  std::unique_ptr<AdmissionPolicy> admission_;
  Telemetry* telemetry_ = nullptr;
  bool cache_instance_lane_ = false;
  VmFactory vm_factory_;

  CompletionListener completion_listener_;
  std::vector<Vm*> instances_;  ///< RUNNING, in round-robin order
  std::vector<Vm*> draining_;   ///< DRAINING, pending destruction
  std::size_t rr_cursor_ = 0;

  /// Pending boot watchdogs, tracked so checkpoints can carry them across a
  /// restore. Each entry is erased when its event fires.
  struct WatchdogRecord {
    EventId event = kInvalidEventId;
    std::uint64_t vm_id = 0;
  };
  std::vector<WatchdogRecord> watchdogs_;

  /// Memo for the adaptive queue bound, keyed on the completion count (the
  /// monitored mean — and therefore k — only changes when a completion is
  /// recorded). The sentinel forces a compute on first use.
  mutable std::size_t bound_cache_ = 0;
  mutable std::uint64_t bound_cache_completions_ = UINT64_MAX;

  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t qos_violations_ = 0;
  std::uint64_t lost_to_failures_ = 0;
  std::uint64_t instance_failures_ = 0;
  std::uint64_t window_arrivals_ = 0;
  std::size_t commanded_target_ = 0;
  /// Last scale_to target before cap clamping; == commanded_target_ unless
  /// a cap clipped it. Not part of Snapshot: restore() seeds it from the
  /// snapshotted commanded target, which is lossless for uncapped worlds
  /// (the only ones that are checkpointed).
  std::size_t desired_target_ = 0;
  std::size_t capacity_cap_ = SIZE_MAX;
  std::uint64_t capacity_clips_ = 0;
  std::uint64_t capacity_denied_ = 0;
  std::array<std::uint64_t, kFaultCauseCount> failures_by_cause_{};
  std::array<std::uint64_t, kFaultCauseCount> lost_by_cause_{};
  RunningStats recovery_stats_;
  bool in_deficit_ = false;
  SimTime deficit_since_ = 0.0;
  double deficit_seconds_ = 0.0;
  RunningStats response_stats_;
  RunningStats service_stats_;
  P2Quantile p95_{0.95};
  P2Quantile p99_{0.99};
  TimeWeightedValue instance_count_;
  bool instance_history_started_ = false;
};

}  // namespace cloudprov
