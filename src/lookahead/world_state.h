// WorldState: a value snapshot of the full simulation world.
//
// Co-simulation lookahead (the model-predictive provisioner of
// lookahead_policy.h) and disk checkpointing both need the same primitive:
// freeze every piece of mutable simulation state — datacenter occupancy and
// the complete VM history, provisioner pool + statistics, broker position,
// workload-source cursors, policy/predictor fit, spot market (price path,
// ledger, pending revocations), fault injector and reconciler, and every RNG
// stream — such that a fresh world restored from the snapshot continues
// bit-identically to the uninterrupted original.
//
// Event-queue capture works by stamps: scheduled events hold opaque `this`
// pointers, so instead of copying the queue each component records the
// (time, seq) stamps of its pending events and re-pushes equivalent actions
// bound to the restored objects (Simulation::schedule_stamped). Pop order
// depends only on (time, seq), so the interleaving is preserved exactly.
//
// Construction and wiring (configs, callbacks, placement policy, telemetry
// pointers) are deliberately NOT part of the state: a snapshot is only
// restorable into a world built from the same (ScenarioConfig, PolicySpec,
// seed) triple — experiment/world.h owns that contract.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "apptier/cache_tier.h"
#include "cloud/broker.h"
#include "cloud/datacenter.h"
#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "fault/fault_injector.h"
#include "fault/reconciler.h"
#include "market/market_broker.h"
#include "resilience/retry_gateway.h"
#include "resilience/shedding_admission.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"
#include "util/units.h"

namespace cloudprov {

/// Per-replication random streams in their documented derivation order.
/// Streams are drawn unconditionally, in this order, from one splitmix64
/// seeder — so adding a later stream (or enabling the subsystem that uses
/// it) can never perturb the draws of an earlier one for existing seeds.
/// The lookahead stream feeds the what-if clones' synthetic arrival
/// processes; the resilience stream (retry-backoff jitter) was added after
/// it and is drawn last.
struct SeedStreams {
  std::uint64_t workload = 0;
  std::uint64_t placement = 0;
  std::uint64_t fault = 0;
  std::uint64_t market = 0;
  std::uint64_t lookahead = 0;
  std::uint64_t resilience = 0;
  /// Cache-tier service demands (src/apptier); drawn last so existing seeds
  /// keep their historical streams.
  std::uint64_t apptier = 0;
};

inline SeedStreams derive_streams(std::uint64_t seed) {
  SplitMix64 seeder(seed);
  SeedStreams streams;
  streams.workload = seeder.next();
  streams.placement = seeder.next();
  streams.fault = seeder.next();
  streams.market = seeder.next();
  streams.lookahead = seeder.next();
  streams.resilience = seeder.next();
  streams.apptier = seeder.next();
  return streams;
}

struct WorldState {
  // Engine position: clock, executed-event counter (paces the telemetry
  // engine-sample stride), and the queue's push counter (continues the
  // FIFO-among-equal-times sequence numbers).
  SimTime now = 0.0;
  std::uint64_t executed_events = 0;
  std::uint64_t push_counter = 0;

  Datacenter::Snapshot datacenter;
  ApplicationProvisioner::Snapshot provisioner;
  Broker::Snapshot broker;
  /// Workload-source position (RequestSource::save_state encoding).
  std::vector<double> source;

  /// Adaptive/lookahead policy core (analyzer + predictor fit + decision
  /// log); absent for static-policy worlds.
  bool policy_present = false;
  AdaptivePolicy::State policy;
  /// Lookahead forecast-stream position; present only for lookahead worlds.
  std::optional<Rng::State> lookahead_rng;

  std::optional<MarketBroker::Snapshot> market;
  std::optional<FaultInjector::Snapshot> faults;
  std::optional<Reconciler::Snapshot> reconciler;

  /// Request-path resilience layer (client gateway + server shedding);
  /// present only when the layer is enabled, so LookaheadPolicy clones and
  /// checkpoints carry retry/breaker/shed state through a storm.
  struct ResilienceState {
    RetryGateway::Snapshot gateway;
    SheddingAdmission::Snapshot shedding;
  };
  std::optional<ResilienceState> resilience;

  /// Multi-tier application state (cache datacenter + pool, directory, the
  /// tier's counters/series, and the cache-side decision log); present only
  /// in tiered worlds. The backend half of the tiered provisioner reuses
  /// `policy` above.
  std::optional<ApptierState> apptier;

  /// Deep copy of the replication's collector, so a restored run keeps
  /// recording into identical instruments and its final exports stay
  /// byte-identical. In-memory only: disk checkpoints exclude telemetry
  /// (checkpoint.h), and what-if clones run without it.
  std::unique_ptr<Telemetry> telemetry;
};

}  // namespace cloudprov
