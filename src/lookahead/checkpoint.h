// Binary serialization of WorldState for on-disk checkpoints.
//
// Encoding: a magic/version header, then every WorldState field in
// declaration order — trivially-copyable leaves as raw bytes, vectors with a
// u64 length prefix, optionals with a u8 engaged prefix. The format is
// deliberately NOT portable across builds: a checkpoint is only valid for
// the same binary, the same (ScenarioConfig, PolicySpec, seed) triple, and
// the same platform, which is exactly the restart/branching use case the
// lookahead subsystem needs. Telemetry is excluded (a restored-from-disk run
// re-records from the restore point); in-memory snapshots keep it.
//
// Errors (bad magic, truncated stream, trailing bytes) throw
// std::runtime_error with a description.
#pragma once

#include <iosfwd>
#include <string>

#include "lookahead/world_state.h"

namespace cloudprov {

void write_checkpoint(std::ostream& out, const WorldState& state);
WorldState read_checkpoint(std::istream& in);

/// File wrappers; throw std::runtime_error when the path cannot be opened.
void write_checkpoint_file(const std::string& path, const WorldState& state);
WorldState read_checkpoint_file(const std::string& path);

}  // namespace cloudprov
