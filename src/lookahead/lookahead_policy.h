// Model-predictive provisioning via co-simulation lookahead.
//
// LookaheadPolicy wraps the paper's adaptive loop (Section IV): the same
// workload analyzer cadence, the same Algorithm 1 baseline sizing. But where
// AdaptivePolicy commits Algorithm 1's answer directly, LookaheadPolicy asks
// a WhatIfEngine to fork K cheap clones of the running world — telemetry off,
// arrivals replaced by a synthetic Poisson stream at the predictor's expected
// rate — advance each H analysis windows into the future under a candidate
// (pool size, spot bid) pair, and score the outcomes on billed cost and
// realized QoS. The cheapest candidate that is no worse than Algorithm 1's
// own choice on rejections and QoS violations is committed; when none
// qualifies the policy falls back to Algorithm 1's m, making the search a
// strict refinement rather than a replacement.
//
// Determinism contract: with candidates <= 1 and no bid levels the engine is
// never consulted and no lookahead RNG draw happens — the policy is then
// bit-identical to AdaptivePolicy (same scale_to / record / telemetry call
// sequence), which the ablation bench and CI smoke assert.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/adaptive_policy.h"
#include "core/performance_modeler.h"
#include "core/provisioning_policy.h"
#include "core/workload_analyzer.h"
#include "predict/predictor.h"
#include "util/rng.h"
#include "workload/source.h"

namespace cloudprov {

class Telemetry;

struct LookaheadConfig {
  /// Candidate pool sizes per search (K). Candidate 0 is always Algorithm 1's
  /// m; the rest ring around it (m-1, m+1, m-2, ...). <= 1 disables the
  /// search entirely (bit-identical to AdaptivePolicy).
  std::size_t candidates = 5;
  /// What-if horizon in analysis windows (H): clones run to
  /// t + horizon_windows * analysis_interval.
  std::size_t horizon_windows = 3;
  /// Spot-bid levels to cross with the candidate pool sizes. Empty keeps the
  /// current bid; ignored when the world has no market layer.
  std::vector<double> bid_levels;
  /// Seed for the forecast stream (SeedStreams::lookahead).
  std::uint64_t seed = 0;
};

/// One what-if question: clone the world, apply the candidate, run ahead.
struct WhatIfSpec {
  std::size_t target_instances = 0;
  /// Spot bid to apply in the clone; nullopt keeps the current bid.
  std::optional<double> bid;
  /// Synthetic arrival rate for the clone's forecast source.
  double forecast_rate = 0.0;
  /// Seed for the clone's forecast draws. The policy draws one seed per
  /// search window and reuses it across that window's candidates (common
  /// random numbers), so outcome differences isolate the candidate.
  std::uint64_t forecast_seed = 0;
  /// Absolute sim time the clone runs to.
  SimTime horizon = 0.0;
};

/// What the clone observed between the fork point and the horizon.
struct WhatIfOutcome {
  bool valid = false;
  /// Billed cost over the clone's remaining run: the market ledger's total
  /// when the market layer is live, a VM-hours proxy otherwise.
  double cost = 0.0;
  std::uint64_t rejected = 0;
  std::uint64_t qos_violations = 0;
  std::uint64_t completed = 0;
};

/// Forks and scores what-if clones. Implemented by experiment::World, which
/// owns the construction recipe needed to rebuild a world from a snapshot;
/// the policy stays ignorant of scenario wiring.
class WhatIfEngine {
 public:
  virtual ~WhatIfEngine() = default;
  virtual WhatIfOutcome what_if(const WhatIfSpec& spec) = 0;
  /// Applies a winning bid to the live market broker.
  virtual void commit_bid(double bid) = 0;
  /// Current live bid, or nullopt when the world has no market layer (bid
  /// search is then skipped).
  virtual std::optional<double> current_bid() const = 0;
};

/// Synthetic Poisson arrival process for what-if clones: exponential
/// interarrivals at a fixed forecast rate, service demands drawn as
/// base * U(1, 1 + spread) — the same family as the scenario sources, so a
/// clone's service-time statistics stay in-distribution.
class PoissonForecastSource final : public RequestSource {
 public:
  PoissonForecastSource(double rate, double service_base, double service_spread,
                        SimTime start_time)
      : rate_(rate),
        service_base_(service_base),
        service_spread_(service_spread),
        cursor_(start_time) {}

  std::optional<Arrival> next(Rng& rng) override {
    if (rate_ <= 0.0) return std::nullopt;
    cursor_ += rng.exponential(rate_);
    Arrival arrival;
    arrival.time = cursor_;
    arrival.service_demand =
        service_base_ * rng.uniform(1.0, 1.0 + service_spread_);
    return arrival;
  }

  double expected_rate(SimTime) const override { return rate_; }
  std::string name() const override { return "forecast-poisson"; }

 private:
  double rate_;
  double service_base_;
  double service_spread_;
  SimTime cursor_;
};

class LookaheadPolicy final : public ProvisioningPolicy {
 public:
  LookaheadPolicy(Simulation& sim,
                  std::shared_ptr<ArrivalRatePredictor> predictor,
                  ModelerConfig modeler_config, AnalyzerConfig analyzer_config,
                  LookaheadConfig lookahead_config);

  void attach(ApplicationProvisioner& provisioner) override;
  std::string name() const override { return "Lookahead"; }

  /// Wires the what-if engine. Must be set before the first analysis window
  /// for the search to run; without it the policy degrades to AdaptivePolicy
  /// behavior. Never owned.
  void set_engine(WhatIfEngine* engine) { engine_ = engine; }
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  const LookaheadConfig& config() const { return config_; }
  using DecisionRecord = AdaptivePolicy::DecisionRecord;
  const std::vector<DecisionRecord>& decisions() const { return decisions_; }

  /// Searches run (windows where the engine was consulted) and commits that
  /// deviated from Algorithm 1's m — the bench's ablation counters.
  std::uint64_t searches() const { return searches_; }
  std::uint64_t overrides() const { return overrides_; }

  // --- checkpoint support ------------------------------------------------
  /// Shares AdaptivePolicy's state shape (analyzer + predictor + decisions);
  /// the forecast stream is carried separately (WorldState::lookahead_rng).
  AdaptivePolicy::State checkpoint() const;
  void restore_attach(ApplicationProvisioner& provisioner,
                      const AdaptivePolicy::State& state,
                      const std::optional<Rng::State>& rng_state);
  Rng::State rng_state() const { return rng_.state(); }

 private:
  void on_rate_alert(SimTime t, double expected_rate);
  bool search_enabled() const;
  std::vector<std::size_t> candidate_targets(std::size_t m) const;

  Simulation& sim_;
  std::shared_ptr<ArrivalRatePredictor> predictor_;
  ModelerConfig modeler_config_;
  AnalyzerConfig analyzer_config_;
  LookaheadConfig config_;

  ApplicationProvisioner* provisioner_ = nullptr;
  WhatIfEngine* engine_ = nullptr;
  Telemetry* telemetry_ = nullptr;
  std::optional<PerformanceModeler> modeler_;
  std::optional<WorkloadAnalyzer> analyzer_;
  std::vector<DecisionRecord> decisions_;
  Rng rng_;
  std::uint64_t searches_ = 0;
  std::uint64_t overrides_ = 0;
};

}  // namespace cloudprov
