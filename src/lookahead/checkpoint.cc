#include "lookahead/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <type_traits>

namespace cloudprov {
namespace {

constexpr std::uint32_t kMagic = 0x43505753u;  // "CPWS"
// Version 2 appended the optional resilience state (RetryGateway +
// SheddingAdmission); version-1 files (pre-resilience) still load, with the
// layer absent. Version 3 added the request `key` field (Arrival/Request are
// now encoded field-wise) and appended the optional apptier state; v1/v2
// files still load with key = 0 and no cache tier.
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kMinVersion = 1;

// Version of the file currently being decoded; get() overloads for types
// whose encoding changed across versions branch on it. Writes always use
// kVersion. thread_local so parallel replications can restore concurrently.
thread_local std::uint32_t g_read_version = kVersion;

// --- primitive layer ------------------------------------------------------

template <typename T>
void put(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "checkpoint: non-trivial type needs an explicit overload");
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void get(std::istream& in, T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "checkpoint: non-trivial type needs an explicit overload");
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: truncated stream");
}

// Composite overloads are in this unnamed namespace, so ADL cannot find
// them from the vector/optional templates below — forward-declare them
// before those templates' definitions instead.
void put(std::ostream& out, const Arrival& arrival);
void get(std::istream& in, Arrival& arrival);
void put(std::ostream& out, const Request& request);
void get(std::istream& in, Request& request);
void put(std::ostream& out, const Vm::Snapshot& snap);
void get(std::istream& in, Vm::Snapshot& snap);
void put(std::ostream& out, const Datacenter::Snapshot& snap);
void get(std::istream& in, Datacenter::Snapshot& snap);
void put(std::ostream& out, const ApplicationProvisioner::Snapshot& snap);
void get(std::istream& in, ApplicationProvisioner::Snapshot& snap);
void put(std::ostream& out, const Broker::Snapshot& snap);
void get(std::istream& in, Broker::Snapshot& snap);
void put(std::ostream& out, const AdaptivePolicy::State& state);
void get(std::istream& in, AdaptivePolicy::State& state);
void put(std::ostream& out, const SpotPriceProcess::State& state);
void get(std::istream& in, SpotPriceProcess::State& state);
void put(std::ostream& out, const MarketBroker::Snapshot& snap);
void get(std::istream& in, MarketBroker::Snapshot& snap);
void put(std::ostream& out, const FaultInjector::Snapshot& snap);
void get(std::istream& in, FaultInjector::Snapshot& snap);
void put(std::ostream& out, const Reconciler::Snapshot& snap);
void get(std::istream& in, Reconciler::Snapshot& snap);
void put(std::ostream& out, const RetryGateway::InFlightEntry& entry);
void get(std::istream& in, RetryGateway::InFlightEntry& entry);
void put(std::ostream& out, const RetryGateway::PendingRetry& entry);
void get(std::istream& in, RetryGateway::PendingRetry& entry);
void put(std::ostream& out, const RetryGateway::Snapshot& snap);
void get(std::istream& in, RetryGateway::Snapshot& snap);
void put(std::ostream& out, const WorldState::ResilienceState& state);
void get(std::istream& in, WorldState::ResilienceState& state);
void put(std::ostream& out, const ApptierState& state);
void get(std::istream& in, ApptierState& state);

// Vectors and optionals of already-handled element types.
template <typename T>
void put(std::ostream& out, const std::vector<T>& values) {
  put(out, static_cast<std::uint64_t>(values.size()));
  for (const T& value : values) put(out, value);
}

template <typename T>
void get(std::istream& in, std::vector<T>& values) {
  std::uint64_t size = 0;
  get(in, size);
  values.clear();
  values.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    T value{};
    get(in, value);
    values.push_back(std::move(value));
  }
}

template <typename T>
void put(std::ostream& out, const std::optional<T>& value) {
  put(out, static_cast<std::uint8_t>(value.has_value() ? 1 : 0));
  if (value.has_value()) put(out, *value);
}

template <typename T>
void get(std::istream& in, std::optional<T>& value) {
  std::uint8_t engaged = 0;
  get(in, engaged);
  if (engaged != 0) {
    T inner{};
    get(in, inner);
    value = std::move(inner);
  } else {
    value.reset();
  }
}

// --- composite overloads (field-wise, declaration order) ------------------

// Pre-v3 files raw-copied Arrival/Request (no key field, padding included);
// these mirror the old in-memory layouts so v1/v2 checkpoints still decode.
struct LegacyArrival {
  SimTime time = 0.0;
  double service_demand = 0.0;
  int priority = 0;
  SimTime deadline = 0.0;
};
static_assert(sizeof(LegacyArrival) == 32, "legacy Arrival layout changed");

struct LegacyRequest {
  std::uint64_t id = 0;
  SimTime arrival_time = 0.0;
  double service_demand = 0.0;
  int priority = 0;
  SimTime deadline = 0.0;
};
static_assert(sizeof(LegacyRequest) == 40, "legacy Request layout changed");

void put(std::ostream& out, const Arrival& arrival) {
  put(out, arrival.time);
  put(out, arrival.service_demand);
  put(out, arrival.priority);
  put(out, arrival.deadline);
  put(out, arrival.key);
}

void get(std::istream& in, Arrival& arrival) {
  if (g_read_version < 3) {
    LegacyArrival legacy;
    get(in, legacy);
    arrival = Arrival{legacy.time, legacy.service_demand, legacy.priority,
                      legacy.deadline, 0};
    return;
  }
  get(in, arrival.time);
  get(in, arrival.service_demand);
  get(in, arrival.priority);
  get(in, arrival.deadline);
  get(in, arrival.key);
}

void put(std::ostream& out, const Request& request) {
  put(out, request.id);
  put(out, request.arrival_time);
  put(out, request.service_demand);
  put(out, request.priority);
  put(out, request.deadline);
  put(out, request.key);
}

void get(std::istream& in, Request& request) {
  if (g_read_version < 3) {
    LegacyRequest legacy;
    get(in, legacy);
    request = Request{legacy.id, legacy.arrival_time, legacy.service_demand,
                      legacy.priority, legacy.deadline, 0};
    return;
  }
  get(in, request.id);
  get(in, request.arrival_time);
  get(in, request.service_demand);
  get(in, request.priority);
  get(in, request.deadline);
  get(in, request.key);
}

void put(std::ostream& out, const Vm::Snapshot& snap) {
  put(out, snap.id);
  put(out, snap.spec);
  put(out, snap.state);
  put(out, snap.boot_fail);
  put(out, snap.revoked);
  put(out, snap.priority_queueing);
  put(out, snap.waiting);
  put(out, snap.in_service);
  put(out, snap.service_started);
  put(out, snap.creation_time);
  put(out, snap.destruction_time);
  put(out, snap.busy_seconds);
  put(out, snap.completed);
  put(out, snap.boot_event);
  put(out, snap.completion_event);
}

void get(std::istream& in, Vm::Snapshot& snap) {
  get(in, snap.id);
  get(in, snap.spec);
  get(in, snap.state);
  get(in, snap.boot_fail);
  get(in, snap.revoked);
  get(in, snap.priority_queueing);
  get(in, snap.waiting);
  get(in, snap.in_service);
  get(in, snap.service_started);
  get(in, snap.creation_time);
  get(in, snap.destruction_time);
  get(in, snap.busy_seconds);
  get(in, snap.completed);
  get(in, snap.boot_event);
  get(in, snap.completion_event);
}

void put(std::ostream& out, const Datacenter::Snapshot& snap) {
  put(out, snap.hosts);
  put(out, snap.vms);
  put(out, snap.vm_host);
  put(out, snap.live_vms);
  put(out, snap.failed_hosts);
  put(out, snap.next_vm_id);
  put(out, snap.allocation_suspended);
}

void get(std::istream& in, Datacenter::Snapshot& snap) {
  get(in, snap.hosts);
  get(in, snap.vms);
  get(in, snap.vm_host);
  get(in, snap.live_vms);
  get(in, snap.failed_hosts);
  get(in, snap.next_vm_id);
  get(in, snap.allocation_suspended);
}

void put(std::ostream& out, const ApplicationProvisioner::Snapshot& snap) {
  put(out, snap.instances);
  put(out, snap.draining);
  put(out, snap.rr_cursor);
  put(out, snap.watchdogs);
  put(out, snap.accepted);
  put(out, snap.rejected);
  put(out, snap.qos_violations);
  put(out, snap.lost_to_failures);
  put(out, snap.instance_failures);
  put(out, snap.window_arrivals);
  put(out, snap.commanded_target);
  put(out, snap.failures_by_cause);
  put(out, snap.lost_by_cause);
  put(out, snap.recovery_stats);
  put(out, snap.in_deficit);
  put(out, snap.deficit_since);
  put(out, snap.deficit_seconds);
  put(out, snap.response_stats);
  put(out, snap.service_stats);
  put(out, snap.p95);
  put(out, snap.p99);
  put(out, snap.instance_count);
  put(out, snap.instance_history_started);
}

void get(std::istream& in, ApplicationProvisioner::Snapshot& snap) {
  get(in, snap.instances);
  get(in, snap.draining);
  get(in, snap.rr_cursor);
  get(in, snap.watchdogs);
  get(in, snap.accepted);
  get(in, snap.rejected);
  get(in, snap.qos_violations);
  get(in, snap.lost_to_failures);
  get(in, snap.instance_failures);
  get(in, snap.window_arrivals);
  get(in, snap.commanded_target);
  get(in, snap.failures_by_cause);
  get(in, snap.lost_by_cause);
  get(in, snap.recovery_stats);
  get(in, snap.in_deficit);
  get(in, snap.deficit_since);
  get(in, snap.deficit_seconds);
  get(in, snap.response_stats);
  get(in, snap.service_stats);
  get(in, snap.p95);
  get(in, snap.p99);
  get(in, snap.instance_count);
  get(in, snap.instance_history_started);
}

void put(std::ostream& out, const Broker::Snapshot& snap) {
  put(out, snap.rng);
  put(out, snap.generated);
  put(out, snap.next_request_id);
  put(out, snap.pending_arrival);
  put(out, snap.pending_event);
}

void get(std::istream& in, Broker::Snapshot& snap) {
  get(in, snap.rng);
  get(in, snap.generated);
  get(in, snap.next_request_id);
  get(in, snap.pending_arrival);
  get(in, snap.pending_event);
}

void put(std::ostream& out, const AdaptivePolicy::State& state) {
  put(out, state.analyzer);
  put(out, state.predictor);
  put(out, state.decisions);
}

void get(std::istream& in, AdaptivePolicy::State& state) {
  get(in, state.analyzer);
  get(in, state.predictor);
  get(in, state.decisions);
}

void put(std::ostream& out, const SpotPriceProcess::State& state) {
  put(out, state.rng);
  put(out, state.path);
  put(out, state.spike);
  put(out, state.spike_until);
}

void get(std::istream& in, SpotPriceProcess::State& state) {
  get(in, state.rng);
  get(in, state.path);
  get(in, state.spike);
  get(in, state.spike_until);
}

void put(std::ostream& out, const MarketBroker::Snapshot& snap) {
  put(out, snap.price);
  put(out, snap.entries);
  put(out, snap.kills);
  put(out, snap.running);
  put(out, snap.pending_tick);
  put(out, snap.last_accrual);
  put(out, snap.accrued_burn);
  put(out, snap.purchases);
  put(out, snap.revocations);
  put(out, snap.revocation_kills);
}

void get(std::istream& in, MarketBroker::Snapshot& snap) {
  get(in, snap.price);
  get(in, snap.entries);
  get(in, snap.kills);
  get(in, snap.running);
  get(in, snap.pending_tick);
  get(in, snap.last_accrual);
  get(in, snap.accrued_burn);
  get(in, snap.purchases);
  get(in, snap.revocations);
  get(in, snap.revocation_kills);
}

void put(std::ostream& out, const FaultInjector::Snapshot& snap) {
  put(out, snap.vm_rng);
  put(out, snap.host_rng);
  put(out, snap.boot_rng);
  put(out, snap.degrade_rng);
  put(out, snap.running);
  put(out, snap.pending_vm);
  put(out, snap.pending_host);
  put(out, snap.pending_degrade);
  put(out, snap.timed);
  put(out, snap.active_outages);
  put(out, snap.vm_crashes);
  put(out, snap.host_crashes);
  put(out, snap.boot_failures);
  put(out, snap.stragglers);
  put(out, snap.degradations);
}

void get(std::istream& in, FaultInjector::Snapshot& snap) {
  get(in, snap.vm_rng);
  get(in, snap.host_rng);
  get(in, snap.boot_rng);
  get(in, snap.degrade_rng);
  get(in, snap.running);
  get(in, snap.pending_vm);
  get(in, snap.pending_host);
  get(in, snap.pending_degrade);
  get(in, snap.timed);
  get(in, snap.active_outages);
  get(in, snap.vm_crashes);
  get(in, snap.host_crashes);
  get(in, snap.boot_failures);
  get(in, snap.stragglers);
  get(in, snap.degradations);
}

void put(std::ostream& out, const Reconciler::Snapshot& snap) {
  put(out, snap.running);
  put(out, snap.pending);
  put(out, snap.last_target);
  put(out, snap.attempt);
  put(out, snap.next_backoff);
  put(out, snap.aborted);
  put(out, snap.heals);
  put(out, snap.retries);
  put(out, snap.aborts);
}

void get(std::istream& in, Reconciler::Snapshot& snap) {
  get(in, snap.running);
  get(in, snap.pending);
  get(in, snap.last_target);
  get(in, snap.attempt);
  get(in, snap.next_backoff);
  get(in, snap.aborted);
  get(in, snap.heals);
  get(in, snap.retries);
  get(in, snap.aborts);
}

void put(std::ostream& out, const RetryGateway::InFlightEntry& entry) {
  put(out, entry.attempt_id);
  put(out, entry.request);
  put(out, entry.attempt);
  put(out, entry.prev_delay);
  put(out, entry.probe);
  put(out, entry.timeout_event);
}

void get(std::istream& in, RetryGateway::InFlightEntry& entry) {
  get(in, entry.attempt_id);
  get(in, entry.request);
  get(in, entry.attempt);
  get(in, entry.prev_delay);
  get(in, entry.probe);
  get(in, entry.timeout_event);
}

void put(std::ostream& out, const RetryGateway::PendingRetry& entry) {
  put(out, entry.request);
  put(out, entry.attempt);
  put(out, entry.prev_delay);
  put(out, entry.event);
}

void get(std::istream& in, RetryGateway::PendingRetry& entry) {
  get(in, entry.request);
  get(in, entry.attempt);
  get(in, entry.prev_delay);
  get(in, entry.event);
}

void put(std::ostream& out, const RetryGateway::Snapshot& snap) {
  put(out, snap.rng);
  put(out, snap.budget_tokens);
  put(out, snap.breaker_state);
  put(out, snap.breaker_opened_at);
  put(out, snap.breaker_ring);
  put(out, snap.breaker_ring_idx);
  put(out, snap.breaker_in_window);
  put(out, snap.breaker_failures);
  put(out, snap.probes_issued);
  put(out, snap.probe_successes);
  put(out, snap.next_retry_seq);
  put(out, snap.client_requests);
  put(out, snap.client_succeeded);
  put(out, snap.client_failed);
  put(out, snap.client_attempts);
  put(out, snap.client_retries);
  put(out, snap.retry_budget_denied);
  put(out, snap.client_timeouts);
  put(out, snap.wasted_completions);
  put(out, snap.breaker_opens);
  put(out, snap.breaker_half_opens);
  put(out, snap.breaker_closes);
  put(out, snap.breaker_fast_fails);
  put(out, snap.in_flight);
  put(out, snap.retries);
}

void get(std::istream& in, RetryGateway::Snapshot& snap) {
  get(in, snap.rng);
  get(in, snap.budget_tokens);
  get(in, snap.breaker_state);
  get(in, snap.breaker_opened_at);
  get(in, snap.breaker_ring);
  get(in, snap.breaker_ring_idx);
  get(in, snap.breaker_in_window);
  get(in, snap.breaker_failures);
  get(in, snap.probes_issued);
  get(in, snap.probe_successes);
  get(in, snap.next_retry_seq);
  get(in, snap.client_requests);
  get(in, snap.client_succeeded);
  get(in, snap.client_failed);
  get(in, snap.client_attempts);
  get(in, snap.client_retries);
  get(in, snap.retry_budget_denied);
  get(in, snap.client_timeouts);
  get(in, snap.wasted_completions);
  get(in, snap.breaker_opens);
  get(in, snap.breaker_half_opens);
  get(in, snap.breaker_closes);
  get(in, snap.breaker_fast_fails);
  get(in, snap.in_flight);
  get(in, snap.retries);
}

void put(std::ostream& out, const WorldState::ResilienceState& state) {
  put(out, state.gateway);
  put(out, state.shedding.shed_deadline);
  put(out, state.shedding.shed_brownout);
  put(out, state.shedding.has_pending);
  put(out, state.shedding.pending_id);
  put(out, state.shedding.pending_kind);
  put(out, state.shedding.pending_time);
}

void get(std::istream& in, WorldState::ResilienceState& state) {
  get(in, state.gateway);
  get(in, state.shedding.shed_deadline);
  get(in, state.shedding.shed_brownout);
  get(in, state.shedding.has_pending);
  get(in, state.shedding.pending_id);
  get(in, state.shedding.pending_kind);
  get(in, state.shedding.pending_time);
}

void put(std::ostream& out, const ApptierState& state) {
  put(out, state.cache_datacenter);
  put(out, state.cache_provisioner);
  put(out, state.directory);
  put(out, state.rng);
  put(out, state.hits);
  put(out, state.misses);
  put(out, state.fills);
  put(out, state.evictions);
  put(out, state.expirations);
  put(out, state.invalidations);
  put(out, state.flushes);
  put(out, state.window_arrivals);
  put(out, state.window_hits);
  put(out, state.window_lookups);
  put(out, state.hit_ewma);
  put(out, state.last_window_hit_ratio);
  put(out, state.lambda_miss_sum);
  put(out, state.windows);
  put(out, state.response_stats);
  put(out, state.p95);
  put(out, state.p99);
  put(out, state.qos_violations);
  put(out, state.series);
  put(out, state.flush_events);
  put(out, state.crash_events);
  put(out, state.cache_decisions);
}

void get(std::istream& in, ApptierState& state) {
  get(in, state.cache_datacenter);
  get(in, state.cache_provisioner);
  get(in, state.directory);
  get(in, state.rng);
  get(in, state.hits);
  get(in, state.misses);
  get(in, state.fills);
  get(in, state.evictions);
  get(in, state.expirations);
  get(in, state.invalidations);
  get(in, state.flushes);
  get(in, state.window_arrivals);
  get(in, state.window_hits);
  get(in, state.window_lookups);
  get(in, state.hit_ewma);
  get(in, state.last_window_hit_ratio);
  get(in, state.lambda_miss_sum);
  get(in, state.windows);
  get(in, state.response_stats);
  get(in, state.p95);
  get(in, state.p99);
  get(in, state.qos_violations);
  get(in, state.series);
  get(in, state.flush_events);
  get(in, state.crash_events);
  get(in, state.cache_decisions);
}

}  // namespace

void write_checkpoint(std::ostream& out, const WorldState& state) {
  put(out, kMagic);
  put(out, kVersion);
  put(out, state.now);
  put(out, state.executed_events);
  put(out, state.push_counter);
  put(out, state.datacenter);
  put(out, state.provisioner);
  put(out, state.broker);
  put(out, state.source);
  put(out, state.policy_present);
  if (state.policy_present) put(out, state.policy);
  put(out, state.lookahead_rng);
  put(out, state.market);
  put(out, state.faults);
  put(out, state.reconciler);
  put(out, state.resilience);
  put(out, state.apptier);
  if (!out) throw std::runtime_error("checkpoint: write failed");
}

WorldState read_checkpoint(std::istream& in) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  get(in, magic);
  if (magic != kMagic) {
    throw std::runtime_error("checkpoint: bad magic (not a checkpoint file)");
  }
  get(in, version);
  if (version < kMinVersion || version > kVersion) {
    throw std::runtime_error("checkpoint: unsupported version");
  }
  g_read_version = version;
  WorldState state;
  get(in, state.now);
  get(in, state.executed_events);
  get(in, state.push_counter);
  get(in, state.datacenter);
  get(in, state.provisioner);
  get(in, state.broker);
  get(in, state.source);
  get(in, state.policy_present);
  if (state.policy_present) get(in, state.policy);
  get(in, state.lookahead_rng);
  get(in, state.market);
  get(in, state.faults);
  get(in, state.reconciler);
  if (version >= 2) get(in, state.resilience);
  if (version >= 3) get(in, state.apptier);
  g_read_version = kVersion;
  if (in.peek() != std::istream::traits_type::eof()) {
    throw std::runtime_error("checkpoint: trailing bytes after state");
  }
  return state;
}

void write_checkpoint_file(const std::string& path, const WorldState& state) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("checkpoint: cannot open for writing: " + path);
  }
  write_checkpoint(out, state);
}

WorldState read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot open for reading: " + path);
  }
  return read_checkpoint(in);
}

}  // namespace cloudprov
