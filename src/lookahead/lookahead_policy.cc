#include "lookahead/lookahead_policy.h"

#include <algorithm>

#include "profile/wall_profiler.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

LookaheadPolicy::LookaheadPolicy(
    Simulation& sim, std::shared_ptr<ArrivalRatePredictor> predictor,
    ModelerConfig modeler_config, AnalyzerConfig analyzer_config,
    LookaheadConfig lookahead_config)
    : sim_(sim),
      predictor_(std::move(predictor)),
      modeler_config_(modeler_config),
      analyzer_config_(analyzer_config),
      config_(std::move(lookahead_config)),
      rng_(config_.seed) {
  ensure_arg(predictor_ != nullptr, "LookaheadPolicy: null predictor");
}

void LookaheadPolicy::attach(ApplicationProvisioner& provisioner) {
  ensure(provisioner_ == nullptr, "LookaheadPolicy: attached twice");
  provisioner_ = &provisioner;
  modeler_.emplace(provisioner.qos(), modeler_config_);
  analyzer_.emplace(sim_, provisioner, predictor_, analyzer_config_);
  analyzer_->start(
      [this](SimTime t, double rate) { on_rate_alert(t, rate); });
}

AdaptivePolicy::State LookaheadPolicy::checkpoint() const {
  ensure(analyzer_.has_value(), "LookaheadPolicy::checkpoint: not attached");
  AdaptivePolicy::State state;
  state.analyzer = analyzer_->checkpoint();
  predictor_->save_state(state.predictor);
  state.decisions = decisions_;
  return state;
}

void LookaheadPolicy::restore_attach(ApplicationProvisioner& provisioner,
                                     const AdaptivePolicy::State& state,
                                     const std::optional<Rng::State>& rng_state) {
  ensure(provisioner_ == nullptr, "LookaheadPolicy: attached twice");
  provisioner_ = &provisioner;
  modeler_.emplace(provisioner.qos(), modeler_config_);
  predictor_->load_state(state.predictor);
  decisions_ = state.decisions;
  if (rng_state.has_value()) rng_.set_state(*rng_state);
  analyzer_.emplace(sim_, provisioner, predictor_, analyzer_config_);
  analyzer_->restore([this](SimTime t, double rate) { on_rate_alert(t, rate); },
                     state.analyzer);
}

bool LookaheadPolicy::search_enabled() const {
  return config_.candidates > 1 || !config_.bid_levels.empty();
}

std::vector<std::size_t> LookaheadPolicy::candidate_targets(
    std::size_t m) const {
  const std::size_t lo = std::max<std::size_t>(std::size_t{1},
                                               modeler_config_.min_vms);
  const std::size_t hi = std::max(lo, modeler_config_.max_vms);
  const std::size_t count = std::max<std::size_t>(std::size_t{1},
                                                  config_.candidates);
  std::vector<std::size_t> targets;
  targets.push_back(std::clamp(m, lo, hi));
  for (std::size_t delta = 1; targets.size() < count; ++delta) {
    const bool below = targets.front() >= lo + delta;
    const bool above = targets.front() + delta <= hi;
    if (below) targets.push_back(targets.front() - delta);
    if (above && targets.size() < count) {
      targets.push_back(targets.front() + delta);
    }
    if (!below && !above) break;  // range exhausted before reaching K
  }
  return targets;
}

void LookaheadPolicy::on_rate_alert(SimTime t, double expected_rate) {
  // what_if forks open their own lookahead.fork scopes nested under this
  // one, so decision self time is the model/search logic alone.
  ProfileScope profile(sim_.profiler(), ProfileCategory::kPolicyDecision);
  const double tm = provisioner_->monitored_service_time();
  const std::size_t k = provisioner_->current_queue_bound();
  const ModelerDecision decision = modeler_->required_instances(
      std::max<std::size_t>(provisioner_->active_instances(), 1), expected_rate,
      tm, k);

  std::size_t target = decision.instances;
  // The initial sizing alert (t == 0, fired from attach() before the broker
  // starts) is never searched: there is no world to clone yet, and the paper's
  // initial sizing should match the adaptive baseline exactly.
  if (search_enabled() && engine_ != nullptr && t > 0.0) {
    ++searches_;
    const SimTime horizon =
        t + static_cast<double>(config_.horizon_windows) *
                analyzer_config_.analysis_interval;
    // One forecast seed per search window, shared by every candidate (common
    // random numbers): outcome deltas then isolate the candidate itself.
    const std::uint64_t window_seed = rng_.next();

    WhatIfSpec spec;
    spec.forecast_rate = expected_rate;
    spec.forecast_seed = window_seed;
    spec.horizon = horizon;

    // Candidate 0 is Algorithm 1's own (m, current bid) — the feasibility
    // yardstick. If even that clone fails, skip the search for this window.
    spec.target_instances = decision.instances;
    spec.bid = std::nullopt;
    const WhatIfOutcome base = engine_->what_if(spec);
    if (base.valid) {
      std::vector<std::optional<double>> bids;
      bids.push_back(std::nullopt);
      if (const std::optional<double> live_bid = engine_->current_bid();
          live_bid.has_value()) {
        for (double level : config_.bid_levels) {
          if (level > 0.0 && level != *live_bid) bids.emplace_back(level);
        }
      }
      const std::vector<std::size_t> targets =
          candidate_targets(decision.instances);

      double best_cost = base.cost;
      std::size_t best_target = decision.instances;
      std::optional<double> best_bid;
      for (std::size_t bid_index = 0; bid_index < bids.size(); ++bid_index) {
        for (std::size_t target_index = 0; target_index < targets.size();
             ++target_index) {
          if (bid_index == 0 && target_index == 0) continue;  // the base
          spec.target_instances = targets[target_index];
          spec.bid = bids[bid_index];
          const WhatIfOutcome outcome = engine_->what_if(spec);
          // QoS-feasible := no worse than Algorithm 1's own choice on both
          // rejections and response-time violations over the horizon.
          if (!outcome.valid || outcome.rejected > base.rejected ||
              outcome.qos_violations > base.qos_violations) {
            continue;
          }
          // Strict < keeps the baseline on ties: deviate only for real wins.
          if (outcome.cost < best_cost) {
            best_cost = outcome.cost;
            best_target = targets[target_index];
            best_bid = bids[bid_index];
          }
        }
      }
      if (best_target != decision.instances || best_bid.has_value()) {
        ++overrides_;
        CLOUDPROV_LOG(Debug)
            << "lookahead: t=" << t << " override m=" << decision.instances
            << " -> " << best_target
            << (best_bid ? " with new bid" : "")
            << " (cost " << base.cost << " -> " << best_cost << ")";
      }
      target = best_target;
      if (best_bid.has_value()) engine_->commit_bid(*best_bid);
    }
  }

  const std::size_t achieved = provisioner_->scale_to(target);
  // Predicted-* stay Algorithm 1's model outputs for its m: the drift
  // observatory then measures the committed candidate against the analytic
  // promise it was allowed to undercut.
  decisions_.push_back(DecisionRecord{
      t, expected_rate, tm, k, target, achieved,
      decision.predicted_response_time, decision.predicted_rejection,
      decision.predicted_utilization});
  if (telemetry_ != nullptr) {
    telemetry_->scaling_decision(t, expected_rate, tm, k, target, achieved);
    if (DriftMonitor* drift = telemetry_->drift(); drift != nullptr) {
      DriftMonitor::Prediction prediction;
      prediction.response_time = decision.predicted_response_time;
      prediction.rejection = decision.predicted_rejection;
      prediction.utilization = decision.predicted_utilization;
      prediction.lambda = expected_rate;
      prediction.tm = tm;
      prediction.queue_bound = k;
      prediction.instances = achieved;
      const Datacenter& datacenter = provisioner_->datacenter();
      drift->on_decision(t, prediction, datacenter.vm_hours(),
                         datacenter.busy_vm_hours());
    }
  }
  CLOUDPROV_LOG(Debug) << "lookahead: t=" << t << " lambda=" << expected_rate
                       << " -> m=" << target << " (achieved " << achieved
                       << ")";
}

}  // namespace cloudprov
