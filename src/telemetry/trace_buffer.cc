#include "telemetry/trace_buffer.h"

#include "util/check.h"

namespace cloudprov {

const char* to_string(TracePhase phase) {
  switch (phase) {
    case TracePhase::kInstant: return "i";
    case TracePhase::kComplete: return "X";
    case TracePhase::kCounter: return "C";
  }
  return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity) {
  ensure_arg(capacity >= 1, "TraceBuffer: capacity must be >= 1");
  ring_.resize(capacity);
}

void TraceBuffer::record(const TraceEvent& event) {
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++recorded_;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> ordered;
  ordered.reserve(size_);
  // Oldest element sits at head_ once the ring has wrapped, else at 0.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    ordered.push_back(ring_[(start + i) % ring_.size()]);
  }
  return ordered;
}

void TraceBuffer::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
}

void TraceBuffer::copy_from(const TraceBuffer& other) {
  ensure_arg(ring_.size() == other.ring_.size(),
             "TraceBuffer::copy_from: capacity mismatch");
  ring_ = other.ring_;
  head_ = other.head_;
  size_ = other.size_;
  recorded_ = other.recorded_;
}

}  // namespace cloudprov
