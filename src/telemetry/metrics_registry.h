// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// One registry per replication (the parallel runner gives every worker its
// own Telemetry instance), so instruments are plain non-atomic values and
// recording is a single add/store. Instrument references returned by the
// registry are stable for the registry's lifetime — hot paths look a metric
// up once and keep the pointer. Snapshots capture all instruments in
// registration order; two snapshots can be differenced for windowed rates.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace cloudprov {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  /// Checkpoint restore only — counters are otherwise monotonic.
  void restore(std::uint64_t value) { value_ = value; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written point-in-time value (instance counts, queue depths).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with Prometheus-style cumulative-upper-bound
/// semantics: bucket i counts observations <= upper_bounds[i]; one implicit
/// overflow bucket counts the rest. Bounds are fixed at construction so
/// recording is a branchless-ish linear scan over a handful of doubles.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket counts; size = upper_bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Checkpoint restore only; `counts` must match the bucket layout.
  void restore(const std::vector<std::uint64_t>& counts, std::uint64_t count,
               double sum);

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Log-spaced 1-2-5 bounds covering [lo, hi]; the default response-time
/// buckets span 1 ms .. 1000 s so both the web (Ts = 0.25 s) and scientific
/// (Ts = 700 s) scenarios land mid-range.
std::vector<double> decade_bounds(double lo, double hi);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates an instrument. References stay valid for the
  /// registry's lifetime. Re-requesting a histogram ignores `upper_bounds`.
  /// Requesting an existing name as a different instrument kind throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  struct CounterView {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeView {
    std::string name;
    double value = 0.0;
  };
  struct HistogramView {
    std::string name;
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> bucket_counts;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  /// All instruments in registration order, values frozen at call time.
  struct Snapshot {
    std::vector<CounterView> counters;
    std::vector<GaugeView> gauges;
    std::vector<HistogramView> histograms;

    /// Windowed view of two cumulative snapshots: counter and histogram
    /// values of *this minus `earlier` (gauges keep this snapshot's value);
    /// instruments absent from `earlier` are returned as-is. The windowed
    /// monitors (drift observatory, SLO burn rates) consume this instead of
    /// hand-differencing fields.
    Snapshot diff(const Snapshot& earlier) const;
  };
  Snapshot snapshot() const;

  /// Checkpoint support (src/lookahead): overwrites this registry's
  /// instrument values with `other`'s, creating any instrument this registry
  /// has not registered yet (lazily-registered per-cause counters) in
  /// `other`'s per-kind registration order — so a freshly constructed
  /// registry becomes value- and order-identical to the source.
  void copy_values_from(const MetricsRegistry& other);

  std::size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Slot {
    Kind kind;
    std::size_t index;
  };
  // deques give stable element addresses across growth.
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
  std::unordered_map<std::string, Slot> by_name_;
};

/// Counter/histogram deltas of `later` relative to `earlier` (gauges keep
/// their `later` value): the per-window view of two cumulative snapshots.
/// Instruments present only in `later` are returned as-is.
MetricsRegistry::Snapshot snapshot_delta(
    const MetricsRegistry::Snapshot& later,
    const MetricsRegistry::Snapshot& earlier);

}  // namespace cloudprov
