// Telemetry exporters.
//
// write_chrome_trace emits Chrome trace-format JSON (the "JSON object
// format" with a traceEvents array) loadable in chrome://tracing and
// Perfetto: instants map to ph="i", spans to ph="X" with a dur, counter
// lanes to ph="C". Sim-time seconds become trace microseconds. Track ids
// (TelemetryTrack) are labeled via thread_name metadata events.
//
// write_metrics_csv emits the registry snapshot as long-form CSV
// (metric,type,field,value) alongside the experiment CSVs in results/:
// counters and gauges one row each, histograms one row per cumulative
// bucket plus count/sum/mean.
//
// write_prometheus_text emits the same snapshot in the Prometheus text
// exposition format (# HELP / # TYPE, histogram _bucket{le=...}/_sum/_count)
// so runs can be scraped into real dashboards; write_span_csv,
// write_drift_csv, and write_slo_csv flatten the observability monitors
// (span tracer, drift observatory, SLO burn rates) into long-form CSVs.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/drift_monitor.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/slo_monitor.h"
#include "telemetry/span_tracer.h"
#include "telemetry/trace_buffer.h"

namespace cloudprov {

/// When `spans` is non-null, every finished sampled trace is appended as
/// admission/queue_wait/service sub-spans on the span lane, causally linked
/// with flow arrows from arrival to service start.
void write_chrome_trace(std::ostream& out, const TraceBuffer& trace,
                        const std::string& process_name = "cloudprov",
                        const SpanTracer* spans = nullptr);

void write_metrics_csv(std::ostream& out,
                       const MetricsRegistry::Snapshot& snapshot);

/// Prometheus text exposition format. Metric names get a `cloudprov_`
/// prefix and the registry's histograms are rendered with cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`.
void write_prometheus_text(std::ostream& out,
                           const MetricsRegistry::Snapshot& snapshot);

/// Long-form per-span CSV: one row per derived child span
/// (admission / queue_wait / service) of every finished trace, in
/// completion order — deterministic for a fixed seed and sample rate.
void write_span_csv(std::ostream& out, const SpanTracer& spans);

/// One row per closed analysis window: prediction, observation, and signed
/// error for response time, rejection probability, and utilization.
void write_drift_csv(std::ostream& out, const DriftMonitor& drift);

/// One row per burn-rate evaluation of every (objective, rule) pair.
void write_slo_csv(std::ostream& out, const SloMonitor& slo);

}  // namespace cloudprov
