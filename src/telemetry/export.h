// Telemetry exporters.
//
// write_chrome_trace emits Chrome trace-format JSON (the "JSON object
// format" with a traceEvents array) loadable in chrome://tracing and
// Perfetto: instants map to ph="i", spans to ph="X" with a dur, counter
// lanes to ph="C". Sim-time seconds become trace microseconds. Track ids
// (TelemetryTrack) are labeled via thread_name metadata events.
//
// write_metrics_csv emits the registry snapshot as long-form CSV
// (metric,type,field,value) alongside the experiment CSVs in results/:
// counters and gauges one row each, histograms one row per cumulative
// bucket plus count/sum/mean.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/metrics_registry.h"
#include "telemetry/trace_buffer.h"

namespace cloudprov {

void write_chrome_trace(std::ostream& out, const TraceBuffer& trace,
                        const std::string& process_name = "cloudprov");

void write_metrics_csv(std::ostream& out,
                       const MetricsRegistry::Snapshot& snapshot);

}  // namespace cloudprov
