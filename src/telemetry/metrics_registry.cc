#include "telemetry/metrics_registry.h"

#include <algorithm>

#include "util/check.h"

namespace cloudprov {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  ensure_arg(!upper_bounds_.empty(), "Histogram: need at least one bound");
  ensure_arg(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()) &&
                 std::adjacent_find(upper_bounds_.begin(), upper_bounds_.end()) ==
                     upper_bounds_.end(),
             "Histogram: bounds must be strictly increasing");
  counts_.assign(upper_bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - upper_bounds_.begin())];
  ++count_;
  sum_ += value;
}

std::vector<double> decade_bounds(double lo, double hi) {
  ensure_arg(lo > 0.0 && hi > lo, "decade_bounds: need 0 < lo < hi");
  std::vector<double> bounds;
  for (double decade = lo; decade <= hi * (1.0 + 1e-12); decade *= 10.0) {
    for (const double step : {1.0, 2.0, 5.0}) {
      const double bound = decade * step;
      if (bound > hi * (1.0 + 1e-12)) break;
      bounds.push_back(bound);
    }
  }
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    ensure_arg(it->second.kind == Kind::kCounter,
               "MetricsRegistry: '" + name + "' is not a counter");
    return counters_[it->second.index].second;
  }
  by_name_.emplace(name, Slot{Kind::kCounter, counters_.size()});
  counters_.emplace_back(name, Counter{});
  return counters_.back().second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    ensure_arg(it->second.kind == Kind::kGauge,
               "MetricsRegistry: '" + name + "' is not a gauge");
    return gauges_[it->second.index].second;
  }
  by_name_.emplace(name, Slot{Kind::kGauge, gauges_.size()});
  gauges_.emplace_back(name, Gauge{});
  return gauges_.back().second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    ensure_arg(it->second.kind == Kind::kHistogram,
               "MetricsRegistry: '" + name + "' is not a histogram");
    return histograms_[it->second.index].second;
  }
  by_name_.emplace(name, Slot{Kind::kHistogram, histograms_.size()});
  histograms_.emplace_back(name, Histogram(std::move(upper_bounds)));
  return histograms_.back().second;
}

void Histogram::restore(const std::vector<std::uint64_t>& counts,
                        std::uint64_t count, double sum) {
  ensure_arg(counts.size() == counts_.size(),
             "Histogram::restore: bucket layout mismatch");
  counts_ = counts;
  count_ = count;
  sum_ = sum;
}

void MetricsRegistry::copy_values_from(const MetricsRegistry& other) {
  for (const auto& [name, src] : other.counters_) {
    counter(name).restore(src.value());
  }
  for (const auto& [name, src] : other.gauges_) {
    gauge(name).set(src.value());
  }
  for (const auto& [name, src] : other.histograms_) {
    histogram(name, src.upper_bounds())
        .restore(src.bucket_counts(), src.count(), src.sum());
  }
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back(CounterView{name, counter.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back(GaugeView{name, gauge.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(HistogramView{name, histogram.upper_bounds(),
                                            histogram.bucket_counts(),
                                            histogram.count(),
                                            histogram.sum()});
  }
  return snap;
}

MetricsRegistry::Snapshot MetricsRegistry::Snapshot::diff(
    const Snapshot& earlier) const {
  Snapshot delta = *this;
  for (auto& counter : delta.counters) {
    for (const auto& base : earlier.counters) {
      if (base.name == counter.name) {
        counter.value -= base.value;
        break;
      }
    }
  }
  for (auto& histogram : delta.histograms) {
    for (const auto& base : earlier.histograms) {
      if (base.name != histogram.name ||
          base.upper_bounds != histogram.upper_bounds) {
        continue;
      }
      for (std::size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
        histogram.bucket_counts[i] -= base.bucket_counts[i];
      }
      histogram.count -= base.count;
      histogram.sum -= base.sum;
      break;
    }
  }
  return delta;
}

MetricsRegistry::Snapshot snapshot_delta(
    const MetricsRegistry::Snapshot& later,
    const MetricsRegistry::Snapshot& earlier) {
  return later.diff(earlier);
}

}  // namespace cloudprov
