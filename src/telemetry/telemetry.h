// Telemetry facade: one metrics registry + one sim-time trace buffer per
// replication, with typed record helpers for every instrumented subsystem.
//
// Instrumented code holds a `Telemetry*` that is null when telemetry is
// disabled, so the entire cost of the subsystem in the default configuration
// is one well-predicted branch per event (the CLOUDPROV_LOG discipline).
// Recording never allocates: trace events are fixed-size PODs in a
// pre-allocated ring, and the hot-path instruments are resolved to pointers
// in the constructor.
//
// Event vocabulary (Chrome trace categories / names):
//   request  : arrival, admit, reject (instants, id = request id);
//              request (span arrival->finish), service (span start->finish)
//   vm       : create, boot, drain, resurrect, destroy, fail (instants,
//              id = vm id); lifetime (span create->destroy); instances
//              (counter lane: active/draining)
//   policy   : decision (instant; args lambda, tm, k, target m, achieved m)
//   engine   : events (counter lane: executed events, pending queue depth)
//   fault    : host_fail, outage begin/end, alloc_denied, straggler, degrade,
//              restore, reconcile, retry, abort, recovered (instants on the
//              fault/reconciler lane; VM fail instants stay on the vm lane
//              with a cause arg)
//   span     : sampled per-request lifecycle spans (SpanTracer; exported as
//              admission/queue_wait/service sub-spans with flow arrows)
//   drift    : predicted-vs-observed counter lanes per analysis window
//              (DriftMonitor)
//   slo      : burn-rate alert raise/clear instants (SloMonitor)
//   market   : spot-price/cost-burn counter lanes, purchase instants,
//              revocation notice + hard-kill instants (MarketBroker)
//   resilience: retry/budget-exhausted/client-timeout/fast-fail instants,
//              breaker state edges, admission shed instants (RetryGateway /
//              SheddingAdmission, src/resilience)
//   apptier  : cache hit/miss/fill/flush instants, per-window tier decision
//              instants (lambda split across tiers), cache-pool instance
//              counter lane (CacheTier / TieredProvisioner, src/apptier)
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "telemetry/drift_monitor.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/slo_monitor.h"
#include "telemetry/span_tracer.h"
#include "telemetry/trace_buffer.h"
#include "util/units.h"

namespace cloudprov {

/// Display lanes in the exported trace (Chrome "tid").
enum TelemetryTrack : std::uint32_t {
  kTrackRequests = 1,
  kTrackVms = 2,
  kTrackPolicy = 3,
  kTrackEngine = 4,
  kTrackFaults = 5,
  kTrackSpans = 6,
  kTrackDrift = 7,
  kTrackSlo = 8,
  kTrackMarket = 9,
  kTrackResilience = 10,
  kTrackApptier = 11,
};

struct TelemetryOptions {
  /// Ring capacity in events (~120 bytes each). The default keeps full
  /// scenario runs under ~8 MB of trace memory; raise it to retain more
  /// than the most recent ~65k events.
  std::size_t trace_capacity = 1 << 16;
  /// Per-request trace events (the high-volume class). Metrics are always
  /// collected; disabling this keeps only lifecycle/decision/engine events.
  bool trace_requests = true;

  /// Fraction of requests given full lifecycle spans (0 disables the span
  /// tracer entirely). Selection is a pure hash of (request id, span_seed),
  /// so it is deterministic and perturbs no simulation RNG stream.
  double span_sample_rate = 0.0;
  std::uint64_t span_seed = 0;
  /// Finished request traces retained (oldest dropped beyond this).
  std::size_t span_capacity = 1 << 16;

  /// Model-drift observatory (predicted vs observed per analysis window).
  bool drift_enabled = false;
  DriftMonitor::Config drift;

  /// SLO burn-rate alerting over the request counters.
  bool slo_enabled = false;
  SloMonitor::Config slo;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {});
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  const TelemetryOptions& options() const { return options_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }

  /// Null unless the corresponding option enabled the monitor.
  SpanTracer* spans() { return spans_.get(); }
  const SpanTracer* spans() const { return spans_.get(); }
  DriftMonitor* drift() { return drift_.get(); }
  const DriftMonitor* drift() const { return drift_.get(); }
  SloMonitor* slo() { return slo_.get(); }
  const SloMonitor* slo() const { return slo_.get(); }

  // --- request lifecycle (ApplicationProvisioner) -----------------------
  void request_arrival(SimTime t, std::uint64_t request_id);
  void request_admitted(SimTime t, std::uint64_t request_id,
                        std::uint64_t vm_id);
  void request_rejected(SimTime t, std::uint64_t request_id);
  /// A VM pulled the request off its queue and began serving it (Vm).
  /// Only feeds the span tracer; no-op when spans are off.
  void request_service_start(SimTime t, std::uint64_t request_id,
                             std::uint64_t vm_id);
  /// Records the request span (arrival -> finish, duration = response time)
  /// and the service span (start -> finish), plus the response-time
  /// histogram and QoS-violation counter.
  void request_completed(SimTime t, std::uint64_t request_id,
                         double response_time, double service_time,
                         bool qos_violation);
  /// The request was in flight on a VM that failed (ApplicationProvisioner).
  /// Closes the sampled span as lost; loss counters stay with vm_failed.
  void request_lost(SimTime t, std::uint64_t request_id);

  // --- VM lifecycle (Datacenter / Vm) -----------------------------------
  void vm_created(SimTime t, std::uint64_t vm_id);
  void vm_boot_complete(SimTime t, std::uint64_t vm_id);
  void vm_drain(SimTime t, std::uint64_t vm_id, std::size_t load);
  void vm_resurrected(SimTime t, std::uint64_t vm_id);
  void vm_destroyed(SimTime t, std::uint64_t vm_id, SimTime lifetime);
  /// `cause` is the FaultCause string (to_string), used to key the per-cause
  /// failure/loss counters — a cold path, so name lookup is fine here.
  void vm_failed(SimTime t, std::uint64_t vm_id, std::size_t lost_requests,
                 const char* cause);
  /// Counter lane sample of the pool size (stepped chart in Perfetto).
  void instance_count(SimTime t, std::size_t active, std::size_t draining);

  // --- fault injection & self-healing (Datacenter / src/fault) -----------
  void host_failed(SimTime t, std::uint64_t host_id, std::size_t vms_killed);
  /// create_vm refused because the IaaS allocation API is suspended.
  void allocation_denied(SimTime t);
  /// Outage-window edge (begin = true at t0, false at t1).
  void allocation_outage(SimTime t, bool begin);
  /// Boot-fault sampler stretched a boot beyond its base delay.
  void boot_straggler(SimTime t, SimTime boot_delay);
  void vm_degraded(SimTime t, std::uint64_t vm_id, double speed_factor);
  void vm_restored(SimTime t, std::uint64_t vm_id);
  /// One reconciler pass that found a deficit and commanded a heal.
  void reconcile(SimTime t, std::size_t target, std::size_t active,
                 std::size_t achieved);
  /// A heal fell short; retry `attempt` runs after `backoff` seconds.
  void reconcile_retry(SimTime t, std::uint64_t attempt, SimTime backoff);
  /// Retry budget exhausted; the reconciler falls back to interval cadence.
  void reconcile_abort(SimTime t, std::uint64_t attempts);
  /// The active pool climbed back to the commanded target after `repair`
  /// seconds below it (one MTTR sample).
  void pool_recovered(SimTime t, SimTime repair_seconds);

  // --- Algorithm 1 decisions (AdaptivePolicy) ---------------------------
  void scaling_decision(SimTime t, double lambda, double tm,
                        std::size_t queue_bound, std::size_t target,
                        std::size_t achieved);

  // --- IaaS market (MarketBroker, src/market) ----------------------------
  /// Counter-lane sample of the spot price and the cumulative cost burn,
  /// recorded once per market tick.
  void spot_price_sample(SimTime t, double price, double cost_burn);
  /// One capacity purchase; `kind` is the PurchaseKind string (to_string),
  /// keying the per-kind purchase counters on this cold path.
  void market_purchase(SimTime t, std::uint64_t vm_id, const char* kind);
  /// Revocation notice served on an out-bid spot instance.
  void spot_revoked(SimTime t, std::uint64_t vm_id, double price, double bid);
  /// Hard kill of a spot instance that outlived its revocation notice; the
  /// per-cause failure counters stay with vm_failed (fault path).
  void spot_kill(SimTime t, std::uint64_t vm_id, std::size_t lost_requests);

  // --- request-path resilience (RetryGateway / SheddingAdmission) --------
  /// A failed attempt will be retried: `attempt` is the attempt number the
  /// retry will carry, after `backoff` seconds of delay.
  void retry_scheduled(SimTime t, std::uint64_t request_id,
                       std::uint64_t attempt, SimTime backoff);
  /// The token-bucket retry budget had no token; the request gave up.
  void retry_budget_exhausted(SimTime t, std::uint64_t request_id);
  /// The client abandoned an admitted attempt at its timeout.
  void client_timeout(SimTime t, std::uint64_t request_id);
  /// Circuit-breaker edge (cold path; `from`/`to` are state names).
  void breaker_transition(SimTime t, const char* from, const char* to);
  /// An attempt rejected locally by an open (or probe-saturated half-open)
  /// breaker without contacting the provisioner.
  void breaker_fast_fail(SimTime t, std::uint64_t request_id);
  /// Admission shed a request (`kind` is "deadline" or "brownout", keying
  /// the per-kind counters on this cold path).
  void request_shed(SimTime t, std::uint64_t request_id, const char* kind);

  // --- multi-tier cache (CacheTier / TieredProvisioner, src/apptier) -----
  /// Directory lookup outcome for a keyed request at the cache front door.
  void cache_lookup(SimTime t, std::uint64_t request_id, bool hit);
  /// Backend completion populated the directory for this request's key.
  void cache_fill(SimTime t, std::uint64_t request_id);
  /// A scheduled flush dropped the whole directory (`entries` keys).
  void cache_flush(SimTime t, std::size_t entries);
  /// One per-window tiered decision: total arrival rate, planning hit ratio,
  /// the resulting backend offered load, and both tiers' targets. Also
  /// samples the hit-ratio gauge/counter lane.
  void tier_decision(SimTime t, double lambda, double hit_ratio,
                     double lambda_miss, std::size_t cache_target,
                     std::size_t backend_target);
  /// Counter lane sample of the cache pool size (mirrors instance_count).
  void cache_instance_count(SimTime t, std::size_t active,
                            std::size_t draining);

  // --- engine self-profile (Simulation) ---------------------------------
  void engine_sample(SimTime t, std::uint64_t executed_events,
                     std::size_t queue_depth);

  // --- checkpoint support (src/lookahead) --------------------------------
  /// Deep copy: a freshly constructed Telemetry with the same options whose
  /// registry values, trace ring, and monitor state equal this one's — so a
  /// restored world continues recording into an identical collector and its
  /// final exports are byte-identical to an uninterrupted run's.
  std::unique_ptr<Telemetry> clone() const;

 private:
  TelemetryOptions options_;
  MetricsRegistry metrics_;
  TraceBuffer trace_;
  std::unique_ptr<SpanTracer> spans_;
  std::unique_ptr<DriftMonitor> drift_;
  std::unique_ptr<SloMonitor> slo_;

  // Hot-path instruments, resolved once at construction.
  Counter* requests_arrived_;
  Counter* requests_admitted_;
  Counter* requests_rejected_;
  Counter* requests_completed_;
  Counter* qos_violations_;
  Counter* requests_lost_;
  Counter* vms_created_;
  Counter* vms_destroyed_;
  Counter* vms_failed_;
  Counter* vm_drains_;
  Counter* vm_resurrections_;
  Counter* scaling_decisions_;
  Counter* hosts_failed_;
  Counter* allocations_denied_;
  Counter* boot_stragglers_;
  Counter* vms_degraded_;
  Counter* reconciles_;
  Counter* reconcile_retries_;
  Counter* reconcile_aborts_;
  Counter* pool_recoveries_;
  Histogram* response_time_;
  Histogram* service_time_;
  Histogram* recovery_time_;
  Gauge* active_instances_;
  Gauge* draining_instances_;
  Gauge* engine_queue_depth_;
  // Market instruments sit after every pre-market one so the registry's
  // registration order is unchanged for existing consumers.
  Counter* market_purchases_;
  Counter* spot_revocations_;
  Counter* spot_kills_;
  Gauge* spot_price_;
  Gauge* market_cost_burn_;
  // Resilience instruments likewise append after every pre-resilience one.
  Counter* client_retries_;
  Counter* retry_budget_denied_;
  Counter* client_timeouts_;
  Counter* breaker_transitions_;
  Counter* breaker_fast_fails_;
  Counter* requests_shed_;
  // Apptier instruments append after every pre-apptier one (same discipline
  // as the market/resilience blocks: registration order stays stable).
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* cache_fills_;
  Counter* cache_flushes_;
  Counter* tier_decisions_;
  Gauge* cache_hit_ratio_;
  Gauge* cache_active_instances_;
  Gauge* cache_draining_instances_;
};

}  // namespace cloudprov
