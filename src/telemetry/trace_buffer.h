// Sim-time event tracer: a bounded ring of typed trace events.
//
// Recording must be cheap enough for the request hot path (~100 ns budget):
// a TraceEvent is a fixed-size POD carrying static-string names (never
// owned/copied) and up to kMaxTraceArgs named numeric arguments. When the
// ring is full the oldest event is overwritten and an explicit drop counter
// advances, so a full-fidelity week-long run degrades to "most recent N
// events" instead of unbounded memory. Exporters (telemetry/export.h) turn
// the ring into Chrome trace-format JSON or CSV.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/units.h"

namespace cloudprov {

/// Chrome trace-format phases the tracer emits: instantaneous markers,
/// complete spans (begin time + duration), and counter samples (stepped
/// time-series lanes in Perfetto).
enum class TracePhase : std::uint8_t { kInstant, kComplete, kCounter };

const char* to_string(TracePhase phase);

/// One named numeric argument attached to an event. `key` must point at a
/// string literal (or other storage outliving the buffer).
struct TraceArg {
  const char* key = nullptr;
  double value = 0.0;
};

inline constexpr std::size_t kMaxTraceArgs = 5;

struct TraceEvent {
  const char* name = "";      ///< static string; never owned
  const char* category = "";  ///< static string; Chrome "cat" field
  TracePhase phase = TracePhase::kInstant;
  /// Display lane (Chrome "tid"): one per subsystem, see TelemetryTrack.
  std::uint32_t track = 0;
  SimTime time = 0.0;      ///< simulated seconds
  SimTime duration = 0.0;  ///< simulated seconds; kComplete only
  std::uint64_t id = 0;    ///< correlation id (request/VM id); 0 = none
  std::array<TraceArg, kMaxTraceArgs> args{};
  std::uint8_t arg_count = 0;

  /// Appends an argument; silently ignored past kMaxTraceArgs.
  TraceEvent& arg(const char* key, double value) {
    if (arg_count < kMaxTraceArgs) {
      args[arg_count] = TraceArg{key, value};
      ++arg_count;
    }
    return *this;
  }
};

class TraceBuffer {
 public:
  /// `capacity` must be >= 1; the buffer allocates it eagerly so recording
  /// never allocates.
  explicit TraceBuffer(std::size_t capacity);

  /// Records one event; overwrites the oldest and bumps dropped() when full.
  void record(const TraceEvent& event);

  std::size_t capacity() const { return ring_.size(); }
  /// Events currently held (<= capacity).
  std::size_t size() const { return size_; }
  /// Events ever recorded, including dropped ones.
  std::uint64_t recorded() const { return recorded_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return recorded_ - size_; }

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const;

  void clear();

  /// Checkpoint support (src/lookahead): becomes an exact copy of `other`,
  /// which must have the same capacity.
  void copy_from(const TraceBuffer& other);

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next write slot
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace cloudprov
