// SLO burn-rate alerting over the telemetry counters.
//
// The scenario's QoS contract is turned into two error budgets: a fraction
// of completed requests allowed to violate the response-time target Ts, and
// a fraction of arrivals allowed to be rejected. The monitor evaluates
// multi-window burn rates (Google SRE style: a fast short window paired
// with a confirming long window) on a fixed sim-time cadence and raises a
// structured alert — a telemetry instant, an alert counter, and a Warn log
// line — when both windows of a pair burn faster than the pair's threshold.
// Alerts clear (a separate event, not counted as an alert) once the short
// window falls back under the threshold, so a sustained incident fires
// once instead of every tick.
//
// Evaluation piggybacks on the request hooks (maybe_evaluate), so enabling
// the monitor schedules no simulation events and cannot perturb results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "telemetry/metrics_registry.h"
#include "telemetry/trace_buffer.h"
#include "util/units.h"

namespace cloudprov {

class SloMonitor {
 public:
  /// One multi-window burn-rate rule. `threshold` is the burn rate (budget
  /// consumption speed; 1.0 = exactly on budget) both windows must exceed.
  struct BurnWindow {
    SimTime short_window = 300.0;
    SimTime long_window = 3600.0;
    double threshold = 14.4;
  };

  struct Config {
    /// Fraction of completed requests allowed to exceed Ts.
    double response_budget = 0.05;
    /// Fraction of arrivals allowed to be rejected.
    double rejection_budget = 0.01;
    /// Burn-rate rules; the defaults pair a page-fast 5-min/1-h rule with a
    /// slower 30-min/6-h rule (thresholds 14.4 and 6, the classic
    /// 2%- and 5%-of-budget-per-window settings).
    std::vector<BurnWindow> windows = {{300.0, 3600.0, 14.4},
                                       {1800.0, 21600.0, 6.0}};
    /// Evaluation cadence in sim seconds.
    SimTime eval_interval = 60.0;
    /// Emit a CLOUDPROV_LOG(Warn) line per raised alert.
    bool log_alerts = true;
    /// Burn-rate samples retained for export (oldest dropped beyond this).
    std::size_t max_samples = 1 << 20;
  };

  enum class Objective : std::uint8_t { kResponse, kRejection };

  /// One alert edge (raise or clear) for one (objective, rule) pair.
  struct AlertEvent {
    SimTime time = 0.0;
    Objective objective = Objective::kResponse;
    std::size_t rule = 0;  ///< index into Config::windows
    double burn_short = 0.0;
    double burn_long = 0.0;
    bool raised = false;  ///< true = raise edge, false = clear edge
  };

  /// One evaluation of one (objective, rule) pair, for the burn-rate CSV.
  struct BurnSample {
    SimTime time = 0.0;
    Objective objective = Objective::kResponse;
    std::size_t rule = 0;
    double burn_short = 0.0;
    double burn_long = 0.0;
    bool alerting = false;  ///< alert state after this evaluation
  };

  /// `metrics` must be the registry the request hooks write into; the
  /// monitor registers its alert counters there. `trace` receives one
  /// instant per alert edge on the SLO lane.
  SloMonitor(MetricsRegistry& metrics, TraceBuffer& trace, Config config);

  const Config& config() const { return config_; }

  /// Cheap cadence check called from the request hot path; runs a full
  /// evaluation once per eval_interval of sim time.
  void maybe_evaluate(SimTime now) {
    if (now >= next_eval_) evaluate(now);
  }

  /// Forces one evaluation at `now` (also used by tests).
  void evaluate(SimTime now);

  std::uint64_t response_alerts() const { return response_alerts_->value(); }
  std::uint64_t rejection_alerts() const { return rejection_alerts_->value(); }
  /// Highest short-window burn rate seen by any rule of any objective.
  double worst_burn_rate() const { return worst_burn_; }

  const std::vector<AlertEvent>& alerts() const { return alerts_; }
  const std::deque<BurnSample>& samples() const { return samples_; }

  /// Checkpoint support (src/lookahead): copies `other`'s evaluation state
  /// and history into this monitor, keeping this monitor's own
  /// registry/trace bindings (the alert counters live in the registry and
  /// travel with it). Configurations must match.
  void restore_from(const SloMonitor& other);

 private:
  struct Sample {
    SimTime time = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t violations = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t rejected = 0;
  };

  /// Burn rate of `objective` over the window ending at `history_.back()`
  /// and starting `window` seconds earlier; 0 while the history is shorter
  /// than the window (no alert before a full window of evidence).
  double burn_rate(Objective objective, SimTime window) const;
  void evaluate_rule(SimTime now, Objective objective, std::size_t rule);

  MetricsRegistry* metrics_;
  TraceBuffer* trace_;
  Config config_;
  SimTime next_eval_ = 0.0;
  SimTime longest_window_ = 0.0;

  // Cumulative inputs, resolved once.
  const Counter* completed_;
  const Counter* violations_;
  const Counter* arrivals_;
  const Counter* rejected_;
  // Alert outputs.
  Counter* response_alerts_;
  Counter* rejection_alerts_;

  std::deque<Sample> history_;
  std::vector<bool> alerting_;  ///< per (objective, rule) pair
  std::vector<AlertEvent> alerts_;
  std::deque<BurnSample> samples_;
  std::uint64_t sample_drops_ = 0;
  double worst_burn_ = 0.0;
};

const char* to_string(SloMonitor::Objective objective);

}  // namespace cloudprov
