#include "telemetry/export.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "telemetry/telemetry.h"
#include "util/csv.h"

namespace cloudprov {
namespace {

// Plain JSON number with round-trip precision; JSON has no inf/nan, so
// non-finite values (which no instrumented site should produce) become 0.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

std::string json_string(const std::string& text) {
  std::string escaped = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      case '\r': escaped += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  escaped += '"';
  return escaped;
}

void write_metadata_event(std::ostream& out, const char* kind,
                          std::uint32_t tid, const std::string& label,
                          bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\":" << json_string(kind) << ",\"ph\":\"M\",\"pid\":0";
  if (tid != 0) out << ",\"tid\":" << tid;
  out << ",\"args\":{\"name\":" << json_string(label) << "}}";
}

void write_trace_event(std::ostream& out, const TraceEvent& event,
                       bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\":" << json_string(event.name)
      << ",\"cat\":" << json_string(event.category) << ",\"ph\":\""
      << to_string(event.phase) << "\",\"ts\":"
      << json_number(event.time * 1e6) << ",\"pid\":0,\"tid\":"
      << event.track;
  if (event.phase == TracePhase::kComplete) {
    out << ",\"dur\":" << json_number(event.duration * 1e6);
  }
  if (event.phase == TracePhase::kInstant) {
    out << ",\"s\":\"t\"";  // thread-scoped instant
  }
  out << ",\"args\":{";
  bool first_arg = true;
  if (event.id != 0) {
    out << "\"id\":" << event.id;
    first_arg = false;
  }
  for (std::uint8_t i = 0; i < event.arg_count; ++i) {
    if (!first_arg) out << ',';
    first_arg = false;
    out << json_string(event.args[i].key) << ':'
        << json_number(event.args[i].value);
  }
  out << "}}";
}

// One derived child span of a request trace as a ph="X" slice on the span
// lane, tagged with the trace id so Perfetto's flow arrows can link them.
void write_request_span(std::ostream& out, const char* name, SimTime start,
                        SimTime duration, const SpanTracer::RequestTrace& trace,
                        bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\":" << json_string(name)
      << ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":" << json_number(start * 1e6)
      << ",\"dur\":" << json_number(duration * 1e6)
      << ",\"pid\":0,\"tid\":" << kTrackSpans << ",\"args\":{\"trace_id\":"
      << trace.trace_id << ",\"vm\":" << trace.vm_id
      << ",\"outcome\":" << json_string(to_string(trace.outcome))
      << ",\"qos_violation\":" << (trace.qos_violation ? 1 : 0) << "}}";
}

// Flow arrow endpoint (ph="s" start / ph="f" finish) binding the admission
// decision to the service span of the same trace id.
void write_flow_event(std::ostream& out, const char phase, std::uint64_t id,
                      SimTime t, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\":\"request_flow\",\"cat\":\"span\",\"ph\":\"" << phase
      << "\",\"id\":" << id << ",\"ts\":" << json_number(t * 1e6)
      << ",\"pid\":0,\"tid\":" << kTrackSpans;
  if (phase == 'f') out << ",\"bp\":\"e\"";
  out << ",\"args\":{}}";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceBuffer& trace,
                        const std::string& process_name,
                        const SpanTracer* spans) {
  out << "{\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{"
      << "\"recorded_events\":" << trace.recorded()
      << ",\"dropped_events\":" << trace.dropped() << "},\n\"traceEvents\":[\n";
  bool first = true;
  write_metadata_event(out, "process_name", 0, process_name, first);
  write_metadata_event(out, "thread_name", kTrackRequests, "requests", first);
  write_metadata_event(out, "thread_name", kTrackVms, "vms", first);
  write_metadata_event(out, "thread_name", kTrackPolicy, "policy", first);
  write_metadata_event(out, "thread_name", kTrackEngine, "engine", first);
  write_metadata_event(out, "thread_name", kTrackFaults, "faults", first);
  write_metadata_event(out, "thread_name", kTrackSpans, "spans", first);
  write_metadata_event(out, "thread_name", kTrackDrift, "drift", first);
  write_metadata_event(out, "thread_name", kTrackSlo, "slo", first);
  for (const TraceEvent& event : trace.events()) {
    write_trace_event(out, event, first);
  }
  if (spans != nullptr) {
    for (const SpanTracer::RequestTrace& req : spans->finished()) {
      // Admission decision: a point-like slice at arrival.
      write_request_span(out, "admission", req.arrival, 0.0, req, first);
      if (req.outcome == SpanTracer::Outcome::kRejected) continue;
      const SimTime wait_end =
          req.service_start > 0.0 ? req.service_start : req.finish;
      write_request_span(out, "queue_wait", req.arrival,
                         wait_end - req.arrival, req, first);
      if (req.service_start > 0.0) {
        write_request_span(out, "service", req.service_start,
                           req.finish - req.service_start, req, first);
        // Causal arrow: admission decision -> service start.
        write_flow_event(out, 's', req.trace_id, req.arrival, first);
        write_flow_event(out, 'f', req.trace_id, req.service_start, first);
      }
    }
  }
  out << "\n]}\n";
}

void write_metrics_csv(std::ostream& out,
                       const MetricsRegistry::Snapshot& snapshot) {
  CsvWriter csv(out);
  csv.write_header({"metric", "type", "field", "value"});
  for (const auto& counter : snapshot.counters) {
    csv.write_row({counter.name, "counter", "value",
                   CsvWriter::format(static_cast<std::int64_t>(counter.value))});
  }
  for (const auto& gauge : snapshot.gauges) {
    csv.write_row({gauge.name, "gauge", "value", CsvWriter::format(gauge.value)});
  }
  for (const auto& histogram : snapshot.histograms) {
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
      cumulative += histogram.bucket_counts[i];
      csv.write_row({histogram.name, "histogram",
                     "le_" + CsvWriter::format(histogram.upper_bounds[i]),
                     CsvWriter::format(static_cast<std::int64_t>(cumulative))});
    }
    csv.write_row({histogram.name, "histogram", "le_inf",
                   CsvWriter::format(static_cast<std::int64_t>(histogram.count))});
    csv.write_row({histogram.name, "histogram", "count",
                   CsvWriter::format(static_cast<std::int64_t>(histogram.count))});
    csv.write_row(
        {histogram.name, "histogram", "sum", CsvWriter::format(histogram.sum)});
    const double mean =
        histogram.count == 0
            ? 0.0
            : histogram.sum / static_cast<double>(histogram.count);
    csv.write_row({histogram.name, "histogram", "mean", CsvWriter::format(mean)});
  }
}

void write_prometheus_text(std::ostream& out,
                           const MetricsRegistry::Snapshot& snapshot) {
  // The registry's names are already snake_case identifiers; the exporter
  // adds the conventional namespace prefix and unit-free HELP strings.
  for (const auto& counter : snapshot.counters) {
    const std::string name = "cloudprov_" + counter.name + "_total";
    out << "# HELP " << name << " Cumulative " << counter.name
        << " event count.\n";
    out << "# TYPE " << name << " counter\n";
    out << name << ' ' << counter.value << '\n';
  }
  for (const auto& gauge : snapshot.gauges) {
    const std::string name = "cloudprov_" + gauge.name;
    out << "# HELP " << name << " Last observed " << gauge.name << ".\n";
    out << "# TYPE " << name << " gauge\n";
    out << name << ' ' << CsvWriter::format(gauge.value) << '\n';
  }
  for (const auto& histogram : snapshot.histograms) {
    const std::string name = "cloudprov_" + histogram.name;
    out << "# HELP " << name << " Distribution of " << histogram.name
        << ".\n";
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
      cumulative += histogram.bucket_counts[i];
      out << name << "_bucket{le=\""
          << CsvWriter::format(histogram.upper_bounds[i]) << "\"} "
          << cumulative << '\n';
    }
    out << name << "_bucket{le=\"+Inf\"} " << histogram.count << '\n';
    out << name << "_sum " << CsvWriter::format(histogram.sum) << '\n';
    out << name << "_count " << histogram.count << '\n';
  }
}

void write_span_csv(std::ostream& out, const SpanTracer& spans) {
  CsvWriter csv(out);
  // The tier column exists only in tiered runs: untiered span CSVs are
  // golden-pinned byte-for-byte (kernel_golden_test), so the historical
  // column set must stay exactly as it was when no trace carries a tier tag.
  const bool tiers = spans.has_tiers();
  std::vector<std::string> header = {"trace_id", "span",    "start",
                                     "end",      "duration", "vm_id",
                                     "outcome",  "qos_violation"};
  if (tiers) header.push_back("tier");
  csv.write_header(header);
  const auto row = [&csv, tiers](const SpanTracer::RequestTrace& trace,
                                 const char* span, SimTime start, SimTime end) {
    std::vector<std::string> cells = {
        CsvWriter::format(static_cast<std::int64_t>(trace.trace_id)),
        span, CsvWriter::format(start), CsvWriter::format(end),
        CsvWriter::format(end - start),
        CsvWriter::format(static_cast<std::int64_t>(trace.vm_id)),
        to_string(trace.outcome),
        trace.qos_violation ? "1" : "0"};
    if (tiers) {
      cells.push_back(
          CsvWriter::format(static_cast<std::int64_t>(trace.tier)));
    }
    csv.write_row(cells);
  };
  for (const SpanTracer::RequestTrace& trace : spans.finished()) {
    row(trace, "admission", trace.arrival, trace.arrival);
    if (trace.outcome == SpanTracer::Outcome::kRejected) continue;
    const SimTime wait_end =
        trace.service_start > 0.0 ? trace.service_start : trace.finish;
    row(trace, "queue_wait", trace.arrival, wait_end);
    if (trace.service_start > 0.0) {
      row(trace, "service", trace.service_start, trace.finish);
    }
  }
}

void write_drift_csv(std::ostream& out, const DriftMonitor& drift) {
  CsvWriter csv(out);
  csv.write_header(
      {"window_start", "window_end", "lambda", "tm", "queue_bound",
       "instances", "predicted_response_time", "observed_response_time",
       "response_error", "predicted_rejection", "observed_rejection",
       "rejection_error", "predicted_utilization", "observed_utilization",
       "utilization_error", "arrivals", "completed", "rejected",
       "within_bound"});
  for (const DriftMonitor::WindowRecord& window : drift.windows()) {
    csv.write_row(
        {CsvWriter::format(window.start), CsvWriter::format(window.end),
         CsvWriter::format(window.predicted.lambda),
         CsvWriter::format(window.predicted.tm),
         CsvWriter::format(
             static_cast<std::int64_t>(window.predicted.queue_bound)),
         CsvWriter::format(
             static_cast<std::int64_t>(window.predicted.instances)),
         CsvWriter::format(window.predicted.response_time),
         CsvWriter::format(window.observed_response_time),
         CsvWriter::format(window.response_error),
         CsvWriter::format(window.predicted.rejection),
         CsvWriter::format(window.observed_rejection),
         CsvWriter::format(window.rejection_error),
         CsvWriter::format(window.predicted.utilization),
         CsvWriter::format(window.observed_utilization),
         CsvWriter::format(window.utilization_error),
         CsvWriter::format(static_cast<std::int64_t>(window.arrivals)),
         CsvWriter::format(static_cast<std::int64_t>(window.completed)),
         CsvWriter::format(static_cast<std::int64_t>(window.rejected)),
         window.within_bound ? "1" : "0"});
  }
}

void write_slo_csv(std::ostream& out, const SloMonitor& slo) {
  CsvWriter csv(out);
  csv.write_header({"time", "objective", "rule", "short_window", "long_window",
                    "threshold", "burn_short", "burn_long", "alerting"});
  for (const SloMonitor::BurnSample& sample : slo.samples()) {
    const SloMonitor::BurnWindow& rule = slo.config().windows[sample.rule];
    csv.write_row({CsvWriter::format(sample.time), to_string(sample.objective),
                   CsvWriter::format(static_cast<std::int64_t>(sample.rule)),
                   CsvWriter::format(rule.short_window),
                   CsvWriter::format(rule.long_window),
                   CsvWriter::format(rule.threshold),
                   CsvWriter::format(sample.burn_short),
                   CsvWriter::format(sample.burn_long),
                   sample.alerting ? "1" : "0"});
  }
}

}  // namespace cloudprov
