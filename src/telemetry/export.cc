#include "telemetry/export.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "telemetry/telemetry.h"
#include "util/csv.h"

namespace cloudprov {
namespace {

// Plain JSON number with round-trip precision; JSON has no inf/nan, so
// non-finite values (which no instrumented site should produce) become 0.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

std::string json_string(const std::string& text) {
  std::string escaped = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      case '\r': escaped += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  escaped += '"';
  return escaped;
}

void write_metadata_event(std::ostream& out, const char* kind,
                          std::uint32_t tid, const std::string& label,
                          bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\":" << json_string(kind) << ",\"ph\":\"M\",\"pid\":0";
  if (tid != 0) out << ",\"tid\":" << tid;
  out << ",\"args\":{\"name\":" << json_string(label) << "}}";
}

void write_trace_event(std::ostream& out, const TraceEvent& event,
                       bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\":" << json_string(event.name)
      << ",\"cat\":" << json_string(event.category) << ",\"ph\":\""
      << to_string(event.phase) << "\",\"ts\":"
      << json_number(event.time * 1e6) << ",\"pid\":0,\"tid\":"
      << event.track;
  if (event.phase == TracePhase::kComplete) {
    out << ",\"dur\":" << json_number(event.duration * 1e6);
  }
  if (event.phase == TracePhase::kInstant) {
    out << ",\"s\":\"t\"";  // thread-scoped instant
  }
  out << ",\"args\":{";
  bool first_arg = true;
  if (event.id != 0) {
    out << "\"id\":" << event.id;
    first_arg = false;
  }
  for (std::uint8_t i = 0; i < event.arg_count; ++i) {
    if (!first_arg) out << ',';
    first_arg = false;
    out << json_string(event.args[i].key) << ':'
        << json_number(event.args[i].value);
  }
  out << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceBuffer& trace,
                        const std::string& process_name) {
  out << "{\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{"
      << "\"recorded_events\":" << trace.recorded()
      << ",\"dropped_events\":" << trace.dropped() << "},\n\"traceEvents\":[\n";
  bool first = true;
  write_metadata_event(out, "process_name", 0, process_name, first);
  write_metadata_event(out, "thread_name", kTrackRequests, "requests", first);
  write_metadata_event(out, "thread_name", kTrackVms, "vms", first);
  write_metadata_event(out, "thread_name", kTrackPolicy, "policy", first);
  write_metadata_event(out, "thread_name", kTrackEngine, "engine", first);
  for (const TraceEvent& event : trace.events()) {
    write_trace_event(out, event, first);
  }
  out << "\n]}\n";
}

void write_metrics_csv(std::ostream& out,
                       const MetricsRegistry::Snapshot& snapshot) {
  CsvWriter csv(out);
  csv.write_header({"metric", "type", "field", "value"});
  for (const auto& counter : snapshot.counters) {
    csv.write_row({counter.name, "counter", "value",
                   CsvWriter::format(static_cast<std::int64_t>(counter.value))});
  }
  for (const auto& gauge : snapshot.gauges) {
    csv.write_row({gauge.name, "gauge", "value", CsvWriter::format(gauge.value)});
  }
  for (const auto& histogram : snapshot.histograms) {
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
      cumulative += histogram.bucket_counts[i];
      csv.write_row({histogram.name, "histogram",
                     "le_" + CsvWriter::format(histogram.upper_bounds[i]),
                     CsvWriter::format(static_cast<std::int64_t>(cumulative))});
    }
    csv.write_row({histogram.name, "histogram", "le_inf",
                   CsvWriter::format(static_cast<std::int64_t>(histogram.count))});
    csv.write_row({histogram.name, "histogram", "count",
                   CsvWriter::format(static_cast<std::int64_t>(histogram.count))});
    csv.write_row(
        {histogram.name, "histogram", "sum", CsvWriter::format(histogram.sum)});
    const double mean =
        histogram.count == 0
            ? 0.0
            : histogram.sum / static_cast<double>(histogram.count);
    csv.write_row({histogram.name, "histogram", "mean", CsvWriter::format(mean)});
  }
}

}  // namespace cloudprov
