#include "telemetry/telemetry.h"

#include <string>

namespace cloudprov {
namespace {

// 1 ms .. 1000 s log-spaced 1-2-5 buckets: covers the web scenario's 250 ms
// QoS target and the scientific scenario's 700 s target in one fixed layout,
// so cross-scenario dashboards can share axes.
std::vector<double> response_bounds() { return decade_bounds(1e-3, 1e3); }

TraceEvent instant(const char* category, const char* name, std::uint32_t track,
                   SimTime t, std::uint64_t id) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = TracePhase::kInstant;
  event.track = track;
  event.time = t;
  event.id = id;
  return event;
}

}  // namespace

Telemetry::Telemetry(TelemetryOptions options)
    : options_(options),
      trace_(options.trace_capacity),
      requests_arrived_(&metrics_.counter("requests_arrived")),
      requests_admitted_(&metrics_.counter("requests_admitted")),
      requests_rejected_(&metrics_.counter("requests_rejected")),
      requests_completed_(&metrics_.counter("requests_completed")),
      qos_violations_(&metrics_.counter("qos_violations")),
      requests_lost_(&metrics_.counter("requests_lost_to_failures")),
      vms_created_(&metrics_.counter("vms_created")),
      vms_destroyed_(&metrics_.counter("vms_destroyed")),
      vms_failed_(&metrics_.counter("vms_failed")),
      vm_drains_(&metrics_.counter("vm_drains")),
      vm_resurrections_(&metrics_.counter("vm_resurrections")),
      scaling_decisions_(&metrics_.counter("scaling_decisions")),
      hosts_failed_(&metrics_.counter("hosts_failed")),
      allocations_denied_(&metrics_.counter("allocations_denied")),
      boot_stragglers_(&metrics_.counter("boot_stragglers")),
      vms_degraded_(&metrics_.counter("vms_degraded")),
      reconciles_(&metrics_.counter("reconciler_heals")),
      reconcile_retries_(&metrics_.counter("reconciler_retries")),
      reconcile_aborts_(&metrics_.counter("reconciler_aborts")),
      pool_recoveries_(&metrics_.counter("pool_recoveries")),
      response_time_(
          &metrics_.histogram("response_time_seconds", response_bounds())),
      service_time_(
          &metrics_.histogram("service_time_seconds", response_bounds())),
      recovery_time_(&metrics_.histogram("recovery_time_seconds",
                                         decade_bounds(1.0, 1e4))),
      active_instances_(&metrics_.gauge("active_instances")),
      draining_instances_(&metrics_.gauge("draining_instances")),
      engine_queue_depth_(&metrics_.gauge("engine_queue_depth")),
      market_purchases_(&metrics_.counter("market_purchases")),
      spot_revocations_(&metrics_.counter("spot_revocations")),
      spot_kills_(&metrics_.counter("spot_revocation_kills")),
      spot_price_(&metrics_.gauge("spot_price")),
      market_cost_burn_(&metrics_.gauge("market_cost_burn")),
      client_retries_(&metrics_.counter("client_retries")),
      retry_budget_denied_(&metrics_.counter("retry_budget_denied")),
      client_timeouts_(&metrics_.counter("client_timeouts")),
      breaker_transitions_(&metrics_.counter("breaker_transitions")),
      breaker_fast_fails_(&metrics_.counter("breaker_fast_fails")),
      requests_shed_(&metrics_.counter("requests_shed")),
      cache_hits_(&metrics_.counter("cache_hits")),
      cache_misses_(&metrics_.counter("cache_misses")),
      cache_fills_(&metrics_.counter("cache_fills")),
      cache_flushes_(&metrics_.counter("cache_flushes")),
      tier_decisions_(&metrics_.counter("tier_decisions")),
      cache_hit_ratio_(&metrics_.gauge("cache_hit_ratio")),
      cache_active_instances_(&metrics_.gauge("cache_active_instances")),
      cache_draining_instances_(&metrics_.gauge("cache_draining_instances")) {
  // The optional monitors are built after the hot-path instruments so the
  // registry's registration order (and thus CSV/snapshot order) is stable
  // whether or not they are enabled.
  if (options_.span_sample_rate > 0.0) {
    SpanTracer::Options span_options;
    span_options.sample_rate = options_.span_sample_rate;
    span_options.seed = options_.span_seed;
    span_options.capacity = options_.span_capacity;
    spans_ = std::make_unique<SpanTracer>(span_options);
  }
  if (options_.drift_enabled) {
    drift_ = std::make_unique<DriftMonitor>(metrics_, trace_, options_.drift);
  }
  if (options_.slo_enabled) {
    slo_ = std::make_unique<SloMonitor>(metrics_, trace_, options_.slo);
  }
}

std::unique_ptr<Telemetry> Telemetry::clone() const {
  // Fresh construction registers the same instruments in the same order;
  // copying values (plus any lazily-registered per-cause counters) then
  // makes registry contents and ordering identical.
  auto copy = std::make_unique<Telemetry>(options_);
  copy->metrics_.copy_values_from(metrics_);
  copy->trace_.copy_from(trace_);
  if (spans_ != nullptr) *copy->spans_ = *spans_;
  if (drift_ != nullptr) copy->drift_->restore_from(*drift_);
  if (slo_ != nullptr) copy->slo_->restore_from(*slo_);
  return copy;
}

void Telemetry::request_arrival(SimTime t, std::uint64_t request_id) {
  requests_arrived_->add();
  if (spans_) spans_->on_arrival(t, request_id);
  if (options_.trace_requests) {
    trace_.record(instant("request", "arrival", kTrackRequests, t, request_id));
  }
}

void Telemetry::request_admitted(SimTime t, std::uint64_t request_id,
                                 std::uint64_t vm_id) {
  requests_admitted_->add();
  if (spans_) spans_->on_admit(t, request_id, vm_id);
  if (options_.trace_requests) {
    TraceEvent event =
        instant("request", "admit", kTrackRequests, t, request_id);
    event.arg("vm", static_cast<double>(vm_id));
    trace_.record(event);
  }
}

void Telemetry::request_rejected(SimTime t, std::uint64_t request_id) {
  requests_rejected_->add();
  if (spans_) spans_->on_reject(t, request_id);
  if (slo_) slo_->maybe_evaluate(t);
  if (options_.trace_requests) {
    trace_.record(instant("request", "reject", kTrackRequests, t, request_id));
  }
}

void Telemetry::request_service_start(SimTime t, std::uint64_t request_id,
                                      std::uint64_t vm_id) {
  if (spans_) spans_->on_service_start(t, request_id, vm_id);
}

void Telemetry::request_lost(SimTime t, std::uint64_t request_id) {
  if (spans_) spans_->on_lost(t, request_id);
}

void Telemetry::request_completed(SimTime t, std::uint64_t request_id,
                                  double response_time, double service_time,
                                  bool qos_violation) {
  requests_completed_->add();
  if (qos_violation) qos_violations_->add();
  response_time_->observe(response_time);
  service_time_->observe(service_time);
  if (spans_) spans_->on_complete(t, request_id, qos_violation);
  if (slo_) slo_->maybe_evaluate(t);
  if (options_.trace_requests) {
    TraceEvent span;
    span.name = "request";
    span.category = "request";
    span.phase = TracePhase::kComplete;
    span.track = kTrackRequests;
    span.time = t - response_time;
    span.duration = response_time;
    span.id = request_id;
    span.arg("response_time", response_time)
        .arg("service_time", service_time)
        .arg("qos_violation", qos_violation ? 1.0 : 0.0);
    trace_.record(span);
    TraceEvent service = span;
    service.name = "service";
    service.time = t - service_time;
    service.duration = service_time;
    service.arg_count = 0;
    trace_.record(service);
  }
}

void Telemetry::vm_created(SimTime t, std::uint64_t vm_id) {
  vms_created_->add();
  trace_.record(instant("vm", "create", kTrackVms, t, vm_id));
}

void Telemetry::vm_boot_complete(SimTime t, std::uint64_t vm_id) {
  trace_.record(instant("vm", "boot", kTrackVms, t, vm_id));
}

void Telemetry::vm_drain(SimTime t, std::uint64_t vm_id, std::size_t load) {
  vm_drains_->add();
  TraceEvent event = instant("vm", "drain", kTrackVms, t, vm_id);
  event.arg("load", static_cast<double>(load));
  trace_.record(event);
}

void Telemetry::vm_resurrected(SimTime t, std::uint64_t vm_id) {
  vm_resurrections_->add();
  trace_.record(instant("vm", "resurrect", kTrackVms, t, vm_id));
}

void Telemetry::vm_destroyed(SimTime t, std::uint64_t vm_id,
                             SimTime lifetime) {
  vms_destroyed_->add();
  TraceEvent span;
  span.name = "lifetime";
  span.category = "vm";
  span.phase = TracePhase::kComplete;
  span.track = kTrackVms;
  span.time = t - lifetime;
  span.duration = lifetime;
  span.id = vm_id;
  trace_.record(span);
}

void Telemetry::vm_failed(SimTime t, std::uint64_t vm_id,
                          std::size_t lost_requests, const char* cause) {
  vms_failed_->add();
  requests_lost_->add(lost_requests);
  // Failures are rare; per-cause counters are resolved by name on demand.
  metrics_.counter(std::string("vm_failures_") + cause).add();
  if (lost_requests > 0) {
    metrics_.counter(std::string("requests_lost_") + cause).add(lost_requests);
  }
  TraceEvent event = instant("vm", "fail", kTrackVms, t, vm_id);
  event.name = cause;
  event.arg("lost_requests", static_cast<double>(lost_requests));
  trace_.record(event);
}

void Telemetry::instance_count(SimTime t, std::size_t active,
                               std::size_t draining) {
  active_instances_->set(static_cast<double>(active));
  draining_instances_->set(static_cast<double>(draining));
  TraceEvent event;
  event.name = "instances";
  event.category = "vm";
  event.phase = TracePhase::kCounter;
  event.track = kTrackVms;
  event.time = t;
  event.arg("active", static_cast<double>(active))
      .arg("draining", static_cast<double>(draining));
  trace_.record(event);
}

void Telemetry::host_failed(SimTime t, std::uint64_t host_id,
                            std::size_t vms_killed) {
  hosts_failed_->add();
  TraceEvent event = instant("fault", "host_fail", kTrackFaults, t, host_id);
  event.arg("vms_killed", static_cast<double>(vms_killed));
  trace_.record(event);
}

void Telemetry::allocation_denied(SimTime t) {
  allocations_denied_->add();
  trace_.record(instant("fault", "alloc_denied", kTrackFaults, t, 0));
}

void Telemetry::allocation_outage(SimTime t, bool begin) {
  TraceEvent event = instant(
      "fault", begin ? "outage_begin" : "outage_end", kTrackFaults, t, 0);
  trace_.record(event);
}

void Telemetry::boot_straggler(SimTime t, SimTime boot_delay) {
  boot_stragglers_->add();
  TraceEvent event = instant("fault", "straggler", kTrackFaults, t, 0);
  event.arg("boot_delay", boot_delay);
  trace_.record(event);
}

void Telemetry::vm_degraded(SimTime t, std::uint64_t vm_id,
                            double speed_factor) {
  vms_degraded_->add();
  TraceEvent event = instant("fault", "degrade", kTrackFaults, t, vm_id);
  event.arg("speed_factor", speed_factor);
  trace_.record(event);
}

void Telemetry::vm_restored(SimTime t, std::uint64_t vm_id) {
  trace_.record(instant("fault", "restore", kTrackFaults, t, vm_id));
}

void Telemetry::reconcile(SimTime t, std::size_t target, std::size_t active,
                          std::size_t achieved) {
  reconciles_->add();
  TraceEvent event = instant("fault", "reconcile", kTrackFaults, t, 0);
  event.arg("target", static_cast<double>(target))
      .arg("active", static_cast<double>(active))
      .arg("achieved", static_cast<double>(achieved));
  trace_.record(event);
}

void Telemetry::reconcile_retry(SimTime t, std::uint64_t attempt,
                                SimTime backoff) {
  reconcile_retries_->add();
  TraceEvent event = instant("fault", "retry", kTrackFaults, t, attempt);
  event.arg("attempt", static_cast<double>(attempt)).arg("backoff", backoff);
  trace_.record(event);
}

void Telemetry::reconcile_abort(SimTime t, std::uint64_t attempts) {
  reconcile_aborts_->add();
  TraceEvent event = instant("fault", "abort", kTrackFaults, t, 0);
  event.arg("attempts", static_cast<double>(attempts));
  trace_.record(event);
}

void Telemetry::pool_recovered(SimTime t, SimTime repair_seconds) {
  pool_recoveries_->add();
  recovery_time_->observe(repair_seconds);
  TraceEvent event = instant("fault", "recovered", kTrackFaults, t, 0);
  event.arg("repair_seconds", repair_seconds);
  trace_.record(event);
}

void Telemetry::scaling_decision(SimTime t, double lambda, double tm,
                                 std::size_t queue_bound, std::size_t target,
                                 std::size_t achieved) {
  scaling_decisions_->add();
  TraceEvent event = instant("policy", "decision", kTrackPolicy, t, 0);
  event.arg("lambda", lambda)
      .arg("tm", tm)
      .arg("k", static_cast<double>(queue_bound))
      .arg("target_m", static_cast<double>(target))
      .arg("achieved_m", static_cast<double>(achieved));
  trace_.record(event);
}

void Telemetry::spot_price_sample(SimTime t, double price, double cost_burn) {
  spot_price_->set(price);
  market_cost_burn_->set(cost_burn);
  TraceEvent event;
  event.name = "spot_price";
  event.category = "market";
  event.phase = TracePhase::kCounter;
  event.track = kTrackMarket;
  event.time = t;
  event.arg("price", price).arg("cost_burn", cost_burn);
  trace_.record(event);
}

void Telemetry::market_purchase(SimTime t, std::uint64_t vm_id,
                                const char* kind) {
  market_purchases_->add();
  // Purchases are infrequent; per-kind counters resolve by name on demand.
  metrics_.counter(std::string("market_purchases_") + kind).add();
  TraceEvent event = instant("market", "purchase", kTrackMarket, t, vm_id);
  event.name = kind;
  trace_.record(event);
}

void Telemetry::spot_revoked(SimTime t, std::uint64_t vm_id, double price,
                             double bid) {
  spot_revocations_->add();
  TraceEvent event = instant("market", "revoke", kTrackMarket, t, vm_id);
  event.arg("price", price).arg("bid", bid);
  trace_.record(event);
}

void Telemetry::spot_kill(SimTime t, std::uint64_t vm_id,
                          std::size_t lost_requests) {
  spot_kills_->add();
  TraceEvent event = instant("market", "kill", kTrackMarket, t, vm_id);
  event.arg("lost_requests", static_cast<double>(lost_requests));
  trace_.record(event);
}

void Telemetry::retry_scheduled(SimTime t, std::uint64_t request_id,
                                std::uint64_t attempt, SimTime backoff) {
  client_retries_->add();
  TraceEvent event = instant("resilience", "retry", kTrackResilience, t,
                             request_id);
  event.arg("attempt", static_cast<double>(attempt)).arg("backoff", backoff);
  trace_.record(event);
}

void Telemetry::retry_budget_exhausted(SimTime t, std::uint64_t request_id) {
  retry_budget_denied_->add();
  trace_.record(
      instant("resilience", "budget_exhausted", kTrackResilience, t, request_id));
}

void Telemetry::client_timeout(SimTime t, std::uint64_t request_id) {
  client_timeouts_->add();
  trace_.record(
      instant("resilience", "client_timeout", kTrackResilience, t, request_id));
}

void Telemetry::breaker_transition(SimTime t, const char* from,
                                   const char* to) {
  breaker_transitions_->add();
  // Transitions are rare; the per-edge counters resolve by name on demand.
  metrics_.counter(std::string("breaker_to_") + to).add();
  // Trace-arg values are numeric-only; `from` is implied by the previous
  // edge on the lane, so the instant carries just the new state.
  (void)from;
  TraceEvent event = instant("resilience", "breaker", kTrackResilience, t, 0);
  event.name = to;
  trace_.record(event);
}

void Telemetry::breaker_fast_fail(SimTime t, std::uint64_t request_id) {
  breaker_fast_fails_->add();
  trace_.record(
      instant("resilience", "fast_fail", kTrackResilience, t, request_id));
}

void Telemetry::request_shed(SimTime t, std::uint64_t request_id,
                             const char* kind) {
  requests_shed_->add();
  metrics_.counter(std::string("requests_shed_") + kind).add();
  TraceEvent event = instant("resilience", "shed", kTrackResilience, t,
                             request_id);
  event.name = kind;
  trace_.record(event);
}

void Telemetry::cache_lookup(SimTime t, std::uint64_t request_id, bool hit) {
  if (hit) {
    cache_hits_->add();
  } else {
    cache_misses_->add();
  }
  // Tier tag: 1 = cache hit, 2 = backend (miss). Untiered worlds never call
  // this hook, so their span CSVs keep the historical column set.
  if (spans_) spans_->on_tier(request_id, hit ? 1 : 2);
  if (options_.trace_requests) {
    trace_.record(instant("apptier", hit ? "cache_hit" : "cache_miss",
                          kTrackApptier, t, request_id));
  }
}

void Telemetry::cache_fill(SimTime t, std::uint64_t request_id) {
  cache_fills_->add();
  if (options_.trace_requests) {
    trace_.record(instant("apptier", "cache_fill", kTrackApptier, t,
                          request_id));
  }
}

void Telemetry::cache_flush(SimTime t, std::size_t entries) {
  cache_flushes_->add();
  TraceEvent event = instant("apptier", "cache_flush", kTrackApptier, t, 0);
  event.arg("entries", static_cast<double>(entries));
  trace_.record(event);
}

void Telemetry::tier_decision(SimTime t, double lambda, double hit_ratio,
                              double lambda_miss, std::size_t cache_target,
                              std::size_t backend_target) {
  tier_decisions_->add();
  cache_hit_ratio_->set(hit_ratio);
  TraceEvent event = instant("apptier", "tier_decision", kTrackApptier, t, 0);
  event.arg("lambda", lambda)
      .arg("hit_ratio", hit_ratio)
      .arg("lambda_miss", lambda_miss)
      .arg("cache_m", static_cast<double>(cache_target))
      .arg("backend_m", static_cast<double>(backend_target));
  trace_.record(event);
  TraceEvent counter;
  counter.name = "hit_ratio";
  counter.category = "apptier";
  counter.phase = TracePhase::kCounter;
  counter.track = kTrackApptier;
  counter.time = t;
  counter.arg("hit_ratio", hit_ratio).arg("lambda_miss", lambda_miss);
  trace_.record(counter);
}

void Telemetry::cache_instance_count(SimTime t, std::size_t active,
                                     std::size_t draining) {
  cache_active_instances_->set(static_cast<double>(active));
  cache_draining_instances_->set(static_cast<double>(draining));
  TraceEvent event;
  event.name = "cache_instances";
  event.category = "apptier";
  event.phase = TracePhase::kCounter;
  event.track = kTrackApptier;
  event.time = t;
  event.arg("active", static_cast<double>(active))
      .arg("draining", static_cast<double>(draining));
  trace_.record(event);
}

void Telemetry::engine_sample(SimTime t, std::uint64_t executed_events,
                              std::size_t queue_depth) {
  engine_queue_depth_->set(static_cast<double>(queue_depth));
  TraceEvent event;
  event.name = "engine";
  event.category = "engine";
  event.phase = TracePhase::kCounter;
  event.track = kTrackEngine;
  event.time = t;
  event.arg("executed_events", static_cast<double>(executed_events))
      .arg("queue_depth", static_cast<double>(queue_depth));
  trace_.record(event);
}

}  // namespace cloudprov
