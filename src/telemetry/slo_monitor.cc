#include "telemetry/slo_monitor.h"

#include <algorithm>

#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

const char* to_string(SloMonitor::Objective objective) {
  switch (objective) {
    case SloMonitor::Objective::kResponse: return "response_time";
    case SloMonitor::Objective::kRejection: return "rejection";
  }
  return "?";
}

SloMonitor::SloMonitor(MetricsRegistry& metrics, TraceBuffer& trace,
                       Config config)
    : metrics_(&metrics),
      trace_(&trace),
      config_(std::move(config)),
      completed_(&metrics.counter("requests_completed")),
      violations_(&metrics.counter("qos_violations")),
      arrivals_(&metrics.counter("requests_arrived")),
      rejected_(&metrics.counter("requests_rejected")),
      response_alerts_(&metrics.counter("slo_response_alerts")),
      rejection_alerts_(&metrics.counter("slo_rejection_alerts")) {
  ensure_arg(config_.response_budget > 0.0 && config_.response_budget <= 1.0,
             "SloMonitor: response budget must be in (0, 1]");
  ensure_arg(config_.rejection_budget > 0.0 && config_.rejection_budget <= 1.0,
             "SloMonitor: rejection budget must be in (0, 1]");
  ensure_arg(!config_.windows.empty(), "SloMonitor: need >= 1 burn window");
  ensure_arg(config_.eval_interval > 0.0,
             "SloMonitor: eval interval must be > 0");
  for (const BurnWindow& rule : config_.windows) {
    ensure_arg(rule.short_window > 0.0 && rule.long_window >= rule.short_window,
               "SloMonitor: need 0 < short_window <= long_window");
    ensure_arg(rule.threshold > 0.0, "SloMonitor: threshold must be > 0");
    longest_window_ = std::max(longest_window_, rule.long_window);
  }
  alerting_.assign(2 * config_.windows.size(), false);
}

double SloMonitor::burn_rate(Objective objective, SimTime window) const {
  const Sample& now = history_.back();
  // Most recent sample at or before the window start; none while history is
  // shorter than the window (start-up: no alert without a full window).
  const SimTime cutoff = now.time - window;
  const Sample* base = nullptr;
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (it->time <= cutoff) {
      base = &*it;
      break;
    }
  }
  if (base == nullptr) return 0.0;

  std::uint64_t bad = 0;
  std::uint64_t total = 0;
  double budget = 1.0;
  if (objective == Objective::kResponse) {
    bad = now.violations - base->violations;
    total = now.completed - base->completed;
    budget = config_.response_budget;
  } else {
    bad = now.rejected - base->rejected;
    total = now.arrivals - base->arrivals;
    budget = config_.rejection_budget;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(bad) / static_cast<double>(total) / budget;
}

void SloMonitor::evaluate_rule(SimTime now, Objective objective,
                               std::size_t rule) {
  const BurnWindow& window = config_.windows[rule];
  const double burn_short = burn_rate(objective, window.short_window);
  const double burn_long = burn_rate(objective, window.long_window);
  worst_burn_ = std::max(worst_burn_, burn_short);

  const std::size_t state_index =
      static_cast<std::size_t>(objective) * config_.windows.size() + rule;
  const bool was_alerting = alerting_[state_index];
  bool alerting = was_alerting;
  if (!was_alerting &&
      burn_short > window.threshold && burn_long > window.threshold) {
    alerting = true;
  } else if (was_alerting && burn_short < window.threshold) {
    alerting = false;
  }
  alerting_[state_index] = alerting;

  if (alerting != was_alerting) {
    alerts_.push_back(
        AlertEvent{now, objective, rule, burn_short, burn_long, alerting});
    if (alerting) {
      (objective == Objective::kResponse ? response_alerts_
                                         : rejection_alerts_)
          ->add();
    }
    TraceEvent event;
    event.name = alerting ? "slo_alert" : "slo_clear";
    event.category = "slo";
    event.phase = TracePhase::kInstant;
    event.track = kTrackSlo;
    event.time = now;
    event.id = rule;
    event.arg("objective", static_cast<double>(objective))
        .arg("burn_short", burn_short)
        .arg("burn_long", burn_long)
        .arg("threshold", window.threshold);
    trace_->record(event);
    if (config_.log_alerts && alerting) {
      CLOUDPROV_LOG(Warn) << "SLO " << to_string(objective)
                          << " budget burning at " << burn_short
                          << "x (threshold " << window.threshold << ", "
                          << window.short_window << "s/" << window.long_window
                          << "s windows)";
    }
  }

  if (samples_.size() == config_.max_samples) {
    samples_.pop_front();
    ++sample_drops_;
  }
  samples_.push_back(
      BurnSample{now, objective, rule, burn_short, burn_long, alerting});
}

void SloMonitor::evaluate(SimTime now) {
  next_eval_ = now + config_.eval_interval;
  history_.push_back(Sample{now, completed_->value(), violations_->value(),
                            arrivals_->value(), rejected_->value()});
  // Keep one sample beyond the longest lookback so burn_rate always finds a
  // base once the history spans the window.
  const SimTime horizon = now - longest_window_ - config_.eval_interval;
  while (history_.size() > 2 && history_[1].time <= horizon) {
    history_.pop_front();
  }
  for (std::size_t rule = 0; rule < config_.windows.size(); ++rule) {
    evaluate_rule(now, Objective::kResponse, rule);
    evaluate_rule(now, Objective::kRejection, rule);
  }
}

void SloMonitor::restore_from(const SloMonitor& other) {
  next_eval_ = other.next_eval_;
  history_ = other.history_;
  alerting_ = other.alerting_;
  alerts_ = other.alerts_;
  samples_ = other.samples_;
  sample_drops_ = other.sample_drops_;
  worst_burn_ = other.worst_burn_;
}

}  // namespace cloudprov
