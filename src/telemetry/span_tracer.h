// Request-lifecycle span tracing.
//
// Assigns each sampled request a trace id (its request id) and follows it
// through the provisioning pipeline: admission decision at arrival, queue
// wait inside the chosen instance, service, and the terminal outcome
// (completed / rejected at admission / lost to an instance failure). The
// sampling decision is a pure hash of the request id and a fixed seed, so
// it is deterministic for a given workload seed, independent of every
// simulation RNG stream, and consistent across the arrival/service/finish
// hooks without any per-request handshake.
//
// Finished traces are retained in a bounded deque (oldest evicted first,
// with an explicit drop counter) so paper-scale runs stay bounded at any
// sample rate. Exporters (telemetry/export.h) turn the retained traces into
// Chrome-trace spans + flow events and a long-form per-span CSV.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "util/units.h"

namespace cloudprov {

class SpanTracer {
 public:
  struct Options {
    /// Fraction of requests traced; <= 0 disables, >= 1 traces everything.
    double sample_rate = 0.0;
    /// Hashed with the request id for the sampling decision. Fixed by
    /// default so the same ids are sampled in every run of a seed.
    std::uint64_t seed = 0;
    /// Finished traces retained (oldest evicted beyond this).
    std::size_t capacity = 1 << 16;
  };

  /// Terminal outcome of a traced request.
  enum class Outcome : std::uint8_t {
    kInFlight = 0,  ///< not yet finished (never exported)
    kCompleted,     ///< served and completed
    kRejected,      ///< refused by admission control
    kLost,          ///< admitted, then died with a failed instance
  };

  /// One request's causally-ordered lifecycle timestamps. Child spans are
  /// derived: admission [arrival, arrival], queue_wait
  /// [arrival, service_start], service [service_start, finish]. A request
  /// lost before service starts has service_start == 0 (no service span);
  /// its queue_wait runs to the loss time.
  struct RequestTrace {
    std::uint64_t trace_id = 0;  ///< == request id
    SimTime arrival = 0.0;
    SimTime service_start = 0.0;  ///< 0 = never reached service
    SimTime finish = 0.0;         ///< completion / rejection / loss time
    std::uint64_t vm_id = 0;      ///< serving instance; 0 when rejected
    Outcome outcome = Outcome::kInFlight;
    bool qos_violation = false;
    /// Application tier that served the request: 0 = untiered world,
    /// 1 = cache hit, 2 = backend (cache miss). Only set by CacheTier, so
    /// untiered runs keep tier == 0 on every trace and the span CSV stays
    /// byte-identical (no tier column is emitted).
    std::uint8_t tier = 0;
  };

  explicit SpanTracer(Options options);

  const Options& options() const { return options_; }

  /// Deterministic per-request sampling decision (pure hash, no state).
  bool sampled(std::uint64_t request_id) const;

  // --- lifecycle hooks (called via the Telemetry facade) ------------------
  void on_arrival(SimTime t, std::uint64_t request_id);
  void on_admit(SimTime t, std::uint64_t request_id, std::uint64_t vm_id);
  void on_reject(SimTime t, std::uint64_t request_id);
  void on_service_start(SimTime t, std::uint64_t request_id,
                        std::uint64_t vm_id);
  void on_complete(SimTime t, std::uint64_t request_id, bool qos_violation);
  void on_lost(SimTime t, std::uint64_t request_id);
  /// Tags the in-flight trace with the tier that will serve it (CacheTier).
  void on_tier(std::uint64_t request_id, std::uint8_t tier);

  /// Finished traces, oldest first (completion order — deterministic).
  const std::deque<RequestTrace>& finished() const { return finished_; }
  /// Requests the sampler selected so far.
  std::uint64_t traced() const { return traced_; }
  /// Finished traces evicted because the deque was full.
  std::uint64_t dropped() const { return dropped_; }
  /// Sampled requests still in flight (bounded by pool occupancy).
  std::size_t in_flight() const { return pending_.size(); }
  /// True once any trace was tier-tagged; gates the span CSV tier column.
  bool has_tiers() const { return has_tiers_; }

 private:
  void finish(SimTime t, std::uint64_t request_id, Outcome outcome,
              bool qos_violation);

  Options options_;
  std::uint64_t sample_threshold_ = 0;  ///< hash < threshold => sampled
  std::unordered_map<std::uint64_t, RequestTrace> pending_;
  std::deque<RequestTrace> finished_;
  std::uint64_t traced_ = 0;
  std::uint64_t dropped_ = 0;
  bool has_tiers_ = false;
};

const char* to_string(SpanTracer::Outcome outcome);

}  // namespace cloudprov
