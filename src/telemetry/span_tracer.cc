#include "telemetry/span_tracer.h"

#include "util/check.h"

namespace cloudprov {
namespace {

// splitmix64 finalizer: the sampling hash. Stateless (unlike SplitMix64) so
// the decision depends only on (request id, seed).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(SpanTracer::Outcome outcome) {
  switch (outcome) {
    case SpanTracer::Outcome::kInFlight: return "in_flight";
    case SpanTracer::Outcome::kCompleted: return "completed";
    case SpanTracer::Outcome::kRejected: return "rejected";
    case SpanTracer::Outcome::kLost: return "lost";
  }
  return "?";
}

SpanTracer::SpanTracer(Options options) : options_(options) {
  ensure_arg(options_.capacity >= 1, "SpanTracer: capacity must be >= 1");
}

bool SpanTracer::sampled(std::uint64_t request_id) const {
  if (options_.sample_rate >= 1.0) return true;
  if (options_.sample_rate <= 0.0) return false;
  // Top 53 bits of the hash as a uniform double in [0, 1).
  const double u =
      static_cast<double>(mix(request_id ^ options_.seed) >> 11) * 0x1.0p-53;
  return u < options_.sample_rate;
}

void SpanTracer::on_arrival(SimTime t, std::uint64_t request_id) {
  if (!sampled(request_id)) return;
  ++traced_;
  RequestTrace trace;
  trace.trace_id = request_id;
  trace.arrival = t;
  pending_.emplace(request_id, trace);
}

void SpanTracer::on_admit(SimTime t, std::uint64_t request_id,
                          std::uint64_t vm_id) {
  (void)t;
  if (!sampled(request_id)) return;  // cheap pre-filter before the map probe
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  it->second.vm_id = vm_id;
}

void SpanTracer::on_reject(SimTime t, std::uint64_t request_id) {
  finish(t, request_id, Outcome::kRejected, /*qos_violation=*/false);
}

void SpanTracer::on_service_start(SimTime t, std::uint64_t request_id,
                                  std::uint64_t vm_id) {
  if (!sampled(request_id)) return;  // cheap pre-filter before the map probe
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  it->second.service_start = t;
  it->second.vm_id = vm_id;
}

void SpanTracer::on_complete(SimTime t, std::uint64_t request_id,
                             bool qos_violation) {
  finish(t, request_id, Outcome::kCompleted, qos_violation);
}

void SpanTracer::on_lost(SimTime t, std::uint64_t request_id) {
  finish(t, request_id, Outcome::kLost, /*qos_violation=*/false);
}

void SpanTracer::on_tier(std::uint64_t request_id, std::uint8_t tier) {
  if (!sampled(request_id)) return;  // cheap pre-filter before the map probe
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  it->second.tier = tier;
  has_tiers_ = true;
}

void SpanTracer::finish(SimTime t, std::uint64_t request_id, Outcome outcome,
                        bool qos_violation) {
  if (!sampled(request_id)) return;  // cheap pre-filter before the map probe
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  RequestTrace trace = it->second;
  pending_.erase(it);
  trace.finish = t;
  trace.outcome = outcome;
  trace.qos_violation = qos_violation;
  if (finished_.size() == options_.capacity) {
    finished_.pop_front();
    ++dropped_;
  }
  finished_.push_back(trace);
}

}  // namespace cloudprov
