// Model-drift observatory: predicted vs observed, per analysis window.
//
// Every Algorithm 1 run predicts the pool's mean response time, rejection
// probability, and utilization for the upcoming analysis window. This
// monitor pairs each prediction with what the simulation actually did over
// that window — observed values are recovered as deltas of the cumulative
// metrics registry (Snapshot::diff) plus the data center's cumulative
// VM-hour accounting — and maintains windowed error statistics: signed bias
// (predicted - observed), MAPE, and coverage of the k = floor(Ts/Tr) bound
// (the fraction of windows whose observed mean response time stayed within
// Ts, which is exactly what the queue bound is supposed to guarantee).
//
// The monitor is fed by AdaptivePolicy at every modeler decision; each
// decision closes the previous window and opens the next. It is purely
// observational: it never schedules events and never changes decisions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/metrics_registry.h"
#include "telemetry/trace_buffer.h"
#include "util/units.h"

namespace cloudprov {

class DriftMonitor {
 public:
  struct Config {
    /// Ts: the negotiated response-time target the k bound must guarantee;
    /// used for the coverage statistic.
    double qos_max_response_time = 0.250;
    /// Closed windows retained for export (oldest dropped beyond this).
    std::size_t max_windows = 1 << 20;
  };

  /// What the modeler promised for the upcoming window.
  struct Prediction {
    double response_time = 0.0;  ///< Tq of accepted requests (model)
    double rejection = 0.0;      ///< Pr(S_k) under the even-split model
    double utilization = 0.0;    ///< offered per-instance load rho
    double lambda = 0.0;         ///< expected arrival rate fed to Algorithm 1
    double tm = 0.0;             ///< monitored service time at decision time
    std::size_t queue_bound = 0; ///< k = floor(Ts/Tr) at decision time
    std::size_t instances = 0;   ///< chosen m
  };

  /// One closed window: the prediction, the observation, and the errors.
  struct WindowRecord {
    SimTime start = 0.0;
    SimTime end = 0.0;
    Prediction predicted;
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    double observed_response_time = 0.0;  ///< mean over the window's completions
    double observed_rejection = 0.0;      ///< rejected / arrivals
    double observed_utilization = 0.0;    ///< busy VM-hours / VM-hours
    double vm_hours = 0.0;       ///< VM-hours accrued in the window
    double busy_vm_hours = 0.0;  ///< busy VM-hours accrued in the window
    // Signed errors, predicted - observed (positive = model pessimistic on
    // response/rejection, optimistic on utilization headroom).
    double response_error = 0.0;
    double rejection_error = 0.0;
    double utilization_error = 0.0;
    /// Observed mean response time within Ts (only meaningful when
    /// completed > 0): the k-bound guarantee held for this window.
    bool within_bound = false;
  };

  /// Aggregate error statistics over the closed windows that observed at
  /// least one relevant event (completions for response, arrivals for
  /// rejection/utilization).
  struct ErrorStats {
    std::uint64_t windows = 0;  ///< windows contributing to bias
    double bias = 0.0;          ///< mean signed error (predicted - observed)
    double mape = 0.0;  ///< mean |error| / observed, percent, over windows
                        ///< with a non-zero observation
    double coverage = 0.0;  ///< response only: fraction of windows within Ts
  };

  /// `metrics` must outlive the monitor and be the registry the request
  /// hooks write into; `trace` receives one drift counter-lane sample per
  /// closed window.
  DriftMonitor(const MetricsRegistry& metrics, TraceBuffer& trace,
               Config config);

  const Config& config() const { return config_; }

  /// Called at every modeler decision: closes the window opened by the
  /// previous call (if any) against the current cumulative observations,
  /// then opens a new window under `pred`. `vm_hours`/`busy_vm_hours` are
  /// the data center's cumulative accounting at time `t`.
  void on_decision(SimTime t, const Prediction& pred, double vm_hours,
                   double busy_vm_hours);

  /// Closes the open window at end of run (no new window is opened).
  /// Safe to call when no window is open.
  void finalize(SimTime t, double vm_hours, double busy_vm_hours);

  const std::vector<WindowRecord>& windows() const { return windows_; }
  /// Closed windows ever, including any evicted beyond max_windows.
  std::uint64_t closed_windows() const { return closed_; }

  ErrorStats response_error() const;
  ErrorStats rejection_error() const;
  ErrorStats utilization_error() const;

  /// Checkpoint support (src/lookahead): copies `other`'s window state and
  /// history into this monitor, keeping this monitor's own registry/trace
  /// bindings. Configurations must match.
  void restore_from(const DriftMonitor& other);

 private:
  void close_window(SimTime t, double vm_hours, double busy_vm_hours);

  const MetricsRegistry* metrics_;
  TraceBuffer* trace_;
  Config config_;

  bool window_open_ = false;
  SimTime window_start_ = 0.0;
  Prediction pending_;
  MetricsRegistry::Snapshot window_base_;
  double base_vm_hours_ = 0.0;
  double base_busy_vm_hours_ = 0.0;

  std::vector<WindowRecord> windows_;
  std::uint64_t closed_ = 0;
};

}  // namespace cloudprov
