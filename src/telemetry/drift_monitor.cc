#include "telemetry/drift_monitor.h"

#include <cmath>

#include "telemetry/telemetry.h"
#include "util/check.h"

namespace cloudprov {
namespace {

const MetricsRegistry::CounterView* find_counter(
    const MetricsRegistry::Snapshot& snapshot, const char* name) {
  for (const auto& counter : snapshot.counters) {
    if (counter.name == name) return &counter;
  }
  return nullptr;
}

const MetricsRegistry::HistogramView* find_histogram(
    const MetricsRegistry::Snapshot& snapshot, const char* name) {
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == name) return &histogram;
  }
  return nullptr;
}

std::uint64_t counter_value(const MetricsRegistry::Snapshot& snapshot,
                            const char* name) {
  const auto* counter = find_counter(snapshot, name);
  return counter == nullptr ? 0 : counter->value;
}

}  // namespace

DriftMonitor::DriftMonitor(const MetricsRegistry& metrics, TraceBuffer& trace,
                           Config config)
    : metrics_(&metrics), trace_(&trace), config_(config) {
  ensure_arg(config_.qos_max_response_time > 0.0,
             "DriftMonitor: Ts must be > 0");
  ensure_arg(config_.max_windows >= 1, "DriftMonitor: need >= 1 window");
}

void DriftMonitor::on_decision(SimTime t, const Prediction& pred,
                               double vm_hours, double busy_vm_hours) {
  if (window_open_) close_window(t, vm_hours, busy_vm_hours);
  window_open_ = true;
  window_start_ = t;
  pending_ = pred;
  window_base_ = metrics_->snapshot();
  base_vm_hours_ = vm_hours;
  base_busy_vm_hours_ = busy_vm_hours;
}

void DriftMonitor::finalize(SimTime t, double vm_hours, double busy_vm_hours) {
  if (!window_open_) return;
  close_window(t, vm_hours, busy_vm_hours);
  window_open_ = false;
}

void DriftMonitor::close_window(SimTime t, double vm_hours,
                                double busy_vm_hours) {
  // Zero-length windows (two decisions at the same instant) observe nothing.
  if (t <= window_start_) return;

  const MetricsRegistry::Snapshot delta =
      metrics_->snapshot().diff(window_base_);

  WindowRecord record;
  record.start = window_start_;
  record.end = t;
  record.predicted = pending_;
  record.arrivals = counter_value(delta, "requests_arrived");
  record.completed = counter_value(delta, "requests_completed");
  record.rejected = counter_value(delta, "requests_rejected");
  if (const auto* response = find_histogram(delta, "response_time_seconds");
      response != nullptr && response->count > 0) {
    record.observed_response_time =
        response->sum / static_cast<double>(response->count);
  }
  if (record.arrivals > 0) {
    record.observed_rejection = static_cast<double>(record.rejected) /
                                static_cast<double>(record.arrivals);
  }
  record.vm_hours = vm_hours - base_vm_hours_;
  record.busy_vm_hours = busy_vm_hours - base_busy_vm_hours_;
  if (record.vm_hours > 0.0) {
    record.observed_utilization = record.busy_vm_hours / record.vm_hours;
  }
  record.response_error =
      pending_.response_time - record.observed_response_time;
  record.rejection_error = pending_.rejection - record.observed_rejection;
  record.utilization_error =
      pending_.utilization - record.observed_utilization;
  record.within_bound =
      record.completed > 0 &&
      record.observed_response_time <= config_.qos_max_response_time;

  ++closed_;
  if (windows_.size() == config_.max_windows) {
    windows_.erase(windows_.begin());
  }
  windows_.push_back(record);

  // One counter-lane sample per closed window: predicted-vs-observed pairs
  // render as overlaid stepped series in Perfetto.
  TraceEvent event;
  event.category = "drift";
  event.phase = TracePhase::kCounter;
  event.track = kTrackDrift;
  event.time = t;
  event.name = "drift_response_time";
  event.arg("predicted", pending_.response_time)
      .arg("observed", record.observed_response_time);
  trace_->record(event);
  event = TraceEvent{};
  event.category = "drift";
  event.phase = TracePhase::kCounter;
  event.track = kTrackDrift;
  event.time = t;
  event.name = "drift_rejection";
  event.arg("predicted", pending_.rejection)
      .arg("observed", record.observed_rejection);
  trace_->record(event);
  event = TraceEvent{};
  event.category = "drift";
  event.phase = TracePhase::kCounter;
  event.track = kTrackDrift;
  event.time = t;
  event.name = "drift_utilization";
  event.arg("predicted", pending_.utilization)
      .arg("observed", record.observed_utilization);
  trace_->record(event);
}

DriftMonitor::ErrorStats DriftMonitor::response_error() const {
  ErrorStats stats;
  std::uint64_t mape_windows = 0;
  std::uint64_t covered = 0;
  for (const WindowRecord& window : windows_) {
    if (window.completed == 0) continue;
    ++stats.windows;
    stats.bias += window.response_error;
    if (window.within_bound) ++covered;
    if (window.observed_response_time > 0.0) {
      ++mape_windows;
      stats.mape +=
          std::abs(window.response_error) / window.observed_response_time;
    }
  }
  if (stats.windows > 0) {
    stats.bias /= static_cast<double>(stats.windows);
    stats.coverage =
        static_cast<double>(covered) / static_cast<double>(stats.windows);
  }
  if (mape_windows > 0) {
    stats.mape = 100.0 * stats.mape / static_cast<double>(mape_windows);
  }
  return stats;
}

DriftMonitor::ErrorStats DriftMonitor::rejection_error() const {
  ErrorStats stats;
  std::uint64_t mape_windows = 0;
  for (const WindowRecord& window : windows_) {
    if (window.arrivals == 0) continue;
    ++stats.windows;
    stats.bias += window.rejection_error;
    if (window.observed_rejection > 0.0) {
      ++mape_windows;
      stats.mape += std::abs(window.rejection_error) / window.observed_rejection;
    }
  }
  if (stats.windows > 0) stats.bias /= static_cast<double>(stats.windows);
  if (mape_windows > 0) {
    stats.mape = 100.0 * stats.mape / static_cast<double>(mape_windows);
  }
  return stats;
}

DriftMonitor::ErrorStats DriftMonitor::utilization_error() const {
  ErrorStats stats;
  std::uint64_t mape_windows = 0;
  for (const WindowRecord& window : windows_) {
    if (window.vm_hours <= 0.0) continue;
    ++stats.windows;
    stats.bias += window.utilization_error;
    if (window.observed_utilization > 0.0) {
      ++mape_windows;
      stats.mape +=
          std::abs(window.utilization_error) / window.observed_utilization;
    }
  }
  if (stats.windows > 0) stats.bias /= static_cast<double>(stats.windows);
  if (mape_windows > 0) {
    stats.mape = 100.0 * stats.mape / static_cast<double>(mape_windows);
  }
  return stats;
}

void DriftMonitor::restore_from(const DriftMonitor& other) {
  window_open_ = other.window_open_;
  window_start_ = other.window_start_;
  pending_ = other.pending_;
  window_base_ = other.window_base_;
  base_vm_hours_ = other.base_vm_hours_;
  base_busy_vm_hours_ = other.base_busy_vm_hours_;
  windows_ = other.windows_;
  closed_ = other.closed_;
}

}  // namespace cloudprov
