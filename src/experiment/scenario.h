// Scenario and policy specifications for the paper's evaluation
// (Section V): the web (Wikipedia) and scientific (BoT) usage scenarios,
// each runnable under the adaptive policy or a static baseline.
//
// A `scale` factor multiplies all arrival rates, and — so comparisons stay
// meaningful — the static baseline sizes are specified at paper scale and
// scaled alongside. Shapes (who wins, crossover sizes, savings ratios) are
// preserved; absolute instance counts shrink with the rate. scale = 1
// reproduces the paper exactly (~500M web requests/week).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apptier/apptier_config.h"
#include "cloud/datacenter.h"
#include "core/adaptive_policy.h"
#include "core/performance_modeler.h"
#include "core/qos.h"
#include "core/workload_analyzer.h"
#include "fault/fault_plan.h"
#include "fault/reconciler.h"
#include "lookahead/lookahead_policy.h"
#include "market/market_broker.h"
#include "resilience/resilience_config.h"
#include "workload/bot_workload.h"
#include "workload/web_workload.h"
#include "workload/zipf_workload.h"

namespace cloudprov {

enum class WorkloadKind { kWeb, kScientific, kZipf };
enum class PredictorKind { kProfile, kOracle, kEwma, kMovingAverage, kAr, kQrsm };

std::string to_string(WorkloadKind kind);
std::string to_string(PredictorKind kind);

struct PolicySpec {
  enum class Kind { kAdaptive, kStatic, kLookahead };
  Kind kind = Kind::kAdaptive;
  /// Static pool size at paper scale (scaled by ScenarioConfig::scale).
  std::size_t static_instances = 0;
  /// Predictor used by the adaptive and lookahead policies.
  PredictorKind predictor = PredictorKind::kProfile;
  /// Co-simulation search knobs (kLookahead only). The forecast-stream seed
  /// is derived per replication (SeedStreams::lookahead), not taken from
  /// here.
  LookaheadConfig lookahead;

  static PolicySpec adaptive(PredictorKind predictor = PredictorKind::kProfile);
  static PolicySpec fixed(std::size_t instances);
  /// Model-predictive provisioner: K candidate pool sizes evaluated H
  /// analysis windows ahead in what-if clones of the world (src/lookahead).
  static PolicySpec lookahead_spec(
      std::size_t candidates, std::size_t horizon_windows,
      PredictorKind predictor = PredictorKind::kProfile,
      std::vector<double> bid_levels = {});
  std::string label(double scale) const;
};

struct ScenarioConfig {
  WorkloadKind workload = WorkloadKind::kWeb;
  double scale = 1.0;
  SimTime horizon = 0.0;  ///< filled by the factory

  QosTargets qos;
  ModelerConfig modeler;
  AnalyzerConfig analyzer;
  DatacenterConfig datacenter;
  double initial_service_time_estimate = 0.1;

  WebWorkloadConfig web;
  BotWorkloadConfig bot;
  /// Keyed Zipf workload (WorkloadKind::kZipf; src/workload/zipf_workload.h).
  ZipfWorkloadConfig zipf;

  /// Multi-tier application layer (src/apptier): cache tier in front of the
  /// backend pool. ApptierConfig::enabled defaults to false, keeping every
  /// existing scenario single-tier and bit-identical to previous outputs.
  ApptierConfig apptier;

  /// Fault injection (src/fault): disabled by default, so the paper
  /// scenarios stay fault-free and byte-identical to previous outputs.
  FaultPlan fault;
  /// Self-healing reconciler; ReconcilerConfig::enabled defaults to false.
  ReconcilerConfig reconciler;
  /// Provisioner boot watchdog (ProvisionerConfig::boot_timeout); 0 off.
  SimTime boot_timeout = 0.0;

  /// IaaS market layer (src/market): MarketConfig::enabled defaults to
  /// false, keeping the paper scenarios market-free and byte-identical to
  /// previous outputs. Enabled with pure on-demand terms it is still a
  /// strict no-op on every simulation observable.
  MarketConfig market;

  /// Request-path resilience layer (src/resilience): client retries /
  /// timeouts / budget / breaker plus server-side load shedding.
  /// ResilienceConfig::enabled defaults to false; enabled with every
  /// feature neutral (no timeout, one attempt, no budget/breaker/shed) it
  /// is still a strict no-op on every simulation observable.
  ResilienceConfig resilience;

  /// Scales a paper-scale instance count to this scenario's scale,
  /// rounding to at least 1.
  std::size_t scaled_instances(std::size_t paper_scale_count) const;
};

/// Web scenario (Section V-B1): 1-week Wikipedia-model workload,
/// Ts = 250 ms, Tr = 100 ms (+0-10%), zero rejection target, 80% utilization
/// floor. Paper baselines: Static-{50,75,100,125,150}.
ScenarioConfig web_scenario(double scale = 1.0);

/// Scientific scenario (Section V-B2): 1-day BoT workload, Ts = 700 s,
/// Tr = 300 s (+0-10%). Paper baselines: Static-{15,30,45,60,75}.
ScenarioConfig scientific_scenario(double scale = 1.0);

/// Keyed key-value scenario: 1-day Zipf(0.9) workload over 20k keys with the
/// web scenario's QoS (250 ms, zero rejection). Tiers stay OFF by default —
/// set `apptier.enabled = true` for a cache tier in front of the backend.
ScenarioConfig zipf_scenario(double scale = 1.0);

/// The static baseline sizes evaluated in Figure 5 / Figure 6 (paper scale).
std::vector<std::size_t> paper_static_sizes(WorkloadKind kind);

}  // namespace cloudprov
