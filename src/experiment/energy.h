// Data-center energy model.
//
// The paper motivates adaptive provisioning with "reduced financial and
// environmental costs" (Section I) but reports only VM-hours. This model
// converts the simulation's host/VM accounting into energy:
//
//   E = idle_watts * host_powered_hours
//       + (peak_watts - idle_watts) / cores_per_host * busy_core_hours,
//
// i.e. a powered-on host draws its idle floor plus linear-in-utilization
// dynamic power — the standard linear server power model. Because the idle
// floor dominates, *where* VMs are placed matters: consolidating (first-fit)
// powers fewer hosts than spreading (least-loaded) at identical VM-hours;
// bench_ablation_placement quantifies the gap.
#pragma once

#include "cloud/datacenter.h"

namespace cloudprov {

struct PowerModel {
  /// Power draw of a powered-on host with idle cores (watts).
  double idle_watts = 150.0;
  /// Power draw at full utilization of all cores (watts).
  double peak_watts = 250.0;
};

/// Total data-center energy consumed up to the data center's current time,
/// in kWh.
double energy_kwh(const Datacenter& datacenter, const PowerModel& model);

}  // namespace cloudprov
