// World: one fully wired replication — simulation engine, data center,
// provisioner, optional market/fault/reconciler layers, workload broker,
// and the provisioning policy — plus the snapshot/restore machinery that
// makes it a value.
//
// A World can be built two ways from the same (ScenarioConfig, PolicySpec,
// seed) triple:
//   - fresh: construct, start(), run_to(horizon), finish()   (what
//     run_scenario does), or
//   - restored: construct from a WorldState snapshot, which rebuilds every
//     component, re-pushes their pending events under the original
//     (time, seq) stamps, and restores the clock — the continued run is
//     bit-identical to the uninterrupted one.
//
// World also implements WhatIfEngine for LookaheadPolicy: what_if() forks a
// throwaway clone from a cached snapshot (telemetry off, arrivals replaced
// by a Poisson forecast), applies the candidate, runs it to the horizon, and
// reports cost/QoS. The live world is untouched.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "apptier/tiered_provisioner.h"
#include "cloud/broker.h"
#include "experiment/metrics.h"
#include "experiment/scenario.h"
#include "lookahead/lookahead_policy.h"
#include "lookahead/world_state.h"
#include "resilience/retry_gateway.h"
#include "resilience/shedding_admission.h"
#include "telemetry/telemetry.h"

namespace cloudprov {

class WallProfiler;

struct RunOutput {
  RunMetrics metrics;
  /// Adaptive/lookahead decision history (empty for static runs).
  std::vector<AdaptivePolicy::DecisionRecord> decisions;
  /// Market ledger + realized spot path (src/market); nullopt unless the
  /// scenario enabled the market.
  std::optional<MarketReport> market;
  /// The replication's telemetry collector (metrics registry + trace
  /// buffer); null unless telemetry was requested. Telemetry is purely
  /// observational: metrics are identical with it on or off.
  std::unique_ptr<Telemetry> telemetry;
  /// Cache tier per-window series (hit ratio, lambda_miss, predicted E2E);
  /// empty unless the scenario enabled the apptier and the policy planned
  /// windows. The warmup-transient time series of AB14.
  std::vector<ApptierState::WindowSample> apptier_series;
};

/// The scenario's workload generator (web or BoT). Exposed for rate-curve
/// sampling and oracle predictors outside a full World.
std::unique_ptr<RequestSource> make_scenario_source(
    const ScenarioConfig& config);

class World final : public WhatIfEngine {
 public:
  /// Fresh world at t = 0. Call start() before run_to(). An optional
  /// profiler (borrowed, output-only) attributes the replication's wall
  /// time; what-if clones never inherit it, so fork cost lands in the
  /// parent's lookahead.fork scope.
  ///
  /// `engine` selects the event kernel: null (the default) makes the world
  /// own a private Simulation, exactly as before. A non-null engine is
  /// *borrowed* — multi-tenant sharding runs many Worlds on one per-shard
  /// kernel — and the world then never attaches telemetry/profiler to the
  /// engine, never drives it (run_to is the shard runner's job), and
  /// reports simulated_events = 0 (the kernel's count is shard-global).
  World(const ScenarioConfig& config, const PolicySpec& policy,
        std::uint64_t seed,
        const std::optional<TelemetryOptions>& telemetry_opts = std::nullopt,
        WallProfiler* profiler = nullptr, Simulation* engine = nullptr);

  /// Restore-time deviations from the snapshotted trajectory, used by
  /// what-if clones. A default-constructed Overrides resumes faithfully.
  struct Overrides {
    /// Continue under a plain AdaptivePolicy even when the spec says
    /// lookahead: what-if clones must not recursively search.
    bool force_adaptive = false;
    /// Replace the workload source with a Poisson forecast at this rate
    /// (reseeding the broker stream with forecast_seed).
    std::optional<double> forecast_rate;
    std::uint64_t forecast_seed = 0;
    /// Spot-bid override applied to the restored market broker.
    std::optional<double> bid;
    /// Pool-size command applied immediately after restore (the candidate
    /// under evaluation).
    std::optional<std::size_t> initial_target;
  };

  /// Restored world: resumes from `state` at state.now. The triple
  /// (config, policy, seed) must match the world the snapshot was taken
  /// from; this is unchecked (checkpoints carry no config). Do not call
  /// start() on a restored world.
  World(const ScenarioConfig& config, const PolicySpec& policy,
        std::uint64_t seed, const WorldState& state,
        const Overrides& overrides, WallProfiler* profiler = nullptr);
  World(const ScenarioConfig& config, const PolicySpec& policy,
        std::uint64_t seed, const WorldState& state)
      : World(config, policy, seed, state, Overrides{}) {}

  ~World() override;
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Initial policy sizing + component start processes. Fresh worlds only.
  void start();
  /// Runs the engine until `t` (inclusive of events at t).
  void run_to(SimTime t);
  SimTime now() const;
  const Simulation& sim() const { return *sim_; }
  /// False when this world runs on a borrowed (shared shard) kernel.
  bool owns_sim() const { return owned_sim_ != nullptr; }
  Telemetry* telemetry() { return telemetry_.get(); }

  // --- multi-tenant capacity arbitration seam -----------------------------
  /// What this application's policy last asked for, pre-clamp: the arbiter
  /// reads desires at every window barrier.
  std::size_t desired_instances() const;
  /// Installs the arbiter's grant as the provisioner's capacity cap (the
  /// pool immediately re-sizes toward min(desire, grant)).
  void apply_capacity_grant(std::size_t grant);
  /// Cheap monotone progress counters, readable mid-run without finalizing
  /// anything: the shard-local telemetry batches of the multi-tenant
  /// executor read these after every window advance. Tiered worlds fold
  /// both pools in (and report the tier's end-to-end QoS accounting).
  struct Counters {
    std::uint64_t generated = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t qos_violations = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
  };
  Counters counters() const;
  /// Live resilience gateway (nullptr when the layer is disabled): lets the
  /// retry-storm ablation sample client goodput at the trigger boundary.
  const RetryGateway* gateway() const {
    return gateway_.has_value() ? &*gateway_ : nullptr;
  }

  struct SnapshotOptions {
    bool include_telemetry = true;
    /// Decision logs are replay bulk, not behavior; what-if forks drop them.
    bool include_decisions = true;
  };
  WorldState snapshot(const SnapshotOptions& options) const;
  WorldState snapshot() const { return snapshot(SnapshotOptions{}); }

  /// Finalizes monitors/ledgers at the current clock and extracts the
  /// paper's output metrics. Call once, after the horizon was reached;
  /// consumes the telemetry collector.
  RunOutput finish();

  // --- WhatIfEngine (LookaheadPolicy) -------------------------------------
  WhatIfOutcome what_if(const WhatIfSpec& spec) override;
  void commit_bid(double bid) override;
  std::optional<double> current_bid() const override;

 private:
  /// Shared wiring for both constructors: everything up to (but excluding)
  /// source/broker/policy construction and any restore call.
  void build_platform();
  /// The backend's sink: the resilience gateway when enabled, else the
  /// provisioner directly. In tiered worlds this is where cache MISSES go.
  RequestSink& request_sink();
  /// The Broker's sink: the cache tier when apptier is enabled, else
  /// request_sink() directly.
  RequestSink& front_door();
  void build_policy(const AdaptivePolicy::State* restored,
                    const std::optional<Rng::State>& lookahead_rng,
                    bool force_adaptive);

  ScenarioConfig config_;
  PolicySpec policy_;
  std::uint64_t seed_;
  SeedStreams streams_;
  std::chrono::steady_clock::time_point wall_start_;
  WallProfiler* profiler_ = nullptr;

  std::unique_ptr<Telemetry> telemetry_;
  /// Owned engine; null when the world runs on a borrowed shard kernel.
  std::unique_ptr<Simulation> owned_sim_;
  /// The engine every component is wired against: owned_sim_.get() or the
  /// borrowed shard kernel. Never null after construction.
  Simulation* sim_ = nullptr;
  std::optional<Datacenter> datacenter_;
  std::optional<ApplicationProvisioner> provisioner_;
  std::optional<MarketBroker> market_;
  std::optional<FaultInjector> faults_;
  std::optional<Reconciler> reconciler_;
  /// Client-side resilience gateway (src/resilience); present iff
  /// config_.resilience.enabled. The Broker's sink when present.
  std::optional<RetryGateway> gateway_;
  /// The provisioner's shedding admission policy (owned by the provisioner);
  /// null unless shedding is configured.
  SheddingAdmission* shedding_ = nullptr;
  /// Multi-tier application layer (src/apptier); present iff
  /// config_.apptier.enabled. The cache pool lives in its own small
  /// datacenter (separate VM id space, untelemetered at the VM level) and
  /// the tier is the broker's sink, forwarding misses to request_sink().
  std::optional<Datacenter> cache_datacenter_;
  std::optional<ApplicationProvisioner> cache_provisioner_;
  std::optional<CacheTier> cache_tier_;
  std::unique_ptr<RequestSource> source_;
  std::optional<Broker> broker_;
  std::unique_ptr<ProvisioningPolicy> prov_policy_;
  AdaptivePolicy* adaptive_ = nullptr;
  LookaheadPolicy* lookahead_ = nullptr;
  /// Per-tier Algorithm 1 (replaces AdaptivePolicy in tiered worlds).
  std::unique_ptr<TieredProvisioner> tiered_;
  bool started_ = false;

  /// what_if() base-snapshot cache: all candidates of one search window
  /// fork from the same frozen world, snapshotted once.
  std::optional<WorldState> whatif_base_;
};

}  // namespace cloudprov
