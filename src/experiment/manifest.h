// Run provenance manifest: a single JSON document that makes a result
// reproducible and attributable — the build that produced it (git commit,
// compiler, flags), the full run identity (scenario spec, policy label, base
// seed and all six derived seed streams), the complete RunMetrics, and —
// when a profiler was attached — the wall-time breakdown and engine
// internals. bench/compare_runs.py diffs two manifests and flags metric or
// wall-breakdown regressions.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "experiment/metrics.h"
#include "experiment/scenario.h"

namespace cloudprov {

class WallProfiler;
struct MultiTenantConfig;
struct MultiTenantResult;

/// Writes the manifest JSON ("cloudprov-run-manifest/1"). `profiler` may be
/// null (e.g. a metrics-only run); the wall section then carries only
/// wall_seconds. `replications` records how many seeds the surrounding
/// invocation ran; the metrics themselves are the instrumented replication's.
void write_run_manifest(std::ostream& out, const ScenarioConfig& config,
                        const std::string& policy_label, std::uint64_t seed,
                        std::size_t replications, const RunMetrics& metrics,
                        const WallProfiler* profiler);

/// Multi-tenant variant of the manifest (same schema id): the aggregate
/// rollup is the top-level `metrics` block, and a `multi_tenant` section
/// carries the population/sharding parameters, arbiter contention totals,
/// and one full metrics block per tenant. bench/compare_runs.py validates
/// and diffs these per-tenant blocks the same way (integer drift on an
/// identical population is a determinism failure).
void write_multi_tenant_manifest(std::ostream& out,
                                 const MultiTenantConfig& config,
                                 const MultiTenantResult& result,
                                 const WallProfiler* profiler);

}  // namespace cloudprov
