// Run provenance manifest: a single JSON document that makes a result
// reproducible and attributable — the build that produced it (git commit,
// compiler, flags), the full run identity (scenario spec, policy label, base
// seed and all six derived seed streams), the complete RunMetrics, and —
// when a profiler was attached — the wall-time breakdown and engine
// internals. bench/compare_runs.py diffs two manifests and flags metric or
// wall-breakdown regressions.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "experiment/metrics.h"
#include "experiment/scenario.h"

namespace cloudprov {

class WallProfiler;

/// Writes the manifest JSON ("cloudprov-run-manifest/1"). `profiler` may be
/// null (e.g. a metrics-only run); the wall section then carries only
/// wall_seconds. `replications` records how many seeds the surrounding
/// invocation ran; the metrics themselves are the instrumented replication's.
void write_run_manifest(std::ostream& out, const ScenarioConfig& config,
                        const std::string& policy_label, std::uint64_t seed,
                        std::size_t replications, const RunMetrics& metrics,
                        const WallProfiler* profiler);

}  // namespace cloudprov
