// Fixed-width table and CSV reporting for the benchmark harnesses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "experiment/metrics.h"

namespace cloudprov {

/// Minimal fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `precision` decimal places.
std::string fmt(double value, int precision = 2);

/// Formats a CI as "mean +- hw".
std::string fmt_ci(const ConfidenceInterval& ci, int precision = 2);

/// Prints the Figure 5 / Figure 6 style comparison: one row per policy with
/// the paper's output metrics averaged over replications.
void print_policy_table(std::ostream& out,
                        const std::vector<AggregateMetrics>& results);

/// Writes the same comparison as CSV.
void write_policy_csv(std::ostream& out,
                      const std::vector<AggregateMetrics>& results);

/// Prints the fault/self-healing comparison: one row per run with failure
/// counts by cause, lost requests, availability, MTTR, reconciler activity,
/// and the final pool size (shows permanent loss for unhealed static pools).
void print_fault_table(std::ostream& out, const std::vector<RunMetrics>& runs);

/// Writes the same fault comparison as CSV.
void write_fault_csv(std::ostream& out, const std::vector<RunMetrics>& runs);

/// One "paper vs measured" line for EXPERIMENTS.md-style reporting.
void print_claim(std::ostream& out, const std::string& claim, double paper_value,
                 double measured_value, int precision = 2);

/// Prints the spot-market comparison: one row per run with billed cost by
/// purchase kind, purchase/revocation counts, requests lost to revocation
/// kills, realized spot-price statistics, and QoS outcomes.
void print_market_table(std::ostream& out, const std::vector<RunMetrics>& runs);

/// Writes the same market comparison as CSV.
void write_market_metrics_csv(std::ostream& out,
                              const std::vector<RunMetrics>& runs);

/// Prints the request-path resilience comparison: one row per run with
/// logical-request goodput (succeeded/failed), attempt/retry volume, budget
/// denials, client timeouts, wasted (post-abandonment) completions, breaker
/// activity, and admission sheds by kind.
void print_resilience_table(std::ostream& out,
                            const std::vector<RunMetrics>& runs);

/// Writes the same resilience comparison as CSV.
void write_resilience_csv(std::ostream& out,
                          const std::vector<RunMetrics>& runs);

/// Prints the multi-tier cache comparison: one row per run with cache
/// hit/miss counts, the lifetime hit ratio, directory churn by cause
/// (evictions, TTL expirations, slot invalidations, storm flushes), the mean
/// backend offered load lambda_miss, and the cache pool's VM-hours and
/// utilization.
void print_apptier_table(std::ostream& out,
                         const std::vector<RunMetrics>& runs);

/// Writes the same multi-tier comparison as CSV.
void write_apptier_csv(std::ostream& out, const std::vector<RunMetrics>& runs);

/// Prints the observability summary of one run: SLO burn-rate alert counts
/// and the worst observed burn rate, model-drift window count with
/// response-time MAPE/bias, and the number of sampled request spans. Prints
/// nothing if the run had no monitor enabled (all fields zero).
void print_observability_summary(std::ostream& out, const RunMetrics& run);

}  // namespace cloudprov
