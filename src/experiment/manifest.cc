#include "experiment/manifest.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "experiment/multi_tenant.h"
#include "lookahead/world_state.h"
#include "profile/build_info.h"
#include "profile/wall_profiler.h"

namespace cloudprov {
namespace {

// Same JSON conventions as the other exporters (telemetry/export.cc,
// profile/profile_export.cc — both file-local).
std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

std::string json_string(const std::string& text) {
  std::string escaped = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      case '\r': escaped += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  escaped += '"';
  return escaped;
}

/// Key/value emitter that handles the comma discipline within one object.
class JsonObject {
 public:
  explicit JsonObject(std::ostream& out, int indent) : out_(out), indent_(indent) {}

  void field(const char* key, const std::string& raw) {
    if (!first_) out_ << ",\n";
    first_ = false;
    for (int i = 0; i < indent_; ++i) out_ << ' ';
    out_ << '"' << key << "\":" << raw;
  }
  void str(const char* key, const std::string& value) { field(key, json_string(value)); }
  void num(const char* key, double value) { field(key, json_number(value)); }
  void uint(const char* key, std::uint64_t value) { field(key, std::to_string(value)); }
  void boolean(const char* key, bool value) { field(key, value ? "true" : "false"); }

 private:
  std::ostream& out_;
  int indent_;
  bool first_ = true;
};

void write_metrics(std::ostream& out, const RunMetrics& m, int indent = 4) {
  JsonObject obj(out, indent);
  obj.str("policy", m.policy);
  obj.uint("seed", m.seed);
  obj.uint("generated", m.generated);
  obj.uint("accepted", m.accepted);
  obj.uint("rejected", m.rejected);
  obj.uint("completed", m.completed);
  obj.uint("qos_violations", m.qos_violations);
  obj.num("avg_response_time", m.avg_response_time);
  obj.num("std_response_time", m.std_response_time);
  obj.num("p95_response_time", m.p95_response_time);
  obj.num("p99_response_time", m.p99_response_time);
  obj.num("min_instances", m.min_instances);
  obj.num("max_instances", m.max_instances);
  obj.num("avg_instances", m.avg_instances);
  obj.num("vm_hours", m.vm_hours);
  obj.num("busy_vm_hours", m.busy_vm_hours);
  obj.num("utilization", m.utilization);
  obj.num("rejection_rate", m.rejection_rate);
  obj.uint("instance_failures", m.instance_failures);
  obj.uint("vm_crashes", m.vm_crashes);
  obj.uint("host_crashes", m.host_crashes);
  obj.uint("boot_failures", m.boot_failures);
  obj.uint("boot_timeouts", m.boot_timeouts);
  obj.uint("lost_requests", m.lost_requests);
  obj.uint("lost_to_vm_crashes", m.lost_to_vm_crashes);
  obj.uint("lost_to_host_crashes", m.lost_to_host_crashes);
  obj.num("availability", m.availability);
  obj.uint("recoveries", m.recoveries);
  obj.num("mttr_mean", m.mttr_mean);
  obj.num("mttr_max", m.mttr_max);
  obj.uint("reconciler_heals", m.reconciler_heals);
  obj.uint("reconciler_retries", m.reconciler_retries);
  obj.uint("reconciler_aborts", m.reconciler_aborts);
  obj.uint("final_instances", m.final_instances);
  obj.uint("slo_response_alerts", m.slo_response_alerts);
  obj.uint("slo_rejection_alerts", m.slo_rejection_alerts);
  obj.num("slo_worst_burn_rate", m.slo_worst_burn_rate);
  obj.uint("drift_windows", m.drift_windows);
  obj.num("drift_response_mape", m.drift_response_mape);
  obj.num("drift_response_bias", m.drift_response_bias);
  obj.uint("spans_traced", m.spans_traced);
  obj.num("billed_cost", m.billed_cost);
  obj.num("on_demand_cost", m.on_demand_cost);
  obj.num("spot_cost", m.spot_cost);
  obj.num("reserved_cost", m.reserved_cost);
  obj.uint("on_demand_purchases", m.on_demand_purchases);
  obj.uint("spot_purchases", m.spot_purchases);
  obj.uint("reserved_purchases", m.reserved_purchases);
  obj.uint("spot_revocations", m.spot_revocations);
  obj.uint("revocation_kills", m.revocation_kills);
  obj.uint("lost_to_revocations", m.lost_to_revocations);
  obj.num("spot_price_mean", m.spot_price_mean);
  obj.num("spot_price_max", m.spot_price_max);
  obj.uint("client_requests", m.client_requests);
  obj.uint("client_succeeded", m.client_succeeded);
  obj.uint("client_failed", m.client_failed);
  obj.uint("client_attempts", m.client_attempts);
  obj.uint("client_retries", m.client_retries);
  obj.uint("retry_budget_denied", m.retry_budget_denied);
  obj.uint("client_timeouts", m.client_timeouts);
  obj.uint("wasted_completions", m.wasted_completions);
  obj.uint("breaker_opens", m.breaker_opens);
  obj.uint("breaker_half_opens", m.breaker_half_opens);
  obj.uint("breaker_closes", m.breaker_closes);
  obj.uint("breaker_fast_fails", m.breaker_fast_fails);
  obj.uint("shed_deadline", m.shed_deadline);
  obj.uint("shed_brownout", m.shed_brownout);
  obj.uint("cache_hits", m.cache_hits);
  obj.uint("cache_misses", m.cache_misses);
  obj.num("cache_hit_ratio", m.cache_hit_ratio);
  obj.uint("cache_fills", m.cache_fills);
  obj.uint("cache_evictions", m.cache_evictions);
  obj.uint("cache_expirations", m.cache_expirations);
  obj.uint("cache_invalidations", m.cache_invalidations);
  obj.uint("cache_flushes", m.cache_flushes);
  obj.num("cache_vm_hours", m.cache_vm_hours);
  obj.num("cache_utilization", m.cache_utilization);
  obj.num("cache_avg_instances", m.cache_avg_instances);
  obj.uint("cache_final_instances", m.cache_final_instances);
  obj.num("lambda_miss_mean", m.lambda_miss_mean);
  obj.num("cache_avg_response_time", m.cache_avg_response_time);
  obj.num("backend_avg_response_time", m.backend_avg_response_time);
  obj.uint("simulated_events", m.simulated_events);
  obj.num("wall_seconds", m.wall_seconds);
}

void write_scenario(std::ostream& out, const ScenarioConfig& config) {
  JsonObject obj(out, 4);
  obj.str("workload", to_string(config.workload));
  obj.num("scale", config.scale);
  obj.num("horizon", config.horizon);
  obj.num("qos_max_response_time", config.qos.max_response_time);
  obj.num("qos_max_rejection_rate", config.qos.max_rejection_rate);
  obj.num("qos_min_utilization", config.qos.min_utilization);
  obj.uint("modeler_max_vms", config.modeler.max_vms);
  obj.uint("modeler_min_vms", config.modeler.min_vms);
  obj.num("modeler_rejection_tolerance", config.modeler.rejection_tolerance);
  obj.num("modeler_max_offered_load", config.modeler.max_offered_load);
  obj.num("analysis_interval", config.analyzer.analysis_interval);
  obj.num("analysis_lead_time", config.analyzer.lead_time);
  obj.uint("host_count", config.datacenter.host_count);
  obj.num("vm_boot_delay", config.datacenter.vm_boot_delay);
  obj.num("boot_timeout", config.boot_timeout);
  obj.boolean("fault_enabled", config.fault.enabled());
  obj.boolean("reconciler_enabled", config.reconciler.enabled);
  obj.boolean("market_enabled", config.market.enabled);
  obj.boolean("resilience_enabled", config.resilience.enabled);
  obj.boolean("apptier_enabled", config.apptier.enabled);
  if (config.apptier.enabled) {
    obj.num("cache_ttl", config.apptier.ttl);
    obj.uint("cache_vms", config.apptier.cache_vms);
    obj.uint("cache_capacity_per_vm", config.apptier.cache_capacity_per_vm);
    obj.num("assumed_hit_ratio", config.apptier.assumed_hit_ratio);
    obj.uint("cache_flush_events", config.apptier.flush_at.size());
    obj.uint("cache_crash_events", config.apptier.cache_crash_at.size());
  }
  if (config.workload == WorkloadKind::kZipf) {
    obj.num("zipf_alpha", config.zipf.alpha);
    obj.uint("zipf_num_keys", config.zipf.num_keys);
    obj.num("zipf_base_rate", config.zipf.base_rate);
    obj.uint("zipf_flash_crowds", config.zipf.flash.size());
    obj.uint("zipf_hot_shifts", config.zipf.hot_shift_at.size());
  }
}

void write_wall(std::ostream& out, const RunMetrics& metrics,
                const WallProfiler* profiler) {
  JsonObject obj(out, 4);
  obj.num("wall_seconds", metrics.wall_seconds);
  if (profiler == nullptr) {
    obj.field("breakdown", "[]");
    return;
  }
  const double covered = profiler->covered_seconds();
  obj.num("covered_seconds", covered);
  obj.num("covered_fraction", metrics.wall_seconds > 0.0
                                  ? covered / metrics.wall_seconds
                                  : 0.0);
  obj.num("clock_overhead_seconds", profiler->clock_overhead_seconds());

  std::ostringstream breakdown;
  breakdown << "[\n";
  bool first = true;
  const auto& totals = profiler->totals();
  for (std::size_t i = 0; i < totals.size(); ++i) {
    const auto& stat = totals[i];
    if (stat.count == 0) continue;
    if (!first) breakdown << ",\n";
    first = false;
    breakdown << "      {\"category\":"
              << json_string(to_string(static_cast<ProfileCategory>(i)))
              << ",\"self_seconds\":" << json_number(stat.self_seconds)
              << ",\"total_seconds\":" << json_number(stat.total_seconds)
              << ",\"count\":" << stat.count << "}";
  }
  breakdown << "\n    ]";
  obj.field("breakdown", breakdown.str());

  // Engine internals from the last snapshot (finish() forces one, so this
  // reflects end-of-run state; high waters and counters are cumulative).
  if (!profiler->snapshots().empty()) {
    const ProfileSnapshot& last = profiler->snapshots().back();
    std::ostringstream engine;
    engine << "{\"heap_high_water\":" << last.heap_high_water
           << ",\"slab_high_water\":" << last.slab_high_water
           << ",\"stale_drops\":" << last.stale_drops
           << ",\"boxed_events\":" << last.boxed_pushed
           << ",\"snapshots\":" << profiler->snapshots().size()
           << ",\"events_per_second\":"
           << json_number(metrics.wall_seconds > 0.0
                              ? static_cast<double>(metrics.simulated_events) /
                                    metrics.wall_seconds
                              : 0.0)
           << ",\"sim_speedup\":"
           << json_number(metrics.wall_seconds > 0.0
                              ? last.sim_time / metrics.wall_seconds
                              : 0.0)
           << "}";
    obj.field("engine", engine.str());
  }
}

}  // namespace

void write_run_manifest(std::ostream& out, const ScenarioConfig& config,
                        const std::string& policy_label, std::uint64_t seed,
                        std::size_t replications, const RunMetrics& metrics,
                        const WallProfiler* profiler) {
  const auto now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  const SeedStreams streams = derive_streams(seed);

  out << "{\n";
  JsonObject root(out, 2);
  root.str("schema", "cloudprov-run-manifest/1");
  root.uint("generated_unix_ms", static_cast<std::uint64_t>(now_ms));

  std::ostringstream build;
  build << "{\n";
  {
    JsonObject obj(build, 4);
    obj.str("git_commit", kBuildGitCommit);
    obj.str("compiler_id", kBuildCompilerId);
    obj.str("compiler_version", kBuildCompilerVersion);
    obj.str("build_type", kBuildType);
    obj.str("cxx_flags", kBuildCxxFlags);
    obj.str("system", kBuildSystem);
  }
  build << "\n  }";
  root.field("build", build.str());

  std::ostringstream scenario;
  scenario << "{\n";
  write_scenario(scenario, config);
  scenario << "\n  }";
  root.field("scenario", scenario.str());

  root.str("policy", policy_label);
  root.uint("seed", seed);
  root.uint("replications", replications);

  std::ostringstream seeds;
  seeds << "{\n";
  {
    JsonObject obj(seeds, 4);
    obj.uint("workload", streams.workload);
    obj.uint("placement", streams.placement);
    obj.uint("fault", streams.fault);
    obj.uint("market", streams.market);
    obj.uint("lookahead", streams.lookahead);
    obj.uint("resilience", streams.resilience);
    obj.uint("apptier", streams.apptier);
  }
  seeds << "\n  }";
  root.field("seed_streams", seeds.str());

  std::ostringstream metrics_json;
  metrics_json << "{\n";
  write_metrics(metrics_json, metrics);
  metrics_json << "\n  }";
  root.field("metrics", metrics_json.str());

  std::ostringstream wall;
  wall << "{\n";
  write_wall(wall, metrics, profiler);
  wall << "\n  }";
  root.field("wall", wall.str());

  out << "\n}\n";
}

void write_multi_tenant_manifest(std::ostream& out,
                                 const MultiTenantConfig& config,
                                 const MultiTenantResult& result,
                                 const WallProfiler* profiler) {
  const auto now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  out << "{\n";
  JsonObject root(out, 2);
  root.str("schema", "cloudprov-run-manifest/1");
  root.uint("generated_unix_ms", static_cast<std::uint64_t>(now_ms));

  std::ostringstream build;
  build << "{\n";
  {
    JsonObject obj(build, 4);
    obj.str("git_commit", kBuildGitCommit);
    obj.str("compiler_id", kBuildCompilerId);
    obj.str("compiler_version", kBuildCompilerVersion);
    obj.str("build_type", kBuildType);
    obj.str("cxx_flags", kBuildCxxFlags);
    obj.str("system", kBuildSystem);
  }
  build << "\n  }";
  root.field("build", build.str());

  // The population IS the scenario: every per-tenant scenario derives from
  // these parameters plus the master seed, so this block is the full run
  // identity for compare_runs.py's same-input determinism check.
  std::ostringstream scenario;
  scenario << "{\n";
  {
    JsonObject obj(scenario, 4);
    obj.str("workload", "multi-tenant");
    obj.uint("tenants", config.tenants);
    obj.num("horizon", config.horizon);
    obj.num("window", config.window);
    obj.num("bot_fraction", config.bot_fraction);
    obj.num("tenant_scale", config.tenant_scale);
    obj.num("scale_spread", config.scale_spread);
    obj.num("qos_spread", config.qos_spread);
    obj.uint("capacity", config.resolved_capacity());
    obj.uint("per_tenant_cap", config.per_tenant_cap);
    obj.boolean("market_enabled", config.market_enabled);
    obj.num("spot_fraction", config.spot_fraction);
    obj.num("bid", config.bid);
  }
  scenario << "\n  }";
  root.field("scenario", scenario.str());

  root.str("policy", result.aggregate.policy);
  root.uint("seed", config.seed);
  root.uint("replications", 1);

  std::ostringstream mt;
  mt << "{\n";
  {
    JsonObject obj(mt, 4);
    obj.uint("tenants", result.tenants.size());
    obj.uint("shards", result.shards);
    obj.uint("windows", result.windows);
    obj.uint("capacity", result.capacity);
    obj.uint("grant_clips", result.grant_clips);
    obj.uint("instances_denied", result.instances_denied);
    obj.uint("peak_granted", result.peak_granted);
    obj.uint("simulated_events", result.simulated_events);

    std::ostringstream tenants;
    tenants << "[\n";
    bool first = true;
    for (const TenantResult& tenant : result.tenants) {
      if (!first) tenants << ",\n";
      first = false;
      tenants << "      {\n";
      {
        JsonObject row(tenants, 8);
        row.uint("id", tenant.id);
        row.str("kind", to_string(tenant.kind));
        std::ostringstream metrics_json;
        metrics_json << "{\n";
        write_metrics(metrics_json, tenant.metrics, 10);
        metrics_json << "\n        }";
        row.field("metrics", metrics_json.str());
      }
      tenants << "\n      }";
    }
    tenants << "\n    ]";
    obj.field("tenant_metrics", tenants.str());
  }
  mt << "\n  }";
  root.field("multi_tenant", mt.str());

  std::ostringstream metrics_json;
  metrics_json << "{\n";
  write_metrics(metrics_json, result.aggregate);
  metrics_json << "\n  }";
  root.field("metrics", metrics_json.str());

  std::ostringstream wall;
  wall << "{\n";
  write_wall(wall, result.aggregate, profiler);
  wall << "\n  }";
  root.field("wall", wall.str());

  out << "\n}\n";
}

}  // namespace cloudprov
