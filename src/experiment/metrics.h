// Per-run output metrics and cross-replication aggregation.
//
// These are exactly the paper's output metrics (Section V-A): average
// response time of accepted requests and its standard deviation, min/max
// concurrent instances, VM hours, QoS violations, rejection percentage, and
// resource utilization — plus simulator-side diagnostics (events, wall time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/confidence.h"

namespace cloudprov {

struct RunMetrics {
  std::string policy;
  std::uint64_t seed = 0;

  std::uint64_t generated = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t qos_violations = 0;

  double avg_response_time = 0.0;
  double std_response_time = 0.0;
  double p95_response_time = 0.0;
  double p99_response_time = 0.0;

  double min_instances = 0.0;
  double max_instances = 0.0;
  double avg_instances = 0.0;

  double vm_hours = 0.0;
  double busy_vm_hours = 0.0;
  double utilization = 0.0;
  double rejection_rate = 0.0;

  // --- fault injection & self-healing (src/fault; all zero in fault-free
  // runs, so existing outputs are unchanged) ------------------------------
  std::uint64_t instance_failures = 0;  ///< all causes
  std::uint64_t vm_crashes = 0;
  std::uint64_t host_crashes = 0;  ///< hosts crash-failed
  std::uint64_t boot_failures = 0;
  std::uint64_t boot_timeouts = 0;
  std::uint64_t lost_requests = 0;  ///< accepted, then lost to a failure
  std::uint64_t lost_to_vm_crashes = 0;
  std::uint64_t lost_to_host_crashes = 0;
  /// Fraction of the run the active pool met the commanded target
  /// (1 - deficit seconds / horizon); 1.0 when no faults are configured.
  double availability = 1.0;
  /// Closed deficit episodes (pool dropped below target, then recovered).
  std::uint64_t recoveries = 0;
  double mttr_mean = 0.0;  ///< mean repair time over closed episodes, s
  double mttr_max = 0.0;
  std::uint64_t reconciler_heals = 0;
  std::uint64_t reconciler_retries = 0;
  std::uint64_t reconciler_aborts = 0;
  /// Active instances at the horizon (shows permanent loss for unhealed
  /// static pools).
  std::uint64_t final_instances = 0;

  // --- observability (src/telemetry monitors; all zero when the span
  // tracer, drift observatory, and SLO monitor are disabled) ---------------
  std::uint64_t slo_response_alerts = 0;  ///< burn-rate alerts raised (Ts)
  std::uint64_t slo_rejection_alerts = 0;
  double slo_worst_burn_rate = 0.0;  ///< peak short-window burn, any rule
  std::uint64_t drift_windows = 0;   ///< closed predicted-vs-observed windows
  double drift_response_mape = 0.0;  ///< response-time MAPE, percent
  double drift_response_bias = 0.0;  ///< mean signed error (pred - obs), s
  std::uint64_t spans_traced = 0;    ///< requests sampled by the span tracer

  // --- IaaS market (src/market; all zero when the market is disabled, so
  // existing outputs are unchanged) ----------------------------------------
  double billed_cost = 0.0;  ///< total, currency units
  double on_demand_cost = 0.0;
  double spot_cost = 0.0;
  double reserved_cost = 0.0;
  std::uint64_t on_demand_purchases = 0;
  std::uint64_t spot_purchases = 0;
  std::uint64_t reserved_purchases = 0;
  std::uint64_t spot_revocations = 0;   ///< notices served
  std::uint64_t revocation_kills = 0;   ///< notices that expired into kills
  std::uint64_t lost_to_revocations = 0;
  double spot_price_mean = 0.0;  ///< time-weighted over the horizon
  double spot_price_max = 0.0;

  // --- request-path resilience (src/resilience; all zero when the layer is
  // disabled, so existing outputs are unchanged) ---------------------------
  std::uint64_t client_requests = 0;   ///< fresh logical requests
  std::uint64_t client_succeeded = 0;  ///< served within the client's patience
  std::uint64_t client_failed = 0;     ///< client gave up (attempts/deadline/budget)
  std::uint64_t client_attempts = 0;   ///< dispatches incl. retries + fast-fails
  std::uint64_t client_retries = 0;
  std::uint64_t retry_budget_denied = 0;
  std::uint64_t client_timeouts = 0;
  std::uint64_t wasted_completions = 0;  ///< served after the client gave up
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_half_opens = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t breaker_fast_fails = 0;
  std::uint64_t shed_deadline = 0;  ///< admission sheds: unmeetable deadline
  std::uint64_t shed_brownout = 0;  ///< admission sheds: brownout

  // --- multi-tenant capacity arbitration (src/experiment/multi_tenant;
  // all zero in single-tenant runs, so existing outputs are unchanged) -----
  std::uint64_t capacity_clips = 0;   ///< scale_to calls clamped by the grant
  std::uint64_t capacity_denied = 0;  ///< instances desired but not granted

  // --- multi-tier application (src/apptier; all zero when the cache tier
  // is disabled, so existing outputs are unchanged) ------------------------
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_ratio = 0.0;  ///< lifetime hits / lookups
  std::uint64_t cache_fills = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_expirations = 0;    ///< TTL lapses seen at lookup
  std::uint64_t cache_invalidations = 0;  ///< slot remaps (crash/resize)
  std::uint64_t cache_flushes = 0;        ///< TTL-storm events fired
  double cache_vm_hours = 0.0;
  double cache_utilization = 0.0;
  double cache_avg_instances = 0.0;
  std::uint64_t cache_final_instances = 0;
  /// Mean backend offered load lambda * (1 - h) across analysis windows.
  double lambda_miss_mean = 0.0;
  /// Per-tier measured latency (the tiered latency-vs-throughput curve):
  /// mean response time of requests served by each pool alone. In tiered
  /// runs avg_response_time above is the END-TO-END mix of both.
  double cache_avg_response_time = 0.0;
  double backend_avg_response_time = 0.0;

  // Simulator diagnostics (not paper metrics).
  std::uint64_t simulated_events = 0;
  double wall_seconds = 0.0;
};

/// Mean and 95% CI of each headline metric across replications.
struct AggregateMetrics {
  std::string policy;
  std::size_t replications = 0;

  ConfidenceInterval avg_response_time;
  ConfidenceInterval std_response_time;
  ConfidenceInterval min_instances;
  ConfidenceInterval max_instances;
  ConfidenceInterval vm_hours;
  ConfidenceInterval utilization;
  ConfidenceInterval rejection_rate;
  ConfidenceInterval qos_violations;
  ConfidenceInterval availability;
  ConfidenceInterval billed_cost;
  double generated_mean = 0.0;
};

AggregateMetrics aggregate(const std::vector<RunMetrics>& runs,
                           double confidence = 0.95);

}  // namespace cloudprov
