#include "experiment/metrics.h"

#include "util/check.h"

namespace cloudprov {
namespace {

template <typename Getter>
ConfidenceInterval field_ci(const std::vector<RunMetrics>& runs, double confidence,
                            Getter getter) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const RunMetrics& run : runs) values.push_back(getter(run));
  return mean_confidence_interval(values, confidence);
}

}  // namespace

AggregateMetrics aggregate(const std::vector<RunMetrics>& runs, double confidence) {
  ensure_arg(!runs.empty(), "aggregate: no runs");
  AggregateMetrics agg;
  agg.policy = runs.front().policy;
  agg.replications = runs.size();
  agg.avg_response_time =
      field_ci(runs, confidence, [](const RunMetrics& r) { return r.avg_response_time; });
  agg.std_response_time =
      field_ci(runs, confidence, [](const RunMetrics& r) { return r.std_response_time; });
  agg.min_instances =
      field_ci(runs, confidence, [](const RunMetrics& r) { return r.min_instances; });
  agg.max_instances =
      field_ci(runs, confidence, [](const RunMetrics& r) { return r.max_instances; });
  agg.vm_hours =
      field_ci(runs, confidence, [](const RunMetrics& r) { return r.vm_hours; });
  agg.utilization =
      field_ci(runs, confidence, [](const RunMetrics& r) { return r.utilization; });
  agg.rejection_rate =
      field_ci(runs, confidence, [](const RunMetrics& r) { return r.rejection_rate; });
  agg.qos_violations = field_ci(runs, confidence, [](const RunMetrics& r) {
    return static_cast<double>(r.qos_violations);
  });
  agg.availability =
      field_ci(runs, confidence, [](const RunMetrics& r) { return r.availability; });
  agg.billed_cost =
      field_ci(runs, confidence, [](const RunMetrics& r) { return r.billed_cost; });
  double generated = 0.0;
  for (const RunMetrics& run : runs) generated += static_cast<double>(run.generated);
  agg.generated_mean = generated / static_cast<double>(runs.size());
  return agg;
}

}  // namespace cloudprov
