#include "experiment/multi_tenant.h"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <string>
#include <utility>

#include "experiment/world.h"
#include "profile/wall_profiler.h"
#include "sim/shard_executor.h"
#include "sim/simulation.h"
#include "util/check.h"
#include "util/rng.h"

namespace cloudprov {
namespace {

/// Salt for the shared spot-price stream, so the one market trajectory every
/// tenant prices against is independent of any tenant's own streams.
constexpr std::uint64_t kSharedMarketSalt = 0x5ca1'ab1e'0ddb'a11ULL;

}  // namespace

std::vector<TenantSpec> multi_tenant_specs(const MultiTenantConfig& config) {
  ensure_arg(config.tenants >= 1, "multi_tenant: tenants must be >= 1");
  ensure_arg(config.window > 0.0, "multi_tenant: window must be positive");
  ensure_arg(config.horizon >= 0.0, "multi_tenant: horizon must be >= 0");
  ensure_arg(config.tenant_scale > 0.0,
             "multi_tenant: tenant_scale must be positive");
  ensure_arg(config.bot_fraction >= 0.0 && config.bot_fraction <= 1.0,
             "multi_tenant: bot_fraction must be in [0, 1]");
  ensure_arg(config.zipf_fraction >= 0.0 &&
                 config.bot_fraction + config.zipf_fraction <= 1.0,
             "multi_tenant: bot_fraction + zipf_fraction must be in [0, 1]");
  ensure_arg(config.scale_spread >= 0.0 && config.scale_spread < 1.0,
             "multi_tenant: scale_spread must be in [0, 1)");
  ensure_arg(config.qos_spread >= 0.0,
             "multi_tenant: qos_spread must be >= 0");
  ensure_arg(config.resolved_capacity() >= 1,
             "multi_tenant: shared capacity must be >= 1");

  const std::uint64_t market_seed =
      SplitMix64(config.seed ^ kSharedMarketSalt).next();

  std::vector<TenantSpec> specs;
  specs.reserve(config.tenants);
  SplitMix64 seeder(config.seed);
  for (std::size_t i = 0; i < config.tenants; ++i) {
    TenantSpec spec;
    spec.id = i;
    // Two independent draws per tenant: the World seed (which derives the
    // tenant's workload/placement/fault/... streams) and the spec-jitter
    // stream, so jitter never perturbs the tenant's simulation streams.
    spec.seed = seeder.next();
    Rng jitter(seeder.next());

    // One draw picks the workload kind — bot band first, then zipf — so a
    // zero zipf_fraction reproduces the historical web/BoT population
    // bit-for-bit.
    const double kind_draw = jitter.uniform();
    const bool bot = kind_draw < config.bot_fraction;
    const bool zipf =
        !bot && kind_draw < config.bot_fraction + config.zipf_fraction;
    const double scale =
        config.tenant_scale * jitter.uniform(1.0 - config.scale_spread,
                                             1.0 + config.scale_spread);
    spec.scenario = bot    ? scientific_scenario(scale)
                    : zipf ? zipf_scenario(scale)
                           : web_scenario(scale);
    if (zipf && config.zipf_tiers) spec.scenario.apptier.enabled = true;
    spec.scenario.horizon = config.horizon;
    spec.scenario.qos.max_response_time *=
        jitter.uniform(1.0, 1.0 + config.qos_spread);

    // Each tenant's data center is sized to the *shared* logical capacity:
    // the arbiter's grant, not physical host exhaustion, must be the
    // binding constraint.
    spec.scenario.datacenter.host_count =
        std::max<std::size_t>(4, config.resolved_capacity());

    if (config.market_enabled) {
      spec.scenario.market.enabled = true;
      spec.scenario.market.acquisition.spot_fraction = config.spot_fraction;
      spec.scenario.market.acquisition.bid = config.bid;
      spec.scenario.market.price_seed_override = market_seed;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

CapacityArbiter::CapacityArbiter(std::size_t capacity,
                                 std::size_t per_tenant_cap,
                                 std::size_t tenants)
    : capacity_(capacity),
      per_tenant_cap_(per_tenant_cap == 0 ? SIZE_MAX : per_tenant_cap),
      grants_(tenants, 0) {
  ensure_arg(capacity >= 1, "CapacityArbiter: capacity must be >= 1");
  ensure_arg(tenants >= 1, "CapacityArbiter: tenants must be >= 1");
}

const std::vector<std::size_t>& CapacityArbiter::arbitrate(
    const std::vector<std::size_t>& desires) {
  ensure_arg(desires.size() == grants_.size(),
             "CapacityArbiter: desire vector size mismatch");
  // Phase 1 — release: a tenant never holds a grant above its desire (or
  // the static per-tenant cap), so shrinking tenants free slots this round.
  std::size_t used = 0;
  for (std::size_t i = 0; i < grants_.size(); ++i) {
    const std::size_t want = std::min(desires[i], per_tenant_cap_);
    grants_[i] = std::min(grants_[i], want);
    used += grants_[i];
  }
  // Phase 2 — grow in ascending tenant id while free slots remain: the
  // fixed order is what makes the outcome a pure function of the desire
  // vector, independent of shard count or thread scheduling.
  for (std::size_t i = 0; i < grants_.size(); ++i) {
    const std::size_t want = std::min(desires[i], per_tenant_cap_);
    if (want > grants_[i]) {
      const std::size_t room = capacity_ > used ? capacity_ - used : 0;
      const std::size_t take = std::min(want - grants_[i], room);
      grants_[i] += take;
      used += take;
    }
    if (desires[i] > grants_[i]) {
      ++clips_;
      denied_ += desires[i] - grants_[i];
    }
  }
  peak_granted_ = std::max(peak_granted_, used);
  return grants_;
}

MultiTenantResult run_multi_tenant(const MultiTenantConfig& config,
                                   const MultiTenantOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<TenantSpec> specs = multi_tenant_specs(config);
  const std::size_t tenant_count = specs.size();
  const std::size_t shard_count =
      std::clamp<std::size_t>(options.shards, 1, tenant_count);

  // One kernel (and, when profiling, one private profiler) per shard. The
  // WallProfiler is single-threaded by design, so every worker samples into
  // its own instance; the serial commit drains them into the run profiler.
  struct Shard {
    std::unique_ptr<Simulation> sim;
    std::unique_ptr<WallProfiler> profiler;
    /// Shard-local telemetry batch: this worker's residents' counter
    /// deltas for the current window. Written only by the owning worker
    /// between barriers, drained (and reset) inside the serial commit.
    FleetWindowSample batch;
  };
  std::vector<Shard> shards(shard_count);
  for (Shard& shard : shards) {
    shard.sim = std::make_unique<Simulation>();
    if (options.profiler != nullptr) {
      shard.profiler = std::make_unique<WallProfiler>(
          options.profiler->snapshot_interval());
      shard.sim->set_profiler(shard.profiler.get());
    }
  }

  // Build every tenant world in ascending id order, each on its home
  // shard's borrowed kernel (round-robin residency). Construction order
  // is irrelevant to determinism (worlds are disjoint), but a fixed order
  // keeps any shared-kernel push sequencing reproducible.
  std::vector<std::unique_ptr<World>> worlds;
  worlds.reserve(tenant_count);
  const PolicySpec policy = PolicySpec::adaptive();
  for (const TenantSpec& spec : specs) {
    Shard& home = shards[spec.id % shard_count];
    std::optional<TelemetryOptions> telemetry;
    if (spec.id < options.traced_tenants) {
      TelemetryOptions opts;
      opts.span_sample_rate = options.span_sample_rate;
      opts.span_seed = spec.seed;
      telemetry = opts;
    }
    worlds.push_back(std::make_unique<World>(spec.scenario, policy, spec.seed,
                                             telemetry, home.profiler.get(),
                                             home.sim.get()));
  }
  for (std::unique_ptr<World>& world : worlds) world->start();

  CapacityArbiter arbiter(config.resolved_capacity(), config.per_tenant_cap,
                          tenant_count);
  std::vector<std::size_t> desires(tenant_count, 0);
  const auto arbitrate_now = [&] {
    for (std::size_t i = 0; i < tenant_count; ++i) {
      desires[i] = worlds[i]->desired_instances();
    }
    const std::vector<std::size_t>& grants = arbiter.arbitrate(desires);
    for (std::size_t i = 0; i < tenant_count; ++i) {
      worlds[i]->apply_capacity_grant(grants[i]);
    }
  };
  {
    // Round 0: reconcile the initial pools before any event executes.
    ProfileScope scope(options.profiler, ProfileCategory::kArbiter);
    arbitrate_now();
  }

  // Per-shard telemetry batching (the PR-9 scale-out headroom): each worker
  // reads its own residents' monotone counters right after the window
  // advance and accumulates the deltas into its shard-private batch. Only
  // the serial commit touches the shared window series, so thousands of
  // tenants add zero lock contention on any registry. `last_counters[i]` is
  // only ever touched by tenant i's home-shard worker.
  std::vector<World::Counters> last_counters(tenant_count);
  std::vector<FleetWindowSample> window_series;
  const auto advance = [&](std::size_t shard, SimTime t) {
    ProfileScope scope(shards[shard].profiler.get(),
                       ProfileCategory::kShardRun);
    shards[shard].sim->run(t);
    FleetWindowSample& batch = shards[shard].batch;
    for (std::size_t i = shard; i < tenant_count; i += shard_count) {
      const World::Counters now = worlds[i]->counters();
      World::Counters& last = last_counters[i];
      batch.generated += now.generated - last.generated;
      batch.accepted += now.accepted - last.accepted;
      batch.rejected += now.rejected - last.rejected;
      batch.completed += now.completed - last.completed;
      batch.qos_violations += now.qos_violations - last.qos_violations;
      batch.cache_hits += now.cache_hits - last.cache_hits;
      batch.cache_misses += now.cache_misses - last.cache_misses;
      last = now;
    }
  };
  const auto commit = [&](SimTime t) {
    // Serial barrier section: every worker is parked (their barrier-enter
    // scopes happened-before this through the barrier mutex), so reading
    // desires, writing grants, and draining worker batches/profilers is
    // race-free.
    ProfileScope scope(options.profiler, ProfileCategory::kArbiter);
    arbitrate_now();
    FleetWindowSample row;
    row.t = t;
    for (Shard& shard : shards) {
      row.generated += shard.batch.generated;
      row.accepted += shard.batch.accepted;
      row.rejected += shard.batch.rejected;
      row.completed += shard.batch.completed;
      row.qos_violations += shard.batch.qos_violations;
      row.cache_hits += shard.batch.cache_hits;
      row.cache_misses += shard.batch.cache_misses;
      shard.batch = FleetWindowSample{};
    }
    window_series.push_back(row);
    if (options.profiler != nullptr) {
      for (Shard& shard : shards) {
        shard.profiler->drain_into(*options.profiler);
      }
    }
  };
  ShardExecutorHooks hooks;
  if (options.profiler != nullptr && shard_count > 1) {
    hooks.barrier_enter = [&](std::size_t shard) {
      shards[shard].profiler->begin(ProfileCategory::kShardBarrier);
    };
    hooks.barrier_leave = [&](std::size_t shard) {
      shards[shard].profiler->end(ProfileCategory::kShardBarrier);
    };
  }

  MultiTenantResult result;
  result.windows = run_sharded_windows(shard_count, config.window,
                                       config.horizon, advance, commit, hooks);
  // The executor never commits at the horizon itself, so the final
  // window's shard batches are still pending; workers have joined, making
  // this tail drain race-free. The series therefore has windows + 1 rows.
  if (config.horizon > 0.0) {
    FleetWindowSample tail;
    tail.t = config.horizon;
    for (Shard& shard : shards) {
      tail.generated += shard.batch.generated;
      tail.accepted += shard.batch.accepted;
      tail.rejected += shard.batch.rejected;
      tail.completed += shard.batch.completed;
      tail.qos_violations += shard.batch.qos_violations;
      tail.cache_hits += shard.batch.cache_hits;
      tail.cache_misses += shard.batch.cache_misses;
      shard.batch = FleetWindowSample{};
    }
    window_series.push_back(tail);
  }
  result.window_series = std::move(window_series);
  result.shards = shard_count;
  result.capacity = arbiter.capacity();
  result.grant_clips = arbiter.clips();
  result.instances_denied = arbiter.denied();
  result.peak_granted = arbiter.peak_granted();

  // Workers have joined: drain the tail (including the final windows' wait
  // scopes) into the run profiler.
  if (options.profiler != nullptr) {
    for (Shard& shard : shards) {
      shard.profiler->drain_into(*options.profiler);
    }
  }

  result.tenants.reserve(tenant_count);
  for (std::size_t i = 0; i < tenant_count; ++i) {
    TenantResult tenant;
    tenant.id = i;
    tenant.kind = specs[i].scenario.workload;
    RunOutput output = worlds[i]->finish();
    tenant.metrics = std::move(output.metrics);
    tenant.telemetry = std::move(output.telemetry);
    result.tenants.push_back(std::move(tenant));
  }
  for (const Shard& shard : shards) {
    result.simulated_events += shard.sim->executed_events();
  }
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  // Cross-tenant rollup (see MultiTenantResult for the conventions).
  RunMetrics& agg = result.aggregate;
  agg.policy = "multi-tenant(" + std::to_string(tenant_count) + ")";
  agg.seed = config.seed;
  double response_sum = 0.0;
  double response_weight = 0.0;
  double availability_sum = 0.0;
  for (const TenantResult& tenant : result.tenants) {
    const RunMetrics& m = tenant.metrics;
    agg.generated += m.generated;
    agg.accepted += m.accepted;
    agg.rejected += m.rejected;
    agg.completed += m.completed;
    agg.qos_violations += m.qos_violations;
    response_sum += m.avg_response_time * static_cast<double>(m.completed);
    response_weight += static_cast<double>(m.completed);
    agg.min_instances += m.min_instances;
    agg.max_instances += m.max_instances;
    agg.avg_instances += m.avg_instances;
    agg.vm_hours += m.vm_hours;
    agg.busy_vm_hours += m.busy_vm_hours;
    agg.instance_failures += m.instance_failures;
    agg.lost_requests += m.lost_requests;
    availability_sum += m.availability;
    agg.final_instances += m.final_instances;
    agg.capacity_clips += m.capacity_clips;
    agg.capacity_denied += m.capacity_denied;
    agg.billed_cost += m.billed_cost;
    agg.on_demand_cost += m.on_demand_cost;
    agg.spot_cost += m.spot_cost;
    agg.reserved_cost += m.reserved_cost;
    agg.on_demand_purchases += m.on_demand_purchases;
    agg.spot_purchases += m.spot_purchases;
    agg.reserved_purchases += m.reserved_purchases;
    agg.spot_revocations += m.spot_revocations;
    agg.revocation_kills += m.revocation_kills;
    agg.lost_to_revocations += m.lost_to_revocations;
    agg.spans_traced += m.spans_traced;
    agg.cache_hits += m.cache_hits;
    agg.cache_misses += m.cache_misses;
    agg.cache_fills += m.cache_fills;
    agg.cache_vm_hours += m.cache_vm_hours;
  }
  if (agg.cache_hits + agg.cache_misses > 0) {
    agg.cache_hit_ratio =
        static_cast<double>(agg.cache_hits) /
        static_cast<double>(agg.cache_hits + agg.cache_misses);
  }
  if (response_weight > 0.0) {
    agg.avg_response_time = response_sum / response_weight;
  }
  agg.utilization =
      agg.vm_hours > 0.0 ? agg.busy_vm_hours / agg.vm_hours : 0.0;
  agg.rejection_rate =
      agg.generated > 0
          ? static_cast<double>(agg.rejected) / static_cast<double>(agg.generated)
          : 0.0;
  agg.availability = availability_sum / static_cast<double>(tenant_count);
  if (config.market_enabled && !result.tenants.empty()) {
    // Every tenant prices against the one shared trajectory, so any
    // tenant's price statistics are the market's.
    agg.spot_price_mean = result.tenants.front().metrics.spot_price_mean;
    agg.spot_price_max = result.tenants.front().metrics.spot_price_max;
  }
  agg.simulated_events = result.simulated_events;
  agg.wall_seconds = result.wall_seconds;
  return result;
}

void write_tenant_csv(std::ostream& out, const MultiTenantResult& result) {
  out << "tenant,kind,seed,generated,accepted,rejected,completed,"
         "qos_violations,avg_response_time,p95_response_time,"
         "p99_response_time,avg_instances,max_instances,final_instances,"
         "vm_hours,utilization,rejection_rate,capacity_clips,"
         "capacity_denied,billed_cost,spans_traced\n";
  const auto precision = out.precision(17);
  for (const TenantResult& tenant : result.tenants) {
    const RunMetrics& m = tenant.metrics;
    out << tenant.id << ',' << to_string(tenant.kind) << ',' << m.seed << ','
        << m.generated << ',' << m.accepted << ',' << m.rejected << ','
        << m.completed << ',' << m.qos_violations << ','
        << m.avg_response_time << ',' << m.p95_response_time << ','
        << m.p99_response_time << ',' << m.avg_instances << ','
        << m.max_instances << ',' << m.final_instances << ',' << m.vm_hours
        << ',' << m.utilization << ',' << m.rejection_rate << ','
        << m.capacity_clips << ',' << m.capacity_denied << ','
        << m.billed_cost << ',' << m.spans_traced << '\n';
  }
  out.precision(precision);
}

}  // namespace cloudprov
