// Multi-tenant scale-out: N independent SaaS applications on one shared
// infrastructure, executed across per-shard event kernels.
//
// The paper provisions a single application; realistic cloud evaluation
// needs many tenants contending for the same capacity. This module grows
// the experiment layer in two directions at once:
//
//  - Scenario: `multi_tenant_specs` derives N fully resolved per-tenant
//    scenarios from one master seed — workload kind (web vs BoT mix),
//    arrival scale, jittered QoS target, and the tenant's own World seed
//    (which in turn derives its workload/fault/market/... streams). All of
//    it is a pure function of MultiTenantConfig, so the tenant population
//    is reproducible and independent of how the run is sharded.
//  - Execution: tenants are partitioned round-robin across shards; each
//    shard runs every resident tenant's World on ONE borrowed Simulation
//    kernel (worlds share the shard's clock and event queue but own
//    disjoint component state). Shards advance in lockstep windows under
//    sim/shard_executor; at every window boundary the serial commit section
//    runs the CapacityArbiter, which reconciles tenant desires against the
//    shared instance capacity in ascending tenant-id order.
//
// Determinism: within a shard, tenant event streams interleave on the
// kernel's (time, push-seq) order — restricted to any one tenant that
// order is identical whether the tenant shares the kernel with 0 or 100
// neighbours, and tenants never touch each other's state between barriers.
// Cross-tenant interaction exists only inside the serial commit, which
// walks tenants in id order against identical desires no matter how many
// worker threads produced them. Hence per-tenant results are bit-identical
// for every shard count — enforced by tests/multi_tenant_test.cc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "experiment/metrics.h"
#include "experiment/scenario.h"
#include "telemetry/telemetry.h"

namespace cloudprov {

class WallProfiler;

struct MultiTenantConfig {
  /// Tenant population size.
  std::size_t tenants = 64;
  /// Master seed: tenant seeds, spec jitter, and the shared spot-price
  /// path are all derived from it.
  std::uint64_t seed = 42;
  SimTime horizon = 7200.0;
  /// Barrier cadence: shards sync and the arbiter reconciles grants every
  /// `window` sim seconds (the paper's 60 s analysis window by default).
  SimTime window = 60.0;

  /// Fraction of tenants running the BoT/scientific scenario instead of
  /// the web scenario (deterministic per-tenant draw).
  double bot_fraction = 0.25;
  /// Fraction of tenants running the Zipf key-value scenario; drawn from
  /// the SAME per-tenant uniform as bot_fraction (bot first, then zipf),
  /// so a zero fraction is bit-identical to the pre-apptier population.
  /// bot_fraction + zipf_fraction must be <= 1.
  double zipf_fraction = 0.0;
  /// Run every Zipf tenant with the cache tier in front of its backend
  /// (src/apptier); the backend pool stays the arbitrated one.
  bool zipf_tiers = false;
  /// Mean per-tenant arrival-rate scale (web_scenario/scientific_scenario
  /// scale factor); tenant i draws uniformly from
  /// tenant_scale * [1 - scale_spread, 1 + scale_spread].
  double tenant_scale = 0.002;
  double scale_spread = 0.5;
  /// Per-tenant Ts jitter: multiplied by U(1, 1 + qos_spread).
  double qos_spread = 0.10;

  /// Shared instance slots arbitrated across all tenants per window;
  /// 0 resolves to 4 * tenants.
  std::size_t capacity = 0;
  /// Static per-tenant ceiling (anti-hog); 0 disables.
  std::size_t per_tenant_cap = 0;

  /// Shared IaaS spot market: every tenant prices against one common spot
  /// trajectory (MarketConfig::price_seed_override derived from `seed`).
  bool market_enabled = false;
  double spot_fraction = 0.0;
  double bid = 0.0;

  std::size_t resolved_capacity() const {
    return capacity != 0 ? capacity : 4 * tenants;
  }
};

/// One fully resolved tenant: its World seed and scenario. Pure function of
/// (MultiTenantConfig, tenant id) — never of shard assignment.
struct TenantSpec {
  std::size_t id = 0;
  std::uint64_t seed = 0;
  ScenarioConfig scenario;
};

/// Derives the full tenant population (ascending id). Exposed separately so
/// tests can assert spec determinism and CLI layers can print the mix.
std::vector<TenantSpec> multi_tenant_specs(const MultiTenantConfig& config);

/// Deterministic shared-capacity arbiter. Grants never exceed the shared
/// capacity (nor the per-tenant cap); contraction is immediate (a tenant
/// wanting less releases slots this round), expansion is served in
/// ascending tenant-id order while free slots remain. Pure state machine —
/// no clocks, no RNG — so its outcome depends only on the desire vector.
class CapacityArbiter {
 public:
  CapacityArbiter(std::size_t capacity, std::size_t per_tenant_cap,
                  std::size_t tenants);

  /// One arbitration round; `desires[i]` is tenant i's requested pool size.
  /// Returns the new grant vector (also retained in grants()).
  const std::vector<std::size_t>& arbitrate(
      const std::vector<std::size_t>& desires);

  const std::vector<std::size_t>& grants() const { return grants_; }
  std::size_t capacity() const { return capacity_; }
  /// Tenant-rounds whose grant came out below their desire.
  std::uint64_t clips() const { return clips_; }
  /// Instance-rounds desired but not granted (summed shortfall).
  std::uint64_t denied() const { return denied_; }
  /// Largest total granted in any round so far.
  std::size_t peak_granted() const { return peak_granted_; }

 private:
  std::size_t capacity_;
  std::size_t per_tenant_cap_;
  std::vector<std::size_t> grants_;
  std::uint64_t clips_ = 0;
  std::uint64_t denied_ = 0;
  std::size_t peak_granted_ = 0;
};

struct TenantResult {
  std::size_t id = 0;
  WorkloadKind kind = WorkloadKind::kWeb;
  RunMetrics metrics;
  /// Span-traced tenants keep their telemetry collector (null otherwise);
  /// the golden test hashes its span CSV across shard counts.
  std::unique_ptr<Telemetry> telemetry;
};

/// One fleet-level telemetry row per barrier window: the sum of every
/// tenant's counter deltas over that window. Accumulated shard-locally by
/// each worker after its window advance and drained into the series inside
/// the serial barrier commit — tenants never serialize on a shared registry
/// mid-window, so the pattern holds at thousands of tenants.
struct FleetWindowSample {
  SimTime t = 0.0;  ///< window-end barrier time
  std::uint64_t generated = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t qos_violations = 0;
  std::uint64_t cache_hits = 0;    ///< tiered (Zipf) tenants only
  std::uint64_t cache_misses = 0;  ///< tiered (Zipf) tenants only
};

struct MultiTenantResult {
  std::vector<TenantResult> tenants;  ///< ascending tenant id
  std::size_t shards = 1;
  std::uint64_t windows = 0;  ///< barrier commits executed
  std::size_t capacity = 0;   ///< resolved shared capacity

  /// Per-window fleet rollup (one row per barrier commit); identical for
  /// every shard count like everything else in the result.
  std::vector<FleetWindowSample> window_series;

  // Arbiter contention (from CapacityArbiter, cumulative over all rounds).
  std::uint64_t grant_clips = 0;
  std::uint64_t instances_denied = 0;
  std::size_t peak_granted = 0;

  /// Sum over shard kernels (each kernel executes its residents' events).
  std::uint64_t simulated_events = 0;
  double wall_seconds = 0.0;

  /// Cross-tenant rollup: counters/costs/VM-hours are sums, response time
  /// is the completion-weighted mean, instance stats are sums of per-tenant
  /// stats (not time-aligned), percentiles are left 0 (not aggregatable).
  RunMetrics aggregate;
};

struct MultiTenantOptions {
  /// Worker shards; clamped to [1, tenants]. Results are bit-identical for
  /// every value (see file header).
  std::size_t shards = 1;
  /// Tenants [0, traced_tenants) get span tracing at span_sample_rate and
  /// keep their Telemetry in the result.
  std::size_t traced_tenants = 0;
  double span_sample_rate = 1.0;
  /// Run-level profiler (output-only; may be null). Each shard worker gets
  /// a private WallProfiler that is drained into this one inside the serial
  /// barrier section — the per-worker-registry pattern, so --profile works
  /// sharded instead of being silently sequential-only.
  WallProfiler* profiler = nullptr;
};

/// Builds, starts, and runs the full tenant population to the horizon under
/// sharded window execution, then finishes every tenant in id order.
MultiTenantResult run_multi_tenant(const MultiTenantConfig& config,
                                   const MultiTenantOptions& options = {});

/// Long-form per-tenant CSV (one row per tenant, headline metrics +
/// contention counters).
void write_tenant_csv(std::ostream& out, const MultiTenantResult& result);

}  // namespace cloudprov
