// Experiment runner: wires a scenario + policy into a full simulation,
// executes it, and extracts the paper's output metrics.
//
// Each replication derives every random stream (workload, broker, placement)
// from a single base seed via splitmix64 splitting, so a (scenario, policy,
// seed) triple is fully reproducible and policies can be compared on
// identically-seeded workloads.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "experiment/metrics.h"
#include "experiment/scenario.h"
#include "experiment/world.h"
#include "stats/timeseries.h"
#include "telemetry/telemetry.h"

namespace cloudprov {
// RunOutput lives in experiment/world.h; run_scenario is a thin wrapper over
// World (construct, start, run to horizon, finish).

/// Runs one replication. `seed` selects the replication's random streams.
/// Passing `telemetry` options instruments the whole pipeline (engine,
/// data center, VMs, provisioner, adaptive policy) and returns the
/// collector in RunOutput::telemetry. Passing a `profiler` (borrowed)
/// attributes the run's wall time; like telemetry it is output-only and
/// leaves all metrics bit-identical.
RunOutput run_scenario(const ScenarioConfig& config, const PolicySpec& policy,
                       std::uint64_t seed,
                       const std::optional<TelemetryOptions>& telemetry =
                           std::nullopt,
                       WallProfiler* profiler = nullptr);

/// Seeds used by run_replications for `replications` runs from `base_seed`
/// (splitmix64 sequence): lets callers re-run any single replication —
/// e.g. replication 0 with telemetry attached — outside the batch.
std::vector<std::uint64_t> replication_seeds(std::size_t replications,
                                             std::uint64_t base_seed);

/// Runs `replications` independent seeds and returns the per-run metrics in
/// seed order. `progress` (optional) is invoked after each completed run
/// (serialized). `parallelism` = 0 uses one worker per hardware thread;
/// results are identical for any parallelism level because every
/// replication's seed is fixed up front and no state is shared between runs.
std::vector<RunMetrics> run_replications(
    const ScenarioConfig& config, const PolicySpec& policy,
    std::size_t replications, std::uint64_t base_seed = 42,
    const std::function<void(const RunMetrics&)>& progress = {},
    std::size_t parallelism = 1);

/// Samples a workload's realized arrival-rate curve (no serving system):
/// used by the Figure 3 / Figure 4 reproductions. Returns one point per
/// `window` seconds averaged over `replications` seeds.
std::vector<SampledSeries::Point> workload_rate_curve(
    const ScenarioConfig& config, SimTime window, std::size_t replications,
    std::uint64_t base_seed = 42);

}  // namespace cloudprov
