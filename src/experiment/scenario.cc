#include "experiment/scenario.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudprov {

std::string to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kWeb: return "web";
    case WorkloadKind::kScientific: return "scientific";
    case WorkloadKind::kZipf: return "zipf";
  }
  return "?";
}

std::string to_string(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kProfile: return "profile";
    case PredictorKind::kOracle: return "oracle";
    case PredictorKind::kEwma: return "ewma";
    case PredictorKind::kMovingAverage: return "moving-average";
    case PredictorKind::kAr: return "ar";
    case PredictorKind::kQrsm: return "qrsm";
  }
  return "?";
}

PolicySpec PolicySpec::adaptive(PredictorKind predictor) {
  PolicySpec spec;
  spec.kind = Kind::kAdaptive;
  spec.predictor = predictor;
  return spec;
}

PolicySpec PolicySpec::fixed(std::size_t instances) {
  ensure_arg(instances >= 1, "PolicySpec::fixed: need at least one instance");
  PolicySpec spec;
  spec.kind = Kind::kStatic;
  spec.static_instances = instances;
  return spec;
}

PolicySpec PolicySpec::lookahead_spec(std::size_t candidates,
                                      std::size_t horizon_windows,
                                      PredictorKind predictor,
                                      std::vector<double> bid_levels) {
  ensure_arg(horizon_windows >= 1,
             "PolicySpec::lookahead_spec: need a >= 1 window horizon");
  PolicySpec spec;
  spec.kind = Kind::kLookahead;
  spec.predictor = predictor;
  spec.lookahead.candidates = candidates;
  spec.lookahead.horizon_windows = horizon_windows;
  spec.lookahead.bid_levels = std::move(bid_levels);
  return spec;
}

std::string PolicySpec::label(double scale) const {
  if (kind == Kind::kStatic) {
    const auto scaled = static_cast<std::size_t>(std::max(
        1.0, std::round(static_cast<double>(static_instances) * scale)));
    return "Static-" + std::to_string(scaled);
  }
  if (kind == Kind::kLookahead) {
    std::string label = "Lookahead-" + std::to_string(lookahead.candidates) +
                        "x" + std::to_string(lookahead.horizon_windows);
    if (predictor != PredictorKind::kProfile) {
      label += "(" + to_string(predictor) + ")";
    }
    return label;
  }
  if (predictor == PredictorKind::kProfile) return "Adaptive";
  return "Adaptive(" + to_string(predictor) + ")";
}

std::size_t ScenarioConfig::scaled_instances(std::size_t paper_scale_count) const {
  return static_cast<std::size_t>(std::max(
      1.0, std::round(static_cast<double>(paper_scale_count) * scale)));
}

ScenarioConfig web_scenario(double scale) {
  ensure_arg(scale > 0.0, "web_scenario: scale must be > 0");
  ScenarioConfig config;
  config.workload = WorkloadKind::kWeb;
  config.scale = scale;

  config.web.scale = scale;
  config.horizon = config.web.horizon;  // one week

  // Section V-B1: max response 250 ms, zero rejection target, 80% floor.
  config.qos.max_response_time = 0.250;
  config.qos.max_rejection_rate = 0.0;
  config.qos.min_utilization = 0.80;

  // Mean of 100 ms * U(1, 1.1).
  config.initial_service_time_estimate =
      config.web.service_base * (1.0 + 0.5 * config.web.service_spread);

  // 1000 hosts, 2x quad-core, 16 GB (Section V-A); 1-core/2-GB VMs.
  config.datacenter.host_count = 1000;

  config.modeler.max_vms = 8000;  // full data-center core capacity
  config.modeler.min_vms = 1;
  config.modeler.rejection_tolerance = 0.28;  // rho* ~ 0.85 for k = 2

  config.analyzer.analysis_interval = 60.0;  // the workload's rate interval
  config.analyzer.lead_time = 60.0;
  return config;
}

ScenarioConfig scientific_scenario(double scale) {
  ensure_arg(scale > 0.0, "scientific_scenario: scale must be > 0");
  ScenarioConfig config;
  config.workload = WorkloadKind::kScientific;
  config.scale = scale;

  config.bot.scale = scale;
  config.horizon = config.bot.horizon;  // one day

  // Section V-B2: max response 700 s, zero rejection target, 80% floor.
  config.qos.max_response_time = 700.0;
  config.qos.max_rejection_rate = 0.0;
  config.qos.min_utilization = 0.80;

  // Mean of 300 s * U(1, 1.1).
  config.initial_service_time_estimate =
      config.bot.service_base * (1.0 + 0.5 * config.bot.service_spread);

  config.datacenter.host_count = 1000;

  config.modeler.max_vms = 8000;
  config.modeler.min_vms = 1;
  config.modeler.rejection_tolerance = 0.28;

  // Long-running requests: a 5-minute analysis cadence is still ~1/60th of
  // a service time; lead time of one cadence.
  config.analyzer.analysis_interval = 60.0;
  config.analyzer.lead_time = 60.0;
  return config;
}

ScenarioConfig zipf_scenario(double scale) {
  ensure_arg(scale > 0.0, "zipf_scenario: scale must be > 0");
  ScenarioConfig config;
  config.workload = WorkloadKind::kZipf;
  config.scale = scale;

  config.zipf.scale = scale;
  config.horizon = config.zipf.horizon;  // one day

  // Interactive key-value traffic: the web scenario's QoS envelope.
  config.qos.max_response_time = 0.250;
  config.qos.max_rejection_rate = 0.0;
  config.qos.min_utilization = 0.80;

  // Mean of 100 ms * U(1, 1.1) — a backend (miss-path) service time.
  config.initial_service_time_estimate =
      config.zipf.service_base * (1.0 + 0.5 * config.zipf.service_spread);

  config.datacenter.host_count = 1000;

  config.modeler.max_vms = 8000;
  config.modeler.min_vms = 1;
  config.modeler.rejection_tolerance = 0.28;

  config.analyzer.analysis_interval = 60.0;  // the workload's rate interval
  config.analyzer.lead_time = 60.0;
  return config;
}

std::vector<std::size_t> paper_static_sizes(WorkloadKind kind) {
  if (kind == WorkloadKind::kWeb) return {50, 75, 100, 125, 150};
  return {15, 30, 45, 60, 75};
}

}  // namespace cloudprov
