#include "experiment/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"
#include "util/csv.h"

namespace cloudprov {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  ensure_arg(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  ensure_arg(row.size() == header_.size(), "TextTable: row width mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string fmt_ci(const ConfidenceInterval& ci, int precision) {
  return fmt(ci.mean, precision) + " +- " + fmt(ci.half_width, precision);
}

void print_policy_table(std::ostream& out,
                        const std::vector<AggregateMetrics>& results) {
  TextTable table({"policy", "min_inst", "max_inst", "rejection", "utilization",
                   "vm_hours", "avg_resp_s", "std_resp_s", "violations"});
  for (const AggregateMetrics& r : results) {
    table.add_row({r.policy, fmt(r.min_instances.mean, 1),
                   fmt(r.max_instances.mean, 1), fmt(r.rejection_rate.mean, 4),
                   fmt(r.utilization.mean, 3), fmt(r.vm_hours.mean, 1),
                   fmt(r.avg_response_time.mean, 4),
                   fmt(r.std_response_time.mean, 4),
                   fmt(r.qos_violations.mean, 1)});
  }
  table.print(out);
}

void write_policy_csv(std::ostream& out,
                      const std::vector<AggregateMetrics>& results) {
  CsvWriter csv(out);
  csv.write_header({"policy", "replications", "min_instances", "max_instances",
                    "rejection_rate", "rejection_ci", "utilization",
                    "utilization_ci", "vm_hours", "vm_hours_ci",
                    "avg_response_time", "avg_response_time_ci",
                    "std_response_time", "qos_violations"});
  for (const AggregateMetrics& r : results) {
    csv.write_row({r.policy, CsvWriter::format(static_cast<std::int64_t>(r.replications)),
                   CsvWriter::format(r.min_instances.mean),
                   CsvWriter::format(r.max_instances.mean),
                   CsvWriter::format(r.rejection_rate.mean),
                   CsvWriter::format(r.rejection_rate.half_width),
                   CsvWriter::format(r.utilization.mean),
                   CsvWriter::format(r.utilization.half_width),
                   CsvWriter::format(r.vm_hours.mean),
                   CsvWriter::format(r.vm_hours.half_width),
                   CsvWriter::format(r.avg_response_time.mean),
                   CsvWriter::format(r.avg_response_time.half_width),
                   CsvWriter::format(r.std_response_time.mean),
                   CsvWriter::format(r.qos_violations.mean)});
  }
}

namespace {

std::string fmt_u64(std::uint64_t value) {
  return std::to_string(value);
}

}  // namespace

void print_fault_table(std::ostream& out, const std::vector<RunMetrics>& runs) {
  TextTable table({"policy", "fails", "vm", "host", "boot", "timeout", "lost",
                   "avail", "mttr_s", "heals", "retries", "aborts",
                   "final_m", "rejection"});
  for (const RunMetrics& r : runs) {
    table.add_row({r.policy, fmt_u64(r.instance_failures), fmt_u64(r.vm_crashes),
                   fmt_u64(r.host_crashes), fmt_u64(r.boot_failures),
                   fmt_u64(r.boot_timeouts), fmt_u64(r.lost_requests),
                   fmt(r.availability, 4), fmt(r.mttr_mean, 1),
                   fmt_u64(r.reconciler_heals), fmt_u64(r.reconciler_retries),
                   fmt_u64(r.reconciler_aborts), fmt_u64(r.final_instances),
                   fmt(r.rejection_rate, 4)});
  }
  table.print(out);
}

void write_fault_csv(std::ostream& out, const std::vector<RunMetrics>& runs) {
  CsvWriter csv(out);
  csv.write_header({"policy", "seed", "instance_failures", "vm_crashes",
                    "host_crashes", "boot_failures", "boot_timeouts",
                    "lost_requests", "lost_to_vm_crashes",
                    "lost_to_host_crashes", "availability", "recoveries",
                    "mttr_mean", "mttr_max", "reconciler_heals",
                    "reconciler_retries", "reconciler_aborts",
                    "final_instances", "rejection_rate"});
  for (const RunMetrics& r : runs) {
    csv.write_row({r.policy, fmt_u64(r.seed), fmt_u64(r.instance_failures),
                   fmt_u64(r.vm_crashes), fmt_u64(r.host_crashes),
                   fmt_u64(r.boot_failures), fmt_u64(r.boot_timeouts),
                   fmt_u64(r.lost_requests), fmt_u64(r.lost_to_vm_crashes),
                   fmt_u64(r.lost_to_host_crashes),
                   CsvWriter::format(r.availability), fmt_u64(r.recoveries),
                   CsvWriter::format(r.mttr_mean), CsvWriter::format(r.mttr_max),
                   fmt_u64(r.reconciler_heals), fmt_u64(r.reconciler_retries),
                   fmt_u64(r.reconciler_aborts), fmt_u64(r.final_instances),
                   CsvWriter::format(r.rejection_rate)});
  }
}

void print_market_table(std::ostream& out, const std::vector<RunMetrics>& runs) {
  TextTable table({"policy", "cost", "od_cost", "spot_cost", "rsv_cost",
                   "buys_od", "buys_spot", "revoked", "kills", "lost",
                   "price_avg", "price_max", "qos_viol", "rejection"});
  for (const RunMetrics& r : runs) {
    table.add_row({r.policy, fmt(r.billed_cost, 2), fmt(r.on_demand_cost, 2),
                   fmt(r.spot_cost, 2), fmt(r.reserved_cost, 2),
                   fmt_u64(r.on_demand_purchases), fmt_u64(r.spot_purchases),
                   fmt_u64(r.spot_revocations), fmt_u64(r.revocation_kills),
                   fmt_u64(r.lost_to_revocations), fmt(r.spot_price_mean, 3),
                   fmt(r.spot_price_max, 3), fmt_u64(r.qos_violations),
                   fmt(r.rejection_rate, 4)});
  }
  table.print(out);
}

void write_market_metrics_csv(std::ostream& out,
                              const std::vector<RunMetrics>& runs) {
  CsvWriter csv(out);
  csv.write_header({"policy", "seed", "billed_cost", "on_demand_cost",
                    "spot_cost", "reserved_cost", "on_demand_purchases",
                    "spot_purchases", "reserved_purchases", "spot_revocations",
                    "revocation_kills", "lost_to_revocations",
                    "spot_price_mean", "spot_price_max", "qos_violations",
                    "rejection_rate", "avg_response_time"});
  for (const RunMetrics& r : runs) {
    csv.write_row({r.policy, fmt_u64(r.seed), CsvWriter::format(r.billed_cost),
                   CsvWriter::format(r.on_demand_cost),
                   CsvWriter::format(r.spot_cost),
                   CsvWriter::format(r.reserved_cost),
                   fmt_u64(r.on_demand_purchases), fmt_u64(r.spot_purchases),
                   fmt_u64(r.reserved_purchases), fmt_u64(r.spot_revocations),
                   fmt_u64(r.revocation_kills), fmt_u64(r.lost_to_revocations),
                   CsvWriter::format(r.spot_price_mean),
                   CsvWriter::format(r.spot_price_max),
                   fmt_u64(r.qos_violations),
                   CsvWriter::format(r.rejection_rate),
                   CsvWriter::format(r.avg_response_time)});
  }
}

void print_claim(std::ostream& out, const std::string& claim, double paper_value,
                 double measured_value, int precision) {
  out << "  [claim] " << claim << ": paper=" << fmt(paper_value, precision)
      << " measured=" << fmt(measured_value, precision) << '\n';
}

void print_resilience_table(std::ostream& out,
                            const std::vector<RunMetrics>& runs) {
  TextTable table({"policy", "requests", "ok", "failed", "attempts", "retries",
                   "budget_deny", "timeouts", "wasted", "br_open", "br_close",
                   "fast_fail", "shed_ddl", "shed_brown"});
  for (const RunMetrics& r : runs) {
    table.add_row({r.policy, fmt_u64(r.client_requests),
                   fmt_u64(r.client_succeeded), fmt_u64(r.client_failed),
                   fmt_u64(r.client_attempts), fmt_u64(r.client_retries),
                   fmt_u64(r.retry_budget_denied), fmt_u64(r.client_timeouts),
                   fmt_u64(r.wasted_completions), fmt_u64(r.breaker_opens),
                   fmt_u64(r.breaker_closes), fmt_u64(r.breaker_fast_fails),
                   fmt_u64(r.shed_deadline), fmt_u64(r.shed_brownout)});
  }
  table.print(out);
}

void write_resilience_csv(std::ostream& out,
                          const std::vector<RunMetrics>& runs) {
  CsvWriter csv(out);
  csv.write_header({"policy", "seed", "client_requests", "client_succeeded",
                    "client_failed", "client_attempts", "client_retries",
                    "retry_budget_denied", "client_timeouts",
                    "wasted_completions", "breaker_opens", "breaker_half_opens",
                    "breaker_closes", "breaker_fast_fails", "shed_deadline",
                    "shed_brownout"});
  for (const RunMetrics& r : runs) {
    csv.write_row({r.policy, fmt_u64(r.seed), fmt_u64(r.client_requests),
                   fmt_u64(r.client_succeeded), fmt_u64(r.client_failed),
                   fmt_u64(r.client_attempts), fmt_u64(r.client_retries),
                   fmt_u64(r.retry_budget_denied), fmt_u64(r.client_timeouts),
                   fmt_u64(r.wasted_completions), fmt_u64(r.breaker_opens),
                   fmt_u64(r.breaker_half_opens), fmt_u64(r.breaker_closes),
                   fmt_u64(r.breaker_fast_fails), fmt_u64(r.shed_deadline),
                   fmt_u64(r.shed_brownout)});
  }
}

void print_apptier_table(std::ostream& out,
                         const std::vector<RunMetrics>& runs) {
  TextTable table({"policy", "hits", "misses", "hit_ratio", "fills", "evict",
                   "expire", "invalid", "flush", "lambda_miss", "cache_vmh",
                   "cache_util"});
  for (const RunMetrics& r : runs) {
    table.add_row({r.policy, fmt_u64(r.cache_hits), fmt_u64(r.cache_misses),
                   fmt(r.cache_hit_ratio, 3), fmt_u64(r.cache_fills),
                   fmt_u64(r.cache_evictions), fmt_u64(r.cache_expirations),
                   fmt_u64(r.cache_invalidations), fmt_u64(r.cache_flushes),
                   fmt(r.lambda_miss_mean, 2), fmt(r.cache_vm_hours, 1),
                   fmt(r.cache_utilization, 3)});
  }
  table.print(out);
}

void write_apptier_csv(std::ostream& out, const std::vector<RunMetrics>& runs) {
  CsvWriter csv(out);
  csv.write_header({"policy", "seed", "cache_hits", "cache_misses",
                    "cache_hit_ratio", "cache_fills", "cache_evictions",
                    "cache_expirations", "cache_invalidations", "cache_flushes",
                    "lambda_miss_mean", "cache_vm_hours", "cache_utilization",
                    "cache_avg_instances", "cache_final_instances"});
  for (const RunMetrics& r : runs) {
    csv.write_row({r.policy, fmt_u64(r.seed), fmt_u64(r.cache_hits),
                   fmt_u64(r.cache_misses),
                   CsvWriter::format(r.cache_hit_ratio),
                   fmt_u64(r.cache_fills), fmt_u64(r.cache_evictions),
                   fmt_u64(r.cache_expirations),
                   fmt_u64(r.cache_invalidations), fmt_u64(r.cache_flushes),
                   CsvWriter::format(r.lambda_miss_mean),
                   CsvWriter::format(r.cache_vm_hours),
                   CsvWriter::format(r.cache_utilization),
                   CsvWriter::format(r.cache_avg_instances),
                   fmt_u64(r.cache_final_instances)});
  }
}

void print_observability_summary(std::ostream& out, const RunMetrics& run) {
  const bool any = run.slo_response_alerts > 0 || run.slo_rejection_alerts > 0 ||
                   run.slo_worst_burn_rate > 0.0 || run.drift_windows > 0 ||
                   run.spans_traced > 0;
  if (!any) return;
  out << "observability:\n"
      << "  SLO alerts: " << run.slo_response_alerts << " response, "
      << run.slo_rejection_alerts << " rejection (worst burn "
      << fmt(run.slo_worst_burn_rate, 2) << "x budget)\n";
  if (run.drift_windows > 0) {
    out << "  model drift: " << run.drift_windows
        << " windows, response MAPE " << fmt(run.drift_response_mape, 1)
        << "%, bias " << fmt(run.drift_response_bias, 4) << " s\n";
  }
  if (run.spans_traced > 0) {
    out << "  spans: " << run.spans_traced << " requests traced\n";
  }
}

}  // namespace cloudprov
