// Pricing moved to the market subsystem (market/pricing.h) when the IaaS
// market layer landed; this forwarder keeps existing includes working.
#pragma once

#include "market/pricing.h"  // IWYU pragma: export
