#include "experiment/runner.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <memory>

#include "experiment/world.h"
#include "util/check.h"
#include "util/log.h"

namespace cloudprov {
namespace {

// Scoped sim-time log prefix: while a telemetry-instrumented replication
// runs, CLOUDPROV_LOG lines carry [t=...] so they correlate with trace
// events. Never installed for batch/parallel runs (the provider is global).
class ScopedLogTime {
 public:
  explicit ScopedLogTime(const Simulation& sim) {
    Logger::instance().set_time_provider([&sim] { return sim.now(); });
  }
  ~ScopedLogTime() { Logger::instance().set_time_provider(nullptr); }
  ScopedLogTime(const ScopedLogTime&) = delete;
  ScopedLogTime& operator=(const ScopedLogTime&) = delete;
};

}  // namespace

RunOutput run_scenario(const ScenarioConfig& config, const PolicySpec& policy,
                       std::uint64_t seed,
                       const std::optional<TelemetryOptions>& telemetry_opts,
                       WallProfiler* profiler) {
  World world(config, policy, seed, telemetry_opts, profiler);
  std::optional<ScopedLogTime> log_time;
  if (world.telemetry() != nullptr) log_time.emplace(world.sim());
  world.start();
  world.run_to(config.horizon);
  return world.finish();
}

std::vector<std::uint64_t> replication_seeds(std::size_t replications,
                                             std::uint64_t base_seed) {
  std::vector<std::uint64_t> seeds(replications);
  SplitMix64 seeder(base_seed);
  for (auto& seed : seeds) seed = seeder.next();
  return seeds;
}

std::vector<RunMetrics> run_replications(
    const ScenarioConfig& config, const PolicySpec& policy,
    std::size_t replications, std::uint64_t base_seed,
    const std::function<void(const RunMetrics&)>& progress,
    std::size_t parallelism) {
  ensure_arg(replications >= 1, "run_replications: need at least one run");
  if (parallelism == 0) {
    parallelism = std::max(1u, std::thread::hardware_concurrency());
  }
  parallelism = std::min(parallelism, replications);

  // Seeds are fixed up front so the result set does not depend on worker
  // scheduling; each replication is fully self-contained (own Simulation,
  // Datacenter, RNG streams), making this loop embarrassingly parallel.
  const std::vector<std::uint64_t> seeds =
      replication_seeds(replications, base_seed);

  std::vector<RunMetrics> runs(replications);
  if (parallelism == 1) {
    for (std::size_t i = 0; i < replications; ++i) {
      runs[i] = run_scenario(config, policy, seeds[i]).metrics;
      if (progress) progress(runs[i]);
    }
    return runs;
  }

  std::atomic<std::size_t> next_index{0};
  std::mutex progress_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next_index.fetch_add(1);
      if (i >= replications) return;
      RunMetrics metrics = run_scenario(config, policy, seeds[i]).metrics;
      if (progress) {
        std::scoped_lock lock(progress_mutex);
        progress(metrics);
      }
      runs[i] = std::move(metrics);
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(parallelism);
  for (std::size_t w = 0; w < parallelism; ++w) workers.emplace_back(worker);
  for (std::thread& thread : workers) thread.join();
  return runs;
}

std::vector<SampledSeries::Point> workload_rate_curve(
    const ScenarioConfig& config, SimTime window, std::size_t replications,
    std::uint64_t base_seed) {
  ensure_arg(window > 0.0, "workload_rate_curve: window must be > 0");
  ensure_arg(replications >= 1, "workload_rate_curve: need at least one run");
  const auto bins = static_cast<std::size_t>(config.horizon / window);
  std::vector<double> counts(bins, 0.0);
  SplitMix64 seeder(base_seed);
  for (std::size_t rep = 0; rep < replications; ++rep) {
    Rng rng(seeder.next());
    auto source = make_scenario_source(config);
    while (auto arrival = source->next(rng)) {
      const auto bin = static_cast<std::size_t>(arrival->time / window);
      if (bin < bins) counts[bin] += 1.0;
    }
  }
  std::vector<SampledSeries::Point> points;
  points.reserve(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    points.push_back(SampledSeries::Point{
        static_cast<double>(i) * window,
        counts[i] / (window * static_cast<double>(replications))});
  }
  return points;
}

}  // namespace cloudprov
