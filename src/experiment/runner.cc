#include "experiment/runner.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <memory>

#include "cloud/broker.h"
#include "core/application_provisioner.h"
#include "core/provisioning_policy.h"
#include "fault/fault_injector.h"
#include "fault/reconciler.h"
#include "predict/ar_model.h"
#include "predict/ewma.h"
#include "predict/moving_average.h"
#include "predict/oracle.h"
#include "predict/periodic_profile.h"
#include "predict/qrsm.h"
#include "util/check.h"
#include "util/log.h"

namespace cloudprov {
namespace {

std::unique_ptr<RequestSource> make_source(const ScenarioConfig& config) {
  if (config.workload == WorkloadKind::kWeb) {
    return std::make_unique<WebWorkload>(config.web);
  }
  return std::make_unique<BotWorkload>(config.bot);
}

// Scoped sim-time log prefix: while a telemetry-instrumented replication
// runs, CLOUDPROV_LOG lines carry [t=...] so they correlate with trace
// events. Never installed for batch/parallel runs (the provider is global).
class ScopedLogTime {
 public:
  explicit ScopedLogTime(const Simulation& sim) {
    Logger::instance().set_time_provider([&sim] { return sim.now(); });
  }
  ~ScopedLogTime() { Logger::instance().set_time_provider(nullptr); }
  ScopedLogTime(const ScopedLogTime&) = delete;
  ScopedLogTime& operator=(const ScopedLogTime&) = delete;
};

std::shared_ptr<ArrivalRatePredictor> make_predictor(const ScenarioConfig& config,
                                                     PredictorKind kind,
                                                     const RequestSource& source) {
  switch (kind) {
    case PredictorKind::kProfile:
      if (config.workload == WorkloadKind::kWeb) {
        return std::make_shared<PeriodicProfilePredictor>(
            web_profile_predictor(config.web));
      }
      return std::make_shared<PeriodicProfilePredictor>(
          bot_profile_predictor(config.bot));
    case PredictorKind::kOracle:
      return std::make_shared<OraclePredictor>(source, /*margin=*/0.05);
    case PredictorKind::kEwma:
      return std::make_shared<EwmaPredictor>(/*alpha=*/0.3, /*headroom=*/0.15);
    case PredictorKind::kMovingAverage:
      return std::make_shared<MovingAveragePredictor>(
          /*window=*/10, MovingAveragePredictor::Mode::kMax, /*headroom=*/0.1);
    case PredictorKind::kAr:
      return std::make_shared<ArPredictor>(/*order=*/4, /*history=*/60,
                                           /*headroom=*/0.15);
    case PredictorKind::kQrsm:
      return std::make_shared<QrsmPredictor>(/*history=*/15, /*headroom=*/0.15);
  }
  ensure(false, "make_predictor: unknown kind");
  return nullptr;
}

}  // namespace

RunOutput run_scenario(const ScenarioConfig& config, const PolicySpec& policy,
                       std::uint64_t seed,
                       const std::optional<TelemetryOptions>& telemetry_opts) {
  const auto wall_start = std::chrono::steady_clock::now();

  SplitMix64 seeder(seed);
  Rng workload_rng(seeder.next());
  // Reserved stream: RandomPlacement experiments draw from here so that
  // enabling them does not disturb the workload stream of existing seeds.
  Rng placement_rng(seeder.next());
  // Fault-injection stream, drawn after the reserved streams so enabling
  // faults never perturbs the workload of existing seeds; each replication
  // seed therefore carries its own independent fault stream.
  const std::uint64_t fault_seed = seeder.next();
  // Spot-price stream, drawn unconditionally after the fault stream (same
  // derivation discipline): enabling the market never perturbs the
  // workload/placement/fault streams of existing seeds.
  const std::uint64_t market_seed = seeder.next();

  std::unique_ptr<Telemetry> telemetry;
  if (telemetry_opts.has_value()) {
    telemetry = std::make_unique<Telemetry>(*telemetry_opts);
  }

  Simulation sim;
  sim.set_telemetry(telemetry.get());
  std::optional<ScopedLogTime> log_time;
  if (telemetry != nullptr) log_time.emplace(sim);
  Datacenter datacenter(sim, config.datacenter,
                        std::make_unique<LeastLoadedPlacement>());
  datacenter.set_telemetry(telemetry.get());

  ProvisionerConfig prov_config;
  prov_config.vm_spec = VmSpec{};  // 1 core, 2 GB, unit speed
  prov_config.initial_service_time_estimate = config.initial_service_time_estimate;
  prov_config.boot_timeout = config.boot_timeout;
  ApplicationProvisioner provisioner(sim, datacenter, config.qos, prov_config);
  provisioner.set_telemetry(telemetry.get());

  // The market broker is attached before any policy commands capacity so
  // even the initial pool is bought on the market.
  std::optional<MarketBroker> market;
  if (config.market.enabled) {
    market.emplace(sim, datacenter, config.market, market_seed);
    market->set_telemetry(telemetry.get());
    market->attach(provisioner);
  }

  std::optional<FaultInjector> faults;
  if (config.fault.enabled()) {
    faults.emplace(sim, datacenter, provisioner, config.fault, fault_seed);
    faults->set_telemetry(telemetry.get());
  }
  std::optional<Reconciler> reconciler;
  if (config.reconciler.enabled) {
    reconciler.emplace(sim, provisioner, config.reconciler);
    reconciler->set_telemetry(telemetry.get());
  }

  auto source = make_source(config);
  Broker broker(sim, *source, provisioner, workload_rng);

  std::unique_ptr<ProvisioningPolicy> prov_policy;
  AdaptivePolicy* adaptive = nullptr;
  if (policy.kind == PolicySpec::Kind::kStatic) {
    prov_policy =
        std::make_unique<StaticPolicy>(config.scaled_instances(policy.static_instances));
  } else {
    auto owned = std::make_unique<AdaptivePolicy>(
        sim, make_predictor(config, policy.predictor, *source), config.modeler,
        config.analyzer);
    adaptive = owned.get();
    adaptive->set_telemetry(telemetry.get());
    prov_policy = std::move(owned);
  }

  prov_policy->attach(provisioner);
  broker.start();
  if (faults.has_value()) faults->start();
  if (reconciler.has_value()) reconciler->start();
  if (market.has_value()) market->start();
  sim.run(config.horizon);

  if (telemetry != nullptr) {
    // Close the drift observatory's trailing window and take a final SLO
    // reading at the horizon (both purely observational).
    if (DriftMonitor* drift = telemetry->drift(); drift != nullptr) {
      drift->finalize(sim.now(), datacenter.vm_hours(),
                      datacenter.busy_vm_hours());
    }
    if (SloMonitor* slo = telemetry->slo(); slo != nullptr) {
      slo->evaluate(sim.now());
    }
  }

  RunOutput output;
  RunMetrics& m = output.metrics;
  m.policy = policy.label(config.scale);
  m.seed = seed;
  m.generated = broker.generated();
  m.accepted = provisioner.accepted();
  m.rejected = provisioner.rejected();
  m.completed = provisioner.completed();
  m.qos_violations = provisioner.qos_violations();
  m.avg_response_time = provisioner.response_time_stats().mean();
  m.std_response_time = provisioner.response_time_stats().stddev();
  m.p95_response_time = provisioner.response_p95();
  m.p99_response_time = provisioner.response_p99();

  // Advance the time-weighted instance series to the horizon, then read it.
  TimeWeightedValue history = provisioner.instance_history();
  history.advance(sim.now());
  m.min_instances = history.min();
  m.max_instances = history.max();
  m.avg_instances = history.time_average();

  m.vm_hours = datacenter.vm_hours();
  m.busy_vm_hours = datacenter.busy_vm_hours();
  m.utilization = datacenter.utilization();
  m.rejection_rate = provisioner.rejection_rate();

  m.instance_failures = provisioner.instance_failures();
  m.vm_crashes = provisioner.failures_by_cause(FaultCause::kVmCrash);
  m.host_crashes = datacenter.failed_hosts();
  m.boot_failures = provisioner.failures_by_cause(FaultCause::kBootFailure);
  m.boot_timeouts = provisioner.boot_timeouts();
  m.lost_requests = provisioner.lost_to_failures();
  m.lost_to_vm_crashes = provisioner.lost_by_cause(FaultCause::kVmCrash);
  m.lost_to_host_crashes = provisioner.lost_by_cause(FaultCause::kHostCrash);
  m.availability =
      sim.now() > 0.0 ? 1.0 - provisioner.deficit_seconds() / sim.now() : 1.0;
  m.recoveries = provisioner.recovery_time_stats().count();
  m.mttr_mean = provisioner.recovery_time_stats().empty()
                    ? 0.0
                    : provisioner.recovery_time_stats().mean();
  m.mttr_max = provisioner.recovery_time_stats().empty()
                   ? 0.0
                   : provisioner.recovery_time_stats().max();
  if (reconciler.has_value()) {
    m.reconciler_heals = reconciler->heals();
    m.reconciler_retries = reconciler->retries();
    m.reconciler_aborts = reconciler->aborts();
  }
  m.final_instances = provisioner.active_instances();

  if (telemetry != nullptr) {
    if (const SloMonitor* slo = telemetry->slo(); slo != nullptr) {
      m.slo_response_alerts = slo->response_alerts();
      m.slo_rejection_alerts = slo->rejection_alerts();
      m.slo_worst_burn_rate = slo->worst_burn_rate();
    }
    if (const DriftMonitor* drift = telemetry->drift(); drift != nullptr) {
      m.drift_windows = drift->closed_windows();
      const DriftMonitor::ErrorStats response = drift->response_error();
      m.drift_response_mape = response.mape;
      m.drift_response_bias = response.bias;
    }
    if (const SpanTracer* spans = telemetry->spans(); spans != nullptr) {
      m.spans_traced = spans->traced();
    }
  }

  if (market.has_value()) {
    market->stop();
    const MarketReport report = market->finalize(sim.now());
    m.billed_cost = report.total_cost;
    m.on_demand_cost = report.on_demand_cost;
    m.spot_cost = report.spot_cost;
    m.reserved_cost = report.reserved_cost;
    m.on_demand_purchases = report.on_demand_purchases;
    m.spot_purchases = report.spot_purchases;
    m.reserved_purchases = report.reserved_purchases;
    m.spot_revocations = report.revocations;
    m.revocation_kills = report.revocation_kills;
    m.lost_to_revocations =
        provisioner.lost_by_cause(FaultCause::kSpotRevocation);
    m.spot_price_mean = report.spot_price_mean;
    m.spot_price_max = report.spot_price_max;
    output.market = report;
  }

  m.simulated_events = sim.executed_events();
  m.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  if (adaptive != nullptr) output.decisions = adaptive->decisions();
  output.telemetry = std::move(telemetry);
  (void)placement_rng;
  return output;
}

std::vector<std::uint64_t> replication_seeds(std::size_t replications,
                                             std::uint64_t base_seed) {
  std::vector<std::uint64_t> seeds(replications);
  SplitMix64 seeder(base_seed);
  for (auto& seed : seeds) seed = seeder.next();
  return seeds;
}

std::vector<RunMetrics> run_replications(
    const ScenarioConfig& config, const PolicySpec& policy,
    std::size_t replications, std::uint64_t base_seed,
    const std::function<void(const RunMetrics&)>& progress,
    std::size_t parallelism) {
  ensure_arg(replications >= 1, "run_replications: need at least one run");
  if (parallelism == 0) {
    parallelism = std::max(1u, std::thread::hardware_concurrency());
  }
  parallelism = std::min(parallelism, replications);

  // Seeds are fixed up front so the result set does not depend on worker
  // scheduling; each replication is fully self-contained (own Simulation,
  // Datacenter, RNG streams), making this loop embarrassingly parallel.
  const std::vector<std::uint64_t> seeds =
      replication_seeds(replications, base_seed);

  std::vector<RunMetrics> runs(replications);
  if (parallelism == 1) {
    for (std::size_t i = 0; i < replications; ++i) {
      runs[i] = run_scenario(config, policy, seeds[i]).metrics;
      if (progress) progress(runs[i]);
    }
    return runs;
  }

  std::atomic<std::size_t> next_index{0};
  std::mutex progress_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next_index.fetch_add(1);
      if (i >= replications) return;
      RunMetrics metrics = run_scenario(config, policy, seeds[i]).metrics;
      if (progress) {
        std::scoped_lock lock(progress_mutex);
        progress(metrics);
      }
      runs[i] = std::move(metrics);
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(parallelism);
  for (std::size_t w = 0; w < parallelism; ++w) workers.emplace_back(worker);
  for (std::thread& thread : workers) thread.join();
  return runs;
}

std::vector<SampledSeries::Point> workload_rate_curve(
    const ScenarioConfig& config, SimTime window, std::size_t replications,
    std::uint64_t base_seed) {
  ensure_arg(window > 0.0, "workload_rate_curve: window must be > 0");
  ensure_arg(replications >= 1, "workload_rate_curve: need at least one run");
  const auto bins = static_cast<std::size_t>(config.horizon / window);
  std::vector<double> counts(bins, 0.0);
  SplitMix64 seeder(base_seed);
  for (std::size_t rep = 0; rep < replications; ++rep) {
    Rng rng(seeder.next());
    auto source = make_source(config);
    while (auto arrival = source->next(rng)) {
      const auto bin = static_cast<std::size_t>(arrival->time / window);
      if (bin < bins) counts[bin] += 1.0;
    }
  }
  std::vector<SampledSeries::Point> points;
  points.reserve(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    points.push_back(SampledSeries::Point{
        static_cast<double>(i) * window,
        counts[i] / (window * static_cast<double>(replications))});
  }
  return points;
}

}  // namespace cloudprov
