#include "experiment/energy.h"

#include "util/check.h"

namespace cloudprov {

double energy_kwh(const Datacenter& datacenter, const PowerModel& model) {
  ensure_arg(model.idle_watts >= 0.0, "energy_kwh: negative idle power");
  ensure_arg(model.peak_watts >= model.idle_watts,
             "energy_kwh: peak power must be >= idle power");
  ensure(!datacenter.hosts().empty(), "energy_kwh: data center has no hosts");
  const double cores =
      static_cast<double>(datacenter.hosts().front()->spec().cores);
  // Idle floor: every powered-on host draws idle_watts.
  const double idle_watt_hours =
      model.idle_watts * datacenter.host_powered_hours();
  // Dynamic power: (peak - idle) is reached with all cores busy, so one busy
  // core-hour draws (peak - idle) / cores watt-hours. busy_vm_hours counts
  // busy core-hours directly for the paper's single-core VMs.
  const double dynamic_watt_hours =
      (model.peak_watts - model.idle_watts) / cores *
      datacenter.busy_vm_hours();
  return (idle_watt_hours + dynamic_watt_hours) / 1000.0;
}

}  // namespace cloudprov
