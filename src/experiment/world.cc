#include "experiment/world.h"

#include <chrono>
#include <memory>
#include <utility>

#include "core/admission.h"
#include "core/provisioning_policy.h"
#include "predict/ar_model.h"
#include "predict/ewma.h"
#include "predict/moving_average.h"
#include "predict/oracle.h"
#include "predict/periodic_profile.h"
#include "predict/qrsm.h"
#include "profile/wall_profiler.h"
#include "util/check.h"
#include "util/log.h"
#include "workload/bot_workload.h"
#include "workload/web_workload.h"
#include "workload/zipf_workload.h"

namespace cloudprov {
namespace {

std::shared_ptr<ArrivalRatePredictor> make_predictor(
    const ScenarioConfig& config, PredictorKind kind,
    const RequestSource& source) {
  switch (kind) {
    case PredictorKind::kProfile:
      if (config.workload == WorkloadKind::kWeb) {
        return std::make_shared<PeriodicProfilePredictor>(
            web_profile_predictor(config.web));
      }
      if (config.workload == WorkloadKind::kZipf) {
        // The Zipf workload has no periodic profile — its published curve is
        // the flat base rate with flash-crowd windows, which expected_rate
        // reports exactly; the oracle over the source is that "profile".
        return std::make_shared<OraclePredictor>(source, /*margin=*/0.05);
      }
      return std::make_shared<PeriodicProfilePredictor>(
          bot_profile_predictor(config.bot));
    case PredictorKind::kOracle:
      return std::make_shared<OraclePredictor>(source, /*margin=*/0.05);
    case PredictorKind::kEwma:
      return std::make_shared<EwmaPredictor>(/*alpha=*/0.3, /*headroom=*/0.15);
    case PredictorKind::kMovingAverage:
      return std::make_shared<MovingAveragePredictor>(
          /*window=*/10, MovingAveragePredictor::Mode::kMax, /*headroom=*/0.1);
    case PredictorKind::kAr:
      return std::make_shared<ArPredictor>(/*order=*/4, /*history=*/60,
                                           /*headroom=*/0.15);
    case PredictorKind::kQrsm:
      return std::make_shared<QrsmPredictor>(/*history=*/15, /*headroom=*/0.15);
  }
  ensure(false, "make_predictor: unknown kind");
  return nullptr;
}

double scenario_service_base(const ScenarioConfig& config) {
  switch (config.workload) {
    case WorkloadKind::kWeb: return config.web.service_base;
    case WorkloadKind::kScientific: return config.bot.service_base;
    case WorkloadKind::kZipf: return config.zipf.service_base;
  }
  return config.web.service_base;
}

double scenario_service_spread(const ScenarioConfig& config) {
  switch (config.workload) {
    case WorkloadKind::kWeb: return config.web.service_spread;
    case WorkloadKind::kScientific: return config.bot.service_spread;
    case WorkloadKind::kZipf: return config.zipf.service_spread;
  }
  return config.web.service_spread;
}

}  // namespace

std::unique_ptr<RequestSource> make_scenario_source(
    const ScenarioConfig& config) {
  if (config.workload == WorkloadKind::kWeb) {
    return std::make_unique<WebWorkload>(config.web);
  }
  if (config.workload == WorkloadKind::kZipf) {
    return std::make_unique<ZipfWorkload>(config.zipf);
  }
  return std::make_unique<BotWorkload>(config.bot);
}

void World::build_platform() {
  // A borrowed shard kernel is shared by many tenants: per-tenant telemetry
  // and profiling cannot be attached at the engine level (the shard runner
  // instruments the kernel itself), so engine hooks are owner-only.
  if (owns_sim()) {
    sim_->set_telemetry(telemetry_.get());
    sim_->set_profiler(profiler_);
  }
  datacenter_.emplace(*sim_, config_.datacenter,
                      std::make_unique<LeastLoadedPlacement>());
  datacenter_->set_telemetry(telemetry_.get());

  ProvisionerConfig prov_config;
  prov_config.vm_spec = VmSpec{};  // 1 core, 2 GB, unit speed
  prov_config.initial_service_time_estimate =
      config_.initial_service_time_estimate;
  prov_config.boot_timeout = config_.boot_timeout;
  std::unique_ptr<AdmissionPolicy> admission;
  if (config_.resilience.enabled && config_.resilience.shed.enabled()) {
    auto shedding = std::make_unique<SheddingAdmission>(config_.resilience.shed,
                                                        telemetry_.get());
    shedding_ = shedding.get();
    admission = std::move(shedding);
  } else {
    admission = std::make_unique<KBoundAdmission>();
  }
  provisioner_.emplace(*sim_, *datacenter_, config_.qos, prov_config,
                       std::move(admission));
  provisioner_->set_telemetry(telemetry_.get());

  // The market broker is attached before any policy commands capacity so
  // even the initial pool is bought on the market.
  if (config_.market.enabled) {
    market_.emplace(*sim_, *datacenter_, config_.market,
                    config_.market.price_seed_override != 0
                        ? config_.market.price_seed_override
                        : streams_.market);
    market_->set_telemetry(telemetry_.get());
    market_->attach(*provisioner_);
  }
  if (config_.fault.enabled()) {
    faults_.emplace(*sim_, *datacenter_, *provisioner_, config_.fault,
                    streams_.fault);
    faults_->set_telemetry(telemetry_.get());
  }
  if (config_.reconciler.enabled) {
    reconciler_.emplace(*sim_, *provisioner_, config_.reconciler);
    reconciler_->set_telemetry(telemetry_.get());
  }
  if (config_.resilience.enabled) {
    gateway_.emplace(*sim_, *provisioner_, config_.resilience,
                     Rng(streams_.resilience), telemetry_.get());
  }

  if (config_.apptier.enabled) {
    ensure_arg(policy_.kind != PolicySpec::Kind::kLookahead,
               "World: the lookahead policy does not support apptier yet");
    // The cache pool lives in its own small datacenter so its cheap VMs
    // never compete with backend hosts. It is untelemetered at the VM level
    // (its VM ids would collide with the backend datacenter's); the pool's
    // size is observed through the apptier cache lane instead.
    DatacenterConfig cache_dc = config_.datacenter;
    cache_dc.host_count = config_.apptier.cache_hosts;
    cache_datacenter_.emplace(*sim_, cache_dc,
                              std::make_unique<LeastLoadedPlacement>());

    ProvisionerConfig cache_prov;
    cache_prov.vm_spec = config_.apptier.cache_vm_spec;
    cache_prov.initial_service_time_estimate =
        config_.apptier.initial_cache_service_estimate;
    cache_provisioner_.emplace(*sim_, *cache_datacenter_,
                               config_.apptier.cache_qos, cache_prov,
                               std::make_unique<KBoundAdmission>());
    cache_provisioner_->set_telemetry(telemetry_.get());
    cache_provisioner_->set_cache_instance_lane(true);

    // Built after the gateway so the tier's completion-listener chaining
    // wraps whatever the gateway installed. Misses go to request_sink().
    cache_tier_.emplace(*sim_, config_.apptier, config_.qos,
                        *cache_provisioner_, *provisioner_, request_sink(),
                        Rng(streams_.apptier), telemetry_.get());
  }
}

RequestSink& World::request_sink() {
  if (gateway_.has_value()) return *gateway_;
  return *provisioner_;
}

RequestSink& World::front_door() {
  if (cache_tier_.has_value()) return *cache_tier_;
  return request_sink();
}

void World::build_policy(const AdaptivePolicy::State* restored,
                         const std::optional<Rng::State>& lookahead_rng,
                         bool force_adaptive) {
  if (cache_tier_.has_value() && policy_.kind != PolicySpec::Kind::kStatic) {
    // Tiered worlds replace AdaptivePolicy with the per-tier Algorithm 1;
    // its checkpoint is shape-compatible with AdaptivePolicy::State, so the
    // restore path reuses `restored` verbatim.
    tiered_ = std::make_unique<TieredProvisioner>(
        *sim_, make_predictor(config_, policy_.predictor, *source_),
        config_.modeler, config_.analyzer, config_.apptier);
    tiered_->set_telemetry(telemetry_.get());
    if (restored != nullptr) {
      tiered_->restore_attach(*provisioner_, *cache_provisioner_, *cache_tier_,
                              *restored);
    }
    return;
  }
  if (policy_.kind == PolicySpec::Kind::kStatic) {
    if (restored == nullptr) {
      prov_policy_ = std::make_unique<StaticPolicy>(
          config_.scaled_instances(policy_.static_instances));
    }
    // Restored static worlds need no policy object at all: the pool size is
    // already part of the provisioner snapshot and never changes again.
    return;
  }

  if (policy_.kind == PolicySpec::Kind::kAdaptive || force_adaptive) {
    auto owned = std::make_unique<AdaptivePolicy>(
        *sim_, make_predictor(config_, policy_.predictor, *source_),
        config_.modeler, config_.analyzer);
    adaptive_ = owned.get();
    adaptive_->set_telemetry(telemetry_.get());
    prov_policy_ = std::move(owned);
    if (restored != nullptr) adaptive_->restore_attach(*provisioner_, *restored);
    return;
  }

  LookaheadConfig lookahead_config = policy_.lookahead;
  lookahead_config.seed = streams_.lookahead;
  auto owned = std::make_unique<LookaheadPolicy>(
      *sim_, make_predictor(config_, policy_.predictor, *source_),
      config_.modeler, config_.analyzer, std::move(lookahead_config));
  lookahead_ = owned.get();
  lookahead_->set_telemetry(telemetry_.get());
  lookahead_->set_engine(this);
  prov_policy_ = std::move(owned);
  if (restored != nullptr) {
    lookahead_->restore_attach(*provisioner_, *restored, lookahead_rng);
  }
}

World::World(const ScenarioConfig& config, const PolicySpec& policy,
             std::uint64_t seed,
             const std::optional<TelemetryOptions>& telemetry_opts,
             WallProfiler* profiler, Simulation* engine)
    : config_(config),
      policy_(policy),
      seed_(seed),
      streams_(derive_streams(seed)),
      wall_start_(std::chrono::steady_clock::now()),
      profiler_(profiler) {
  ProfileScope profile_build(profiler_, ProfileCategory::kWorldBuild);
  if (engine == nullptr) owned_sim_ = std::make_unique<Simulation>();
  sim_ = engine != nullptr ? engine : owned_sim_.get();
  if (telemetry_opts.has_value()) {
    telemetry_ = std::make_unique<Telemetry>(*telemetry_opts);
  }
  build_platform();
  source_ = make_scenario_source(config_);
  broker_.emplace(*sim_, *source_, front_door(), Rng(streams_.workload));
  build_policy(nullptr, std::nullopt, /*force_adaptive=*/false);
}

World::World(const ScenarioConfig& config, const PolicySpec& policy,
             std::uint64_t seed, const WorldState& state,
             const Overrides& overrides, WallProfiler* profiler)
    : config_(config),
      policy_(policy),
      seed_(seed),
      streams_(derive_streams(seed)),
      wall_start_(std::chrono::steady_clock::now()),
      profiler_(profiler) {
  ProfileScope profile_build(profiler_, ProfileCategory::kWorldBuild);
  owned_sim_ = std::make_unique<Simulation>();
  sim_ = owned_sim_.get();
  if (state.telemetry != nullptr) telemetry_ = state.telemetry->clone();
  build_platform();
  // Component restore order is free (each re-pushes under explicit stamps);
  // only the clock restore must come last, after every re-push.
  datacenter_->restore(state.datacenter);
  provisioner_->restore(state.provisioner);
  if (market_.has_value() && state.market.has_value()) {
    market_->restore(*state.market);
  }
  if (faults_.has_value() && state.faults.has_value()) {
    faults_->restore(*state.faults);
  }
  if (reconciler_.has_value() && state.reconciler.has_value()) {
    reconciler_->restore(*state.reconciler);
  }
  if (gateway_.has_value() && state.resilience.has_value()) {
    gateway_->restore(state.resilience->gateway);
    if (shedding_ != nullptr) shedding_->restore(state.resilience->shedding);
  }
  if (cache_tier_.has_value() && state.apptier.has_value()) {
    cache_datacenter_->restore(state.apptier->cache_datacenter);
    cache_provisioner_->restore(state.apptier->cache_provisioner);
    cache_tier_->restore(*state.apptier);
  }

  Broker::Snapshot broker_snap = state.broker;
  if (overrides.forecast_rate.has_value()) {
    // What-if fork: future arrivals come from a synthetic Poisson stream at
    // the forecast rate, continuing from the in-flight arrival's timestamp,
    // on a per-window stream (common random numbers across candidates).
    source_ = std::make_unique<PoissonForecastSource>(
        *overrides.forecast_rate, scenario_service_base(config_),
        scenario_service_spread(config_), state.broker.pending_arrival.time);
    broker_snap.rng = Rng(overrides.forecast_seed).state();
  } else {
    source_ = make_scenario_source(config_);
    source_->load_state(state.source);
  }
  broker_.emplace(*sim_, *source_, front_door(), Rng(streams_.workload));
  broker_->restore(broker_snap);

  build_policy(state.policy_present ? &state.policy : nullptr,
               state.lookahead_rng, overrides.force_adaptive);
  if (tiered_ != nullptr && state.apptier.has_value()) {
    tiered_->restore_cache_decisions(state.apptier->cache_decisions);
  }

  sim_->restore_clock(state.now, state.executed_events, state.push_counter);
  started_ = true;

  // Candidate overrides act only after the clock is back, so any VM churn
  // they cause is stamped at the fork time like the live commit would be.
  if (overrides.bid.has_value() && market_.has_value()) {
    market_->set_bid(*overrides.bid);
  }
  if (overrides.initial_target.has_value()) {
    provisioner_->scale_to(*overrides.initial_target);
  }
}

World::~World() = default;

void World::start() {
  ensure(!started_, "World::start: already started (or restored)");
  started_ = true;
  if (prov_policy_ != nullptr) prov_policy_->attach(*provisioner_);
  if (tiered_ != nullptr) {
    tiered_->attach(*provisioner_, *cache_provisioner_, *cache_tier_);
  } else if (cache_provisioner_.has_value()) {
    // Static tiered world: a fixed cache pool alongside the static backend.
    cache_provisioner_->scale_to(
        std::max<std::size_t>(config_.apptier.cache_vms, 1));
  }
  if (cache_tier_.has_value()) cache_tier_->start();
  broker_->start();
  if (faults_.has_value()) faults_->start();
  if (reconciler_.has_value()) reconciler_->start();
  if (market_.has_value()) market_->start();
}

void World::run_to(SimTime t) {
  ensure(started_, "World::run_to: start() first");
  sim_->run(t);
}

SimTime World::now() const { return sim_->now(); }

std::size_t World::desired_instances() const {
  return provisioner_->desired_target();
}

void World::apply_capacity_grant(std::size_t grant) {
  provisioner_->set_capacity_cap(grant);
}

World::Counters World::counters() const {
  Counters c;
  c.generated = broker_->generated();
  c.accepted = provisioner_->accepted();
  c.rejected = provisioner_->rejected();
  c.completed = provisioner_->completed();
  c.qos_violations = provisioner_->qos_violations();
  if (cache_tier_.has_value()) {
    c.accepted += cache_provisioner_->accepted();
    c.rejected += cache_provisioner_->rejected();
    c.completed += cache_provisioner_->completed();
    c.qos_violations = cache_tier_->qos_violations();
    c.cache_hits = cache_tier_->hits();
    c.cache_misses = cache_tier_->misses();
  }
  return c;
}

WorldState World::snapshot(const SnapshotOptions& options) const {
  ProfileScope profile_snapshot(profiler_, ProfileCategory::kSnapshot);
  WorldState state;
  state.now = sim_->now();
  state.executed_events = sim_->executed_events();
  state.push_counter = sim_->event_push_counter();
  state.datacenter = datacenter_->snapshot();
  state.provisioner = provisioner_->checkpoint();
  state.broker = broker_->snapshot();
  source_->save_state(state.source);
  if (adaptive_ != nullptr) {
    state.policy_present = true;
    state.policy = adaptive_->checkpoint();
  } else if (lookahead_ != nullptr) {
    state.policy_present = true;
    state.policy = lookahead_->checkpoint();
    state.lookahead_rng = lookahead_->rng_state();
  } else if (tiered_ != nullptr) {
    state.policy_present = true;
    state.policy = tiered_->checkpoint();
  }
  if (!options.include_decisions) state.policy.decisions.clear();
  if (market_.has_value()) state.market = market_->checkpoint();
  if (faults_.has_value()) state.faults = faults_->checkpoint();
  if (reconciler_.has_value()) state.reconciler = reconciler_->checkpoint();
  if (gateway_.has_value()) {
    WorldState::ResilienceState resilience;
    resilience.gateway = gateway_->checkpoint();
    if (shedding_ != nullptr) resilience.shedding = shedding_->checkpoint();
    state.resilience = std::move(resilience);
  }
  if (cache_tier_.has_value()) {
    ApptierState apptier;
    apptier.cache_datacenter = cache_datacenter_->snapshot();
    apptier.cache_provisioner = cache_provisioner_->checkpoint();
    cache_tier_->capture(apptier);
    if (tiered_ != nullptr && options.include_decisions) {
      apptier.cache_decisions = tiered_->cache_decisions();
    }
    state.apptier = std::move(apptier);
  }
  if (options.include_telemetry && telemetry_ != nullptr) {
    state.telemetry = telemetry_->clone();
  }
  return state;
}

RunOutput World::finish() {
  ProfileScope profile_finish(profiler_, ProfileCategory::kWorldFinish);
  if (telemetry_ != nullptr) {
    // Close the drift observatory's trailing window and take a final SLO
    // reading at the horizon (both purely observational).
    if (DriftMonitor* drift = telemetry_->drift(); drift != nullptr) {
      drift->finalize(sim_->now(), datacenter_->vm_hours(),
                      datacenter_->busy_vm_hours());
    }
    if (SloMonitor* slo = telemetry_->slo(); slo != nullptr) {
      slo->evaluate(sim_->now());
    }
  }

  RunOutput output;
  RunMetrics& m = output.metrics;
  m.policy = policy_.label(config_.scale);
  m.seed = seed_;
  m.generated = broker_->generated();
  m.accepted = provisioner_->accepted();
  m.rejected = provisioner_->rejected();
  m.completed = provisioner_->completed();
  m.qos_violations = provisioner_->qos_violations();
  m.avg_response_time = provisioner_->response_time_stats().mean();
  m.std_response_time = provisioner_->response_time_stats().stddev();
  m.p95_response_time = provisioner_->response_p95();
  m.p99_response_time = provisioner_->response_p99();

  // Advance the time-weighted instance series to the horizon, then read it.
  TimeWeightedValue history = provisioner_->instance_history();
  history.advance(sim_->now());
  m.min_instances = history.min();
  m.max_instances = history.max();
  m.avg_instances = history.time_average();

  m.vm_hours = datacenter_->vm_hours();
  m.busy_vm_hours = datacenter_->busy_vm_hours();
  m.utilization = datacenter_->utilization();
  m.rejection_rate = provisioner_->rejection_rate();

  m.instance_failures = provisioner_->instance_failures();
  m.vm_crashes = provisioner_->failures_by_cause(FaultCause::kVmCrash);
  m.host_crashes = datacenter_->failed_hosts();
  m.boot_failures = provisioner_->failures_by_cause(FaultCause::kBootFailure);
  m.boot_timeouts = provisioner_->boot_timeouts();
  m.lost_requests = provisioner_->lost_to_failures();
  m.lost_to_vm_crashes = provisioner_->lost_by_cause(FaultCause::kVmCrash);
  m.lost_to_host_crashes = provisioner_->lost_by_cause(FaultCause::kHostCrash);
  m.availability = sim_->now() > 0.0
                       ? 1.0 - provisioner_->deficit_seconds() / sim_->now()
                       : 1.0;
  m.recoveries = provisioner_->recovery_time_stats().count();
  m.mttr_mean = provisioner_->recovery_time_stats().empty()
                    ? 0.0
                    : provisioner_->recovery_time_stats().mean();
  m.mttr_max = provisioner_->recovery_time_stats().empty()
                   ? 0.0
                   : provisioner_->recovery_time_stats().max();
  if (reconciler_.has_value()) {
    m.reconciler_heals = reconciler_->heals();
    m.reconciler_retries = reconciler_->retries();
    m.reconciler_aborts = reconciler_->aborts();
  }
  m.final_instances = provisioner_->active_instances();
  m.capacity_clips = provisioner_->capacity_clips();
  m.capacity_denied = provisioner_->capacity_denied();

  if (cache_tier_.has_value()) {
    // Headline request accounting spans BOTH pools: the tier owns the
    // end-to-end response statistics (neither pool sees every completion),
    // and admission totals are the sums of the two pools.
    m.accepted = provisioner_->accepted() + cache_provisioner_->accepted();
    m.rejected = provisioner_->rejected() + cache_provisioner_->rejected();
    m.completed = provisioner_->completed() + cache_provisioner_->completed();
    m.qos_violations = cache_tier_->qos_violations();
    m.avg_response_time = cache_tier_->response_time_stats().mean();
    m.std_response_time = cache_tier_->response_time_stats().stddev();
    m.p95_response_time = cache_tier_->response_p95();
    m.p99_response_time = cache_tier_->response_p99();
    const std::uint64_t arrivals = m.accepted + m.rejected;
    m.rejection_rate =
        arrivals > 0
            ? static_cast<double>(m.rejected) / static_cast<double>(arrivals)
            : 0.0;

    m.cache_hits = cache_tier_->hits();
    m.cache_misses = cache_tier_->misses();
    m.cache_hit_ratio = cache_tier_->hit_ratio();
    m.cache_fills = cache_tier_->fills();
    m.cache_evictions = cache_tier_->evictions();
    m.cache_expirations = cache_tier_->expirations();
    m.cache_invalidations = cache_tier_->invalidations();
    m.cache_flushes = cache_tier_->flushes();
    m.cache_vm_hours = cache_datacenter_->vm_hours();
    m.cache_utilization = cache_datacenter_->utilization();
    TimeWeightedValue cache_history = cache_provisioner_->instance_history();
    cache_history.advance(sim_->now());
    m.cache_avg_instances = cache_history.time_average();
    m.cache_final_instances = cache_provisioner_->active_instances();
    m.lambda_miss_mean = cache_tier_->lambda_miss_mean();
    m.cache_avg_response_time = cache_provisioner_->response_time_stats().mean();
    m.backend_avg_response_time = provisioner_->response_time_stats().mean();
  }

  if (gateway_.has_value()) {
    m.client_requests = gateway_->client_requests();
    m.client_succeeded = gateway_->client_succeeded();
    m.client_failed = gateway_->client_failed();
    m.client_attempts = gateway_->client_attempts();
    m.client_retries = gateway_->client_retries();
    m.retry_budget_denied = gateway_->retry_budget_denied();
    m.client_timeouts = gateway_->client_timeouts();
    m.wasted_completions = gateway_->wasted_completions();
    m.breaker_opens = gateway_->breaker_opens();
    m.breaker_half_opens = gateway_->breaker_half_opens();
    m.breaker_closes = gateway_->breaker_closes();
    m.breaker_fast_fails = gateway_->breaker_fast_fails();
  }
  if (shedding_ != nullptr) {
    shedding_->flush();
    m.shed_deadline = shedding_->shed_deadline();
    m.shed_brownout = shedding_->shed_brownout();
  }

  if (telemetry_ != nullptr) {
    if (const SloMonitor* slo = telemetry_->slo(); slo != nullptr) {
      m.slo_response_alerts = slo->response_alerts();
      m.slo_rejection_alerts = slo->rejection_alerts();
      m.slo_worst_burn_rate = slo->worst_burn_rate();
    }
    if (const DriftMonitor* drift = telemetry_->drift(); drift != nullptr) {
      m.drift_windows = drift->closed_windows();
      const DriftMonitor::ErrorStats response = drift->response_error();
      m.drift_response_mape = response.mape;
      m.drift_response_bias = response.bias;
    }
    if (const SpanTracer* spans = telemetry_->spans(); spans != nullptr) {
      m.spans_traced = spans->traced();
    }
  }

  if (market_.has_value()) {
    market_->stop();
    const MarketReport report = market_->finalize(sim_->now());
    m.billed_cost = report.total_cost;
    m.on_demand_cost = report.on_demand_cost;
    m.spot_cost = report.spot_cost;
    m.reserved_cost = report.reserved_cost;
    m.on_demand_purchases = report.on_demand_purchases;
    m.spot_purchases = report.spot_purchases;
    m.reserved_purchases = report.reserved_purchases;
    m.spot_revocations = report.revocations;
    m.revocation_kills = report.revocation_kills;
    m.lost_to_revocations =
        provisioner_->lost_by_cause(FaultCause::kSpotRevocation);
    m.spot_price_mean = report.spot_price_mean;
    m.spot_price_max = report.spot_price_max;
    output.market = report;
  }

  // A borrowed kernel executes every tenant in the shard; its event count
  // is shard-global, so per-tenant metrics report 0 (the shard runner sums
  // the kernels for the aggregate).
  m.simulated_events = owns_sim() ? sim_->executed_events() : 0;
  m.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start_)
                       .count();
  if (profiler_ != nullptr && owns_sim()) {
    // Final engine sample so short runs (and the tail since the last
    // periodic snapshot) always appear in the exported profile.
    const EventQueue& q = sim_->queue();
    profiler_->force_snapshot(sim_->now(), sim_->executed_events(), q.size(),
                              q.heap_depth(), q.heap_high_water(),
                              q.slab_high_water(), q.stale_drops(),
                              q.boxed_pushed_count());
  }
  if (adaptive_ != nullptr) output.decisions = adaptive_->decisions();
  if (lookahead_ != nullptr) output.decisions = lookahead_->decisions();
  if (tiered_ != nullptr) output.decisions = tiered_->decisions();
  if (cache_tier_.has_value()) output.apptier_series = cache_tier_->series();
  output.telemetry = std::move(telemetry_);
  return output;
}

WhatIfOutcome World::what_if(const WhatIfSpec& spec) {
  // Clones run unprofiled (their Simulation gets a null profiler), so the
  // whole fork — restore, clone run, outcome extraction — lands here as
  // lookahead.fork self time: the in-run per-fork cost signal.
  ProfileScope profile_fork(profiler_, ProfileCategory::kLookaheadFork);
  WhatIfOutcome outcome;
  if (spec.horizon <= sim_->now()) return outcome;
  // One base snapshot per frozen instant; every candidate of a search
  // window forks from it.
  if (!whatif_base_.has_value() || whatif_base_->now != sim_->now() ||
      whatif_base_->executed_events != sim_->executed_events()) {
    SnapshotOptions options;
    options.include_telemetry = false;
    options.include_decisions = false;
    whatif_base_ = snapshot(options);
  }

  Overrides overrides;
  overrides.force_adaptive = true;
  overrides.forecast_rate = spec.forecast_rate;
  overrides.forecast_seed = spec.forecast_seed;
  overrides.bid = spec.bid;
  overrides.initial_target = spec.target_instances;
  World clone(config_, policy_, seed_, *whatif_base_, overrides);

  const std::uint64_t rejected_before = clone.provisioner_->rejected();
  const std::uint64_t violations_before = clone.provisioner_->qos_violations();
  const std::uint64_t completed_before = clone.provisioner_->completed();
  clone.run_to(spec.horizon);

  outcome.valid = true;
  outcome.rejected = clone.provisioner_->rejected() - rejected_before;
  outcome.qos_violations =
      clone.provisioner_->qos_violations() - violations_before;
  outcome.completed = clone.provisioner_->completed() - completed_before;
  if (clone.market_.has_value()) {
    // Candidates share the pre-fork ledger prefix, so from-zero totals rank
    // them the same way deltas would.
    clone.market_->stop();
    outcome.cost = clone.market_->finalize(clone.now()).total_cost;
  } else {
    outcome.cost = clone.datacenter_->vm_hours();
  }
  return outcome;
}

void World::commit_bid(double bid) {
  if (market_.has_value()) market_->set_bid(bid);
}

std::optional<double> World::current_bid() const {
  if (!market_.has_value() || !market_->spot_active()) return std::nullopt;
  return market_->config().acquisition.bid;
}

}  // namespace cloudprov
