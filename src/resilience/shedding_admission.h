// Server-side overload protection: an AdmissionPolicy that sheds load the
// k-bound alone cannot (src/core/admission.h is the seam).
//
// Two independent mechanisms, both deterministic and RNG-free:
//
//  * Queue-deadline shedding (a CoDel-style bound): a request whose
//    remaining deadline cannot be met even if admitted right now —
//    now + (queue depth + 1) * Tm exceeds its absolute deadline — is doomed
//    work; enqueueing it would only burn capacity the client has already
//    written off. Requests without deadlines are never deadline-shed.
//
//  * Utilization-triggered brownout: when pool occupancy reaches the
//    configured level, a fixed fraction of low-priority requests (selected
//    by a pure hash of the request id, so the choice is deterministic and
//    replayable) is turned away to keep headroom for important traffic.
//
// Shed decisions look exactly like admission rejections to the provisioner
// and the client (which is the point: clients cannot tell "full" from
// "shedding"), but are counted separately for RunMetrics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/admission.h"
#include "resilience/resilience_config.h"

namespace cloudprov {

class Telemetry;

class SheddingAdmission final : public AdmissionPolicy {
 public:
  explicit SheddingAdmission(ShedConfig config, Telemetry* telemetry = nullptr);

  bool admit(const Request& request, const Vm& vm,
             const PoolView& pool) const override;
  bool needs_pool_view() const override { return true; }
  std::string name() const override { return "shedding"; }

  /// Requests turned away because their deadline was unmeetable / by
  /// brownout. Exact per logical admission decision: a candidate-level
  /// denial that a later VM in the same round-robin scan retracts is not
  /// counted.
  std::uint64_t shed_deadline() const;
  std::uint64_t shed_brownout() const;

  /// Flushes the trailing pending decision (call before reading counters at
  /// the end of a run).
  void flush() const;

  struct Snapshot {
    std::uint64_t shed_deadline = 0;
    std::uint64_t shed_brownout = 0;
    /// The provisional last decision rides along so a restored run flushes
    /// its trace instant at exactly the same point the uninterrupted run
    /// would have.
    bool has_pending = false;
    std::uint64_t pending_id = 0;
    std::uint8_t pending_kind = 0;
    SimTime pending_time = 0.0;
  };
  Snapshot checkpoint() const;
  void restore(const Snapshot& snap);

 private:
  enum class Kind : std::uint8_t { kDeadline, kBrownout };
  struct PendingShed {
    std::uint64_t request_id = 0;
    Kind kind = Kind::kDeadline;
    SimTime time = 0.0;
  };

  bool deny(const Request& request, Kind kind, SimTime now) const;

  ShedConfig config_;
  Telemetry* telemetry_;
  // admit() is const in the AdmissionPolicy contract; the shed accounting is
  // observer state, not simulation state.
  mutable std::uint64_t shed_deadline_ = 0;
  mutable std::uint64_t shed_brownout_ = 0;
  mutable std::optional<PendingShed> pending_;
};

}  // namespace cloudprov
