#include "resilience/shedding_admission.h"

#include <cmath>

#include "cloud/vm.h"
#include "telemetry/telemetry.h"

namespace cloudprov {
namespace {

// SplitMix64 finalizer: a pure, well-mixed hash of the request id, so the
// brownout coin flip is deterministic, replayable, and burns no RNG stream.
double shed_hash(std::uint64_t id) {
  std::uint64_t z = id + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

SheddingAdmission::SheddingAdmission(ShedConfig config, Telemetry* telemetry)
    : config_(config), telemetry_(telemetry) {}

bool SheddingAdmission::admit(const Request& request, const Vm& vm,
                              const PoolView& pool) const {
  if (config_.brownout_enabled &&
      request.priority < config_.brownout_priority) {
    const double capacity = static_cast<double>(pool.active_instances) *
                            static_cast<double>(pool.queue_bound);
    const double occupancy =
        capacity > 0.0
            ? 1.0 - static_cast<double>(pool.total_free_slots) / capacity
            : 1.0;
    if (occupancy >= config_.brownout_utilization &&
        shed_hash(request.id) < config_.brownout_fraction) {
      return deny(request, Kind::kBrownout, pool.now);
    }
  }
  if (config_.deadline_enabled && std::isfinite(request.deadline)) {
    const double predicted_response =
        static_cast<double>(vm.load() + 1) * pool.mean_service_time;
    if (pool.now + predicted_response > request.deadline) {
      return deny(request, Kind::kDeadline, pool.now);
    }
  }
  if (pending_.has_value() && pending_->request_id == request.id) {
    // An earlier candidate in this round-robin scan was denied, but this VM
    // can serve the request after all: retract the provisional shed.
    (pending_->kind == Kind::kDeadline ? shed_deadline_ : shed_brownout_) -= 1;
    pending_.reset();
  } else {
    flush();
  }
  return true;
}

bool SheddingAdmission::deny(const Request& request, Kind kind,
                             SimTime now) const {
  if (pending_.has_value() && pending_->request_id == request.id) {
    return false;  // later candidate, same request: already counted
  }
  flush();
  pending_ = PendingShed{request.id, kind, now};
  (kind == Kind::kDeadline ? shed_deadline_ : shed_brownout_) += 1;
  return false;
}

void SheddingAdmission::flush() const {
  if (!pending_.has_value()) return;
  if (telemetry_) {
    telemetry_->request_shed(
        pending_->time, pending_->request_id,
        pending_->kind == Kind::kDeadline ? "deadline" : "brownout");
  }
  pending_.reset();
}

std::uint64_t SheddingAdmission::shed_deadline() const { return shed_deadline_; }

std::uint64_t SheddingAdmission::shed_brownout() const { return shed_brownout_; }

SheddingAdmission::Snapshot SheddingAdmission::checkpoint() const {
  Snapshot snap;
  snap.shed_deadline = shed_deadline_;
  snap.shed_brownout = shed_brownout_;
  if (pending_.has_value()) {
    snap.has_pending = true;
    snap.pending_id = pending_->request_id;
    snap.pending_kind = static_cast<std::uint8_t>(pending_->kind);
    snap.pending_time = pending_->time;
  }
  return snap;
}

void SheddingAdmission::restore(const Snapshot& snap) {
  shed_deadline_ = snap.shed_deadline;
  shed_brownout_ = snap.shed_brownout;
  pending_.reset();
  if (snap.has_pending) {
    pending_ = PendingShed{snap.pending_id, static_cast<Kind>(snap.pending_kind),
                           snap.pending_time};
  }
}

}  // namespace cloudprov
