// Configuration for the request-path resilience layer (src/resilience).
//
// Client side (RetryGateway, between the Broker and the provisioner):
// per-attempt timeouts, a total per-request deadline, retry policies with
// bounded attempts, a token-bucket retry budget, and a circuit breaker.
// Server side (SheddingAdmission, plugged into the provisioner's admission
// seam): queue-deadline shedding and utilization-triggered brownout.
//
// Everything defaults to off; a default-constructed ResilienceConfig leaves
// the simulation bit-identical to a build without the layer.
#pragma once

#include <cstddef>

#include "util/units.h"

namespace cloudprov {

/// Client retry behavior after a rejected, timed-out, or fast-failed attempt.
struct RetryPolicyConfig {
  enum class Backoff {
    kFixed,        ///< every retry waits exactly `base` seconds
    kExpoJitter,   ///< decorrelated jitter: U(base, 3 * previous delay), <= cap
  };
  Backoff backoff = Backoff::kExpoJitter;
  /// Total attempts per logical request (first try included). 1 disables
  /// retries; 0 means unbounded — the naive client of the AB12 ablation.
  std::size_t max_attempts = 1;
  /// First/backstop delay before a retry, seconds.
  SimTime base = 0.05;
  /// Upper bound on any single backoff delay, seconds.
  SimTime cap = 1.0;
};

/// Token-bucket retry budget: retries may not exceed `ratio` of fresh
/// traffic over any long window. Each fresh arrival earns `ratio` tokens
/// (capped at `burst`); each retry spends one whole token or is dropped.
struct RetryBudgetConfig {
  bool enabled = false;
  double ratio = 0.1;
  double burst = 10.0;
};

/// Per-application circuit breaker over attempt outcomes
/// (closed -> open -> half-open), driven by the rejection/timeout rate in a
/// sliding count window.
struct CircuitBreakerConfig {
  bool enabled = false;
  /// Sliding window of most recent attempt outcomes consulted by the trip
  /// condition.
  std::size_t window = 32;
  /// Open when the failure fraction in the window reaches this level...
  double failure_threshold = 0.5;
  /// ...but only after the window holds at least this many outcomes.
  std::size_t min_volume = 16;
  /// Seconds the breaker stays open (fast-failing everything) before
  /// letting probe requests through.
  SimTime open_duration = 5.0;
  /// Concurrent probe attempts admitted while half-open; all must succeed
  /// to close, any failure re-opens.
  std::size_t half_open_probes = 3;
};

/// Server-side load shedding in the provisioner's admission path.
struct ShedConfig {
  /// Queue-deadline shedding (CoDel-style bound): reject a request at
  /// admission when `now + (queue depth + 1) * Tm` already exceeds the
  /// request's absolute deadline — the work is doomed, so don't enqueue it.
  bool deadline_enabled = false;
  /// Utilization-triggered brownout: when pool occupancy reaches
  /// `brownout_utilization`, deterministically shed `brownout_fraction` of
  /// requests whose priority is below `brownout_priority`.
  bool brownout_enabled = false;
  double brownout_utilization = 0.9;
  double brownout_fraction = 0.5;
  int brownout_priority = 1;

  bool enabled() const { return deadline_enabled || brownout_enabled; }
};

struct ResilienceConfig {
  /// Master switch. False leaves the Broker wired straight to the
  /// provisioner exactly as before this layer existed.
  bool enabled = false;

  /// Per-attempt client timeout, seconds. An admitted attempt not completed
  /// within this window is abandoned by the client (the server still wastes
  /// capacity finishing it — the fuel of retry-storm metastability) and
  /// handled like a rejection. 0 disables client timeouts.
  SimTime attempt_timeout = 0.0;

  /// Total deadline per logical request measured from its first arrival,
  /// seconds. Retries are never scheduled past it, and the gateway stamps
  /// it on forwarded requests so deadline shedding can read it. 0 means no
  /// deadline.
  SimTime request_deadline = 0.0;

  RetryPolicyConfig retry;
  RetryBudgetConfig budget;
  CircuitBreakerConfig breaker;
  ShedConfig shed;
};

}  // namespace cloudprov
