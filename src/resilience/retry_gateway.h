// Client-side resilience model: the RetryGateway sits between the Broker and
// the ApplicationProvisioner and plays the part of a real SaaS front-end's
// HTTP client stack — per-attempt timeouts, bounded retries with backoff, a
// token-bucket retry budget, and a circuit breaker.
//
// A fresh arrival becomes attempt 1 of a *logical request*. An attempt fails
// by admission rejection, by client timeout (the server keeps serving the
// abandoned request — wasted capacity, the fuel of retry-storm
// metastability), or by breaker fast-fail. A failed attempt is retried after
// a backoff delay until the attempt bound, the request deadline, or the
// retry budget says stop. Attempt 1 forwards the Broker's request verbatim
// (ids, arrival time, spans all unchanged), so a gateway with every feature
// off is bit-identical to wiring the Broker straight to the provisioner.
//
// Determinism: backoff jitter is the only randomness and draws from the
// dedicated `resilience` seed stream, so enabling retries perturbs no other
// subsystem's stream. All breaker/budget state is counters — no clocks, no
// wall time — and everything (including pending retry/timeout events, under
// their original (time, seq) stamps) is captured by checkpoint()/restore().
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cloud/broker.h"
#include "resilience/resilience_config.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace cloudprov {

class ApplicationProvisioner;
class Telemetry;

class RetryGateway final : public RequestSink {
 public:
  /// Retry attempts carry synthetic ids above this base so they never
  /// collide with Broker-issued ids (span tracing and timeout bookkeeping
  /// key on the forwarded id).
  static constexpr std::uint64_t kRetryIdBase = 1ull << 63;

  enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  /// Installs itself as the provisioner's completion listener; the World
  /// wires the Broker's sink to this gateway instead of the provisioner.
  RetryGateway(Simulation& sim, ApplicationProvisioner& provisioner,
               const ResilienceConfig& config, Rng rng,
               Telemetry* telemetry = nullptr);

  /// Fresh traffic from the Broker: attempt 1 of a new logical request.
  void on_request(const Request& request) override;

  // --- accounting -------------------------------------------------------
  std::uint64_t client_requests() const { return client_requests_; }
  /// Logical requests whose some attempt completed within the client's
  /// patience (every completion when timeouts are off): the goodput
  /// numerator of the AB12 ablation.
  std::uint64_t client_succeeded() const { return client_succeeded_; }
  /// Logical requests the client gave up on (attempts, deadline, or budget
  /// exhausted).
  std::uint64_t client_failed() const { return client_failed_; }
  std::uint64_t client_attempts() const { return client_attempts_; }
  std::uint64_t client_retries() const { return client_retries_; }
  std::uint64_t retry_budget_denied() const { return retry_budget_denied_; }
  std::uint64_t client_timeouts() const { return client_timeouts_; }
  /// Completions the server delivered after the client had already timed
  /// the attempt out: pure wasted capacity.
  std::uint64_t wasted_completions() const { return wasted_completions_; }
  std::uint64_t breaker_opens() const { return breaker_opens_; }
  std::uint64_t breaker_half_opens() const { return breaker_half_opens_; }
  std::uint64_t breaker_closes() const { return breaker_closes_; }
  std::uint64_t breaker_fast_fails() const { return breaker_fast_fails_; }
  BreakerState breaker_state() const { return breaker_state_; }
  double budget_tokens() const { return budget_tokens_; }

  // --- checkpoint/restore (src/lookahead) -------------------------------
  /// An attempt sitting in the provisioner with a live client-timeout event.
  struct InFlightEntry {
    std::uint64_t attempt_id = 0;  ///< forwarded request id (map key)
    Request request;               ///< logical request (original id/deadline)
    std::uint64_t attempt = 1;
    SimTime prev_delay = 0.0;
    bool probe = false;
    EventStamp timeout_event;
  };
  /// A backoff wait with a scheduled re-dispatch event.
  struct PendingRetry {
    Request request;
    std::uint64_t attempt = 1;  ///< attempt number the retry will carry
    SimTime prev_delay = 0.0;
    EventStamp event;
  };
  struct Snapshot {
    Rng::State rng;
    double budget_tokens = 0.0;
    std::uint8_t breaker_state = 0;
    SimTime breaker_opened_at = 0.0;
    std::vector<std::uint8_t> breaker_ring;  ///< outcome ring, slot order
    std::uint64_t breaker_ring_idx = 0;
    std::uint64_t breaker_in_window = 0;
    std::uint64_t breaker_failures = 0;
    std::uint64_t probes_issued = 0;
    std::uint64_t probe_successes = 0;
    std::uint64_t next_retry_seq = 0;
    std::uint64_t client_requests = 0;
    std::uint64_t client_succeeded = 0;
    std::uint64_t client_failed = 0;
    std::uint64_t client_attempts = 0;
    std::uint64_t client_retries = 0;
    std::uint64_t retry_budget_denied = 0;
    std::uint64_t client_timeouts = 0;
    std::uint64_t wasted_completions = 0;
    std::uint64_t breaker_opens = 0;
    std::uint64_t breaker_half_opens = 0;
    std::uint64_t breaker_closes = 0;
    std::uint64_t breaker_fast_fails = 0;
    std::vector<InFlightEntry> in_flight;  ///< sorted by attempt_id
    std::vector<PendingRetry> retries;     ///< sorted by event seq
  };

  Snapshot checkpoint() const;
  /// Re-arms every pending timeout/retry under its original stamp. Call on
  /// a freshly constructed gateway before Simulation::restore_clock.
  void restore(const Snapshot& snap);

 private:
  struct InFlight {
    Request request;
    std::uint64_t attempt = 1;
    SimTime prev_delay = 0.0;
    bool probe = false;
    EventId timeout_event = kInvalidEventId;
  };
  struct Waiting {
    Request request;
    std::uint64_t attempt = 1;
    SimTime prev_delay = 0.0;
    EventId event = kInvalidEventId;
  };

  void dispatch_attempt(const Request& request, std::uint64_t attempt,
                        SimTime prev_delay);
  void handle_attempt_failure(const Request& request, std::uint64_t attempt,
                              SimTime prev_delay);
  void on_completion(const Request& request);
  void fire_timeout(std::uint64_t attempt_id);
  void fire_retry(std::uint64_t token);
  SimTime next_backoff(SimTime prev_delay);

  // Breaker internals.
  void breaker_outcome(bool success, bool probe);
  void breaker_open(const char* from);
  void breaker_transition_to_half_open();

  Simulation& sim_;
  ApplicationProvisioner& provisioner_;
  ResilienceConfig config_;
  Rng rng_;
  Telemetry* telemetry_;

  double budget_tokens_;
  BreakerState breaker_state_ = BreakerState::kClosed;
  SimTime breaker_opened_at_ = 0.0;
  std::vector<std::uint8_t> breaker_ring_;
  std::size_t breaker_ring_idx_ = 0;
  std::size_t breaker_in_window_ = 0;
  std::size_t breaker_failures_ = 0;
  std::size_t probes_issued_ = 0;
  std::size_t probe_successes_ = 0;

  std::uint64_t next_retry_seq_ = 0;
  std::uint64_t next_retry_token_ = 0;
  std::unordered_map<std::uint64_t, InFlight> in_flight_;
  std::unordered_map<std::uint64_t, Waiting> pending_retries_;

  std::uint64_t client_requests_ = 0;
  std::uint64_t client_succeeded_ = 0;
  std::uint64_t client_failed_ = 0;
  std::uint64_t client_attempts_ = 0;
  std::uint64_t client_retries_ = 0;
  std::uint64_t retry_budget_denied_ = 0;
  std::uint64_t client_timeouts_ = 0;
  std::uint64_t wasted_completions_ = 0;
  std::uint64_t breaker_opens_ = 0;
  std::uint64_t breaker_half_opens_ = 0;
  std::uint64_t breaker_closes_ = 0;
  std::uint64_t breaker_fast_fails_ = 0;
};

const char* to_string(RetryGateway::BreakerState state);

}  // namespace cloudprov
