#include "resilience/retry_gateway.h"

#include <algorithm>

#include "core/application_provisioner.h"
#include "profile/wall_profiler.h"
#include "telemetry/telemetry.h"
#include "util/check.h"

namespace cloudprov {

const char* to_string(RetryGateway::BreakerState state) {
  switch (state) {
    case RetryGateway::BreakerState::kClosed: return "closed";
    case RetryGateway::BreakerState::kOpen: return "open";
    case RetryGateway::BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

RetryGateway::RetryGateway(Simulation& sim, ApplicationProvisioner& provisioner,
                           const ResilienceConfig& config, Rng rng,
                           Telemetry* telemetry)
    : sim_(sim),
      provisioner_(provisioner),
      config_(config),
      rng_(rng),
      telemetry_(telemetry),
      budget_tokens_(config.budget.burst) {
  if (config_.breaker.enabled) {
    ensure_arg(config_.breaker.window >= 1, "RetryGateway: breaker window >= 1");
    ensure_arg(config_.breaker.half_open_probes >= 1,
               "RetryGateway: breaker needs at least one half-open probe");
    breaker_ring_.assign(config_.breaker.window, 0);
  }
  provisioner_.set_completion_listener(
      [this](const Request& request, double /*response_time*/) {
        on_completion(request);
      });
}

void RetryGateway::on_request(const Request& request) {
  ++client_requests_;
  if (config_.budget.enabled) {
    budget_tokens_ =
        std::min(config_.budget.burst, budget_tokens_ + config_.budget.ratio);
  }
  Request logical = request;
  if (config_.request_deadline > 0.0) {
    logical.deadline = std::min(logical.deadline,
                                request.arrival_time + config_.request_deadline);
  }
  dispatch_attempt(logical, 1, config_.retry.base);
}

void RetryGateway::dispatch_attempt(const Request& request,
                                    std::uint64_t attempt, SimTime prev_delay) {
  ++client_attempts_;
  const SimTime now = sim_.now();
  bool probe = false;
  if (config_.breaker.enabled) {
    if (breaker_state_ == BreakerState::kOpen &&
        now >= breaker_opened_at_ + config_.breaker.open_duration) {
      breaker_transition_to_half_open();
    }
    if (breaker_state_ == BreakerState::kOpen ||
        (breaker_state_ == BreakerState::kHalfOpen &&
         probes_issued_ >= config_.breaker.half_open_probes)) {
      ++breaker_fast_fails_;
      if (telemetry_) telemetry_->breaker_fast_fail(now, request.id);
      handle_attempt_failure(request, attempt, prev_delay);
      return;
    }
    if (breaker_state_ == BreakerState::kHalfOpen) {
      probe = true;
      ++probes_issued_;
    }
  }

  // Attempt 1 forwards the Broker's request verbatim; retries get a fresh
  // synthetic id and re-arrive "now" (their response time is measured from
  // the retry, but the logical deadline stays anchored at first arrival).
  Request forwarded = request;
  if (attempt > 1) {
    forwarded.id = kRetryIdBase | next_retry_seq_++;
    forwarded.arrival_time = now;
  }
  const bool admitted = provisioner_.try_submit(forwarded);
  if (!admitted) {
    breaker_outcome(false, probe);
    handle_attempt_failure(request, attempt, prev_delay);
    return;
  }
  if (config_.attempt_timeout > 0.0) {
    const std::uint64_t attempt_id = forwarded.id;
    const EventId timeout = sim_.schedule_at(
        now + config_.attempt_timeout,
        [this, attempt_id] { fire_timeout(attempt_id); });
    in_flight_.emplace(attempt_id,
                       InFlight{request, attempt, prev_delay, probe, timeout});
  } else {
    // No client timeout: admission is the whole outcome.
    breaker_outcome(true, probe);
  }
}

void RetryGateway::on_completion(const Request& request) {
  if (config_.attempt_timeout <= 0.0) {
    ++client_succeeded_;
    return;
  }
  auto it = in_flight_.find(request.id);
  if (it == in_flight_.end()) {
    // The client abandoned this attempt at its timeout; the server finished
    // it anyway. Capacity burned for nothing.
    ++wasted_completions_;
    return;
  }
  sim_.cancel(it->second.timeout_event);
  breaker_outcome(true, it->second.probe);
  ++client_succeeded_;
  in_flight_.erase(it);
}

void RetryGateway::fire_timeout(std::uint64_t attempt_id) {
  // Cold paths only: per-request forwarding (on_request/dispatch_attempt)
  // stays unscoped — two clock reads per request would not be low-overhead.
  ProfileScope profile(sim_.profiler(), ProfileCategory::kResilienceHook);
  auto it = in_flight_.find(attempt_id);
  if (it == in_flight_.end()) return;  // stale (cancelled) timeout
  const InFlight record = it->second;
  in_flight_.erase(it);
  ++client_timeouts_;
  if (telemetry_) telemetry_->client_timeout(sim_.now(), attempt_id);
  breaker_outcome(false, record.probe);
  handle_attempt_failure(record.request, record.attempt, record.prev_delay);
}

void RetryGateway::handle_attempt_failure(const Request& request,
                                          std::uint64_t attempt,
                                          SimTime prev_delay) {
  const std::size_t max_attempts = config_.retry.max_attempts;
  if (max_attempts != 0 && attempt >= max_attempts) {
    ++client_failed_;
    return;
  }
  const SimTime delay = next_backoff(prev_delay);
  const SimTime fire_at = sim_.now() + delay;
  if (fire_at >= request.deadline) {
    ++client_failed_;
    return;
  }
  if (config_.budget.enabled) {
    if (budget_tokens_ < 1.0) {
      ++retry_budget_denied_;
      ++client_failed_;
      if (telemetry_) telemetry_->retry_budget_exhausted(sim_.now(), request.id);
      return;
    }
    budget_tokens_ -= 1.0;
  }
  ++client_retries_;
  if (telemetry_) {
    telemetry_->retry_scheduled(sim_.now(), request.id, attempt + 1, delay);
  }
  const std::uint64_t token = next_retry_token_++;
  const EventId event =
      sim_.schedule_at(fire_at, [this, token] { fire_retry(token); });
  pending_retries_.emplace(token, Waiting{request, attempt + 1, delay, event});
}

void RetryGateway::fire_retry(std::uint64_t token) {
  ProfileScope profile(sim_.profiler(), ProfileCategory::kResilienceHook);
  auto it = pending_retries_.find(token);
  if (it == pending_retries_.end()) return;
  const Waiting record = it->second;
  pending_retries_.erase(it);
  dispatch_attempt(record.request, record.attempt, record.prev_delay);
}

SimTime RetryGateway::next_backoff(SimTime prev_delay) {
  if (config_.retry.backoff == RetryPolicyConfig::Backoff::kFixed) {
    return config_.retry.base;
  }
  // Decorrelated jitter (the AWS architecture-blog variant): each delay is
  // U(base, 3 * previous delay), clamped to the cap.
  const double hi = std::max(config_.retry.base, 3.0 * prev_delay);
  const double drawn = rng_.uniform(config_.retry.base, hi);
  return std::min(config_.retry.cap, drawn);
}

// --- circuit breaker ------------------------------------------------------

void RetryGateway::breaker_outcome(bool success, bool probe) {
  if (!config_.breaker.enabled) return;
  if (breaker_state_ == BreakerState::kHalfOpen) {
    // Only designated probes decide the half-open verdict; stragglers
    // admitted before the trip are ignored.
    if (!probe) return;
    if (!success) {
      breaker_open("half-open");
      return;
    }
    if (++probe_successes_ >= config_.breaker.half_open_probes) {
      breaker_state_ = BreakerState::kClosed;
      ++breaker_closes_;
      breaker_ring_.assign(config_.breaker.window, 0);
      breaker_ring_idx_ = 0;
      breaker_in_window_ = 0;
      breaker_failures_ = 0;
      if (telemetry_) {
        telemetry_->breaker_transition(sim_.now(), "half-open", "closed");
      }
    }
    return;
  }
  if (breaker_state_ == BreakerState::kOpen) return;  // stale outcomes
  // Closed: slide the outcome window and test the trip condition.
  const std::uint8_t failed = success ? 0 : 1;
  if (breaker_in_window_ == breaker_ring_.size()) {
    breaker_failures_ -= breaker_ring_[breaker_ring_idx_];
  } else {
    ++breaker_in_window_;
  }
  breaker_ring_[breaker_ring_idx_] = failed;
  breaker_failures_ += failed;
  breaker_ring_idx_ = (breaker_ring_idx_ + 1) % breaker_ring_.size();
  if (breaker_in_window_ >= config_.breaker.min_volume &&
      static_cast<double>(breaker_failures_) >=
          config_.breaker.failure_threshold *
              static_cast<double>(breaker_in_window_)) {
    breaker_open("closed");
  }
}

void RetryGateway::breaker_open(const char* from) {
  breaker_state_ = BreakerState::kOpen;
  breaker_opened_at_ = sim_.now();
  ++breaker_opens_;
  if (telemetry_) telemetry_->breaker_transition(sim_.now(), from, "open");
}

void RetryGateway::breaker_transition_to_half_open() {
  breaker_state_ = BreakerState::kHalfOpen;
  ++breaker_half_opens_;
  probes_issued_ = 0;
  probe_successes_ = 0;
  if (telemetry_) {
    telemetry_->breaker_transition(sim_.now(), "open", "half-open");
  }
}

// --- checkpoint/restore ---------------------------------------------------

RetryGateway::Snapshot RetryGateway::checkpoint() const {
  Snapshot snap;
  snap.rng = rng_.state();
  snap.budget_tokens = budget_tokens_;
  snap.breaker_state = static_cast<std::uint8_t>(breaker_state_);
  snap.breaker_opened_at = breaker_opened_at_;
  snap.breaker_ring = breaker_ring_;
  snap.breaker_ring_idx = breaker_ring_idx_;
  snap.breaker_in_window = breaker_in_window_;
  snap.breaker_failures = breaker_failures_;
  snap.probes_issued = probes_issued_;
  snap.probe_successes = probe_successes_;
  snap.next_retry_seq = next_retry_seq_;
  snap.client_requests = client_requests_;
  snap.client_succeeded = client_succeeded_;
  snap.client_failed = client_failed_;
  snap.client_attempts = client_attempts_;
  snap.client_retries = client_retries_;
  snap.retry_budget_denied = retry_budget_denied_;
  snap.client_timeouts = client_timeouts_;
  snap.wasted_completions = wasted_completions_;
  snap.breaker_opens = breaker_opens_;
  snap.breaker_half_opens = breaker_half_opens_;
  snap.breaker_closes = breaker_closes_;
  snap.breaker_fast_fails = breaker_fast_fails_;
  snap.in_flight.reserve(in_flight_.size());
  for (const auto& [attempt_id, record] : in_flight_) {
    const auto stamp = sim_.stamp(record.timeout_event);
    ensure(stamp.has_value(), "RetryGateway: in-flight timeout has no stamp");
    snap.in_flight.push_back(InFlightEntry{attempt_id, record.request,
                                           record.attempt, record.prev_delay,
                                           record.probe, *stamp});
  }
  std::sort(snap.in_flight.begin(), snap.in_flight.end(),
            [](const InFlightEntry& a, const InFlightEntry& b) {
              return a.attempt_id < b.attempt_id;
            });
  snap.retries.reserve(pending_retries_.size());
  for (const auto& [token, record] : pending_retries_) {
    const auto stamp = sim_.stamp(record.event);
    ensure(stamp.has_value(), "RetryGateway: pending retry has no stamp");
    snap.retries.push_back(
        PendingRetry{record.request, record.attempt, record.prev_delay, *stamp});
  }
  std::sort(snap.retries.begin(), snap.retries.end(),
            [](const PendingRetry& a, const PendingRetry& b) {
              return a.event.seq < b.event.seq;
            });
  return snap;
}

void RetryGateway::restore(const Snapshot& snap) {
  rng_.set_state(snap.rng);
  budget_tokens_ = snap.budget_tokens;
  breaker_state_ = static_cast<BreakerState>(snap.breaker_state);
  breaker_opened_at_ = snap.breaker_opened_at;
  breaker_ring_ = snap.breaker_ring;
  breaker_ring_idx_ = static_cast<std::size_t>(snap.breaker_ring_idx);
  breaker_in_window_ = static_cast<std::size_t>(snap.breaker_in_window);
  breaker_failures_ = static_cast<std::size_t>(snap.breaker_failures);
  probes_issued_ = static_cast<std::size_t>(snap.probes_issued);
  probe_successes_ = static_cast<std::size_t>(snap.probe_successes);
  next_retry_seq_ = snap.next_retry_seq;
  client_requests_ = snap.client_requests;
  client_succeeded_ = snap.client_succeeded;
  client_failed_ = snap.client_failed;
  client_attempts_ = snap.client_attempts;
  client_retries_ = snap.client_retries;
  retry_budget_denied_ = snap.retry_budget_denied;
  client_timeouts_ = snap.client_timeouts;
  wasted_completions_ = snap.wasted_completions;
  breaker_opens_ = snap.breaker_opens;
  breaker_half_opens_ = snap.breaker_half_opens;
  breaker_closes_ = snap.breaker_closes;
  breaker_fast_fails_ = snap.breaker_fast_fails;
  in_flight_.clear();
  for (const InFlightEntry& entry : snap.in_flight) {
    const std::uint64_t attempt_id = entry.attempt_id;
    const EventId timeout = sim_.schedule_stamped(
        entry.timeout_event, [this, attempt_id] { fire_timeout(attempt_id); });
    in_flight_.emplace(attempt_id, InFlight{entry.request, entry.attempt,
                                            entry.prev_delay, entry.probe,
                                            timeout});
  }
  pending_retries_.clear();
  next_retry_token_ = 0;
  for (const PendingRetry& entry : snap.retries) {
    const std::uint64_t token = next_retry_token_++;
    const EventId event = sim_.schedule_stamped(
        entry.event, [this, token] { fire_retry(token); });
    pending_retries_.emplace(
        token, Waiting{entry.request, entry.attempt, entry.prev_delay, event});
  }
}

}  // namespace cloudprov
