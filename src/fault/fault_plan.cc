#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace cloudprov {

bool FaultPlan::enabled() const {
  return vm_mtbf > 0.0 || host_mtbf > 0.0 || boot_fail_prob > 0.0 ||
         straggler_prob > 0.0 || degraded_mtbf > 0.0 || !outages.empty() ||
         !scripted.empty();
}

void FaultPlan::validate() const {
  ensure_arg(vm_mtbf >= 0.0, "FaultPlan: vm_mtbf must be >= 0");
  ensure_arg(host_mtbf >= 0.0, "FaultPlan: host_mtbf must be >= 0");
  ensure_arg(boot_fail_prob >= 0.0 && boot_fail_prob <= 1.0,
             "FaultPlan: boot_fail_prob must be in [0, 1]");
  ensure_arg(straggler_prob >= 0.0 && straggler_prob <= 1.0,
             "FaultPlan: straggler_prob must be in [0, 1]");
  ensure_arg(straggler_scale > 0.0, "FaultPlan: straggler_scale must be > 0");
  ensure_arg(straggler_shape > 0.0, "FaultPlan: straggler_shape must be > 0");
  ensure_arg(degraded_mtbf >= 0.0, "FaultPlan: degraded_mtbf must be >= 0");
  ensure_arg(degraded_factor > 0.0 && degraded_factor <= 1.0,
             "FaultPlan: degraded_factor must be in (0, 1]");
  ensure_arg(degraded_duration > 0.0,
             "FaultPlan: degraded_duration must be > 0");
  ensure_arg(idle_retry > 0.0, "FaultPlan: idle_retry must be > 0");
  for (const OutageWindow& w : outages) {
    ensure_arg(w.begin >= 0.0 && w.end > w.begin,
               "FaultPlan: outage window must satisfy 0 <= begin < end");
  }
  for (const ScriptedFault& f : scripted) {
    ensure_arg(f.time >= 0.0, "FaultPlan: scripted fault time must be >= 0");
  }
}

std::vector<OutageWindow> parse_outage_windows(const std::string& spec) {
  std::vector<OutageWindow> windows;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t colon = item.find(':');
    ensure_arg(colon != std::string::npos && colon > 0 &&
                   colon + 1 < item.size(),
               "parse_outage_windows: expected \"t0:t1[,t0:t1...]\"");
    char* end0 = nullptr;
    char* end1 = nullptr;
    OutageWindow w;
    w.begin = std::strtod(item.c_str(), &end0);
    w.end = std::strtod(item.c_str() + colon + 1, &end1);
    ensure_arg(end0 == item.c_str() + colon && *end1 == '\0',
               "parse_outage_windows: malformed number");
    ensure_arg(w.begin >= 0.0 && w.end > w.begin,
               "parse_outage_windows: need 0 <= t0 < t1");
    windows.push_back(w);
    pos = comma + 1;
  }
  return windows;
}

}  // namespace cloudprov
