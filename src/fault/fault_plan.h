// Declarative fault plan: which failure modes a scenario injects, at what
// rates, plus a deterministic script of timed faults.
//
// The paper motivates adaptive provisioning with the "uncertain behavior" of
// virtualized resources (Section I) but evaluates only a fault-free IaaS.
// The plan below makes that uncertainty a first-class, reproducible input:
// stochastic fault streams (VM crashes, correlated host crashes, boot
// failures, straggler boots, performance degradation) mix with scripted
// faults (crash host 3 at t=1800 s) and IaaS allocation-outage windows.
// FaultInjector (fault/fault_injector.h) executes a plan against a live
// Datacenter + ApplicationProvisioner pair.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace cloudprov {

/// Half-open window [begin, end) during which the IaaS allocation API is
/// down: Datacenter::create_vm returns nullptr regardless of capacity.
struct OutageWindow {
  SimTime begin = 0.0;
  SimTime end = 0.0;
};

/// A deterministic, timed fault — the reproducible complement of the
/// stochastic streams (e.g. "crash host 3 at t = 1800 s" to model a
/// correlated fault-domain loss regardless of the RNG seed).
struct ScriptedFault {
  enum class Kind : std::uint8_t {
    kHostCrash,  ///< target = host index
    kVmCrash,    ///< target = live-instance index at fire time (mod pool)
  };
  Kind kind = Kind::kHostCrash;
  SimTime time = 0.0;
  std::size_t target = 0;
};

struct FaultPlan {
  // --- stochastic streams (0 disables each) ------------------------------
  /// Mean time between crash-failures of one VM instance, seconds
  /// (exponential per-instance lifetime; pool rate = live / MTBF).
  double vm_mtbf = 0.0;
  /// Mean time between crash-failures of one occupied host, seconds.
  /// A host crash kills every VM placed on it (fault-domain failure).
  double host_mtbf = 0.0;
  /// Probability that a freshly created VM never finishes booting
  /// (BOOTING -> DESTROYED after its boot delay).
  double boot_fail_prob = 0.0;
  /// Probability that a boot is a straggler: the boot delay is stretched by
  /// a Pareto(straggler_scale, straggler_shape) heavy-tailed extra delay.
  double straggler_prob = 0.0;
  double straggler_scale = 30.0;
  double straggler_shape = 1.5;
  /// Mean time between degradation episodes of one instance, seconds.
  /// A degraded instance runs at degraded_factor speed for
  /// degraded_duration seconds, then recovers (noisy-neighbour model).
  double degraded_mtbf = 0.0;
  double degraded_factor = 0.5;
  SimTime degraded_duration = 300.0;

  // --- deterministic script ----------------------------------------------
  std::vector<OutageWindow> outages;
  std::vector<ScriptedFault> scripted;

  /// Re-check delay for the stochastic streams when their population is
  /// empty (no live VMs / no occupied hosts).
  SimTime idle_retry = 60.0;

  /// True when any fault source is configured; a disabled plan makes
  /// FaultInjector a no-op so fault-free runs stay byte-identical.
  bool enabled() const;
  /// Throws on nonsensical values (negative rates, probabilities outside
  /// [0,1], inverted windows, unsorted script).
  void validate() const;
};

/// Parses "t0:t1[,t0:t1...]" (seconds) into outage windows — the format of
/// the run_scenario --outage flag. Throws on malformed input.
std::vector<OutageWindow> parse_outage_windows(const std::string& spec);

}  // namespace cloudprov
