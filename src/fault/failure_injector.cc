#include "fault/failure_injector.h"

#include "util/check.h"

namespace cloudprov {

FailureInjector::FailureInjector(Simulation& sim,
                                 ApplicationProvisioner& provisioner,
                                 FailureConfig config, Rng rng)
    : sim_(sim), provisioner_(provisioner), config_(config), rng_(rng) {
  ensure_arg(config_.mtbf_per_instance > 0.0,
             "FailureInjector: MTBF must be positive");
  ensure_arg(config_.idle_retry > 0.0,
             "FailureInjector: idle retry must be positive");
}

void FailureInjector::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void FailureInjector::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = kInvalidEventId;
}

void FailureInjector::schedule_next() {
  const std::size_t live = provisioner_.live_instances();
  // Superposition of per-instance exponential lifetimes: the next failure
  // anywhere in the pool arrives at rate live / MTBF. The rate is
  // re-evaluated at every event, which approximates the size-varying pool
  // well at the provisioning cadence.
  const SimTime delay =
      live == 0 ? config_.idle_retry
                : rng_.exponential(static_cast<double>(live) /
                                   config_.mtbf_per_instance);
  pending_ = sim_.schedule_in(
      delay, EventAction::method<&FailureInjector::fire>(this));
}

void FailureInjector::fire() {
  if (!running_) return;
  const std::size_t live = provisioner_.live_instances();
  if (live > 0) {
    const auto victim = static_cast<std::size_t>(rng_.uniform_int(0, live - 1));
    provisioner_.inject_instance_failure(victim);
    ++failures_;
  }
  schedule_next();
}

}  // namespace cloudprov
