#include "fault/fault_injector.h"

#include "profile/wall_profiler.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

FaultInjector::FaultInjector(Simulation& sim, Datacenter& datacenter,
                             ApplicationProvisioner& provisioner,
                             FaultPlan plan, std::uint64_t seed)
    : sim_(sim),
      datacenter_(datacenter),
      provisioner_(provisioner),
      plan_(std::move(plan)),
      // Independent sub-streams per fault source: enabling or re-rating one
      // source never perturbs the draws of another.
      vm_rng_(SplitMix64(seed).next()),
      host_rng_(SplitMix64(seed ^ 0x9e3779b97f4a7c15ULL).next()),
      boot_rng_(SplitMix64(seed ^ 0x6a09e667f3bcc909ULL).next()),
      degrade_rng_(SplitMix64(seed ^ 0xbb67ae8584caa73bULL).next()) {
  plan_.validate();
}

void FaultInjector::start() {
  if (running_) return;
  running_ = true;
  if (plan_.vm_mtbf > 0.0) schedule_vm_crash();
  if (plan_.host_mtbf > 0.0) schedule_host_crash();
  if (plan_.degraded_mtbf > 0.0) schedule_degradation();
  if (plan_.boot_fail_prob > 0.0 || plan_.straggler_prob > 0.0) {
    install_boot_sampler();
  }
  schedule_outages();
  schedule_script();
}

void FaultInjector::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_vm_);
  sim_.cancel(pending_host_);
  sim_.cancel(pending_degrade_);
  pending_vm_ = pending_host_ = pending_degrade_ = kInvalidEventId;
  for (const TimedRecord& record : timed_events_) sim_.cancel(record.event);
  timed_events_.clear();
  datacenter_.set_boot_fault_sampler(nullptr);
  if (active_outages_ > 0) {
    active_outages_ = 0;
    datacenter_.set_allocation_suspended(false);
  }
}

// --- stochastic VM crashes -------------------------------------------------

void FaultInjector::schedule_vm_crash() {
  const std::size_t live = provisioner_.live_instances();
  // Superposition of per-instance exponential lifetimes: next crash anywhere
  // in the pool arrives at rate live / MTBF, re-evaluated at every event.
  const SimTime delay =
      live == 0
          ? plan_.idle_retry
          : vm_rng_.exponential(static_cast<double>(live) / plan_.vm_mtbf);
  pending_vm_ = sim_.schedule_in(
      delay, EventAction::method<&FaultInjector::fire_vm_crash>(this));
}

void FaultInjector::fire_vm_crash() {
  ProfileScope profile(sim_.profiler(), ProfileCategory::kFaultHook);
  if (!running_) return;
  const std::size_t live = provisioner_.live_instances();
  if (live > 0) {
    const auto victim =
        static_cast<std::size_t>(vm_rng_.uniform_int(0, live - 1));
    provisioner_.inject_instance_failure(victim);
    ++vm_crashes_;
  }
  schedule_vm_crash();
}

// --- correlated host crashes -----------------------------------------------

std::size_t FaultInjector::occupied_hosts() const {
  std::size_t count = 0;
  for (const auto& host : datacenter_.hosts()) {
    if (!host->failed() && host->vm_count() > 0) ++count;
  }
  return count;
}

void FaultInjector::schedule_host_crash() {
  const std::size_t occupied = occupied_hosts();
  const SimTime delay =
      occupied == 0 ? plan_.idle_retry
                    : host_rng_.exponential(static_cast<double>(occupied) /
                                            plan_.host_mtbf);
  pending_host_ = sim_.schedule_in(
      delay, EventAction::method<&FaultInjector::fire_host_crash>(this));
}

void FaultInjector::fire_host_crash() {
  ProfileScope profile(sim_.profiler(), ProfileCategory::kFaultHook);
  if (!running_) return;
  const std::size_t occupied = occupied_hosts();
  if (occupied > 0) {
    // Victim: the pick-th occupied host in index order.
    auto pick = static_cast<std::size_t>(
        host_rng_.uniform_int(0, occupied - 1));
    const auto& hosts = datacenter_.hosts();
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (hosts[i]->failed() || hosts[i]->vm_count() == 0) continue;
      if (pick == 0) {
        datacenter_.fail_host(i);
        ++host_crashes_;
        break;
      }
      --pick;
    }
  }
  schedule_host_crash();
}

// --- boot faults (failures + stragglers) -----------------------------------

void FaultInjector::install_boot_sampler() {
  datacenter_.set_boot_fault_sampler(
      [this](SimTime now, SimTime base_delay) {
        Datacenter::BootOutcome out{base_delay, false};
        // Draw only the streams whose probability is non-zero so enabling
        // one boot fault does not shift the other's sequence.
        if (plan_.straggler_prob > 0.0 &&
            boot_rng_.bernoulli(plan_.straggler_prob)) {
          out.boot_delay = base_delay + boot_rng_.pareto(plan_.straggler_scale,
                                                         plan_.straggler_shape);
          ++stragglers_;
          if (telemetry_ != nullptr) {
            telemetry_->boot_straggler(now, out.boot_delay);
          }
        }
        if (plan_.boot_fail_prob > 0.0 &&
            boot_rng_.bernoulli(plan_.boot_fail_prob)) {
          out.fail_boot = true;
          ++boot_failures_;
        }
        return out;
      });
}

// --- temporary performance degradation --------------------------------------

void FaultInjector::schedule_degradation() {
  const std::size_t active = provisioner_.active_instances();
  const SimTime delay =
      active == 0 ? plan_.idle_retry
                  : degrade_rng_.exponential(static_cast<double>(active) /
                                             plan_.degraded_mtbf);
  pending_degrade_ = sim_.schedule_in(
      delay, EventAction::method<&FaultInjector::fire_degradation>(this));
}

void FaultInjector::fire_degradation() {
  ProfileScope profile(sim_.profiler(), ProfileCategory::kFaultHook);
  if (!running_) return;
  std::vector<Vm*> actives;
  provisioner_.for_each_instance([&actives](Vm& vm) { actives.push_back(&vm); });
  if (!actives.empty()) {
    const auto pick = static_cast<std::size_t>(
        degrade_rng_.uniform_int(0, actives.size() - 1));
    Vm* victim = actives[pick];
    const double original = victim->spec().speed;
    victim->set_speed(original * plan_.degraded_factor);
    ++degradations_;
    if (telemetry_ != nullptr) {
      telemetry_->vm_degraded(sim_.now(), victim->id(), plan_.degraded_factor);
    }
    CLOUDPROV_LOG(Debug) << "vm-" << victim->id() << " degraded to "
                         << plan_.degraded_factor << "x at t=" << sim_.now();
    TimedRecord record;
    record.kind = TimedKind::kDegradeRestore;
    record.vm_id = victim->id();
    record.original_speed = original;
    schedule_timed(std::move(record), sim_.now() + plan_.degraded_duration,
                   std::nullopt);
  }
  schedule_degradation();
}

void FaultInjector::fire_degrade_restore(std::uint64_t vm_id,
                                         double original_speed) {
  Vm* victim = datacenter_.find_vm(vm_id);
  if (victim == nullptr || victim->state() == VmState::kDestroyed) return;
  victim->set_speed(original_speed);
  if (telemetry_ != nullptr) {
    telemetry_->vm_restored(sim_.now(), victim->id());
  }
}

// --- allocation outages + deterministic script -------------------------------

void FaultInjector::fire_outage_begin() {
  ++active_outages_;
  datacenter_.set_allocation_suspended(true);
  if (telemetry_ != nullptr) {
    telemetry_->allocation_outage(sim_.now(), /*begin=*/true);
  }
  CLOUDPROV_LOG(Info) << "IaaS allocation outage begins at t=" << sim_.now();
}

void FaultInjector::fire_outage_end() {
  ensure(active_outages_ > 0, "FaultInjector: outage accounting underflow");
  if (--active_outages_ == 0) datacenter_.set_allocation_suspended(false);
  if (telemetry_ != nullptr) {
    telemetry_->allocation_outage(sim_.now(), /*begin=*/false);
  }
  CLOUDPROV_LOG(Info) << "IaaS allocation outage ends at t=" << sim_.now();
}

void FaultInjector::fire_script(const ScriptedFault& fault) {
  switch (fault.kind) {
    case ScriptedFault::Kind::kHostCrash:
      if (fault.target < datacenter_.host_count() &&
          !datacenter_.hosts()[fault.target]->failed()) {
        datacenter_.fail_host(fault.target);
        ++host_crashes_;
      }
      break;
    case ScriptedFault::Kind::kVmCrash: {
      const std::size_t live = provisioner_.live_instances();
      if (live > 0) {
        provisioner_.inject_instance_failure(fault.target % live);
        ++vm_crashes_;
      }
      break;
    }
  }
}

void FaultInjector::schedule_timed(TimedRecord record, SimTime at,
                                   std::optional<EventStamp> stamp) {
  // Captures more than the kernel's 16-byte inline budget: boxed escape
  // hatch, once per rare fault edge — never on the serve path.
  auto fire = [this, kind = record.kind, script = record.script,
               vm_id = record.vm_id, speed = record.original_speed] {
    switch (kind) {
      case TimedKind::kOutageBegin:
        fire_outage_begin();
        break;
      case TimedKind::kOutageEnd:
        fire_outage_end();
        break;
      case TimedKind::kScript:
        fire_script(script);
        break;
      case TimedKind::kDegradeRestore:
        fire_degrade_restore(vm_id, speed);
        break;
    }
  };
  record.event = stamp ? sim_.schedule_stamped(*stamp, std::move(fire))
                       : sim_.schedule_at(at, std::move(fire));
  timed_events_.push_back(std::move(record));
}

void FaultInjector::schedule_outages() {
  // Edges already in the past (e.g. after a stop()/start() cycle) are
  // skipped pairwise so the suspension refcount stays balanced.
  for (const OutageWindow& window : plan_.outages) {
    if (window.end <= sim_.now()) continue;
    if (window.begin <= sim_.now()) {
      // Re-entering mid-window: raise the suspension immediately.
      ++active_outages_;
      datacenter_.set_allocation_suspended(true);
    } else {
      TimedRecord begin;
      begin.kind = TimedKind::kOutageBegin;
      schedule_timed(std::move(begin), window.begin, std::nullopt);
    }
    TimedRecord end;
    end.kind = TimedKind::kOutageEnd;
    schedule_timed(std::move(end), window.end, std::nullopt);
  }
}

void FaultInjector::schedule_script() {
  for (const ScriptedFault& fault : plan_.scripted) {
    if (fault.time <= sim_.now()) continue;  // already fired before a restart
    TimedRecord record;
    record.kind = TimedKind::kScript;
    record.script = fault;
    schedule_timed(std::move(record), fault.time, std::nullopt);
  }
}

FaultInjector::Snapshot FaultInjector::checkpoint() const {
  Snapshot snap;
  snap.vm_rng = vm_rng_.state();
  snap.host_rng = host_rng_.state();
  snap.boot_rng = boot_rng_.state();
  snap.degrade_rng = degrade_rng_.state();
  snap.running = running_;
  snap.pending_vm = sim_.stamp(pending_vm_);
  snap.pending_host = sim_.stamp(pending_host_);
  snap.pending_degrade = sim_.stamp(pending_degrade_);
  for (const TimedRecord& record : timed_events_) {
    if (auto stamp = sim_.stamp(record.event)) {
      snap.timed.push_back(Snapshot::Timed{record.kind, *stamp, record.script,
                                           record.vm_id,
                                           record.original_speed});
    }
  }
  snap.active_outages = active_outages_;
  snap.vm_crashes = vm_crashes_;
  snap.host_crashes = host_crashes_;
  snap.boot_failures = boot_failures_;
  snap.stragglers = stragglers_;
  snap.degradations = degradations_;
  return snap;
}

void FaultInjector::restore(const Snapshot& snap) {
  ensure(!running_ && timed_events_.empty(),
         "FaultInjector::restore: injector already started");
  vm_rng_.set_state(snap.vm_rng);
  host_rng_.set_state(snap.host_rng);
  boot_rng_.set_state(snap.boot_rng);
  degrade_rng_.set_state(snap.degrade_rng);
  vm_crashes_ = snap.vm_crashes;
  host_crashes_ = snap.host_crashes;
  boot_failures_ = snap.boot_failures;
  stragglers_ = snap.stragglers;
  degradations_ = snap.degradations;
  active_outages_ = snap.active_outages;
  running_ = snap.running;
  if (!running_) return;
  if (snap.pending_vm) {
    pending_vm_ = sim_.schedule_stamped(
        *snap.pending_vm, EventAction::method<&FaultInjector::fire_vm_crash>(this));
  }
  if (snap.pending_host) {
    pending_host_ = sim_.schedule_stamped(
        *snap.pending_host,
        EventAction::method<&FaultInjector::fire_host_crash>(this));
  }
  if (snap.pending_degrade) {
    pending_degrade_ = sim_.schedule_stamped(
        *snap.pending_degrade,
        EventAction::method<&FaultInjector::fire_degradation>(this));
  }
  for (const Snapshot::Timed& timed : snap.timed) {
    TimedRecord record;
    record.kind = timed.kind;
    record.script = timed.script;
    record.vm_id = timed.vm_id;
    record.original_speed = timed.original_speed;
    schedule_timed(std::move(record), 0.0, timed.stamp);
  }
  if (plan_.boot_fail_prob > 0.0 || plan_.straggler_prob > 0.0) {
    install_boot_sampler();
  }
  // Note: the datacenter's allocation-suspended flag is restored by the
  // Datacenter snapshot; only the refcount lives here.
}

}  // namespace cloudprov
