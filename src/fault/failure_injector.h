// Random instance-failure injection.
//
// The paper motivates adaptive provisioning with the "uncertain behavior" of
// virtualized resources ("the availability, load, and throughput of
// Cloud-based IT resources ... can vary in an unpredictable way",
// Section I) but does not evaluate failures. This injector makes that
// robustness testable: VMs crash-fail following an exponential per-instance
// lifetime, losing their in-flight requests; the adaptive mechanism heals
// the pool on its next provisioning cycle, while a static policy without a
// reconciler degrades permanently.
#pragma once

#include <cstdint>
#include <optional>

#include "core/application_provisioner.h"
#include "util/rng.h"

namespace cloudprov {

struct FailureConfig {
  /// Mean time between failures of one instance, seconds (exponential).
  double mtbf_per_instance = 24.0 * 3600.0;
  /// Re-check delay when the pool is empty.
  SimTime idle_retry = 60.0;
};

class FailureInjector {
 public:
  FailureInjector(Simulation& sim, ApplicationProvisioner& provisioner,
                  FailureConfig config, Rng rng);
  ~FailureInjector() { stop(); }
  FailureInjector(const FailureInjector&) = delete;
  FailureInjector& operator=(const FailureInjector&) = delete;

  void start();
  void stop();

  std::uint64_t failures_injected() const { return failures_; }

 private:
  void schedule_next();
  void fire();

  Simulation& sim_;
  ApplicationProvisioner& provisioner_;
  FailureConfig config_;
  Rng rng_;
  EventId pending_ = kInvalidEventId;
  bool running_ = false;
  std::uint64_t failures_ = 0;
};

}  // namespace cloudprov
