// Seeded fault-plan executor.
//
// Drives every fault source of a FaultPlan against a live Datacenter +
// ApplicationProvisioner pair: stochastic VM crashes, correlated host
// crashes (fault domains), boot failures and straggler boots (via the data
// center's boot-fault sampler hook), temporary performance degradation
// (noisy neighbours), IaaS allocation-outage windows, and a deterministic
// script of timed faults.
//
// Determinism: the injector owns four RNG sub-streams (VM crash, host
// crash, boot sampling, degradation) derived from one 64-bit seed via
// splitmix64, so fault arrivals are reproducible and independent of the
// workload/placement streams — changing a fault rate never perturbs the
// arrival process, and replications get independent fault streams through
// replication_seeds().
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/application_provisioner.h"
#include "fault/fault_plan.h"
#include "util/rng.h"

namespace cloudprov {

class FaultInjector {
 public:
  /// `seed` feeds all fault sub-streams; the plan is validated here.
  FaultInjector(Simulation& sim, Datacenter& datacenter,
                ApplicationProvisioner& provisioner, FaultPlan plan,
                std::uint64_t seed);
  ~FaultInjector() { stop(); }
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Attaches the replication's telemetry collector (null disables).
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Arms every configured fault source (idempotent). Scripted faults and
  /// outage edges are scheduled at absolute times, so start() should run
  /// before the simulation does.
  void start();
  /// Cancels all pending fault events, uninstalls the boot sampler, and
  /// lifts any active allocation suspension. Safe to call at any time,
  /// including while stochastic events are pending.
  void stop();
  bool running() const { return running_; }

  const FaultPlan& plan() const { return plan_; }

  // --- injection statistics ---------------------------------------------
  std::uint64_t vm_crashes() const { return vm_crashes_; }
  std::uint64_t host_crashes() const { return host_crashes_; }
  /// Boots the sampler planned to fail (the provisioner counts the
  /// failures that actually fired).
  std::uint64_t boot_failures_planned() const { return boot_failures_; }
  std::uint64_t stragglers() const { return stragglers_; }
  std::uint64_t degradations() const { return degradations_; }
  bool outage_active() const { return active_outages_ > 0; }

  // --- checkpoint support (src/lookahead) ---------------------------------
  /// Kinds of absolute-time fault events; each pending one is carried across
  /// a restore as a typed record plus its original event stamp.
  enum class TimedKind {
    kOutageBegin,
    kOutageEnd,
    kScript,
    kDegradeRestore,
  };
  struct Snapshot {
    Rng::State vm_rng;
    Rng::State host_rng;
    Rng::State boot_rng;
    Rng::State degrade_rng;
    bool running = false;
    std::optional<EventStamp> pending_vm;
    std::optional<EventStamp> pending_host;
    std::optional<EventStamp> pending_degrade;
    struct Timed {
      TimedKind kind = TimedKind::kScript;
      EventStamp stamp;
      ScriptedFault script{};       ///< kScript payload
      std::uint64_t vm_id = 0;      ///< kDegradeRestore victim
      double original_speed = 0.0;  ///< kDegradeRestore payload
    };
    std::vector<Timed> timed;
    std::size_t active_outages = 0;
    std::uint64_t vm_crashes = 0;
    std::uint64_t host_crashes = 0;
    std::uint64_t boot_failures = 0;
    std::uint64_t stragglers = 0;
    std::uint64_t degradations = 0;
  };
  Snapshot checkpoint() const;
  /// Re-arms all pending fault events under their original stamps and
  /// restores the RNG sub-streams. Use instead of start() on a fresh
  /// injector built with the same plan/seed; the allocation-suspension flag
  /// itself travels with the Datacenter snapshot.
  void restore(const Snapshot& snap);

 private:
  /// One pending absolute-time fault event; fired records keep their slot
  /// (the dead EventId makes them invisible to checkpoint/stop).
  struct TimedRecord {
    TimedKind kind = TimedKind::kScript;
    EventId event = kInvalidEventId;
    ScriptedFault script{};
    std::uint64_t vm_id = 0;
    double original_speed = 0.0;
  };

  void schedule_vm_crash();
  void fire_vm_crash();
  void schedule_host_crash();
  void fire_host_crash();
  void schedule_degradation();
  void fire_degradation();
  void install_boot_sampler();
  void schedule_outages();
  void schedule_script();
  /// Schedules the record's action; `stamp` re-pushes under an original
  /// stamp (restore), nullopt schedules at `at`.
  void schedule_timed(TimedRecord record, SimTime at,
                      std::optional<EventStamp> stamp);
  void fire_outage_begin();
  void fire_outage_end();
  void fire_script(const ScriptedFault& fault);
  void fire_degrade_restore(std::uint64_t vm_id, double original_speed);
  std::size_t occupied_hosts() const;

  Simulation& sim_;
  Datacenter& datacenter_;
  ApplicationProvisioner& provisioner_;
  FaultPlan plan_;
  Telemetry* telemetry_ = nullptr;

  Rng vm_rng_;
  Rng host_rng_;
  Rng boot_rng_;
  Rng degrade_rng_;

  bool running_ = false;
  EventId pending_vm_ = kInvalidEventId;
  EventId pending_host_ = kInvalidEventId;
  EventId pending_degrade_ = kInvalidEventId;
  /// Absolute-time events (script, outage edges, degradation restores) —
  /// cancelled wholesale by stop(), carried typed across checkpoints.
  std::vector<TimedRecord> timed_events_;
  std::size_t active_outages_ = 0;

  std::uint64_t vm_crashes_ = 0;
  std::uint64_t host_crashes_ = 0;
  std::uint64_t boot_failures_ = 0;
  std::uint64_t stragglers_ = 0;
  std::uint64_t degradations_ = 0;
};

}  // namespace cloudprov
