// Self-healing reconciler: periodically compares the live pool against the
// last commanded target and replaces crashed/failed instances.
//
// The paper's adaptive mechanism only resizes the pool on its provisioning
// cycle, and a static policy never resizes at all — so instance failures
// degrade both until (at best) the next cycle. The reconciler closes that
// gap Kubernetes-style: observe (active vs commanded target), diff, act
// (scale_to the target again). Heals that fall short — e.g. during an IaaS
// allocation outage — are retried with exponential backoff up to a bounded
// retry budget; after the budget is exhausted the reconciler emits one
// abort event and degrades to plain interval-cadence checking (no retry
// storm, no deadlock) until the pool heals. The ladder survives commanded-
// target changes mid-deficit: only an actually healed pool resets it, so a
// policy re-commanding targets during an outage cannot restart fast retries.
#pragma once

#include <cstdint>
#include <optional>

#include "core/application_provisioner.h"

namespace cloudprov {

struct ReconcilerConfig {
  /// Master switch (scenario configs embed this struct; default off keeps
  /// fault-free runs byte-identical).
  bool enabled = false;
  /// Seconds between reconcile checks.
  SimTime interval = 30.0;
  /// First retry delay after a heal falls short of the target.
  SimTime backoff_base = 5.0;
  /// Multiplier applied per consecutive failed heal.
  double backoff_factor = 2.0;
  /// Retry delays are capped here (full backoff, no jitter: determinism
  /// matters more than herd avoidance inside one simulated application).
  SimTime backoff_max = 300.0;
  /// Failed heals tolerated before the abort event; afterwards the
  /// reconciler keeps checking at `interval` cadence without escalation.
  std::uint64_t max_retries = 8;
};

class Reconciler {
 public:
  Reconciler(Simulation& sim, ApplicationProvisioner& provisioner,
             ReconcilerConfig config);
  ~Reconciler() { stop(); }
  Reconciler(const Reconciler&) = delete;
  Reconciler& operator=(const Reconciler&) = delete;

  /// Attaches the replication's telemetry collector (null disables).
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Schedules the first check one interval from now (idempotent).
  void start();
  /// Cancels the pending check/retry (safe while one is in flight).
  void stop();
  bool running() const { return running_; }

  const ReconcilerConfig& config() const { return config_; }

  // --- reconciliation statistics ----------------------------------------
  /// Passes that found a deficit and commanded a heal (scale_to).
  std::uint64_t heals() const { return heals_; }
  /// Backoff retries scheduled after a heal fell short.
  std::uint64_t retries() const { return retries_; }
  /// Retry budgets exhausted (one per deficit episode at most).
  std::uint64_t aborts() const { return aborts_; }
  /// True while the reconciler has given up on backoff escalation for the
  /// current deficit episode.
  bool in_aborted_state() const { return aborted_; }

  // --- checkpoint support (src/lookahead) ---------------------------------
  struct Snapshot {
    bool running = false;
    std::optional<EventStamp> pending;
    std::size_t last_target = 0;
    std::uint64_t attempt = 0;
    SimTime next_backoff = 0.0;
    bool aborted = false;
    std::uint64_t heals = 0;
    std::uint64_t retries = 0;
    std::uint64_t aborts = 0;
  };
  Snapshot checkpoint() const;
  /// Re-arms the pending check under its original stamp. Use instead of
  /// start() on a fresh reconciler with the same configuration.
  void restore(const Snapshot& snap);

 private:
  void tick();
  void schedule(SimTime delay);

  Simulation& sim_;
  ApplicationProvisioner& provisioner_;
  ReconcilerConfig config_;
  Telemetry* telemetry_ = nullptr;

  bool running_ = false;
  EventId pending_ = kInvalidEventId;
  std::size_t last_target_ = 0;
  std::uint64_t attempt_ = 0;
  SimTime next_backoff_ = 0.0;
  bool aborted_ = false;

  std::uint64_t heals_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t aborts_ = 0;
};

}  // namespace cloudprov
