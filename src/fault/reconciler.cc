#include "fault/reconciler.h"

#include <algorithm>

#include "profile/wall_profiler.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

Reconciler::Reconciler(Simulation& sim, ApplicationProvisioner& provisioner,
                       ReconcilerConfig config)
    : sim_(sim),
      provisioner_(provisioner),
      config_(config),
      next_backoff_(config.backoff_base) {
  ensure_arg(config_.interval > 0.0, "Reconciler: interval must be > 0");
  ensure_arg(config_.backoff_base > 0.0,
             "Reconciler: backoff_base must be > 0");
  ensure_arg(config_.backoff_factor >= 1.0,
             "Reconciler: backoff_factor must be >= 1");
  ensure_arg(config_.backoff_max >= config_.backoff_base,
             "Reconciler: backoff_max must be >= backoff_base");
}

void Reconciler::start() {
  if (running_) return;
  running_ = true;
  schedule(config_.interval);
}

void Reconciler::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = kInvalidEventId;
}

Reconciler::Snapshot Reconciler::checkpoint() const {
  Snapshot snap;
  snap.running = running_;
  snap.pending = sim_.stamp(pending_);
  snap.last_target = last_target_;
  snap.attempt = attempt_;
  snap.next_backoff = next_backoff_;
  snap.aborted = aborted_;
  snap.heals = heals_;
  snap.retries = retries_;
  snap.aborts = aborts_;
  return snap;
}

void Reconciler::restore(const Snapshot& snap) {
  ensure(!running_, "Reconciler::restore: reconciler already started");
  running_ = snap.running;
  last_target_ = snap.last_target;
  attempt_ = snap.attempt;
  next_backoff_ = snap.next_backoff;
  aborted_ = snap.aborted;
  heals_ = snap.heals;
  retries_ = snap.retries;
  aborts_ = snap.aborts;
  if (snap.pending) {
    pending_ = sim_.schedule_stamped(
        *snap.pending, EventAction::method<&Reconciler::tick>(this));
  }
}

void Reconciler::schedule(SimTime delay) {
  pending_ = sim_.schedule_in(
      delay, EventAction::method<&Reconciler::tick>(this));
}

void Reconciler::tick() {
  ProfileScope profile(sim_.profiler(), ProfileCategory::kReconcilerHook);
  if (!running_) return;
  const std::size_t target = provisioner_.commanded_target();
  // A changed commanded target does NOT reset the backoff ladder: if the
  // deficit persists (say the IaaS allocation API is in an outage), resetting
  // on every policy re-command would restart fast retries and hammer the
  // provider for the whole outage. The ladder resets only when the pool
  // actually reaches the target below.
  last_target_ = target;
  const std::size_t active = provisioner_.active_instances();
  if (active >= target) {
    attempt_ = 0;
    next_backoff_ = config_.backoff_base;
    aborted_ = false;
    schedule(config_.interval);
    return;
  }
  // Deficit: re-command the target; scale_to resurrects draining instances
  // first and then requests fresh VMs, so this is the full heal action.
  const std::size_t achieved = provisioner_.scale_to(target);
  ++heals_;
  if (telemetry_ != nullptr) {
    telemetry_->reconcile(sim_.now(), target, active, achieved);
  }
  CLOUDPROV_LOG(Debug) << "reconcile at t=" << sim_.now() << ": active "
                       << active << " -> " << achieved << " (target " << target
                       << ")";
  if (achieved >= target) {
    attempt_ = 0;
    next_backoff_ = config_.backoff_base;
    aborted_ = false;
    schedule(config_.interval);
    return;
  }
  if (aborted_) {
    // Retry budget already spent for this episode; keep checking at the
    // plain cadence so a later capacity recovery still heals the pool.
    schedule(config_.interval);
    return;
  }
  if (attempt_ >= config_.max_retries) {
    aborted_ = true;
    ++aborts_;
    if (telemetry_ != nullptr) {
      telemetry_->reconcile_abort(sim_.now(), attempt_);
    }
    CLOUDPROV_LOG(Warn) << "reconciler giving up backoff escalation after "
                        << attempt_ << " retries at t=" << sim_.now();
    schedule(config_.interval);
    return;
  }
  ++attempt_;
  ++retries_;
  const SimTime backoff = next_backoff_;
  next_backoff_ = std::min(config_.backoff_max,
                           next_backoff_ * config_.backoff_factor);
  if (telemetry_ != nullptr) {
    telemetry_->reconcile_retry(sim_.now(), attempt_, backoff);
  }
  schedule(backoff);
}

}  // namespace cloudprov
