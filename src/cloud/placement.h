// VM placement policies (Resource Provisioning, Section II).
//
// The paper treats host selection as the IaaS provider's concern and uses a
// simple load-balancing rule: "new VMs are created, if possible, in the host
// with fewer running virtualized application instances" (Section V-A). That
// rule is LeastLoadedPlacement; FirstFit and Random are provided as
// alternatives for sensitivity experiments.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/host.h"
#include "util/rng.h"

namespace cloudprov {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Picks a host able to fit `vm`, or nullptr when the data center is full.
  virtual Host* select(std::vector<std::unique_ptr<Host>>& hosts,
                       const VmSpec& vm) = 0;

  virtual std::string name() const = 0;
};

/// Paper default: host with the fewest resident VMs that still fits the VM.
class LeastLoadedPlacement final : public PlacementPolicy {
 public:
  Host* select(std::vector<std::unique_ptr<Host>>& hosts, const VmSpec& vm) override;
  std::string name() const override { return "least-loaded"; }
};

/// First host (by id order) with capacity; packs hosts densely.
class FirstFitPlacement final : public PlacementPolicy {
 public:
  Host* select(std::vector<std::unique_ptr<Host>>& hosts, const VmSpec& vm) override;
  std::string name() const override { return "first-fit"; }
};

/// Uniformly random host among those with capacity.
class RandomPlacement final : public PlacementPolicy {
 public:
  explicit RandomPlacement(Rng rng) : rng_(rng) {}
  Host* select(std::vector<std::unique_ptr<Host>>& hosts, const VmSpec& vm) override;
  std::string name() const override { return "random"; }

 private:
  Rng rng_;
};

}  // namespace cloudprov
