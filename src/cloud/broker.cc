#include "cloud/broker.h"

#include "util/check.h"

namespace cloudprov {

Broker::Broker(Simulation& sim, RequestSource& source, RequestSink& sink, Rng rng)
    : Entity(sim, "broker"), source_(source), sink_(sink), rng_(rng) {}

void Broker::start() { deliver_next(); }

void Broker::record_rate_series(SimTime window) {
  ensure_arg(window > 0.0, "Broker: rate window must be > 0");
  record_rates_ = true;
  rate_window_ = window;
  window_start_ = now();
}

void Broker::flush_rate_window(SimTime arrival_time) {
  while (arrival_time >= window_start_ + rate_window_) {
    rate_series_.add(window_start_,
                     static_cast<double>(window_count_) / rate_window_);
    window_start_ += rate_window_;
    window_count_ = 0;
  }
}

void Broker::deliver_next() {
  const auto arrival = source_.next(rng_);
  if (!arrival) {
    pending_event_ = kInvalidEventId;
    return;  // workload exhausted
  }
  ensure(arrival->time >= now(), "Broker: source produced a past arrival");
  pending_arrival_ = *arrival;
  pending_event_ = sim().schedule_at(
      arrival->time, EventAction::method<&Broker::fire_arrival>(this));
}

Broker::Snapshot Broker::snapshot() const {
  Snapshot s;
  s.rng = rng_.state();
  s.generated = generated_;
  s.next_request_id = next_request_id_;
  s.pending_arrival = pending_arrival_;
  s.pending_event = sim().stamp(pending_event_);
  return s;
}

void Broker::restore(const Snapshot& s) {
  rng_.set_state(s.rng);
  generated_ = s.generated;
  next_request_id_ = s.next_request_id;
  pending_arrival_ = s.pending_arrival;
  if (s.pending_event.has_value()) {
    pending_event_ = sim().schedule_stamped(
        *s.pending_event, EventAction::method<&Broker::fire_arrival>(this));
  }
}

void Broker::fire_arrival() {
  const Arrival a = pending_arrival_;
  Request request;
  request.id = next_request_id_++;
  request.arrival_time = a.time;
  request.service_demand = a.service_demand;
  request.priority = a.priority;
  request.deadline = a.deadline;
  request.key = a.key;
  ++generated_;
  if (record_rates_) {
    flush_rate_window(a.time);
    ++window_count_;
  }
  sink_.on_request(request);
  deliver_next();
}

}  // namespace cloudprov
