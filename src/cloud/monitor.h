// Monitoring abstraction.
//
// The paper's performance modeler consumes "monitoring data ... obtained via
// regular monitoring tools or by Cloud monitoring services such as Amazon
// CloudWatch" (Section IV-B). This interface carries exactly the quantities
// the modeler is allowed to see — observed service time, utilization, and
// instance counts — and nothing about hosts or networks, enforcing the
// paper's information boundary between IaaS and PaaS at the type level.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace cloudprov {

struct MonitoringSnapshot {
  SimTime time = 0.0;
  /// Tm: monitored average request execution time (service only, no queueing).
  double mean_service_time = 0.0;
  /// Requests completed since the previous snapshot window.
  std::uint64_t completed_requests = 0;
  /// Observed arrival rate at the provisioner over the last window.
  double observed_arrival_rate = 0.0;
  /// Busy fraction of the instance pool over the last window.
  double pool_utilization = 0.0;
  /// Instances currently accepting requests.
  std::size_t active_instances = 0;
};

class MonitorSource {
 public:
  virtual ~MonitorSource() = default;
  virtual MonitoringSnapshot snapshot() const = 0;
};

}  // namespace cloudprov
