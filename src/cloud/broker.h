// Broker: drives a RequestSource into the simulation.
//
// "Simulation model also contains one broker generating requests
// representing several users" (Section V-A). The broker pulls arrivals from
// the workload model one at a time (so only the next arrival is ever pending
// in the event queue) and hands each to a RequestSink — the SaaS provider's
// admission control in the full system.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/entity.h"
#include "stats/timeseries.h"
#include "workload/request.h"
#include "workload/source.h"

namespace cloudprov {

/// Receiver of end-user requests (implemented by the application
/// provisioner; by test fixtures in unit tests).
class RequestSink {
 public:
  virtual ~RequestSink() = default;
  virtual void on_request(const Request& request) = 0;
};

class Broker final : public Entity {
 public:
  /// `source` and `sink` must outlive the broker. `rng` is the broker's
  /// private stream. Call start() to schedule the first arrival.
  Broker(Simulation& sim, RequestSource& source, RequestSink& sink, Rng rng);

  void start();

  std::uint64_t generated() const { return generated_; }

  /// Arrival counts per fixed window, recorded for rate plots
  /// (Figures 3 and 4). Disabled unless enabled explicitly.
  void record_rate_series(SimTime window);
  const SampledSeries& rate_series() const { return rate_series_; }

  // --- snapshot/restore (src/lookahead) ---------------------------------
  /// RNG stream, counters, and the one in-flight arrival with its event
  /// stamp. Rate-series recording (plots only) is not checkpointed.
  struct Snapshot {
    Rng::State rng;
    std::uint64_t generated = 0;
    std::uint64_t next_request_id = 1;
    Arrival pending_arrival;
    std::optional<EventStamp> pending_event;
  };
  Snapshot snapshot() const;
  /// Restores counters/stream and re-arms the pending arrival. Use instead
  /// of start(); the source must already be positioned consistently (the
  /// restoring side rebuilds it from its own snapshot).
  void restore(const Snapshot& snap);

 private:
  void deliver_next();
  void fire_arrival();
  void flush_rate_window(SimTime arrival_time);

  RequestSource& source_;
  RequestSink& sink_;
  Rng rng_;
  std::uint64_t generated_ = 0;
  std::uint64_t next_request_id_ = 1;
  // The one in-flight arrival, stored here so the scheduled event is a bare
  // {target, method} inline delegate — no per-arrival allocation; the web
  // scenario schedules half a billion of these per replication.
  Arrival pending_arrival_;
  EventId pending_event_ = kInvalidEventId;

  // Rate-series recording.
  bool record_rates_ = false;
  SimTime rate_window_ = 0.0;
  SimTime window_start_ = 0.0;
  std::uint64_t window_count_ = 0;
  SampledSeries rate_series_;
};

}  // namespace cloudprov
