#include "cloud/placement.h"

namespace cloudprov {

Host* LeastLoadedPlacement::select(std::vector<std::unique_ptr<Host>>& hosts,
                                   const VmSpec& vm) {
  Host* best = nullptr;
  for (const auto& host : hosts) {
    if (!host->can_fit(vm)) continue;
    if (best == nullptr || host->vm_count() < best->vm_count()) {
      best = host.get();
    }
  }
  return best;
}

Host* FirstFitPlacement::select(std::vector<std::unique_ptr<Host>>& hosts,
                                const VmSpec& vm) {
  for (const auto& host : hosts) {
    if (host->can_fit(vm)) return host.get();
  }
  return nullptr;
}

Host* RandomPlacement::select(std::vector<std::unique_ptr<Host>>& hosts,
                              const VmSpec& vm) {
  std::vector<Host*> candidates;
  candidates.reserve(hosts.size());
  for (const auto& host : hosts) {
    if (host->can_fit(vm)) candidates.push_back(host.get());
  }
  if (candidates.empty()) return nullptr;
  const auto index = rng_.uniform_int(0, candidates.size() - 1);
  return candidates[index];
}

}  // namespace cloudprov
