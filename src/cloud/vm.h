// Virtualized application instance.
//
// The paper assumes a one-to-one mapping between application instances (s_j)
// and VMs (v_j), so this class is both: a single-server FIFO queue pinned to
// dedicated cores of a host (no CPU time-sharing, Section V-A), processing
// one request at a time at `speed` work-units/second.
//
// Lifecycle (Section IV-C): BOOTING -> RUNNING -> DRAINING -> DESTROYED.
// A draining instance "stops receiving further incoming requests and is
// destroyed only when running requests finish"; scale-ups may resurrect a
// draining instance back to RUNNING instead of booting a new one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/entity.h"
#include "util/ring_buffer.h"
#include "workload/request.h"

namespace cloudprov {

class Telemetry;

enum class VmState { kBooting, kRunning, kDraining, kDestroyed };

const char* to_string(VmState state);

/// Why an instance crash-failed (the fault taxonomy of src/fault): an
/// independent VM crash, a correlated host crash taking every pinned VM
/// down, a boot that never produced a usable instance, the provisioner's
/// boot-timeout watchdog giving up on a straggler, or the IaaS spot market
/// reclaiming a revoked instance whose drain notice expired (src/market).
enum class FaultCause : std::uint8_t {
  kVmCrash = 0,
  kHostCrash = 1,
  kBootFailure = 2,
  kBootTimeout = 3,
  kSpotRevocation = 4,
};
inline constexpr std::size_t kFaultCauseCount = 5;

const char* to_string(FaultCause cause);

/// Resource shape of a VM ("one core and 2GB of RAM", Section V-A).
struct VmSpec {
  unsigned cores = 1;
  double ram_gb = 2.0;
  /// Processing speed multiplier; service time = demand / speed. Values
  /// other than 1.0 exercise the vertical-scaling extension (Section VII).
  double speed = 1.0;
};

class Vm final : public Entity {
 public:
  /// Invoked when a request completes service. `response_time` is measured
  /// from arrival at the provisioner to completion (the paper's Tr).
  using CompletionCallback =
      std::function<void(Vm&, const Request&, double response_time)>;
  /// Invoked when a DRAINING instance finishes its last request.
  using DrainedCallback = std::function<void(Vm&)>;
  /// Invoked exactly once when the instance crash-fails (fail() or a planned
  /// boot failure), after the transition to DESTROYED. `lost` holds the
  /// in-flight requests that died with the instance. The owner uses this to
  /// drop the VM from its dispatch lists and release host resources.
  using FailureCallback =
      std::function<void(Vm&, FaultCause, const std::vector<Request>& lost)>;

  /// `fail_boot` plans a boot failure: the VM starts BOOTING (even with a
  /// zero boot delay) and transitions to DESTROYED — firing the failure
  /// callback — when the boot would have completed, modeling an IaaS
  /// instance that never comes up.
  Vm(Simulation& sim, std::uint64_t id, VmSpec spec, SimTime boot_delay = 0.0,
     bool fail_boot = false);

  /// Value snapshot of one instance for checkpoint/restore (src/lookahead):
  /// every accounting field plus the stamps of the pending boot/completion
  /// events, so a restored twin replays the exact same event order. The
  /// owner's callbacks are not captured — they bind to live objects and are
  /// re-installed by the restored provisioner.
  struct Snapshot {
    std::uint64_t id = 0;
    VmSpec spec;
    VmState state = VmState::kRunning;
    bool boot_fail = false;
    bool revoked = false;
    bool priority_queueing = false;
    std::vector<Request> waiting;  ///< front-relative FIFO order
    std::optional<Request> in_service;
    SimTime service_started = 0.0;
    SimTime creation_time = 0.0;
    std::optional<SimTime> destruction_time;
    double busy_seconds = 0.0;
    std::uint64_t completed = 0;
    /// Armed boot event. Present even for instances destroyed while booting:
    /// their stale finish_boot still pops (as a no-op) and counts towards
    /// executed_events(), which paces telemetry engine sampling.
    std::optional<EventStamp> boot_event;
    std::optional<EventStamp> completion_event;
  };

  Snapshot snapshot() const;

  /// Restore constructor: rebuilds the instance from a snapshot and
  /// re-pushes its pending events under their original stamps.
  Vm(Simulation& sim, const Snapshot& snap);

  std::uint64_t id() const { return id_; }
  const VmSpec& spec() const { return spec_; }
  VmState state() const { return state_; }

  void set_completion_callback(CompletionCallback cb) { on_complete_ = std::move(cb); }
  void set_drained_callback(DrainedCallback cb) { on_drained_ = std::move(cb); }
  void set_failure_callback(FailureCallback cb) { on_failed_ = std::move(cb); }

  /// Attaches the replication's telemetry collector (null disables); the
  /// data center wires this up at creation so lifecycle transitions
  /// (boot/drain/resurrect) land in the trace.
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Accepts a request (queue it or start service). Only legal while
  /// RUNNING; the provisioner enforces admission control (the k bound)
  /// before calling.
  void submit(const Request& request);

  /// Switches the waiting-line discipline from FIFO (default, the paper's
  /// model) to non-preemptive priority order (higher Request::priority
  /// first, FIFO within a class) — the scheduling half of the Section VII
  /// "high-priority requests are served first" extension. The in-service
  /// request is never preempted.
  void set_priority_queueing(bool enabled) { priority_queueing_ = enabled; }
  bool priority_queueing() const { return priority_queueing_; }

  /// Requests in the instance (in service + waiting): the paper's per-VM
  /// occupancy compared against k by admission control.
  std::size_t load() const {
    return waiting_.size() + (in_service_.has_value() ? 1 : 0);
  }
  bool idle() const { return load() == 0; }

  /// Stops accepting work; destroys itself (via callback) once empty.
  void drain();

  /// Returns a DRAINING instance to RUNNING (paper: instances selected for
  /// destruction are reused "until the number of required instances is
  /// reached").
  void undrain();

  /// Immediately tears down an *empty* instance. Precondition: idle().
  void destroy();

  /// Crash-fails the instance: the in-service request and every queued
  /// request are lost (returned so the caller can account for them), the
  /// pending completion is cancelled, and the VM transitions to DESTROYED.
  /// The failure callback (if set) fires exactly once, after the state
  /// transition. Models the paper's "uncertain behavior" of virtualized
  /// resources.
  std::vector<Request> fail(FaultCause cause = FaultCause::kVmCrash);

  /// True when this VM was created with a planned boot failure.
  bool boot_failure_planned() const { return boot_fail_; }

  /// Spot-market revocation notice (src/market): a revoked instance drains
  /// normally but must not be resurrected by scale-ups — the market will
  /// reclaim it when the notice expires. Sticky: revocations are never
  /// rescinded.
  void set_revoked() { revoked_ = true; }
  bool revoked() const { return revoked_; }

  /// Changes processing speed (vertical scaling extension). Applies to
  /// subsequently started requests; the in-flight one finishes at the speed
  /// it started with.
  void set_speed(double speed);

  // --- accounting -----------------------------------------------------
  SimTime creation_time() const { return creation_time_; }
  /// Destruction time, or nullopt while alive.
  std::optional<SimTime> destruction_time() const { return destruction_time_; }
  /// Cumulative seconds spent serving requests (utilization numerator).
  double busy_seconds() const;
  /// Wall-clock seconds from creation until destruction (or `now`): the
  /// paper's per-VM contribution to "VM hours".
  double lifetime_seconds(SimTime now) const;
  std::uint64_t completed_requests() const { return completed_; }

 private:
  void start_service(const Request& request);
  void finish_service();
  void finish_boot();

  std::uint64_t id_;
  VmSpec spec_;
  VmState state_;
  CompletionCallback on_complete_;
  DrainedCallback on_drained_;
  FailureCallback on_failed_;
  Telemetry* telemetry_ = nullptr;
  bool boot_fail_ = false;
  bool revoked_ = false;

  bool priority_queueing_ = false;
  RingBuffer<Request> waiting_;
  std::optional<Request> in_service_;
  EventId boot_event_ = kInvalidEventId;
  EventId completion_event_ = kInvalidEventId;
  SimTime service_started_ = 0.0;

  SimTime creation_time_;
  std::optional<SimTime> destruction_time_;
  double busy_seconds_ = 0.0;
  std::uint64_t completed_ = 0;
};

}  // namespace cloudprov
