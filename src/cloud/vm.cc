#include "cloud/vm.h"

#include <iterator>

#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

const char* to_string(VmState state) {
  switch (state) {
    case VmState::kBooting: return "BOOTING";
    case VmState::kRunning: return "RUNNING";
    case VmState::kDraining: return "DRAINING";
    case VmState::kDestroyed: return "DESTROYED";
  }
  return "?";
}

const char* to_string(FaultCause cause) {
  switch (cause) {
    case FaultCause::kVmCrash: return "vm_crash";
    case FaultCause::kHostCrash: return "host_crash";
    case FaultCause::kBootFailure: return "boot_failure";
    case FaultCause::kBootTimeout: return "boot_timeout";
    case FaultCause::kSpotRevocation: return "spot_revocation";
  }
  return "?";
}

Vm::Vm(Simulation& sim, std::uint64_t id, VmSpec spec, SimTime boot_delay,
       bool fail_boot)
    : Entity(sim, "vm-" + std::to_string(id)),
      id_(id),
      spec_(spec),
      state_(boot_delay > 0.0 || fail_boot ? VmState::kBooting
                                           : VmState::kRunning),
      boot_fail_(fail_boot),
      creation_time_(sim.now()) {
  ensure_arg(spec.cores >= 1, "Vm: need at least one core");
  ensure_arg(spec.speed > 0.0, "Vm: speed must be positive");
  ensure_arg(boot_delay >= 0.0, "Vm: boot delay must be >= 0");
  if (state_ == VmState::kBooting) {
    boot_event_ =
        sim.schedule_in(boot_delay, EventAction::method<&Vm::finish_boot>(this));
  }
}

Vm::Snapshot Vm::snapshot() const {
  Snapshot s;
  s.id = id_;
  s.spec = spec_;
  s.state = state_;
  s.boot_fail = boot_fail_;
  s.revoked = revoked_;
  s.priority_queueing = priority_queueing_;
  s.waiting.reserve(waiting_.size());
  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    s.waiting.push_back(waiting_[i]);
  }
  s.in_service = in_service_;
  s.service_started = service_started_;
  s.creation_time = creation_time_;
  s.destruction_time = destruction_time_;
  s.busy_seconds = busy_seconds_;
  s.completed = completed_;
  s.boot_event = sim().stamp(boot_event_);
  s.completion_event = sim().stamp(completion_event_);
  return s;
}

Vm::Vm(Simulation& sim, const Snapshot& s)
    : Entity(sim, "vm-" + std::to_string(s.id)),
      id_(s.id),
      spec_(s.spec),
      state_(s.state),
      boot_fail_(s.boot_fail),
      revoked_(s.revoked),
      priority_queueing_(s.priority_queueing),
      in_service_(s.in_service),
      service_started_(s.service_started),
      creation_time_(s.creation_time),
      destruction_time_(s.destruction_time),
      busy_seconds_(s.busy_seconds),
      completed_(s.completed) {
  for (const Request& request : s.waiting) waiting_.push_back(request);
  if (s.boot_event.has_value()) {
    boot_event_ = sim.schedule_stamped(
        *s.boot_event, EventAction::method<&Vm::finish_boot>(this));
  }
  if (s.completion_event.has_value()) {
    completion_event_ = sim.schedule_stamped(
        *s.completion_event, EventAction::method<&Vm::finish_service>(this));
  }
}

void Vm::finish_boot() {
  if (state_ != VmState::kBooting) return;  // destroyed while booting
  if (boot_fail_) {
    CLOUDPROV_LOG(Debug) << name() << " boot failed at t=" << now();
    (void)fail(FaultCause::kBootFailure);
    return;
  }
  state_ = VmState::kRunning;
  if (telemetry_ != nullptr) telemetry_->vm_boot_complete(now(), id_);
  CLOUDPROV_LOG(Debug) << name() << " booted at t=" << now();
}

void Vm::submit(const Request& request) {
  ensure(state_ == VmState::kRunning, "Vm::submit on non-RUNNING instance");
  if (in_service_.has_value()) {
    if (priority_queueing_) {
      // Insert behind the last waiter of priority >= ours: non-preemptive
      // priority order, FIFO within a class.
      std::size_t position = waiting_.size();
      while (position > 0 &&
             waiting_[position - 1].priority < request.priority) {
        --position;
      }
      waiting_.insert(position, request);
    } else {
      waiting_.push_back(request);
    }
    return;
  }
  start_service(request);
}

void Vm::start_service(const Request& request) {
  in_service_ = request;
  service_started_ = now();
  if (telemetry_ != nullptr) {
    telemetry_->request_service_start(now(), request.id, id_);
  }
  const double service_time = request.service_demand / spec_.speed;
  completion_event_ = sim().schedule_in(
      service_time, EventAction::method<&Vm::finish_service>(this));
}

void Vm::finish_service() {
  ensure(in_service_.has_value(), "Vm::finish_service without a request");
  const Request finished = *in_service_;
  in_service_.reset();
  completion_event_ = kInvalidEventId;
  busy_seconds_ += now() - service_started_;
  ++completed_;

  if (!waiting_.empty()) {
    const Request next = waiting_.front();
    waiting_.pop_front();
    start_service(next);
  }

  // Invoke the callback after dequeueing so that callback-driven load
  // queries see the post-completion state.
  if (on_complete_) {
    on_complete_(*this, finished, now() - finished.arrival_time);
  }

  if (state_ == VmState::kDraining && idle()) {
    if (on_drained_) on_drained_(*this);
  }
}

void Vm::drain() {
  ensure(state_ == VmState::kRunning, "Vm::drain on non-RUNNING instance");
  state_ = VmState::kDraining;
  if (telemetry_ != nullptr) telemetry_->vm_drain(now(), id_, load());
  if (idle() && on_drained_) on_drained_(*this);
}

void Vm::undrain() {
  ensure(state_ == VmState::kDraining, "Vm::undrain on non-DRAINING instance");
  state_ = VmState::kRunning;
  if (telemetry_ != nullptr) telemetry_->vm_resurrected(now(), id_);
}

void Vm::destroy() {
  ensure(state_ != VmState::kDestroyed, "Vm::destroy called twice");
  ensure(idle(), "Vm::destroy on a busy instance");
  if (completion_event_ != kInvalidEventId) {
    sim().cancel(completion_event_);
    completion_event_ = kInvalidEventId;
  }
  state_ = VmState::kDestroyed;
  destruction_time_ = now();
}

std::vector<Request> Vm::fail(FaultCause cause) {
  ensure(state_ != VmState::kDestroyed, "Vm::fail on destroyed instance");
  std::vector<Request> lost;
  if (in_service_.has_value()) {
    busy_seconds_ += now() - service_started_;  // partial work still burned CPU
    lost.push_back(*in_service_);
    in_service_.reset();
  }
  for (std::size_t i = 0; i < waiting_.size(); ++i) lost.push_back(waiting_[i]);
  waiting_.clear();
  if (completion_event_ != kInvalidEventId) {
    sim().cancel(completion_event_);
    completion_event_ = kInvalidEventId;
  }
  state_ = VmState::kDestroyed;
  destruction_time_ = now();
  // The DESTROYED guard above makes re-entry impossible: the callback fires
  // exactly once per instance, no matter how the failure was triggered.
  if (on_failed_) on_failed_(*this, cause, lost);
  return lost;
}

void Vm::set_speed(double speed) {
  ensure_arg(speed > 0.0, "Vm::set_speed: speed must be positive");
  spec_.speed = speed;
}

double Vm::busy_seconds() const {
  double total = busy_seconds_;
  if (in_service_.has_value()) total += now() - service_started_;
  return total;
}

double Vm::lifetime_seconds(SimTime at) const {
  const SimTime end = destruction_time_.value_or(at);
  return end - creation_time_;
}

}  // namespace cloudprov
