#include "cloud/datacenter.h"

#include <algorithm>

#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"

namespace cloudprov {

Datacenter::Datacenter(Simulation& sim, DatacenterConfig config,
                       std::unique_ptr<PlacementPolicy> placement)
    : Entity(sim, "datacenter"),
      config_(config),
      placement_(std::move(placement)) {
  ensure_arg(config_.host_count >= 1, "Datacenter: need at least one host");
  ensure_arg(placement_ != nullptr, "Datacenter: null placement policy");
  hosts_.reserve(config_.host_count);
  for (std::size_t i = 0; i < config_.host_count; ++i) {
    hosts_.push_back(std::make_unique<Host>(i, config_.host_spec));
  }
}

Vm* Datacenter::create_vm(const VmSpec& spec) {
  return create_vm_impl(spec, config_.vm_boot_delay);
}

Vm* Datacenter::create_vm(const VmSpec& spec, SimTime boot_delay) {
  ensure_arg(boot_delay >= 0.0, "create_vm: negative boot delay");
  return create_vm_impl(spec, boot_delay);
}

Vm* Datacenter::create_vm_impl(const VmSpec& spec, SimTime base_boot_delay) {
  if (allocation_suspended_) {
    CLOUDPROV_LOG(Debug) << "VM allocation suspended (IaaS outage) at t="
                         << now();
    if (telemetry_ != nullptr) telemetry_->allocation_denied(now());
    return nullptr;
  }
  Host* host = placement_->select(hosts_, spec);
  if (host == nullptr) {
    CLOUDPROV_LOG(Warn) << "datacenter out of capacity for new VM at t=" << now();
    return nullptr;
  }
  host->allocate(spec, now());
  BootOutcome boot{base_boot_delay, false};
  if (boot_sampler_) boot = boot_sampler_(now(), base_boot_delay);
  vms_.push_back(std::make_unique<Vm>(sim(), next_vm_id_++, spec,
                                      boot.boot_delay, boot.fail_boot));
  vm_host_.push_back(host);
  ++live_vms_;
  Vm* vm = vms_.back().get();
  if (telemetry_ != nullptr) {
    vm->set_telemetry(telemetry_);
    telemetry_->vm_created(now(), vm->id());
  }
  return vm;
}

void Datacenter::destroy_vm(Vm& vm) {
  ensure(vm.id() >= 1 && vm.id() <= vms_.size(), "destroy_vm: unknown VM");
  const std::size_t index = vm.id() - 1;
  ensure(vms_[index].get() == &vm, "destroy_vm: id/slot mismatch");
  ensure(vm.state() != VmState::kDestroyed, "destroy_vm: VM already destroyed");
  vm.destroy();
  ensure(vm_host_[index] != nullptr, "destroy_vm: resources already released");
  vm_host_[index]->release(vm.spec(), now());
  vm_host_[index] = nullptr;
  ensure(live_vms_ > 0, "destroy_vm: live VM accounting underflow");
  --live_vms_;
  if (telemetry_ != nullptr) {
    telemetry_->vm_destroyed(now(), vm.id(), vm.lifetime_seconds(now()));
  }
}

void Datacenter::release_failed_vm(Vm& vm) {
  ensure(vm.id() >= 1 && vm.id() <= vms_.size(), "release_failed_vm: unknown VM");
  const std::size_t index = vm.id() - 1;
  ensure(vms_[index].get() == &vm, "release_failed_vm: id/slot mismatch");
  ensure(vm.state() == VmState::kDestroyed,
         "release_failed_vm: VM must have failed already");
  if (vm_host_[index] == nullptr) return;  // already released
  vm_host_[index]->release(vm.spec(), now());
  vm_host_[index] = nullptr;
  ensure(live_vms_ > 0, "release_failed_vm: live VM accounting underflow");
  --live_vms_;
}

std::size_t Datacenter::fail_vm(Vm& vm, FaultCause cause) {
  ensure(vm.id() >= 1 && vm.id() <= vms_.size(), "fail_vm: unknown VM");
  ensure(vms_[vm.id() - 1].get() == &vm, "fail_vm: id/slot mismatch");
  ensure(vm.state() != VmState::kDestroyed, "fail_vm: VM already destroyed");
  // fail() fires the owner's failure callback, which typically calls
  // release_failed_vm itself; the explicit call below is then a no-op and
  // only covers VMs without a registered owner.
  const std::vector<Request> lost = vm.fail(cause);
  release_failed_vm(vm);
  return lost.size();
}

std::size_t Datacenter::fail_host(std::size_t host_index) {
  ensure_arg(host_index < hosts_.size(), "fail_host: host index out of range");
  Host& host = *hosts_[host_index];
  if (host.failed()) return 0;
  host.fail(now());
  ++failed_hosts_;
  // Collect victims first: failure callbacks mutate owner dispatch lists,
  // but vms_/vm_host_ themselves only change via the release path.
  std::vector<Vm*> victims;
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    if (vm_host_[i] == &host && vms_[i]->state() != VmState::kDestroyed) {
      victims.push_back(vms_[i].get());
    }
  }
  for (Vm* vm : victims) (void)fail_vm(*vm, FaultCause::kHostCrash);
  if (telemetry_ != nullptr) {
    telemetry_->host_failed(now(), host.id(), victims.size());
  }
  CLOUDPROV_LOG(Info) << "host " << host.id() << " crash-failed at t=" << now()
                      << ", killed " << victims.size() << " VM(s)";
  return victims.size();
}

void Datacenter::set_allocation_suspended(bool suspended) {
  allocation_suspended_ = suspended;
}

std::size_t Datacenter::remaining_capacity(const VmSpec& spec) const {
  std::size_t total = 0;
  for (const auto& host : hosts_) {
    if (host->failed()) continue;
    const auto by_cores = host->free_cores() / spec.cores;
    const auto by_ram = spec.ram_gb > 0.0
                            ? static_cast<std::size_t>(host->free_ram_gb() /
                                                       spec.ram_gb)
                            : static_cast<std::size_t>(by_cores);
    total += std::min<std::size_t>(by_cores, by_ram);
  }
  return total;
}

double Datacenter::vm_hours() const {
  double seconds = 0.0;
  for (const auto& vm : vms_) seconds += vm->lifetime_seconds(now());
  return seconds / duration::kHour;
}

double Datacenter::busy_vm_hours() const {
  double seconds = 0.0;
  for (const auto& vm : vms_) seconds += vm->busy_seconds();
  return seconds / duration::kHour;
}

std::vector<SimTime> Datacenter::vm_lifetimes() const {
  std::vector<SimTime> lifetimes;
  lifetimes.reserve(vms_.size());
  for (const auto& vm : vms_) lifetimes.push_back(vm->lifetime_seconds(now()));
  return lifetimes;
}

double Datacenter::host_powered_hours() const {
  double seconds = 0.0;
  for (const auto& host : hosts_) seconds += host->powered_seconds(now());
  return seconds / duration::kHour;
}

Datacenter::Snapshot Datacenter::snapshot() const {
  Snapshot s;
  s.hosts.reserve(hosts_.size());
  for (const auto& host : hosts_) s.hosts.push_back(host->snapshot());
  s.vms.reserve(vms_.size());
  for (const auto& vm : vms_) s.vms.push_back(vm->snapshot());
  s.vm_host.reserve(vm_host_.size());
  for (const Host* host : vm_host_) {
    s.vm_host.push_back(host == nullptr
                            ? Snapshot::kNoHost
                            : static_cast<std::uint32_t>(host->id()));
  }
  s.live_vms = live_vms_;
  s.failed_hosts = failed_hosts_;
  s.next_vm_id = next_vm_id_;
  s.allocation_suspended = allocation_suspended_;
  return s;
}

void Datacenter::restore(const Snapshot& s) {
  ensure(hosts_.size() == s.hosts.size(),
         "Datacenter::restore: host count mismatch");
  ensure(s.vms.size() == s.vm_host.size(),
         "Datacenter::restore: vm/vm_host size mismatch");
  ensure(vms_.empty(), "Datacenter::restore: data center already populated");
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    hosts_[i]->restore(s.hosts[i]);
  }
  vms_.reserve(s.vms.size());
  vm_host_.reserve(s.vm_host.size());
  for (std::size_t i = 0; i < s.vms.size(); ++i) {
    vms_.push_back(std::make_unique<Vm>(sim(), s.vms[i]));
    if (telemetry_ != nullptr) vms_.back()->set_telemetry(telemetry_);
    vm_host_.push_back(s.vm_host[i] == Snapshot::kNoHost
                           ? nullptr
                           : hosts_[s.vm_host[i]].get());
  }
  live_vms_ = s.live_vms;
  failed_hosts_ = s.failed_hosts;
  next_vm_id_ = s.next_vm_id;
  allocation_suspended_ = s.allocation_suspended;
}

double Datacenter::utilization() const {
  const double hours = vm_hours();
  return hours > 0.0 ? busy_vm_hours() / hours : 0.0;
}

}  // namespace cloudprov
