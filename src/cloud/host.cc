#include "cloud/host.h"

#include "util/check.h"

namespace cloudprov {

Host::Host(std::uint64_t id, HostSpec spec) : id_(id), spec_(spec) {
  ensure_arg(spec.cores >= 1, "Host: need at least one core");
  ensure_arg(spec.ram_gb > 0.0, "Host: RAM must be positive");
}

bool Host::can_fit(const VmSpec& vm) const {
  return !failed_ && free_cores() >= vm.cores && free_ram_gb() >= vm.ram_gb;
}

void Host::fail(SimTime now) {
  ensure(!failed_, "Host::fail called twice");
  failed_ = true;
  if (powered_) {
    powered_ = false;
    powered_seconds_ += now - powered_since_;
  }
}

void Host::allocate(const VmSpec& vm, SimTime now) {
  ensure(can_fit(vm), "Host::allocate without capacity");
  used_cores_ += vm.cores;
  used_ram_gb_ += vm.ram_gb;
  ++vm_count_;
  if (!powered_) {
    powered_ = true;
    powered_since_ = now;
  }
}

void Host::release(const VmSpec& vm, SimTime now) {
  ensure(used_cores_ >= vm.cores && vm_count_ > 0, "Host::release underflow");
  used_cores_ -= vm.cores;
  used_ram_gb_ -= vm.ram_gb;
  --vm_count_;
  if (vm_count_ == 0 && powered_) {
    powered_ = false;
    powered_seconds_ += now - powered_since_;
  }
}

double Host::powered_seconds(SimTime now) const {
  double total = powered_seconds_;
  if (powered_) total += now - powered_since_;
  return total;
}

}  // namespace cloudprov
