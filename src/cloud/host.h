// Physical server.
//
// Paper configuration (Section V-A): two quad-core processors and 16 GB RAM
// per host, 1000 hosts in the data center. Application instances are pinned
// to idle cores — "there is no time-sharing of CPUs between virtual
// machines" — so placement is a simple core/RAM capacity check.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/vm.h"

namespace cloudprov {

struct HostSpec {
  unsigned cores = 8;   // two quad-core processors
  double ram_gb = 16.0;
};

class Host {
 public:
  Host(std::uint64_t id, HostSpec spec);

  std::uint64_t id() const { return id_; }
  const HostSpec& spec() const { return spec_; }

  unsigned used_cores() const { return used_cores_; }
  unsigned free_cores() const { return spec_.cores - used_cores_; }
  double used_ram_gb() const { return used_ram_gb_; }
  double free_ram_gb() const { return spec_.ram_gb - used_ram_gb_; }
  std::size_t vm_count() const { return vm_count_; }

  bool can_fit(const VmSpec& vm) const;

  /// Crash-fails the whole server (fault-domain failure): the host stops
  /// accepting placements (can_fit() is false forever after) and its power
  /// accounting stops at `now`. The data center cascade
  /// (Datacenter::fail_host) kills the resident VMs; their resources are
  /// still release()d individually for accounting symmetry.
  void fail(SimTime now);
  bool failed() const { return failed_; }

  /// Reserves resources for a VM. Precondition: can_fit(vm). `now` feeds the
  /// power accounting: a host is powered on while it has resident VMs.
  void allocate(const VmSpec& vm, SimTime now = 0.0);

  /// Releases a VM's resources.
  void release(const VmSpec& vm, SimTime now = 0.0);

  /// Seconds this host has spent powered on (resident VMs > 0) up to `now`.
  /// Supports the energy model in experiment/energy.h — the paper's intro
  /// motivates provisioning with "reduced financial and environmental costs".
  double powered_seconds(SimTime now) const;

  /// Value snapshot of the mutable occupancy/power state for
  /// checkpoint/restore (src/lookahead); id and spec stay construction-time.
  struct Snapshot {
    unsigned used_cores = 0;
    double used_ram_gb = 0.0;
    std::size_t vm_count = 0;
    double powered_seconds = 0.0;
    SimTime powered_since = 0.0;
    bool powered = false;
    bool failed = false;
  };
  Snapshot snapshot() const {
    return Snapshot{used_cores_, used_ram_gb_, vm_count_, powered_seconds_,
                    powered_since_, powered_, failed_};
  }
  void restore(const Snapshot& s) {
    used_cores_ = s.used_cores;
    used_ram_gb_ = s.used_ram_gb;
    vm_count_ = s.vm_count;
    powered_seconds_ = s.powered_seconds;
    powered_since_ = s.powered_since;
    powered_ = s.powered;
    failed_ = s.failed;
  }

 private:
  std::uint64_t id_;
  HostSpec spec_;
  unsigned used_cores_ = 0;
  double used_ram_gb_ = 0.0;
  std::size_t vm_count_ = 0;
  double powered_seconds_ = 0.0;
  SimTime powered_since_ = 0.0;
  bool powered_ = false;
  bool failed_ = false;
};

}  // namespace cloudprov
