// IaaS data center: hosts + VM lifecycle + aggregate accounting.
//
// Owns the physical hosts and every VM ever created, exposing the
// create/destroy API that the paper's application provisioner drives. The
// mapping of VMs to hosts is delegated to a PlacementPolicy, mirroring the
// paper's split between Application/VM Provisioning (the SaaS provider's
// job, built in src/core) and Resource Provisioning (the IaaS provider's
// job, hidden behind this interface).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cloud/host.h"
#include "cloud/placement.h"
#include "cloud/vm.h"
#include "sim/entity.h"

namespace cloudprov {

struct DatacenterConfig {
  std::size_t host_count = 1000;  // Section V-A
  HostSpec host_spec;
  /// VM boot latency; the paper's evaluation treats instantiation as
  /// immediate, so the default is 0. Non-zero values exercise provisioning
  /// lead-time sensitivity.
  SimTime vm_boot_delay = 0.0;
};

class Datacenter final : public Entity {
 public:
  Datacenter(Simulation& sim, DatacenterConfig config,
             std::unique_ptr<PlacementPolicy> placement);

  /// Attaches the replication's telemetry collector (null disables). VM
  /// create/destroy/fail events are recorded here; the pointer is also
  /// propagated to every VM created afterwards.
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Creates and places a VM; nullptr when no host has capacity.
  Vm* create_vm(const VmSpec& spec);

  /// Destroys an idle VM and releases its host resources.
  void destroy_vm(Vm& vm);

  /// Releases host resources of a VM that crash-failed (Vm::fail() already
  /// moved it to DESTROYED). Precondition: vm.state() == kDestroyed.
  void release_failed_vm(Vm& vm);

  // --- capacity -------------------------------------------------------
  std::size_t host_count() const { return hosts_.size(); }
  std::size_t live_vm_count() const { return live_vms_; }
  /// Upper bound on additional VMs of `spec` that could be placed now.
  std::size_t remaining_capacity(const VmSpec& spec) const;

  // --- accounting (paper output metrics, Section V-A) ------------------
  /// Sum over all VMs of wall-clock lifetime (creation to destruction, or
  /// to `now` for live VMs), in hours: the paper's "VM hours" cost metric.
  double vm_hours() const;
  /// Sum over all VMs of time spent actually serving requests, in hours.
  double busy_vm_hours() const;
  /// busy_vm_hours / vm_hours: the paper's "resources utilization rate".
  double utilization() const;
  std::uint64_t total_vms_created() const { return vms_.size(); }
  /// Per-VM wall-clock lifetimes in seconds (live VMs measured to `now`);
  /// input to the pricing models in experiment/pricing.h.
  std::vector<SimTime> vm_lifetimes() const;
  /// Sum over hosts of powered-on time (hours); input to the energy model.
  double host_powered_hours() const;

  const std::vector<std::unique_ptr<Host>>& hosts() const { return hosts_; }

 private:
  DatacenterConfig config_;
  std::unique_ptr<PlacementPolicy> placement_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Vm>> vms_;  // full history, including destroyed
  std::vector<Host*> vm_host_;            // parallel to vms_: placement record
  std::size_t live_vms_ = 0;
  std::uint64_t next_vm_id_ = 1;
  Telemetry* telemetry_ = nullptr;
};

}  // namespace cloudprov
