// IaaS data center: hosts + VM lifecycle + aggregate accounting.
//
// Owns the physical hosts and every VM ever created, exposing the
// create/destroy API that the paper's application provisioner drives. The
// mapping of VMs to hosts is delegated to a PlacementPolicy, mirroring the
// paper's split between Application/VM Provisioning (the SaaS provider's
// job, built in src/core) and Resource Provisioning (the IaaS provider's
// job, hidden behind this interface).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cloud/host.h"
#include "cloud/placement.h"
#include "cloud/vm.h"
#include "sim/entity.h"

namespace cloudprov {

struct DatacenterConfig {
  std::size_t host_count = 1000;  // Section V-A
  HostSpec host_spec;
  /// VM boot latency; the paper's evaluation treats instantiation as
  /// immediate, so the default is 0. Non-zero values exercise provisioning
  /// lead-time sensitivity.
  SimTime vm_boot_delay = 0.0;
};

class Datacenter final : public Entity {
 public:
  Datacenter(Simulation& sim, DatacenterConfig config,
             std::unique_ptr<PlacementPolicy> placement);

  /// Attaches the replication's telemetry collector (null disables). VM
  /// create/destroy/fail events are recorded here; the pointer is also
  /// propagated to every VM created afterwards.
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Creates and places a VM; nullptr when no host has capacity or VM
  /// allocation is suspended (IaaS outage window).
  Vm* create_vm(const VmSpec& spec);

  /// Same, but with a per-instance base boot delay instead of the configured
  /// default — the market broker's per-class delivery profile (src/market).
  /// The boot-fault sampler still applies on top of `boot_delay`.
  Vm* create_vm(const VmSpec& spec, SimTime boot_delay);

  /// Destroys an idle VM and releases its host resources.
  void destroy_vm(Vm& vm);

  /// Releases host resources of a VM that crash-failed (Vm::fail() already
  /// moved it to DESTROYED). Idempotent: calling it again for a VM whose
  /// resources were already released is a no-op, so the failure-callback
  /// chain and the crash entry points cannot double-release.
  /// Precondition: vm.state() == kDestroyed.
  void release_failed_vm(Vm& vm);

  // --- fault injection (src/fault) --------------------------------------
  /// Crash-fails a live VM in any state: Vm::fail(cause) — which fires the
  /// owner's failure callback — followed by host-resource release. Returns
  /// the number of in-flight requests lost.
  std::size_t fail_vm(Vm& vm, FaultCause cause);

  /// Crash-fails a host (fault-domain failure): every live VM resident on
  /// it is fail_vm()'d with FaultCause::kHostCrash and the host permanently
  /// stops accepting placements. Returns the number of VMs killed.
  std::size_t fail_host(std::size_t host_index);
  std::size_t failed_hosts() const { return failed_hosts_; }

  /// IaaS allocation outage: while suspended, create_vm returns nullptr
  /// regardless of capacity (the provisioning API itself is down).
  void set_allocation_suspended(bool suspended);
  bool allocation_suspended() const { return allocation_suspended_; }

  /// Boot-fault sampler hook: invoked once per create_vm with the configured
  /// base boot delay; the returned outcome may inflate the delay (straggler
  /// boot) and/or plan a boot failure. Null restores fault-free boots.
  struct BootOutcome {
    SimTime boot_delay = 0.0;
    bool fail_boot = false;
  };
  using BootFaultSampler = std::function<BootOutcome(SimTime now, SimTime base_delay)>;
  void set_boot_fault_sampler(BootFaultSampler sampler) {
    boot_sampler_ = std::move(sampler);
  }

  // --- capacity -------------------------------------------------------
  std::size_t host_count() const { return hosts_.size(); }
  std::size_t live_vm_count() const { return live_vms_; }
  /// Upper bound on additional VMs of `spec` that could be placed now.
  std::size_t remaining_capacity(const VmSpec& spec) const;

  // --- accounting (paper output metrics, Section V-A) ------------------
  /// Sum over all VMs of wall-clock lifetime (creation to destruction, or
  /// to `now` for live VMs), in hours: the paper's "VM hours" cost metric.
  double vm_hours() const;
  /// Sum over all VMs of time spent actually serving requests, in hours.
  double busy_vm_hours() const;
  /// busy_vm_hours / vm_hours: the paper's "resources utilization rate".
  double utilization() const;
  std::uint64_t total_vms_created() const { return vms_.size(); }
  /// Per-VM wall-clock lifetimes in seconds (live VMs measured to `now`);
  /// input to the pricing models in market/pricing.h.
  std::vector<SimTime> vm_lifetimes() const;
  /// Sum over hosts of powered-on time (hours); input to the energy model.
  double host_powered_hours() const;

  const std::vector<std::unique_ptr<Host>>& hosts() const { return hosts_; }

  /// Looks up a VM by id (1-based creation order); nullptr when unknown.
  /// Restore paths use this to rebind snapshot vm ids to live objects.
  Vm* find_vm(std::uint64_t vm_id) {
    if (vm_id < 1 || vm_id > vms_.size()) return nullptr;
    return vms_[vm_id - 1].get();
  }

  // --- snapshot/restore (src/lookahead) ---------------------------------
  /// Value snapshot of host occupancy and the full VM history (live VMs
  /// carry their pending event stamps). Placement-policy, boot-sampler, and
  /// telemetry hooks are wiring, not state: the restoring side re-attaches
  /// them.
  struct Snapshot {
    static constexpr std::uint32_t kNoHost = 0xffffffffu;
    std::vector<Host::Snapshot> hosts;
    std::vector<Vm::Snapshot> vms;
    /// Parallel to vms: placement host index, kNoHost once released.
    std::vector<std::uint32_t> vm_host;
    std::size_t live_vms = 0;
    std::size_t failed_hosts = 0;
    std::uint64_t next_vm_id = 1;
    bool allocation_suspended = false;
  };
  Snapshot snapshot() const;
  /// Rebuilds VM/host state from a snapshot taken on an identically
  /// configured data center (same host count/spec). Re-pushes every live
  /// VM's pending events into the simulation's queue under their stamps.
  void restore(const Snapshot& snap);

 private:
  Vm* create_vm_impl(const VmSpec& spec, SimTime base_boot_delay);

  DatacenterConfig config_;
  std::unique_ptr<PlacementPolicy> placement_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Vm>> vms_;  // full history, including destroyed
  // Parallel to vms_: placement record; nulled once the slot's resources are
  // released (destroy or crash), which is what makes release idempotent.
  std::vector<Host*> vm_host_;
  std::size_t live_vms_ = 0;
  std::size_t failed_hosts_ = 0;
  std::uint64_t next_vm_id_ = 1;
  bool allocation_suspended_ = false;
  BootFaultSampler boot_sampler_;
  Telemetry* telemetry_ = nullptr;
};

}  // namespace cloudprov
