#include "market/pricing.h"

#include <cmath>

#include "util/check.h"

namespace cloudprov {

double billed_cost(SimTime lifetime_seconds, const PricingPolicy& policy) {
  ensure_arg(lifetime_seconds >= 0.0, "billed_cost: negative lifetime");
  ensure_arg(policy.price_per_hour >= 0.0, "billed_cost: negative price");
  ensure_arg(policy.billing_quantum > 0.0, "billed_cost: quantum must be > 0");
  ensure_arg(policy.minimum_billed >= 0.0, "billed_cost: negative minimum");
  double billed = std::max(lifetime_seconds, policy.minimum_billed);
  billed = std::ceil(billed / policy.billing_quantum) * policy.billing_quantum;
  return billed / duration::kHour * policy.price_per_hour;
}

double billed_cost(const std::vector<SimTime>& lifetimes,
                   const PricingPolicy& policy) {
  double total = 0.0;
  for (SimTime lifetime : lifetimes) total += billed_cost(lifetime, policy);
  return total;
}

double raw_cost(const std::vector<SimTime>& lifetimes,
                const PricingPolicy& policy) {
  double total = 0.0;
  for (SimTime lifetime : lifetimes) {
    ensure_arg(lifetime >= 0.0, "raw_cost: negative lifetime");
    total += lifetime;
  }
  return total / duration::kHour * policy.price_per_hour;
}

}  // namespace cloudprov
