// IaaS pricing models.
//
// The paper reports cost as raw VM-hours "independent from pricing policies
// applied by specific IaaS Cloud vendors" (Section V-A). This module maps
// VM lifetimes to billed cost under concrete vendor policies — notably
// billing-quantum rounding (classic EC2 billed per started hour), which
// penalizes the adaptive policy's churn: a VM destroyed after 61 minutes
// bills two full hours. The billing-granularity ablation quantifies how much
// of the paper's VM-hour saving survives coarse billing, and the market
// catalog (market/instance_class.h) attaches one PricingPolicy per instance
// class.
#pragma once

#include <string>
#include <vector>

#include "util/units.h"

namespace cloudprov {

struct PricingPolicy {
  std::string name = "on-demand";
  /// Price of one instance-hour in arbitrary currency units.
  double price_per_hour = 1.0;
  /// Billing granularity in seconds: usage is rounded *up* to a multiple of
  /// this per VM (3600 = classic per-started-hour; 1 = per-second billing).
  SimTime billing_quantum = 3600.0;
  /// Minimum billed duration per VM in seconds (e.g. per-second billing with
  /// a 60 s minimum, as current EC2/GCE do).
  SimTime minimum_billed = 0.0;
};

/// Billed cost of one VM lifetime under `policy`.
double billed_cost(SimTime lifetime_seconds, const PricingPolicy& policy);

/// Billed cost of a set of VM lifetimes.
double billed_cost(const std::vector<SimTime>& lifetimes,
                   const PricingPolicy& policy);

/// Raw (un-quantized) cost: lifetime * hourly price. Equals the paper's
/// VM-hours metric when price_per_hour == 1.
double raw_cost(const std::vector<SimTime>& lifetimes,
                const PricingPolicy& policy);

}  // namespace cloudprov
