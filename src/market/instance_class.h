// IaaS market catalog: the instance classes an online market sells.
//
// The paper reports cost as raw VM-hours, "independent from pricing policies
// applied by specific IaaS Cloud vendors" (Section V-A). A real SaaS
// provider buys from a live market instead: heterogeneous purchase kinds
// (on-demand, spot, reserved) whose prices differ, whose billing follows a
// concrete PricingPolicy (market/pricing.h), and whose delivery latency
// (boot-delay profile) varies by class. MarketCatalog is the static half of
// that market; SpotPriceProcess (market/spot_price.h) supplies the moving
// spot price and MarketBroker (market/market_broker.h) executes purchases
// and revocations against it.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "market/pricing.h"
#include "util/units.h"

namespace cloudprov {

/// How capacity is bought. Spot capacity is cheap but revocable when the
/// market price crosses the buyer's bid; reserved capacity is a term
/// commitment billed to the horizon regardless of early destruction.
enum class PurchaseKind : std::uint8_t {
  kOnDemand = 0,
  kSpot = 1,
  kReserved = 2,
};
inline constexpr std::size_t kPurchaseKindCount = 3;

const char* to_string(PurchaseKind kind);

/// One sellable instance class: purchase kind, billing policy, and delivery
/// profile. The VM shape itself stays the provisioner's choice (the paper's
/// 1-core/2-GB application instance); classes differ in commercial terms.
struct InstanceClass {
  std::string name = "od.standard";
  PurchaseKind kind = PurchaseKind::kOnDemand;
  /// Billing terms. For spot classes `pricing.price_per_hour` is only the
  /// reference (list) price — the billed rate follows the SpotPriceProcess —
  /// while quantum/minimum still shape rounding.
  PricingPolicy pricing;
  /// Class boot-delay profile in seconds; nullopt inherits the data center's
  /// configured delay (which keeps the default on-demand class bit-identical
  /// to market-less provisioning).
  std::optional<SimTime> boot_delay;

  void validate() const;
};

/// The set of classes one market sells. At most one class per purchase kind
/// (the acquisition policy addresses classes by kind).
struct MarketCatalog {
  std::vector<InstanceClass> classes;

  /// Index of the first class of `kind`, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(PurchaseKind kind) const;
  bool has(PurchaseKind kind) const { return find(kind) != npos; }

  /// Throws on empty catalogs, duplicate kinds, invalid pricing, or a
  /// missing on-demand class (the fallback every acquisition needs).
  void validate() const;

  /// EC2-flavoured default: on-demand at `on_demand_price`/hour, spot listed
  /// at 35% of it, reserved at 60% — all per-second billing with a 60 s
  /// minimum, boot delays inherited from the data center.
  static MarketCatalog standard(double on_demand_price = 1.0);
};

}  // namespace cloudprov
