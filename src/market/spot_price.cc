#include "market/spot_price.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudprov {

void SpotPriceConfig::validate() const {
  ensure_arg(initial > 0.0, "SpotPriceConfig: initial price must be > 0");
  ensure_arg(mean > 0.0, "SpotPriceConfig: mean must be > 0");
  ensure_arg(reversion_per_hour >= 0.0, "SpotPriceConfig: negative reversion");
  ensure_arg(volatility >= 0.0, "SpotPriceConfig: negative volatility");
  ensure_arg(floor >= 0.0, "SpotPriceConfig: negative floor");
  ensure_arg(ceiling >= floor, "SpotPriceConfig: ceiling below floor");
  ensure_arg(update_interval > 0.0,
             "SpotPriceConfig: update_interval must be > 0");
  ensure_arg(spike_rate_per_hour >= 0.0, "SpotPriceConfig: negative spike rate");
  ensure_arg(spike_mean_duration > 0.0,
             "SpotPriceConfig: spike duration must be > 0");
  ensure_arg(spike_multiplier >= 1.0,
             "SpotPriceConfig: spike multiplier must be >= 1");
}

SpotPriceProcess::SpotPriceProcess(SpotPriceConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  config_.validate();
  path_.push_back({0.0, std::clamp(config_.initial, config_.floor,
                                   config_.ceiling)});
}

void SpotPriceProcess::step() {
  const SimTime t = path_.back().time + config_.update_interval;
  const double dt_hours = config_.update_interval / duration::kHour;

  // Regime update first, then the OU shock — a fixed draw order makes the
  // path a pure function of the seed.
  if (spike_ && t >= spike_until_) spike_ = false;
  if (!spike_ && config_.spike_rate_per_hour > 0.0 &&
      rng_.bernoulli(std::min(1.0, config_.spike_rate_per_hour * dt_hours))) {
    spike_ = true;
    spike_until_ = t + rng_.exponential(1.0 / config_.spike_mean_duration);
  }
  const double target =
      config_.mean * (spike_ ? config_.spike_multiplier : 1.0);

  double price = path_.back().price;
  price += config_.reversion_per_hour * (target - price) * dt_hours;
  price += config_.volatility * std::sqrt(dt_hours) * rng_.normal(0.0, 1.0);
  price = std::clamp(price, config_.floor, config_.ceiling);
  path_.push_back({t, price});
}

void SpotPriceProcess::advance_to(SimTime t) {
  ensure_arg(t >= 0.0, "SpotPriceProcess: negative time");
  while (path_.back().time < t) step();
}

double SpotPriceProcess::price_at(SimTime t) const {
  ensure_arg(t >= 0.0, "SpotPriceProcess: negative time");
  // Last segment whose start <= t (the path is piecewise constant).
  const auto it = std::upper_bound(
      path_.begin(), path_.end(), t,
      [](SimTime value, const PricePoint& p) { return value < p.time; });
  return it == path_.begin() ? path_.front().price : std::prev(it)->price;
}

double SpotPriceProcess::integrate(SimTime begin, SimTime end) const {
  ensure_arg(begin >= 0.0 && end >= begin,
             "SpotPriceProcess::integrate: inverted window");
  double total = 0.0;
  for (std::size_t i = 0; i < path_.size(); ++i) {
    const SimTime seg_begin = path_[i].time;
    const SimTime seg_end = i + 1 < path_.size()
                                ? path_[i + 1].time
                                : std::max(end, seg_begin);
    const SimTime lo = std::max(begin, seg_begin);
    const SimTime hi = std::min(end, seg_end);
    if (hi > lo) total += path_[i].price * (hi - lo);
    if (seg_end >= end) break;
  }
  return total;
}

double SpotPriceProcess::mean_price(SimTime end) const {
  if (end <= 0.0) return path_.front().price;
  return integrate(0.0, end) / end;
}

double SpotPriceProcess::max_price(SimTime end) const {
  double max = path_.front().price;
  for (const PricePoint& p : path_) {
    if (p.time > end) break;
    max = std::max(max, p.price);
  }
  return max;
}

}  // namespace cloudprov
