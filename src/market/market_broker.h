// Online IaaS market broker: the provisioner buys capacity here instead of
// conjuring uniform VMs for free.
//
// The broker installs itself as the ApplicationProvisioner's VM factory, so
// every instance the adaptive policy (or the reconciler) asks for becomes a
// market purchase: AcquisitionPolicy picks the class (reserved base load,
// spot while price <= bid and under the spot-fraction cap, on-demand
// otherwise), the data center delivers the VM with the class boot-delay
// profile, and a ledger entry records the purchase for exact billing.
//
// On each market tick the SpotPriceProcess advances; when the price crosses
// the bid, every live spot instance receives a revocation notice: it drains
// through the provisioner's graceful drain-before-destroy lifecycle, and an
// instance still alive when the notice expires is hard-killed through the
// fault path (FaultCause::kSpotRevocation), losing its in-flight requests.
// The resulting pool deficit is healed by the adaptive cycle or the
// Reconciler, whose replacement purchases fall back to on-demand (price >
// bid after a revocation, so AcquisitionPolicy::choose cannot pick spot).
//
// A disabled market (or a pure on-demand configuration: spot_fraction 0 /
// bid 0, inherited boot delay) is a strict no-op: no events are scheduled
// and every simulation observable stays bit-identical to a market-less run.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "core/application_provisioner.h"
#include "market/acquisition.h"
#include "market/instance_class.h"
#include "market/spot_price.h"

namespace cloudprov {

struct MarketConfig {
  /// Master switch; disabled keeps runs byte-identical to market-less ones.
  bool enabled = false;
  MarketCatalog catalog = MarketCatalog::standard();
  AcquisitionPolicy acquisition;
  RevocationPolicy revocation;
  SpotPriceConfig spot_price;
  /// Market evaluation cadence in seconds: advance the price path, check
  /// bids, accrue cost burn. Only armed while spot purchases are possible.
  SimTime tick = 60.0;
  /// Non-zero pins the spot-price stream to this seed instead of the
  /// replication's derived market stream. Multi-tenant runs set one shared
  /// value so every tenant prices against the same market trajectory.
  std::uint64_t price_seed_override = 0;

  void validate() const;
};

/// One row of the purchase ledger, closed at finalize().
struct MarketPurchase {
  std::uint64_t vm_id = 0;
  std::size_t class_index = 0;
  PurchaseKind kind = PurchaseKind::kOnDemand;
  SimTime purchase_time = 0.0;
  SimTime end_time = 0.0;  ///< destruction, or the horizon for live VMs
  double cost = 0.0;       ///< billed under the class pricing policy
  bool revoked = false;
  bool hard_killed = false;
};

/// Everything a replication's market did: the ledger, the realized spot
/// path, and the cost/revocation aggregates that feed RunMetrics.
struct MarketReport {
  std::vector<MarketPurchase> ledger;
  std::vector<PricePoint> spot_path;
  double total_cost = 0.0;
  double on_demand_cost = 0.0;
  double spot_cost = 0.0;
  double reserved_cost = 0.0;
  std::uint64_t on_demand_purchases = 0;
  std::uint64_t spot_purchases = 0;
  std::uint64_t reserved_purchases = 0;
  std::uint64_t revocations = 0;      ///< notices issued
  std::uint64_t revocation_kills = 0; ///< hard kills at notice expiry
  double spot_price_mean = 0.0;       ///< time-weighted over the horizon
  double spot_price_max = 0.0;
};

/// Long-form CSV of one market report: `price` rows (the realized spot
/// path) followed by `purchase` rows (the ledger, purchase order). Byte
/// -identical across runs for the same (scenario, seed).
void write_market_csv(std::ostream& out, const MarketReport& report);

class MarketBroker {
 public:
  /// `seed` feeds the spot-price stream (derived after the workload,
  /// placement, and fault streams, so enabling the market never perturbs
  /// them). The config is validated here.
  MarketBroker(Simulation& sim, Datacenter& datacenter, MarketConfig config,
               std::uint64_t seed);
  ~MarketBroker() { stop(); }
  MarketBroker(const MarketBroker&) = delete;
  MarketBroker& operator=(const MarketBroker&) = delete;

  /// Attaches the replication's telemetry collector (null disables).
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Routes the provisioner's VM creation through acquire().
  void attach(ApplicationProvisioner& provisioner);

  /// Arms the market tick (idempotent; no-op unless spot is purchasable).
  void start();
  /// Cancels the pending tick. Pending hard-kill notices stay armed: a
  /// revocation already issued is the IaaS provider's decision, not ours.
  void stop();
  bool running() const { return running_; }

  /// One purchase: picks a class, creates the VM (nullptr when the data
  /// center has no capacity or allocation is suspended), ledgers it.
  Vm* acquire(const VmSpec& spec);

  /// Closes the ledger at `horizon` and bills every purchase: on-demand by
  /// lifetime under the class PricingPolicy, spot by integrating the
  /// realized price path over the billed quanta, reserved as a term
  /// commitment to the horizon. Call once, after the simulation ran.
  MarketReport finalize(SimTime horizon);

  // --- live statistics ----------------------------------------------------
  std::uint64_t purchases(PurchaseKind kind) const {
    return purchases_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t revocations() const { return revocations_; }
  std::uint64_t revocation_kills() const { return revocation_kills_; }
  /// Current spot price (list price when no spot stream is armed).
  double spot_price() const;
  bool spot_active() const { return price_.has_value(); }

  const MarketConfig& config() const { return config_; }

  /// Adjusts the spot bid in place (lookahead what-if candidates explore
  /// bid levels). Takes effect from the next tick/purchase.
  void set_bid(double bid) { config_.acquisition.bid = bid; }

  // --- checkpoint support (src/lookahead) ---------------------------------
  struct Snapshot {
    std::optional<SpotPriceProcess::State> price;
    struct EntrySnap {
      std::uint64_t vm_id = 0;
      std::size_t class_index = 0;
      PurchaseKind kind = PurchaseKind::kOnDemand;
      SimTime purchase_time = 0.0;
      bool revoked = false;
      bool hard_killed = false;
    };
    std::vector<EntrySnap> entries;
    struct Kill {
      EventStamp stamp;
      std::size_t entry_index = 0;
    };
    std::vector<Kill> kills;  ///< pending hard-kill notices
    bool running = false;
    std::optional<EventStamp> pending_tick;
    SimTime last_accrual = 0.0;
    double accrued_burn = 0.0;
    std::array<std::uint64_t, kPurchaseKindCount> purchases{};
    std::uint64_t revocations = 0;
    std::uint64_t revocation_kills = 0;
  };
  Snapshot checkpoint() const;
  /// Rebinds the ledger against the (already restored) data center and
  /// re-arms the market tick and pending hard-kills under their original
  /// stamps. Call attach() first; use instead of start() on a fresh broker
  /// built with the same config/seed.
  void restore(const Snapshot& snap);

 private:
  struct Entry {
    Vm* vm = nullptr;
    std::size_t class_index = 0;
    PurchaseKind kind = PurchaseKind::kOnDemand;
    SimTime purchase_time = 0.0;
    bool revoked = false;
    bool hard_killed = false;
  };

  void tick();
  void revoke(std::size_t entry_index);
  void hard_kill(std::size_t entry_index);
  void accrue(SimTime t);
  std::size_t live_count(PurchaseKind kind) const;
  double accrual_rate(const Entry& entry) const;  ///< currency per hour

  Simulation& sim_;
  Datacenter& datacenter_;
  ApplicationProvisioner* provisioner_ = nullptr;
  MarketConfig config_;
  Telemetry* telemetry_ = nullptr;

  std::optional<SpotPriceProcess> price_;
  std::vector<Entry> entries_;
  /// Hard-kill notices in flight (fired records keep a dead EventId and are
  /// skipped by checkpoint()).
  struct KillRecord {
    EventId event = kInvalidEventId;
    std::size_t entry_index = 0;
  };
  std::vector<KillRecord> kills_;
  bool running_ = false;
  EventId pending_tick_ = kInvalidEventId;
  SimTime last_accrual_ = 0.0;
  double accrued_burn_ = 0.0;  ///< telemetry-only running cost estimate

  std::uint64_t purchases_[kPurchaseKindCount] = {};
  std::uint64_t revocations_ = 0;
  std::uint64_t revocation_kills_ = 0;
};

}  // namespace cloudprov
