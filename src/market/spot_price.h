// Stochastic spot-price path: mean-reverting diffusion with regime spikes.
//
// Discretized Ornstein–Uhlenbeck process on a fixed update grid, modulated
// by a hidden calm/spike Markov chain (the same hidden-state construction as
// the MMPP workload source in workload/mmpp_source.h, applied to price
// instead of arrival rate): during a spike regime the reversion target is
// multiplied, producing the sudden demand-driven price cliffs that make
// spot capacity revocable in practice.
//
// Determinism: the path is a pure function of (config, seed) — one Rng
// stream owned by the process, draws in fixed per-step order — and is
// extended lazily by advance_to(), so the realized path is independent of
// when or how often it is queried. The broker derives the seed from the
// replication's market stream (drawn after the workload/placement/fault
// streams, following the fault-seed pattern), so enabling the market never
// perturbs existing streams and the same seed yields a byte-identical path.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace cloudprov {

/// One step of the piecewise-constant price path: `price` holds on
/// [time, time + update_interval).
struct PricePoint {
  SimTime time = 0.0;
  double price = 0.0;
};

struct SpotPriceConfig {
  /// Price at t = 0, currency units per instance-hour.
  double initial = 0.35;
  /// Long-run reversion target of the calm regime.
  double mean = 0.35;
  /// OU reversion speed theta, per hour: fraction of the gap to the target
  /// closed per hour of drift.
  double reversion_per_hour = 0.5;
  /// Diffusion sigma, currency per sqrt(hour).
  double volatility = 0.12;
  /// Hard clamps (market floor / emergency cap).
  double floor = 0.05;
  double ceiling = 5.0;
  /// Grid spacing in seconds: one OU step (and one regime check) per tick.
  SimTime update_interval = 60.0;

  // --- regime-switching spike overlay (0 spike_rate disables) -------------
  /// Calm -> spike transitions per hour.
  double spike_rate_per_hour = 0.05;
  /// Mean spike-regime duration, seconds (exponential).
  SimTime spike_mean_duration = 900.0;
  /// Reversion target multiplier while the spike regime holds.
  double spike_multiplier = 4.0;

  void validate() const;
};

class SpotPriceProcess {
 public:
  SpotPriceProcess(SpotPriceConfig config, std::uint64_t seed);

  /// Extends the path so it covers simulated time `t`.
  void advance_to(SimTime t);

  /// Price holding at time `t`. Requires advance_to(t) semantics for exact
  /// lookups; times past the generated path clamp to its last segment
  /// (billing quanta may round a lifetime past the horizon).
  double price_at(SimTime t) const;

  /// Price of the newest generated segment.
  double current() const { return path_.back().price; }

  /// Integral of the price over [begin, end] in currency * seconds / hour
  /// (divide by 3600 for currency): exact per-second spot billing.
  double integrate(SimTime begin, SimTime end) const;

  /// Time-weighted mean over [0, end].
  double mean_price(SimTime end) const;
  /// Maximum segment price over [0, end].
  double max_price(SimTime end) const;

  const std::vector<PricePoint>& path() const { return path_; }
  bool in_spike() const { return spike_; }

  // --- checkpoint support (src/lookahead) ---------------------------------
  /// Full mutable state; (config, seed) stay with the owning process, so a
  /// restored process continues the exact same realized path.
  struct State {
    Rng::State rng;
    std::vector<PricePoint> path;
    bool spike = false;
    SimTime spike_until = 0.0;
  };
  State state() const { return State{rng_.state(), path_, spike_, spike_until_}; }
  void set_state(const State& state) {
    rng_.set_state(state.rng);
    path_ = state.path;
    spike_ = state.spike;
    spike_until_ = state.spike_until;
  }

 private:
  void step();

  SpotPriceConfig config_;
  Rng rng_;
  std::vector<PricePoint> path_;
  bool spike_ = false;
  SimTime spike_until_ = 0.0;
};

}  // namespace cloudprov
