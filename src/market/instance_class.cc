#include "market/instance_class.h"

#include "util/check.h"

namespace cloudprov {

const char* to_string(PurchaseKind kind) {
  switch (kind) {
    case PurchaseKind::kOnDemand: return "on_demand";
    case PurchaseKind::kSpot: return "spot";
    case PurchaseKind::kReserved: return "reserved";
  }
  return "?";
}

void InstanceClass::validate() const {
  ensure_arg(!name.empty(), "InstanceClass: empty name");
  ensure_arg(pricing.price_per_hour >= 0.0,
             "InstanceClass: negative price_per_hour");
  ensure_arg(pricing.billing_quantum > 0.0,
             "InstanceClass: billing_quantum must be > 0");
  ensure_arg(pricing.minimum_billed >= 0.0,
             "InstanceClass: negative minimum_billed");
  ensure_arg(!boot_delay.has_value() || *boot_delay >= 0.0,
             "InstanceClass: negative boot_delay");
}

std::size_t MarketCatalog::find(PurchaseKind kind) const {
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (classes[i].kind == kind) return i;
  }
  return npos;
}

void MarketCatalog::validate() const {
  ensure_arg(!classes.empty(), "MarketCatalog: no classes");
  std::size_t by_kind[kPurchaseKindCount] = {};
  for (const InstanceClass& cls : classes) {
    cls.validate();
    by_kind[static_cast<std::size_t>(cls.kind)] += 1;
  }
  for (std::size_t count : by_kind) {
    ensure_arg(count <= 1, "MarketCatalog: duplicate purchase kind");
  }
  ensure_arg(has(PurchaseKind::kOnDemand),
             "MarketCatalog: an on-demand class is required");
}

MarketCatalog MarketCatalog::standard(double on_demand_price) {
  ensure_arg(on_demand_price >= 0.0,
             "MarketCatalog::standard: negative price");
  MarketCatalog catalog;
  InstanceClass on_demand;
  on_demand.name = "od.standard";
  on_demand.kind = PurchaseKind::kOnDemand;
  on_demand.pricing = {"on-demand", on_demand_price, 1.0, 60.0};
  catalog.classes.push_back(on_demand);

  InstanceClass spot;
  spot.name = "spot.standard";
  spot.kind = PurchaseKind::kSpot;
  spot.pricing = {"spot", 0.35 * on_demand_price, 1.0, 60.0};
  catalog.classes.push_back(spot);

  InstanceClass reserved;
  reserved.name = "rsv.standard";
  reserved.kind = PurchaseKind::kReserved;
  reserved.pricing = {"reserved", 0.60 * on_demand_price, 1.0, 0.0};
  catalog.classes.push_back(reserved);
  return catalog;
}

}  // namespace cloudprov
