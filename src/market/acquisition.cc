#include "market/acquisition.h"

#include <cmath>

#include "util/check.h"

namespace cloudprov {

void AcquisitionPolicy::validate() const {
  ensure_arg(spot_fraction >= 0.0 && spot_fraction <= 1.0,
             "AcquisitionPolicy: spot_fraction outside [0, 1]");
  ensure_arg(bid >= 0.0, "AcquisitionPolicy: negative bid");
}

void RevocationPolicy::validate() const {
  ensure_arg(notice >= 0.0, "RevocationPolicy: negative notice window");
}

std::size_t AcquisitionPolicy::choose(const MarketCatalog& catalog,
                                      double spot_price,
                                      std::size_t live_reserved,
                                      std::size_t live_spot,
                                      std::size_t commanded_target) const {
  if (const std::size_t reserved = catalog.find(PurchaseKind::kReserved);
      reserved != MarketCatalog::npos && live_reserved < reserved_pool) {
    return reserved;
  }
  if (spot_enabled(catalog) && spot_price <= bid) {
    const auto cap = static_cast<std::size_t>(
        std::floor(spot_fraction * static_cast<double>(commanded_target)));
    if (live_spot < cap) return catalog.find(PurchaseKind::kSpot);
  }
  return catalog.find(PurchaseKind::kOnDemand);
}

}  // namespace cloudprov
