// Cost-aware acquisition and revocation policies.
//
// AcquisitionPolicy extends Algorithm 1 downstream: the modeler still picks
// the target pool size m from the analytic performance model, and this
// policy decides *how to buy* each of those m instances — reserved base
// capacity first, spot while the market price sits at or under the bid and
// the spot share stays under the configured cap, on-demand otherwise (and
// as the fallback the reconciler heals revoked deficits with, since a
// just-revoked market has price > bid by definition).
//
// RevocationPolicy is the seller side: when the spot price crosses the bid,
// spot instances receive a revocation notice and must drain within the
// notice window before the hard kill lands.
#pragma once

#include <cstddef>

#include "market/instance_class.h"
#include "util/units.h"

namespace cloudprov {

struct AcquisitionPolicy {
  /// Cap on the spot share of the commanded pool: at most
  /// floor(spot_fraction * commanded_target) live spot instances.
  double spot_fraction = 0.0;
  /// Bid, currency per instance-hour. Spot is bought only while the market
  /// price is <= bid; 0 disables spot purchases entirely.
  double bid = 0.0;
  /// Base-load slots bought as reserved capacity (term-billed to the
  /// horizon); 0 disables reserved purchases.
  std::size_t reserved_pool = 0;

  /// Class index into `catalog` for the next purchase, given the market
  /// state. Pure: drives both the broker and the unit tests.
  std::size_t choose(const MarketCatalog& catalog, double spot_price,
                     std::size_t live_reserved, std::size_t live_spot,
                     std::size_t commanded_target) const;

  /// True when this policy can ever buy spot from `catalog`.
  bool spot_enabled(const MarketCatalog& catalog) const {
    return bid > 0.0 && spot_fraction > 0.0 &&
           catalog.has(PurchaseKind::kSpot);
  }

  void validate() const;
};

struct RevocationPolicy {
  /// Seconds between the revocation notice and the hard kill; instances
  /// drain through the provisioner's graceful protocol inside this window.
  SimTime notice = 120.0;

  /// Out-bid semantics: the market reclaims spot capacity whenever its
  /// price strictly exceeds the buyer's bid.
  bool should_revoke(double spot_price, double bid) const {
    return spot_price > bid;
  }

  void validate() const;
};

}  // namespace cloudprov
