#include "market/market_broker.h"

#include <cmath>
#include <ostream>

#include "market/pricing.h"
#include "profile/wall_profiler.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/log.h"

namespace cloudprov {

void MarketConfig::validate() const {
  catalog.validate();
  acquisition.validate();
  revocation.validate();
  spot_price.validate();
  ensure_arg(tick > 0.0, "MarketConfig: tick must be > 0");
}

MarketBroker::MarketBroker(Simulation& sim, Datacenter& datacenter,
                           MarketConfig config, std::uint64_t seed)
    : sim_(sim), datacenter_(datacenter), config_(std::move(config)) {
  config_.validate();
  // The price stream exists only when spot purchases are actually possible:
  // a pure on-demand/reserved market then schedules zero events and cannot
  // perturb the simulation (the strict-no-op guarantee the golden tests pin).
  if (config_.acquisition.spot_enabled(config_.catalog)) {
    price_.emplace(config_.spot_price, seed);
  }
}

void MarketBroker::attach(ApplicationProvisioner& provisioner) {
  provisioner_ = &provisioner;
  provisioner.set_vm_factory([this](const VmSpec& spec) {
    return acquire(spec);
  });
}

void MarketBroker::start() {
  if (running_ || !price_.has_value()) return;
  running_ = true;
  last_accrual_ = sim_.now();
  pending_tick_ = sim_.schedule_in(config_.tick, [this] { tick(); });
}

void MarketBroker::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_tick_ != kInvalidEventId) {
    sim_.cancel(pending_tick_);
    pending_tick_ = kInvalidEventId;
  }
}

double MarketBroker::spot_price() const {
  if (price_.has_value()) return price_->current();
  const std::size_t spot = config_.catalog.find(PurchaseKind::kSpot);
  return spot == MarketCatalog::npos
             ? 0.0
             : config_.catalog.classes[spot].pricing.price_per_hour;
}

std::size_t MarketBroker::live_count(PurchaseKind kind) const {
  std::size_t count = 0;
  for (const Entry& entry : entries_) {
    if (entry.kind == kind && entry.vm->state() != VmState::kDestroyed) {
      ++count;
    }
  }
  return count;
}

double MarketBroker::accrual_rate(const Entry& entry) const {
  if (entry.vm->state() == VmState::kDestroyed) return 0.0;
  if (entry.kind == PurchaseKind::kSpot && price_.has_value()) {
    return price_->current();
  }
  return config_.catalog.classes[entry.class_index].pricing.price_per_hour;
}

void MarketBroker::accrue(SimTime t) {
  if (t <= last_accrual_) return;
  const double dt_hours = (t - last_accrual_) / duration::kHour;
  for (const Entry& entry : entries_) {
    accrued_burn_ += accrual_rate(entry) * dt_hours;
  }
  last_accrual_ = t;
}

Vm* MarketBroker::acquire(const VmSpec& spec) {
  const SimTime t = sim_.now();
  if (price_.has_value()) {
    accrue(t);
    price_->advance_to(t);
  }
  const std::size_t target =
      provisioner_ != nullptr ? provisioner_->commanded_target() : 0;
  const std::size_t index = config_.acquisition.choose(
      config_.catalog, spot_price(), live_count(PurchaseKind::kReserved),
      live_count(PurchaseKind::kSpot), target);
  const InstanceClass& cls = config_.catalog.classes[index];
  Vm* vm = cls.boot_delay.has_value()
               ? datacenter_.create_vm(spec, *cls.boot_delay)
               : datacenter_.create_vm(spec);
  if (vm == nullptr) return nullptr;  // capacity or outage denial
  entries_.push_back({vm, index, cls.kind, t, false, false});
  purchases_[static_cast<std::size_t>(cls.kind)] += 1;
  if (telemetry_ != nullptr) {
    telemetry_->market_purchase(t, vm->id(), to_string(cls.kind));
  }
  return vm;
}

void MarketBroker::tick() {
  // revoke() runs inside this scope; hard_kill() fires later under its own.
  ProfileScope profile(sim_.profiler(), ProfileCategory::kMarketHook);
  pending_tick_ = kInvalidEventId;
  if (!running_) return;
  const SimTime t = sim_.now();
  accrue(t);
  price_->advance_to(t);
  const double price = price_->current();
  if (telemetry_ != nullptr) {
    telemetry_->spot_price_sample(t, price, accrued_burn_);
  }
  if (config_.revocation.should_revoke(price, config_.acquisition.bid)) {
    // Index loop: revoke() may grow entries_ indirectly (pool healing buys
    // replacements through acquire), which would invalidate iterators.
    const std::size_t count = entries_.size();
    for (std::size_t i = 0; i < count; ++i) {
      const Entry& entry = entries_[i];
      if (entry.kind != PurchaseKind::kSpot || entry.revoked) continue;
      if (entry.vm->state() == VmState::kDestroyed) continue;
      revoke(i);
    }
  }
  pending_tick_ = sim_.schedule_in(config_.tick, [this] { tick(); });
}

void MarketBroker::revoke(std::size_t entry_index) {
  Entry& entry = entries_[entry_index];
  entry.revoked = true;
  ++revocations_;
  const SimTime t = sim_.now();
  if (telemetry_ != nullptr) {
    telemetry_->spot_revoked(t, entry.vm->id(), price_->current(),
                             config_.acquisition.bid);
  }
  CLOUDPROV_LOG(Debug) << "spot revocation for vm-" << entry.vm->id()
                       << " at t=" << t << " (price " << price_->current()
                       << " > bid " << config_.acquisition.bid << ")";
  if (provisioner_ != nullptr) provisioner_->revoke_instance(*entry.vm);
  // The hard kill outlives stop(): a notice already served is the IaaS
  // provider's commitment. entries_ is append-only, so the index is stable.
  kills_.push_back(KillRecord{
      sim_.schedule_in(config_.revocation.notice,
                       [this, entry_index] { hard_kill(entry_index); }),
      entry_index});
}

void MarketBroker::hard_kill(std::size_t entry_index) {
  ProfileScope profile(sim_.profiler(), ProfileCategory::kMarketHook);
  Entry& entry = entries_[entry_index];
  if (entry.vm->state() == VmState::kDestroyed) return;  // drained in time
  entry.hard_killed = true;
  ++revocation_kills_;
  const std::size_t lost =
      datacenter_.fail_vm(*entry.vm, FaultCause::kSpotRevocation);
  if (telemetry_ != nullptr) {
    telemetry_->spot_kill(sim_.now(), entry.vm->id(), lost);
  }
}

MarketBroker::Snapshot MarketBroker::checkpoint() const {
  Snapshot snap;
  if (price_.has_value()) snap.price = price_->state();
  snap.entries.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    snap.entries.push_back(Snapshot::EntrySnap{
        entry.vm->id(), entry.class_index, entry.kind, entry.purchase_time,
        entry.revoked, entry.hard_killed});
  }
  for (const KillRecord& kill : kills_) {
    if (auto stamp = sim_.stamp(kill.event)) {
      snap.kills.push_back(Snapshot::Kill{*stamp, kill.entry_index});
    }
  }
  snap.running = running_;
  snap.pending_tick = sim_.stamp(pending_tick_);
  snap.last_accrual = last_accrual_;
  snap.accrued_burn = accrued_burn_;
  for (std::size_t i = 0; i < kPurchaseKindCount; ++i) {
    snap.purchases[i] = purchases_[i];
  }
  snap.revocations = revocations_;
  snap.revocation_kills = revocation_kills_;
  return snap;
}

void MarketBroker::restore(const Snapshot& snap) {
  ensure(!running_ && entries_.empty(),
         "MarketBroker::restore: broker already used");
  ensure(price_.has_value() == snap.price.has_value(),
         "MarketBroker::restore: spot-stream configuration mismatch");
  if (snap.price) price_->set_state(*snap.price);
  entries_.reserve(snap.entries.size());
  for (const Snapshot::EntrySnap& entry : snap.entries) {
    Vm* vm = datacenter_.find_vm(entry.vm_id);
    ensure(vm != nullptr, "MarketBroker::restore: ledger VM missing");
    entries_.push_back({vm, entry.class_index, entry.kind, entry.purchase_time,
                        entry.revoked, entry.hard_killed});
  }
  for (const Snapshot::Kill& kill : snap.kills) {
    const std::size_t entry_index = kill.entry_index;
    kills_.push_back(KillRecord{
        sim_.schedule_stamped(kill.stamp,
                              [this, entry_index] { hard_kill(entry_index); }),
        entry_index});
  }
  running_ = snap.running;
  if (snap.pending_tick) {
    pending_tick_ = sim_.schedule_stamped(*snap.pending_tick, [this] { tick(); });
  }
  last_accrual_ = snap.last_accrual;
  accrued_burn_ = snap.accrued_burn;
  for (std::size_t i = 0; i < kPurchaseKindCount; ++i) {
    purchases_[i] = snap.purchases[i];
  }
  revocations_ = snap.revocations;
  revocation_kills_ = snap.revocation_kills;
}

MarketReport MarketBroker::finalize(SimTime horizon) {
  ensure_arg(horizon >= 0.0, "MarketBroker::finalize: negative horizon");
  MarketReport report;
  if (price_.has_value()) {
    price_->advance_to(horizon);
    report.spot_path = price_->path();
    report.spot_price_mean = price_->mean_price(horizon);
    report.spot_price_max = price_->max_price(horizon);
  }
  for (const Entry& entry : entries_) {
    const InstanceClass& cls = config_.catalog.classes[entry.class_index];
    MarketPurchase purchase;
    purchase.vm_id = entry.vm->id();
    purchase.class_index = entry.class_index;
    purchase.kind = entry.kind;
    purchase.purchase_time = entry.purchase_time;
    purchase.end_time = entry.vm->destruction_time().value_or(horizon);
    purchase.revoked = entry.revoked;
    purchase.hard_killed = entry.hard_killed;
    const SimTime lifetime = purchase.end_time - purchase.purchase_time;
    switch (entry.kind) {
      case PurchaseKind::kOnDemand:
        purchase.cost = billed_cost(lifetime, cls.pricing);
        report.on_demand_cost += purchase.cost;
        break;
      case PurchaseKind::kReserved:
        // Term commitment: billed to the horizon even if destroyed early.
        purchase.cost = billed_cost(horizon - purchase.purchase_time,
                                    cls.pricing);
        report.reserved_cost += purchase.cost;
        break;
      case PurchaseKind::kSpot: {
        // Quantum-rounded usage billed at the realized market price: the
        // integral of the piecewise-constant path over the billed window.
        double billed = std::max(lifetime, cls.pricing.minimum_billed);
        billed = std::ceil(billed / cls.pricing.billing_quantum) *
                 cls.pricing.billing_quantum;
        purchase.cost =
            price_.has_value()
                ? price_->integrate(purchase.purchase_time,
                                    purchase.purchase_time + billed) /
                      duration::kHour
                : billed / duration::kHour * cls.pricing.price_per_hour;
        report.spot_cost += purchase.cost;
        break;
      }
    }
    report.total_cost += purchase.cost;
    report.ledger.push_back(purchase);
  }
  report.on_demand_purchases = purchases(PurchaseKind::kOnDemand);
  report.spot_purchases = purchases(PurchaseKind::kSpot);
  report.reserved_purchases = purchases(PurchaseKind::kReserved);
  report.revocations = revocations_;
  report.revocation_kills = revocation_kills_;
  return report;
}

void write_market_csv(std::ostream& out, const MarketReport& report) {
  CsvWriter csv(out);
  csv.write_header({"record", "time", "vm_id", "class", "kind", "end_time",
                    "value", "revoked", "hard_killed"});
  for (const PricePoint& point : report.spot_path) {
    csv.write_row({"price", CsvWriter::format(point.time), "", "", "", "",
                   CsvWriter::format(point.price), "", ""});
  }
  for (const MarketPurchase& purchase : report.ledger) {
    csv.write_row(
        {"purchase", CsvWriter::format(purchase.purchase_time),
         CsvWriter::format(static_cast<std::int64_t>(purchase.vm_id)),
         CsvWriter::format(static_cast<std::int64_t>(purchase.class_index)),
         to_string(purchase.kind), CsvWriter::format(purchase.end_time),
         CsvWriter::format(purchase.cost), purchase.revoked ? "1" : "0",
         purchase.hard_killed ? "1" : "0"});
  }
}

}  // namespace cloudprov
