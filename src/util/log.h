// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per replication, but
// replications may run on worker threads, so sink access is serialized.
// Logging is stream-based and lazily formatted: a disabled level costs one
// branch.
//
//   CLOUDPROV_LOG(Info) << "scaled to " << m << " instances";
//
// The sink defaults to stderr and can be redirected to any std::ostream or
// a file. An optional sim-time provider prefixes lines with [t=...] so log
// output correlates with telemetry trace events; it is global, so only
// install one for single-replication (non-parallel) runs.
#pragma once

#include <fstream>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace cloudprov {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration and sink.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Redirects output to `sink` (not owned; must outlive the redirection).
  /// Pass nullptr to restore stderr. Closes any set_sink_file() file.
  void set_sink(std::ostream* sink);

  /// Opens `path` (truncating) and sinks log lines there. Returns false and
  /// leaves the sink unchanged when the file cannot be opened.
  bool set_sink_file(const std::string& path);

  /// Installs a sim-time source; when set, every line is prefixed with
  /// [t=<seconds>]. Pass nullptr to remove.
  void set_time_provider(std::function<double()> provider);

  /// Writes one formatted line to the current sink (thread-safe).
  void write(LogLevel level, const std::string& message);

  /// Parses "trace", "debug", "info", "warn", "error", "off".
  static LogLevel parse_level(const std::string& name);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
  std::ostream* sink_ = nullptr;  ///< null = stderr
  std::ofstream file_;
  std::function<double()> time_provider_;
};

namespace detail {

/// Accumulates one log line and flushes it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace cloudprov

#define CLOUDPROV_LOG(severity)                                              \
  if (!::cloudprov::Logger::instance().enabled(                              \
          ::cloudprov::LogLevel::k##severity)) {                             \
  } else                                                                     \
    ::cloudprov::detail::LogLine(::cloudprov::LogLevel::k##severity)
