#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace cloudprov {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() { return Rng(next()); }

double Rng::uniform() {
  // Top 53 bits -> [0,1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ensure_arg(lo <= hi, "uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

double Rng::uniform_positive() {
  // (0,1]: complement of [0,1).
  return 1.0 - uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  ensure_arg(lo <= hi, "uniform_int: lo must be <= hi");
  const std::uint64_t range = hi - lo;
  if (range == ~std::uint64_t{0}) return next();
  const std::uint64_t bound = range + 1;
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    // 128-bit multiply-high.
    const auto wide = static_cast<unsigned __int128>(r) * bound;
    const auto low = static_cast<std::uint64_t>(wide);
    if (low >= threshold) return lo + static_cast<std::uint64_t>(wide >> 64);
  }
}

bool Rng::bernoulli(double p) {
  ensure_arg(p >= 0.0 && p <= 1.0, "bernoulli: p must be in [0,1]");
  return uniform() < p;
}

double Rng::exponential(double rate) {
  ensure_arg(rate > 0.0, "exponential: rate must be positive");
  return -std::log(uniform_positive()) / rate;
}

double Rng::weibull(double shape, double scale) {
  ensure_arg(shape > 0.0 && scale > 0.0, "weibull: parameters must be positive");
  return scale * std::pow(-std::log(uniform_positive()), 1.0 / shape);
}

double Rng::normal(double mean, double stddev) {
  ensure_arg(stddev >= 0.0, "normal: stddev must be non-negative");
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box–Muller transform.
  const double u1 = uniform_positive();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  ensure_arg(xm > 0.0 && alpha > 0.0, "pareto: parameters must be positive");
  return xm / std::pow(uniform_positive(), 1.0 / alpha);
}

std::uint64_t Rng::poisson(double mean) {
  ensure_arg(mean >= 0.0, "poisson: mean must be non-negative");
  if (mean == 0.0) return 0;
  return mean < 10.0 ? poisson_knuth(mean) : poisson_ptrs(mean);
}

std::uint64_t Rng::poisson_knuth(double mean) {
  const double limit = std::exp(-mean);
  std::uint64_t count = 0;
  double product = uniform();
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

std::uint64_t Rng::poisson_ptrs(double mean) {
  // Hörmann (1993), "The transformed rejection method for generating Poisson
  // random variables", algorithm PTRS. Valid for mean >= 10.
  const double slam = std::sqrt(mean);
  const double loglam = std::log(mean);
  const double b = 0.931 + 2.53 * slam;
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double vr = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    const double u = uniform() - 0.5;
    const double v = uniform();
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= vr) return static_cast<std::uint64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    if (std::log(v) + std::log(inv_alpha) - std::log(a / (us * us) + b) <=
        k * loglam - mean - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

double Rng::gamma(double shape, double scale) {
  ensure_arg(shape > 0.0 && scale > 0.0, "gamma: parameters must be positive");
  // Marsaglia & Tsang (2000). For shape < 1 use the boosting identity.
  if (shape < 1.0) {
    const double u = uniform_positive();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal(0.0, 1.0);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform_positive();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

}  // namespace cloudprov
