// Lightweight precondition checking for configuration-time errors.
//
// Hot simulation paths use assertions only in debug builds; API-boundary
// validation uses ensure()/ensure_arg() which throw and therefore survive
// release builds.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace cloudprov {

/// Throws std::logic_error when an internal invariant is violated.
inline void ensure(bool condition, const std::string& message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw std::logic_error(std::string(loc.file_name()) + ":" +
                           std::to_string(loc.line()) + ": " + message);
  }
}

/// Throws std::invalid_argument for caller-supplied bad values.
inline void ensure_arg(bool condition, const std::string& message,
                       std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw std::invalid_argument(std::string(loc.file_name()) + ":" +
                                std::to_string(loc.line()) + ": " + message);
  }
}

}  // namespace cloudprov
