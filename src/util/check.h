// Lightweight precondition checking for configuration-time errors.
//
// Hot simulation paths use assertions only in debug builds; API-boundary
// validation uses ensure()/ensure_arg() which throw and therefore survive
// release builds. The passing path must stay allocation-free: several checks
// sit on the per-event serve path (scheduling, VM submit/complete), so the
// message is a const char* and the exception string is only built inside the
// cold [[noreturn]] helpers. std::string overloads remain for call sites
// that compose their message (CLI parsing and similar cold paths).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace cloudprov {

namespace detail {

[[noreturn]] inline void throw_ensure(const char* message,
                                      const std::source_location& loc) {
  throw std::logic_error(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": " + message);
}

[[noreturn]] inline void throw_ensure_arg(const char* message,
                                          const std::source_location& loc) {
  throw std::invalid_argument(std::string(loc.file_name()) + ":" +
                              std::to_string(loc.line()) + ": " + message);
}

}  // namespace detail

/// Throws std::logic_error when an internal invariant is violated.
inline void ensure(bool condition, const char* message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] detail::throw_ensure(message, loc);
}
inline void ensure(bool condition, const std::string& message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] detail::throw_ensure(message.c_str(), loc);
}

/// Throws std::invalid_argument for caller-supplied bad values.
inline void ensure_arg(bool condition, const char* message,
                       std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] detail::throw_ensure_arg(message, loc);
}
inline void ensure_arg(bool condition, const std::string& message,
                       std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] detail::throw_ensure_arg(message.c_str(), loc);
}

}  // namespace cloudprov
