#include "util/csv.h"

#include <charconv>
#include <istream>
#include <ostream>

#include "util/check.h"

namespace cloudprov {

CsvWriter::CsvWriter(std::ostream& out, char separator)
    : out_(out), separator_(separator) {}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  write_row(columns);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& field : fields) {
    if (!first) out_ << separator_;
    out_ << escape(field);
    first = false;
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) const {
  const bool needs_quote =
      field.find_first_of(std::string{separator_, '"', '\n', '\r'}) !=
      std::string::npos;
  if (!needs_quote) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string CsvWriter::format(double value) {
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof buf, value);
  ensure(result.ec == std::errc{}, "double formatting failed");
  return std::string(buf, result.ptr);
}

std::string CsvWriter::format(std::int64_t value) {
  return std::to_string(value);
}

CsvReader::CsvReader(std::istream& in, char separator)
    : in_(in), separator_(separator) {}

std::optional<std::vector<std::string>> CsvReader::next_row() {
  std::string line;
  if (!std::getline(in_, line)) return std::nullopt;
  if (!line.empty() && line.back() == '\r') line.pop_back();

  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == separator_) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace cloudprov
