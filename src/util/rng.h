// Deterministic pseudo-random number generation.
//
// The simulator must produce identical results for identical seeds across
// platforms and standard-library implementations, so both the engine
// (xoshiro256** by Blackman & Vigna) and every variate sampler are
// implemented here instead of relying on the implementation-defined
// std::<distribution> algorithms.
//
// `Rng` satisfies UniformRandomBitGenerator, so it can still be plugged into
// standard distributions when cross-platform determinism is not required.
#pragma once

#include <array>
#include <cstdint>

namespace cloudprov {

/// splitmix64: used to expand a single 64-bit seed into engine state and to
/// derive independent child seeds (one per replication / per stream).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator with 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x2011'1c99'0b5c'a1f3ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Derives an independent generator (distinct stream) from this one.
  /// Uses splitmix64 on a fresh draw, so child streams do not overlap in
  /// practice even when many are split from one parent.
  Rng split();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform double in (0, 1] — safe as a log() argument.
  double uniform_positive();

  /// Uniform integer in [lo, hi] (inclusive), bias-free via rejection.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// True with probability p.
  bool bernoulli(double p);

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Weibull variate with shape alpha and scale beta (mean beta*Gamma(1+1/alpha)).
  double weibull(double shape, double scale);

  /// Normal variate (Box–Muller with caching of the second deviate).
  double normal(double mean, double stddev);

  /// Log-normal variate where the *underlying* normal has (mu, sigma).
  double lognormal(double mu, double sigma);

  /// Pareto variate with minimum xm and tail index alpha.
  double pareto(double xm, double alpha);

  /// Poisson count with the given mean. Knuth multiplication for small means,
  /// Hörmann's PTRS transformed rejection for large means.
  std::uint64_t poisson(double mean);

  /// Gamma variate, shape k and scale theta (Marsaglia–Tsang).
  double gamma(double shape, double scale);

  /// Raw engine state, exposed for checkpoint/restore (src/lookahead): the
  /// four xoshiro256** words plus the cached Box–Muller second deviate.
  /// Restoring it reproduces the draw sequence exactly.
  struct State {
    std::array<std::uint64_t, 4> s{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State state() const { return State{s_, cached_normal_, has_cached_normal_}; }
  void set_state(const State& state) {
    s_ = state.s;
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  std::uint64_t poisson_knuth(double mean);
  std::uint64_t poisson_ptrs(double mean);

  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cloudprov
