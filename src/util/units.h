// Time units and conversion helpers.
//
// Simulation time is a double measured in seconds since the start of the
// simulated experiment (matching CloudSim's convention, which the paper's
// evaluation was built on). Named constants keep scenario configuration
// readable: `3 * duration::kHour` instead of `10800.0`.
#pragma once

namespace cloudprov {

/// Simulated time in seconds.
using SimTime = double;

namespace duration {
inline constexpr SimTime kMillisecond = 1e-3;
inline constexpr SimTime kSecond = 1.0;
inline constexpr SimTime kMinute = 60.0;
inline constexpr SimTime kHour = 3600.0;
inline constexpr SimTime kDay = 86400.0;
inline constexpr SimTime kWeek = 7.0 * kDay;
}  // namespace duration

/// Seconds elapsed since the most recent simulated midnight.
constexpr SimTime seconds_into_day(SimTime t) {
  const auto days = static_cast<long long>(t / duration::kDay);
  SimTime rem = t - static_cast<SimTime>(days) * duration::kDay;
  if (rem < 0) rem += duration::kDay;
  return rem;
}

/// Whole days elapsed since simulation start (day 0 = first simulated day).
constexpr long long day_index(SimTime t) {
  auto d = static_cast<long long>(t / duration::kDay);
  if (static_cast<SimTime>(d) * duration::kDay > t) --d;  // floor for t < 0
  return d;
}

}  // namespace cloudprov
