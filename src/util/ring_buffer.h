// Fixed-capacity-reusing FIFO ring.
//
// std::deque allocates and frees ~512-byte blocks as elements migrate
// across block boundaries, which puts one allocation every few requests on
// the simulator's steady-state serve path (VM waiting lines). RingBuffer
// grows geometrically like vector but never releases capacity, so after
// warm-up a push/pop cycle touches no allocator at all.
//
// Supports the three waiting-line operations the VM needs: push_back
// (FIFO), pop_front, and insert-at-index (non-preemptive priority order,
// the Section VII extension). Indexing is front-relative: [0] is the next
// element to pop.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.h"

namespace cloudprov {

template <typename T>
class RingBuffer {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t index) {
    return storage_[wrap(head_ + index)];
  }
  const T& operator[](std::size_t index) const {
    return storage_[wrap(head_ + index)];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }

  void push_back(T value) {
    reserve_for_one();
    storage_[wrap(head_ + size_)] = std::move(value);
    ++size_;
  }

  void pop_front() {
    ensure(size_ > 0, "RingBuffer::pop_front on empty ring");
    head_ = wrap(head_ + 1);
    --size_;
  }

  /// Inserts before front-relative position `index` (0 = new front,
  /// size() = push_back). Shifts the tail right; O(size - index).
  void insert(std::size_t index, T value) {
    ensure_arg(index <= size_, "RingBuffer::insert: index out of range");
    reserve_for_one();
    for (std::size_t i = size_; i > index; --i) {
      storage_[wrap(head_ + i)] = std::move(storage_[wrap(head_ + i - 1)]);
    }
    storage_[wrap(head_ + index)] = std::move(value);
    ++size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::size_t wrap(std::size_t index) const {
    // Capacity is a power of two, so wrapping is a mask.
    return index & (storage_.size() - 1);
  }

  void reserve_for_one() {
    if (size_ < storage_.size()) return;
    const std::size_t capacity = storage_.empty() ? 8 : storage_.size() * 2;
    std::vector<T> grown(capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      grown[i] = std::move((*this)[i]);
    }
    storage_ = std::move(grown);
    head_ = 0;
  }

  std::vector<T> storage_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace cloudprov
