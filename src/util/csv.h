// CSV writing/reading for experiment output and trace record/replay.
//
// RFC-4180-style quoting: fields containing separators, quotes, or newlines
// are quoted and embedded quotes doubled. The reader accepts the same format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace cloudprov {

/// Streams rows to an std::ostream owned by the caller.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char separator = ',');

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with enough digits to round-trip.
  static std::string format(double value);
  static std::string format(std::int64_t value);

 private:
  std::string escape(const std::string& field) const;

  std::ostream& out_;
  char separator_;
};

/// Pull-based reader; returns one row of fields at a time.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in, char separator = ',');

  /// Reads the next row, or nullopt at end of input. Handles quoted fields
  /// spanning separators; quoted embedded newlines are not supported (the
  /// library never writes them).
  std::optional<std::vector<std::string>> next_row();

 private:
  std::istream& in_;
  char separator_;
};

}  // namespace cloudprov
