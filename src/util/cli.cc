#include "util/cli.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/check.h"

namespace cloudprov {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {
  add_flag("help", "false", "Show this help message", "");
}

void ArgParser::add_flag(const std::string& name, const std::string& default_value,
                         const std::string& help, const std::string& type_hint) {
  ensure_arg(!name.empty() && name[0] != '-', "flag name must not start with '-'");
  ensure_arg(!flags_.contains(name), "duplicate flag: --" + name);
  flags_[name] = Flag{default_value, std::nullopt, help, type_hint};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      value = token.substr(eq + 1);
      token.erase(eq);
      has_value = true;
    }
    bool negated = false;
    if (!flags_.contains(token) && token.rfind("no-", 0) == 0) {
      negated = true;
      token.erase(0, 3);
    }
    auto it = flags_.find(token);
    ensure_arg(it != flags_.end(), "unknown flag: --" + token);
    Flag& flag = it->second;
    if (negated) {
      ensure_arg(!has_value, "--no-" + token + " does not take a value");
      flag.value = "false";
      continue;
    }
    const bool is_bool = flag.default_value == "true" || flag.default_value == "false";
    if (!has_value) {
      if (is_bool) {
        // Peek: allow `--flag true|false`, otherwise treat as bare boolean.
        if (i + 1 < argc) {
          const std::string next = argv[i + 1];
          if (next == "true" || next == "false") {
            value = next;
            ++i;
            has_value = true;
          }
        }
        if (!has_value) value = "true";
      } else {
        ensure_arg(i + 1 < argc, "flag --" + token + " requires a value");
        value = argv[++i];
      }
    }
    flag.value = value;
  }
  if (get_bool("help")) {
    std::cout << help();
    return false;
  }
  return true;
}

const ArgParser::Flag& ArgParser::find(const std::string& name) const {
  const auto it = flags_.find(name);
  ensure(it != flags_.end(), "flag was never registered: --" + name);
  return it->second;
}

std::string ArgParser::get_string(const std::string& name) const {
  const Flag& flag = find(name);
  return flag.value.value_or(flag.default_value);
}

double ArgParser::get_double(const std::string& name) const {
  const std::string text = get_string(name);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  ensure_arg(end != text.c_str() && *end == '\0',
             "flag --" + name + " expects a number, got '" + text + "'");
  return value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string text = get_string(name);
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  ensure_arg(end != text.c_str() && *end == '\0',
             "flag --" + name + " expects an integer, got '" + text + "'");
  return value;
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string text = get_string(name);
  if (text == "true" || text == "1") return true;
  if (text == "false" || text == "0") return false;
  ensure_arg(false, "flag --" + name + " expects true/false, got '" + text + "'");
  return false;
}

bool ArgParser::was_set(const std::string& name) const {
  return find(name).value.has_value();
}

std::string ArgParser::help() const {
  std::ostringstream out;
  out << description_ << "\n\nUsage: " << program_name_ << " [flags]\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    if (!flag.type_hint.empty()) out << ' ' << flag.type_hint;
    out << "\n        " << flag.help;
    if (name != "help") out << " (default: " << flag.default_value << ")";
    out << '\n';
  }
  return out.str();
}

}  // namespace cloudprov
