#include "util/distributions.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace cloudprov {
namespace {

std::string format_name(const char* base, std::initializer_list<double> params) {
  std::ostringstream out;
  out << base << '(';
  bool first = true;
  for (double p : params) {
    if (!first) out << ", ";
    out << p;
    first = false;
  }
  out << ')';
  return out.str();
}

}  // namespace

DeterministicDistribution::DeterministicDistribution(double value) : value_(value) {}

std::string DeterministicDistribution::name() const {
  return format_name("Deterministic", {value_});
}

ExponentialDistribution::ExponentialDistribution(double rate) : rate_(rate) {
  ensure_arg(rate > 0.0, "ExponentialDistribution: rate must be positive");
}

std::string ExponentialDistribution::name() const {
  return format_name("Exponential", {rate_});
}

UniformDistribution::UniformDistribution(double lo, double hi) : lo_(lo), hi_(hi) {
  ensure_arg(lo <= hi, "UniformDistribution: lo must be <= hi");
}

std::string UniformDistribution::name() const {
  return format_name("Uniform", {lo_, hi_});
}

WeibullDistribution::WeibullDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  ensure_arg(shape > 0.0 && scale > 0.0,
             "WeibullDistribution: parameters must be positive");
}

double WeibullDistribution::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double WeibullDistribution::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

double WeibullDistribution::mode() const {
  if (shape_ <= 1.0) return 0.0;
  return scale_ * std::pow((shape_ - 1.0) / shape_, 1.0 / shape_);
}

std::string WeibullDistribution::name() const {
  return format_name("Weibull", {shape_, scale_});
}

NormalDistribution::NormalDistribution(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  ensure_arg(stddev >= 0.0, "NormalDistribution: stddev must be non-negative");
}

std::string NormalDistribution::name() const {
  return format_name("Normal", {mean_, stddev_});
}

LogNormalDistribution::LogNormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  ensure_arg(sigma >= 0.0, "LogNormalDistribution: sigma must be non-negative");
}

double LogNormalDistribution::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormalDistribution::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

std::string LogNormalDistribution::name() const {
  return format_name("LogNormal", {mu_, sigma_});
}

ParetoDistribution::ParetoDistribution(double xm, double alpha)
    : xm_(xm), alpha_(alpha) {
  ensure_arg(xm > 0.0 && alpha > 0.0,
             "ParetoDistribution: parameters must be positive");
}

double ParetoDistribution::mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * xm_ / (alpha_ - 1.0);
}

double ParetoDistribution::variance() const {
  if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
  return xm_ * xm_ * alpha_ / ((alpha_ - 1.0) * (alpha_ - 1.0) * (alpha_ - 2.0));
}

std::string ParetoDistribution::name() const {
  return format_name("Pareto", {xm_, alpha_});
}

ScaledUniformDistribution::ScaledUniformDistribution(double base, double spread)
    : base_(base), spread_(spread) {
  ensure_arg(base > 0.0, "ScaledUniformDistribution: base must be positive");
  ensure_arg(spread >= 0.0, "ScaledUniformDistribution: spread must be non-negative");
}

std::string ScaledUniformDistribution::name() const {
  return format_name("ScaledUniform", {base_, spread_});
}

}  // namespace cloudprov
