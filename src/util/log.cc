#include "util/log.h"

#include <iostream>

#include "util/check.h"

namespace cloudprov {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  std::scoped_lock lock(mutex_);
  if (file_.is_open()) file_.close();
  sink_ = sink;
}

bool Logger::set_sink_file(const std::string& path) {
  std::scoped_lock lock(mutex_);
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) return false;
  if (file_.is_open()) file_.close();
  file_ = std::move(file);
  sink_ = &file_;
  return true;
}

void Logger::set_time_provider(std::function<double()> provider) {
  std::scoped_lock lock(mutex_);
  time_provider_ = std::move(provider);
}

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  std::scoped_lock lock(mutex_);
  std::ostream& out = sink_ != nullptr ? *sink_ : std::cerr;
  out << '[' << level_name(level) << "] ";
  if (time_provider_) out << "[t=" << time_provider_() << "] ";
  out << message << '\n';
}

LogLevel Logger::parse_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  ensure_arg(false, "unknown log level: " + name);
  return LogLevel::kWarn;
}

}  // namespace cloudprov
