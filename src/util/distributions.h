// Polymorphic random-variate distributions.
//
// Workload models are configured from distribution objects so that scenario
// definitions (and tests) can swap, e.g., the paper's Weibull interarrival
// process for a deterministic one without touching generator code. Each
// distribution also reports its analytic mean/variance, which the test suite
// uses to validate the samplers against closed forms.
#pragma once

#include <memory>
#include <string>

#include "util/rng.h"

namespace cloudprov {

/// A real-valued random variate with known first two moments.
class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual double sample(Rng& rng) const = 0;
  virtual double mean() const = 0;
  virtual double variance() const = 0;
  virtual std::string name() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/// Always returns the same value. Useful for tests and fluid approximations.
class DeterministicDistribution final : public Distribution {
 public:
  explicit DeterministicDistribution(double value);
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  std::string name() const override;

 private:
  double value_;
};

class ExponentialDistribution final : public Distribution {
 public:
  explicit ExponentialDistribution(double rate);
  double sample(Rng& rng) const override { return rng.exponential(rate_); }
  double mean() const override { return 1.0 / rate_; }
  double variance() const override { return 1.0 / (rate_ * rate_); }
  std::string name() const override;
  double rate() const { return rate_; }

 private:
  double rate_;
};

class UniformDistribution final : public Distribution {
 public:
  UniformDistribution(double lo, double hi);
  double sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double variance() const override {
    const double w = hi_ - lo_;
    return w * w / 12.0;
  }
  std::string name() const override;

 private:
  double lo_;
  double hi_;
};

class WeibullDistribution final : public Distribution {
 public:
  WeibullDistribution(double shape, double scale);
  double sample(Rng& rng) const override { return rng.weibull(shape_, scale_); }
  double mean() const override;
  double variance() const override;
  /// Most likely value; the paper's predictors are built on distribution modes.
  double mode() const;
  std::string name() const override;
  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

class NormalDistribution final : public Distribution {
 public:
  NormalDistribution(double mean, double stddev);
  double sample(Rng& rng) const override { return rng.normal(mean_, stddev_); }
  double mean() const override { return mean_; }
  double variance() const override { return stddev_ * stddev_; }
  std::string name() const override;

 private:
  double mean_;
  double stddev_;
};

class LogNormalDistribution final : public Distribution {
 public:
  /// Parameters of the underlying normal.
  LogNormalDistribution(double mu, double sigma);
  double sample(Rng& rng) const override { return rng.lognormal(mu_, sigma_); }
  double mean() const override;
  double variance() const override;
  std::string name() const override;

 private:
  double mu_;
  double sigma_;
};

class ParetoDistribution final : public Distribution {
 public:
  ParetoDistribution(double xm, double alpha);
  double sample(Rng& rng) const override { return rng.pareto(xm_, alpha_); }
  double mean() const override;      // infinite for alpha <= 1
  double variance() const override;  // infinite for alpha <= 2
  std::string name() const override;

 private:
  double xm_;
  double alpha_;
};

/// Base value scaled by U(1, 1 + spread): the paper's service-time
/// heterogeneity ("a uniformly-generated value between 0% and 10%").
class ScaledUniformDistribution final : public Distribution {
 public:
  ScaledUniformDistribution(double base, double spread);
  double sample(Rng& rng) const override {
    return base_ * rng.uniform(1.0, 1.0 + spread_);
  }
  double mean() const override { return base_ * (1.0 + 0.5 * spread_); }
  double variance() const override {
    const double w = base_ * spread_;
    return w * w / 12.0;
  }
  std::string name() const override;
  double base() const { return base_; }

 private:
  double base_;
  double spread_;
};

}  // namespace cloudprov
