#include "util/linalg.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace cloudprov {

std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const std::size_t n = b.size();
  ensure_arg(a.size() == n, "solve_linear_system: dimension mismatch");
  for (const auto& row : a) {
    ensure_arg(row.size() == n, "solve_linear_system: matrix must be square");
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    ensure_arg(std::abs(a[pivot][col]) > 1e-12,
               "solve_linear_system: singular system");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= a[i][k] * x[k];
    x[i] = sum / a[i][i];
  }
  return x;
}

}  // namespace cloudprov
