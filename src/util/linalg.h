// Small dense linear algebra.
//
// The systems solved in this library are tiny (AR(p) normal equations,
// Jackson traffic equations: dimensions < 100), so Gaussian elimination with
// partial pivoting is the right tool — no factorization library needed.
#pragma once

#include <vector>

namespace cloudprov {

/// Solves A x = b (Gaussian elimination, partial pivoting).
/// Throws std::invalid_argument on dimension mismatch or singular systems.
std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b);

}  // namespace cloudprov
