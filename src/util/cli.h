// Tiny command-line flag parser used by the benchmark harnesses and examples.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` /
// `--no-flag`. Flags must be registered (with help text and defaults) before
// parse(); unknown flags are an error so typos in experiment sweeps fail
// loudly instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cloudprov {

class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Registers a flag. `type_hint` is shown in --help (e.g. "<double>").
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help, const std::string& type_hint = "");

  /// Parses argv. Returns false (after printing help) when --help was given.
  /// Throws std::invalid_argument on unknown flags or missing values.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  bool was_set(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string help() const;

 private:
  struct Flag {
    std::string default_value;
    std::optional<std::string> value;
    std::string help;
    std::string type_hint;
  };

  const Flag& find(const std::string& name) const;

  std::string description_;
  std::string program_name_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace cloudprov
