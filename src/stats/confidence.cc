#include "stats/confidence.h"

#include <cmath>
#include <numbers>

#include "stats/running_stats.h"
#include "util/check.h"

namespace cloudprov {

double normal_quantile(double p) {
  ensure_arg(p > 0.0 && p < 1.0, "normal_quantile: p must be in (0,1)");
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double student_t_quantile(double p, std::size_t degrees_of_freedom) {
  ensure_arg(p > 0.0 && p < 1.0, "student_t_quantile: p must be in (0,1)");
  ensure_arg(degrees_of_freedom >= 1, "student_t_quantile: df must be >= 1");
  const auto df = static_cast<double>(degrees_of_freedom);
  if (degrees_of_freedom == 1) {
    // Cauchy closed form.
    return std::tan(std::numbers::pi * (p - 0.5));
  }
  if (degrees_of_freedom == 2) {
    const double alpha = 2.0 * p - 1.0;
    return alpha * std::sqrt(2.0 / (1.0 - alpha * alpha));
  }
  // Hill (1970) asymptotic expansion in terms of the normal quantile.
  const double z = normal_quantile(p);
  const double g1 = (z * z * z + z) / 4.0;
  const double g2 = (5.0 * std::pow(z, 5) + 16.0 * z * z * z + 3.0 * z) / 96.0;
  const double g3 =
      (3.0 * std::pow(z, 7) + 19.0 * std::pow(z, 5) + 17.0 * z * z * z - 15.0 * z) /
      384.0;
  const double g4 = (79.0 * std::pow(z, 9) + 776.0 * std::pow(z, 7) +
                     1482.0 * std::pow(z, 5) - 1920.0 * z * z * z - 945.0 * z) /
                    92160.0;
  return z + g1 / df + g2 / (df * df) + g3 / (df * df * df) +
         g4 / (df * df * df * df);
}

ConfidenceInterval mean_confidence_interval(const std::vector<double>& samples,
                                            double confidence) {
  ensure_arg(confidence > 0.0 && confidence < 1.0,
             "mean_confidence_interval: confidence must be in (0,1)");
  RunningStats stats;
  for (double s : samples) stats.add(s);
  ConfidenceInterval ci;
  ci.mean = stats.mean();
  if (stats.count() < 2) return ci;
  const double p = 1.0 - (1.0 - confidence) / 2.0;
  const double t = student_t_quantile(p, stats.count() - 1);
  ci.half_width = t * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
  return ci;
}

}  // namespace cloudprov
