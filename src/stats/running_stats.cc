#include "stats/running_stats.h"

#include <algorithm>
#include <cmath>

namespace cloudprov {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::population_variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

void RunningStats::reset() { *this = RunningStats{}; }

}  // namespace cloudprov
