// Streaming moment statistics (Welford's online algorithm).
//
// Used for response-time accounting over hundreds of millions of requests:
// O(1) memory, numerically stable variance, and mergeable across replications
// (parallel-reduction friendly, Chan et al. update).
#pragma once

#include <cstdint>

namespace cloudprov {

class RunningStats {
 public:
  void add(double value);

  /// Merges another accumulator into this one (Chan/Golub/LeVeque).
  void merge(const RunningStats& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Population variance (n denominator).
  double population_variance() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(count_); }

  void reset();

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cloudprov
