// Fixed-bin histogram with under/overflow tracking.
//
// Linear or logarithmic bin edges. Used for response-time distribution
// reporting and for chi-square-style sanity checks in the test suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cloudprov {

class Histogram {
 public:
  /// Linear bins of equal width covering [lo, hi).
  static Histogram linear(double lo, double hi, std::size_t bins);

  /// Logarithmic bins covering [lo, hi), lo > 0.
  static Histogram logarithmic(double lo, double hi, std::size_t bins);

  void add(double value);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  double bin_lower(std::size_t bin) const { return edges_.at(bin); }
  double bin_upper(std::size_t bin) const { return edges_.at(bin + 1); }

  /// Fraction of in-range samples at or below the upper edge of `bin`.
  double cumulative_fraction(std::size_t bin) const;

  /// Multi-line ASCII rendering (for example programs).
  std::string render(std::size_t width = 50) const;

 private:
  explicit Histogram(std::vector<double> edges);

  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace cloudprov
