// Quantile estimation.
//
// ExactQuantiles stores every sample (tests, small experiments).
// P2Quantile is the Jain & Chlamtac (1985) P² streaming estimator: O(1)
// memory per tracked quantile, used for response-time percentiles in the
// half-billion-request web scenario.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace cloudprov {

/// Exact empirical quantiles; O(n) memory, sorts lazily.
class ExactQuantiles {
 public:
  void add(double value);
  std::size_t count() const { return samples_.size(); }

  /// Empirical quantile with linear interpolation, q in [0, 1].
  /// Precondition: at least one sample.
  double quantile(double q) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// P² single-quantile streaming estimator.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile);

  void add(double value);
  std::uint64_t count() const { return count_; }

  /// Current estimate. Exact while fewer than 5 samples were seen.
  double value() const;

 private:
  double parabolic(int i, double d) const;
  double linear(int i, int d) const;

  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

}  // namespace cloudprov
