#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace cloudprov {

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), counts_(edges_.size() - 1, 0) {}

Histogram Histogram::linear(double lo, double hi, std::size_t bins) {
  ensure_arg(bins > 0, "Histogram: need at least one bin");
  ensure_arg(lo < hi, "Histogram: lo must be < hi");
  std::vector<double> edges(bins + 1);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges[i] = lo + width * static_cast<double>(i);
  }
  edges.back() = hi;
  return Histogram(std::move(edges));
}

Histogram Histogram::logarithmic(double lo, double hi, std::size_t bins) {
  ensure_arg(bins > 0, "Histogram: need at least one bin");
  ensure_arg(lo > 0.0 && lo < hi, "Histogram: need 0 < lo < hi");
  std::vector<double> edges(bins + 1);
  const double log_lo = std::log(lo);
  const double step = (std::log(hi) - log_lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges[i] = std::exp(log_lo + step * static_cast<double>(i));
  }
  edges.front() = lo;
  edges.back() = hi;
  return Histogram(std::move(edges));
}

void Histogram::add(double value) {
  ++total_;
  if (value < edges_.front()) {
    ++underflow_;
    return;
  }
  if (value >= edges_.back()) {
    ++overflow_;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  const auto bin = static_cast<std::size_t>(it - edges_.begin()) - 1;
  ++counts_[std::min(bin, counts_.size() - 1)];
}

double Histogram::cumulative_fraction(std::size_t bin) const {
  ensure_arg(bin < counts_.size(), "Histogram: bin out of range");
  const std::uint64_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bin; ++i) cumulative += counts_[i];
  return static_cast<double>(cumulative) / static_cast<double>(in_range);
}

std::string Histogram::render(std::size_t width) const {
  const std::uint64_t peak = counts_.empty()
                                 ? 0
                                 : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = peak == 0 ? std::size_t{0}
                               : static_cast<std::size_t>(
                                     static_cast<double>(counts_[i]) /
                                     static_cast<double>(peak) *
                                     static_cast<double>(width));
    out << '[' << bin_lower(i) << ", " << bin_upper(i) << ")\t" << counts_[i]
        << '\t' << std::string(bar, '#') << '\n';
  }
  return out.str();
}

}  // namespace cloudprov
