#include "stats/timeseries.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudprov {

TimeWeightedValue::TimeWeightedValue(SimTime start_time, double value)
    : start_time_(start_time),
      last_time_(start_time),
      current_(value),
      min_(value),
      max_(value) {}

void TimeWeightedValue::update(SimTime t, double value) {
  ensure_arg(t >= last_time_, "TimeWeightedValue: time went backwards");
  integral_ += current_ * (t - last_time_);
  last_time_ = t;
  current_ = value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double TimeWeightedValue::time_average() const {
  const SimTime duration = last_time_ - start_time_;
  return duration <= 0.0 ? current_ : integral_ / duration;
}

SampledSeries::SampledSeries(std::size_t keep_every)
    : keep_every_(keep_every == 0 ? 1 : keep_every) {}

void SampledSeries::add(SimTime t, double value) {
  if (seen_ % keep_every_ == 0) points_.push_back(Point{t, value});
  ++seen_;
}

double SampledSeries::window_mean(SimTime t0, SimTime t1) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const Point& p : points_) {
    if (p.time >= t0 && p.time < t1) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? std::nan("") : sum / static_cast<double>(n);
}

}  // namespace cloudprov
