// Time-indexed statistics.
//
// TimeWeightedValue integrates a piecewise-constant signal over simulated
// time — the right averaging for "number of running instances", "busy
// servers", and every utilization metric in the paper, where a value that
// held for 6 hours must weigh more than one that held for 6 seconds.
//
// SampledSeries records (time, value) pairs with optional uniform
// downsampling; it backs the Figure 3/4 arrival-rate plots.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "util/units.h"

namespace cloudprov {

class TimeWeightedValue {
 public:
  /// Starts tracking at `start_time` with initial value `value`.
  explicit TimeWeightedValue(SimTime start_time = 0.0, double value = 0.0);

  /// Records that the signal changed to `value` at time `t` (t >= last update).
  void update(SimTime t, double value);

  /// Advances observation to time `t` without changing the value.
  void advance(SimTime t) { update(t, current_); }

  double current() const { return current_; }
  /// Integral of the signal from start to the last update.
  double integral() const { return integral_; }
  /// Time-weighted mean over the observed window (0 if the window is empty).
  double time_average() const;
  double min() const { return min_; }
  double max() const { return max_; }
  SimTime observed_duration() const { return last_time_ - start_time_; }

 private:
  SimTime start_time_;
  SimTime last_time_;
  double current_;
  double integral_ = 0.0;
  double min_;
  double max_;
};

class SampledSeries {
 public:
  /// keep_every = n stores every n-th sample (1 = all).
  explicit SampledSeries(std::size_t keep_every = 1);

  void add(SimTime t, double value);

  struct Point {
    SimTime time;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }
  std::size_t recorded() const { return points_.size(); }
  std::size_t seen() const { return seen_; }

  /// Mean of the values in a time window [t0, t1); NaN when empty.
  double window_mean(SimTime t0, SimTime t1) const;

 private:
  std::size_t keep_every_;
  std::size_t seen_ = 0;
  std::vector<Point> points_;
};

}  // namespace cloudprov
