#include "stats/quantile.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudprov {

void ExactQuantiles::add(double value) {
  samples_.push_back(value);
  sorted_ = false;
}

double ExactQuantiles::quantile(double q) const {
  ensure_arg(q >= 0.0 && q <= 1.0, "quantile: q must be in [0,1]");
  ensure(!samples_.empty(), "quantile: no samples");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

P2Quantile::P2Quantile(double quantile) : q_(quantile) {
  ensure_arg(quantile > 0.0 && quantile < 1.0, "P2Quantile: q must be in (0,1)");
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

double P2Quantile::parabolic(int i, double d) const {
  const double qi = heights_[static_cast<std::size_t>(i)];
  const double qp = heights_[static_cast<std::size_t>(i + 1)];
  const double qm = heights_[static_cast<std::size_t>(i - 1)];
  const double ni = positions_[static_cast<std::size_t>(i)];
  const double np = positions_[static_cast<std::size_t>(i + 1)];
  const double nm = positions_[static_cast<std::size_t>(i - 1)];
  return qi + d / (np - nm) *
                  ((ni - nm + d) * (qp - qi) / (np - ni) +
                   (np - ni - d) * (qi - qm) / (ni - nm));
}

double P2Quantile::linear(int i, int d) const {
  const auto si = static_cast<std::size_t>(i);
  const auto sd = static_cast<std::size_t>(i + d);
  return heights_[si] + static_cast<double>(d) * (heights_[sd] - heights_[si]) /
                            (positions_[sd] - positions_[si]);
}

void P2Quantile::add(double value) {
  if (count_ < 5) {
    heights_[count_] = value;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i) positions_[i] = static_cast<double>(i + 1);
    }
    return;
  }
  ++count_;

  std::size_t cell = 0;
  if (value < heights_[0]) {
    heights_[0] = value;
    cell = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && value >= heights_[cell + 1]) ++cell;
  }

  for (std::size_t i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const auto si = static_cast<std::size_t>(i);
    const double d = desired_[si] - positions_[si];
    const bool move_right = d >= 1.0 && positions_[si + 1] - positions_[si] > 1.0;
    const bool move_left = d <= -1.0 && positions_[si - 1] - positions_[si] < -1.0;
    if (!move_right && !move_left) continue;
    const int dir = move_right ? 1 : -1;
    double candidate = parabolic(i, dir);
    if (heights_[si - 1] < candidate && candidate < heights_[si + 1]) {
      heights_[si] = candidate;
    } else {
      heights_[si] = linear(i, dir);
    }
    positions_[si] += dir;
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile over the few samples seen so far.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const double pos = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min<std::size_t>(lo + 1, count_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

}  // namespace cloudprov
