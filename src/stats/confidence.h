// Confidence intervals over replication means.
//
// The paper reports averages over 10 independent simulation runs; the
// experiment harness additionally reports Student-t confidence intervals so
// reproduced deltas can be judged against run-to-run noise.
#pragma once

#include <cstddef>
#include <vector>

namespace cloudprov {

/// Two-sided Student-t quantile: P(T_df <= t) = p.
/// Uses the Cornish–Fisher-style expansion of Hill (1970); accurate to ~1e-4
/// for df >= 1, exact limiting normal for large df.
double student_t_quantile(double p, std::size_t degrees_of_freedom);

/// Standard normal quantile (Acklam's rational approximation, |err| < 1.2e-8).
double normal_quantile(double p);

struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }
};

/// CI for the mean of `samples` at the given confidence level (e.g. 0.95).
/// With fewer than two samples the half-width is zero.
ConfidenceInterval mean_confidence_interval(const std::vector<double>& samples,
                                            double confidence = 0.95);

}  // namespace cloudprov
