// Wall-clock self-profiling observatory.
//
// The simulator's sim-time observability (src/telemetry) says nothing about
// where *wall* time goes — and the roadmap's next unlocks (sharded
// scale-out, 10^8-request trace runs) live or die on that signal. This
// module attributes wall time to subsystems with the same discipline the
// telemetry layer uses for sim-time events:
//
//  - Instrumented code holds a `WallProfiler*` that is null when profiling
//    is disabled, so the disabled cost is one well-predicted branch per
//    scope site (ProfileScope compiles to a pointer test).
//  - Scopes nest on an explicit stack: a parent's *self* time excludes its
//    children, so summing self times over all categories never double
//    counts and the folded-stack export is a real flame graph.
//  - steady_clock is calibrated at construction (minimum observable
//    back-to-back now() delta); that per-scope measurement cost is
//    subtracted from every scope so fine-grained sites do not inflate.
//  - The profiler is OUTPUT-ONLY: it never schedules events, draws RNG, or
//    touches any simulation observable, so every golden (metrics, span-CSV
//    hashes) is bit-identical with profiling on or off — proven by
//    kernel_golden_test.cc.
//
// Periodic ProfileSnapshots are wall-timer driven: the engine run loop polls
// maybe_snapshot() every kSnapshotStride events (one predicted branch per
// event), and a row is recorded only when `snapshot_interval` wall seconds
// have passed. Each row captures event-kernel internals surfaced by
// EventQueue (4-ary heap depth + high water, slab occupancy high water,
// stale-cancel drops, boxed-action count) plus throughput (events/s) and the
// sim-time-per-wall-second speedup.
//
// Single-threaded by design, like Telemetry: attach one profiler to one
// replication (parallel replication batches profile a dedicated sequential
// rerun, exactly as the telemetry collector does).
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cloudprov {

/// Subsystems wall time is attributed to. Names (to_string) are dotted so
/// folded-stack paths read naturally in flamegraph tooling.
enum class ProfileCategory : std::uint8_t {
  kEngineRun,       ///< event-kernel pop/dispatch loop (Simulation::run)
  kWorldBuild,      ///< world construction + component wiring
  kWorldFinish,     ///< metrics extraction at the horizon
  kPolicyDecision,  ///< Algorithm 1 window evaluation (adaptive/lookahead)
  kLookaheadFork,   ///< one what-if candidate: snapshot restore + clone run
  kSnapshot,        ///< WorldState capture (what-if base, checkpointing)
  kMarketHook,      ///< spot-price ticks, revocation notices, hard kills
  kFaultHook,       ///< fault-injector arrivals (crashes, degradations)
  kReconcilerHook,  ///< self-healing reconciler passes
  kResilienceHook,  ///< retry gateway cold paths (timeouts, retry fires)
  kExportTrace,     ///< Chrome-trace JSON export
  kExportMetrics,   ///< metrics registry CSV/Prometheus export
  kExportSpans,     ///< span CSV export
  kExportDrift,     ///< drift CSV export
  kExportSlo,       ///< SLO CSV export
  kExportProfile,   ///< profile artifact export (this module's own output)
  kExportManifest,  ///< run-manifest JSON export
  kShardRun,        ///< one shard advancing its kernel through a window
  kShardBarrier,    ///< worker parked at the window-boundary barrier
  kArbiter,         ///< serial commit: capacity arbitration across tenants
  kCount
};

const char* to_string(ProfileCategory category);

constexpr std::size_t kProfileCategoryCount =
    static_cast<std::size_t>(ProfileCategory::kCount);

/// One wall-timer-driven sample of engine internals. `events_per_second`
/// and `speedup` (sim seconds advanced per wall second) are rates over the
/// interval since the previous snapshot.
struct ProfileSnapshot {
  double wall_seconds = 0.0;  ///< since profiler construction
  double sim_time = 0.0;
  std::uint64_t executed_events = 0;
  double events_per_second = 0.0;
  double speedup = 0.0;
  std::size_t live_events = 0;      ///< pending non-cancelled events
  std::size_t heap_depth = 0;       ///< heap entries incl. stale records
  std::size_t heap_high_water = 0;  ///< max heap entries ever
  std::size_t slab_high_water = 0;  ///< slab slots ever allocated
  std::uint64_t stale_drops = 0;    ///< cancelled entries discarded so far
  std::uint64_t boxed_pushed = 0;   ///< events that heap-allocated a closure
};

class WallProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  /// Engine-loop polling stride: maybe_snapshot() is consulted every this
  /// many executed events. Power of two so the check is a mask, not a
  /// division.
  static constexpr std::uint64_t kSnapshotStride = 4096;
  /// Folded-stack paths deeper than this collapse into their parent frame
  /// (never happens with the current instrumentation, which nests <= 4).
  static constexpr std::size_t kMaxDepth = 8;

  explicit WallProfiler(double snapshot_interval_seconds = 0.1);
  WallProfiler(const WallProfiler&) = delete;
  WallProfiler& operator=(const WallProfiler&) = delete;

  /// Opens / closes an attribution scope. Prefer ProfileScope; end() must
  /// name the category begin() pushed (enforced).
  void begin(ProfileCategory category);
  void end(ProfileCategory category);

  /// Records a ProfileSnapshot when `snapshot_interval` wall seconds have
  /// passed since the last one; otherwise one clock read and out. Called
  /// from the engine run loop every kSnapshotStride events.
  void maybe_snapshot(double sim_time, std::uint64_t executed_events,
                      std::size_t live_events, std::size_t heap_depth,
                      std::size_t heap_high_water, std::size_t slab_high_water,
                      std::uint64_t stale_drops, std::uint64_t boxed_pushed);
  /// Unconditional snapshot (end-of-run flush), so short runs still export
  /// at least one row.
  void force_snapshot(double sim_time, std::uint64_t executed_events,
                      std::size_t live_events, std::size_t heap_depth,
                      std::size_t heap_high_water, std::size_t slab_high_water,
                      std::uint64_t stale_drops, std::uint64_t boxed_pushed);

  struct CategoryStat {
    double self_seconds = 0.0;   ///< excludes nested scopes
    double total_seconds = 0.0;  ///< includes nested scopes
    std::uint64_t count = 0;
  };

  /// One folded-stack row: the scope path from the root and its exclusive
  /// time — exactly one output line in flamegraph "folded" format.
  struct PathStat {
    std::vector<ProfileCategory> path;
    double self_seconds = 0.0;
    std::uint64_t count = 0;
  };

  const std::array<CategoryStat, kProfileCategoryCount>& totals() const {
    return totals_;
  }
  /// Folded-stack rows, sorted by path for deterministic output.
  std::vector<PathStat> folded() const;
  const std::vector<ProfileSnapshot>& snapshots() const { return snapshots_; }

  /// Moves every *closed* scope's attribution (category totals and folded
  /// paths) into `target`, zeroing this profiler's copies. The multi-tenant
  /// runner gives each shard worker a private profiler (the class is
  /// single-threaded by design) and drains them into the run-level profiler
  /// inside the serial barrier section, where no worker is running — the
  /// same per-worker-then-merge pattern the telemetry registry documents.
  /// Open frames (e.g. the worker's own barrier scope) simply land in a
  /// later drain once they close. Engine snapshots are NOT moved: they are
  /// per-kernel series, meaningful only against their own kernel.
  void drain_into(WallProfiler& target);

  /// Wall seconds since construction.
  double wall_seconds() const;
  /// Sum of self times over every category: total attributed wall time.
  /// Never double counts (self excludes children by construction).
  double covered_seconds() const;
  /// Calibrated cost of one back-to-back steady_clock::now() pair,
  /// subtracted from every scope.
  double clock_overhead_seconds() const { return calibration_; }
  double snapshot_interval() const { return snapshot_interval_; }

 private:
  struct Frame {
    ProfileCategory category;
    Clock::time_point start;
    double child_seconds;
    std::uint64_t path_key;  ///< 8 bits per level, root in the high byte
  };

  void record_snapshot(Clock::time_point now, double sim_time,
                       std::uint64_t executed_events, std::size_t live_events,
                       std::size_t heap_depth, std::size_t heap_high_water,
                       std::size_t slab_high_water, std::uint64_t stale_drops,
                       std::uint64_t boxed_pushed);

  Clock::time_point epoch_;
  double calibration_ = 0.0;
  double snapshot_interval_;

  std::vector<Frame> stack_;
  std::array<CategoryStat, kProfileCategoryCount> totals_{};
  /// path_key -> (self seconds, count). Keys pack <= kMaxDepth category
  /// indices (1-based, so 0 means "no frame") into a uint64.
  std::unordered_map<std::uint64_t, std::pair<double, std::uint64_t>> paths_;

  Clock::time_point last_snapshot_wall_;
  double last_snapshot_sim_ = 0.0;
  std::uint64_t last_snapshot_events_ = 0;
  std::vector<ProfileSnapshot> snapshots_;
};

/// RAII attribution scope; a null profiler makes both edges a pointer test,
/// so instrumented sites cost nothing when profiling is off.
class ProfileScope {
 public:
  ProfileScope(WallProfiler* profiler, ProfileCategory category)
      : profiler_(profiler), category_(category) {
    if (profiler_ != nullptr) profiler_->begin(category_);
  }
  ~ProfileScope() {
    if (profiler_ != nullptr) profiler_->end(category_);
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  WallProfiler* profiler_;
  ProfileCategory category_;
};

}  // namespace cloudprov
