// Profile artifact writers: Chrome-trace counter tracks, a long-form
// profile CSV, a folded-stack file for flamegraph tooling, and a
// human-readable summary table. All writers are pure functions of the
// profiler's accumulated state; they never mutate it.
#pragma once

#include <ostream>

#include "profile/wall_profiler.h"

namespace cloudprov {

/// Long-form CSV (record,wall_seconds,sim_seconds,name,value): one row per
/// snapshot field plus category self/total/count rows at the end. Long form
/// keeps the schema stable as fields are added and pivots trivially in
/// pandas/R.
void write_profile_csv(std::ostream& out, const WallProfiler& profiler);

/// Chrome-trace JSON (chrome://tracing, Perfetto): every snapshot field
/// becomes a counter ("ph":"C") sample on its own track; category totals are
/// emitted as complete events on a synthetic timeline so the breakdown is
/// visible in the same view.
void write_profile_chrome_trace(std::ostream& out,
                                const WallProfiler& profiler);

/// Folded-stack format ("engine.run;policy.decision 1234", value in
/// microseconds of self time) consumable by flamegraph.pl / inferno / speedscope.
void write_folded_stacks(std::ostream& out, const WallProfiler& profiler);

/// Human-readable breakdown table sorted by self time, with percent of the
/// given wall-clock denominator (pass RunMetrics.wall_seconds).
void write_profile_summary(std::ostream& out, const WallProfiler& profiler,
                           double wall_seconds);

}  // namespace cloudprov
