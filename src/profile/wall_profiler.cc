#include "profile/wall_profiler.h"

#include <algorithm>

#include "util/check.h"

namespace cloudprov {

const char* to_string(ProfileCategory category) {
  switch (category) {
    case ProfileCategory::kEngineRun:
      return "engine.run";
    case ProfileCategory::kWorldBuild:
      return "world.build";
    case ProfileCategory::kWorldFinish:
      return "world.finish";
    case ProfileCategory::kPolicyDecision:
      return "policy.decision";
    case ProfileCategory::kLookaheadFork:
      return "lookahead.fork";
    case ProfileCategory::kSnapshot:
      return "world.snapshot";
    case ProfileCategory::kMarketHook:
      return "market.hook";
    case ProfileCategory::kFaultHook:
      return "fault.inject";
    case ProfileCategory::kReconcilerHook:
      return "reconciler.tick";
    case ProfileCategory::kResilienceHook:
      return "resilience.retry";
    case ProfileCategory::kExportTrace:
      return "export.trace";
    case ProfileCategory::kExportMetrics:
      return "export.metrics";
    case ProfileCategory::kExportSpans:
      return "export.spans";
    case ProfileCategory::kExportDrift:
      return "export.drift";
    case ProfileCategory::kExportSlo:
      return "export.slo";
    case ProfileCategory::kExportProfile:
      return "export.profile";
    case ProfileCategory::kExportManifest:
      return "export.manifest";
    case ProfileCategory::kShardRun:
      return "shard.run";
    case ProfileCategory::kShardBarrier:
      return "shard.barrier";
    case ProfileCategory::kArbiter:
      return "shard.arbiter";
    case ProfileCategory::kCount:
      break;
  }
  return "unknown";
}

namespace {

double seconds_between(WallProfiler::Clock::time_point a,
                       WallProfiler::Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

WallProfiler::WallProfiler(double snapshot_interval_seconds)
    : epoch_(Clock::now()),
      snapshot_interval_(snapshot_interval_seconds),
      last_snapshot_wall_(epoch_) {
  ensure(snapshot_interval_seconds >= 0.0,
         "profiler snapshot interval must be non-negative");
  // Calibrate the cost of one begin/end clock pair: the minimum observable
  // back-to-back now() delta over a short burst. Using the minimum (not the
  // mean) keeps scheduler preemptions during calibration from inflating the
  // correction and producing negative scope times everywhere.
  double min_delta = 0.0;
  for (int i = 0; i < 512; ++i) {
    const Clock::time_point a = Clock::now();
    const Clock::time_point b = Clock::now();
    const double delta = seconds_between(a, b);
    if (i == 0 || delta < min_delta) min_delta = delta;
  }
  calibration_ = std::max(0.0, min_delta);
  stack_.reserve(kMaxDepth + 4);
}

void WallProfiler::begin(ProfileCategory category) {
  ensure(category != ProfileCategory::kCount, "invalid profile category");
  std::uint64_t key;
  if (stack_.empty()) {
    key = static_cast<std::uint64_t>(category) + 1;
  } else if (stack_.size() >= kMaxDepth) {
    // Too deep for the packed path key: collapse into the parent's path so
    // the time is still attributed (to the parent frame's stack).
    key = stack_.back().path_key;
  } else {
    key = (stack_.back().path_key << 8) |
          (static_cast<std::uint64_t>(category) + 1);
  }
  stack_.push_back(Frame{category, Clock::now(), 0.0, key});
}

void WallProfiler::end(ProfileCategory category) {
  ensure(!stack_.empty(), "profiler scope end without begin");
  const Frame frame = stack_.back();
  stack_.pop_back();
  ensure(frame.category == category, "mismatched profiler scope end");

  const Clock::time_point now = Clock::now();
  double elapsed = seconds_between(frame.start, now) - calibration_;
  if (elapsed < 0.0) elapsed = 0.0;
  double self = elapsed - frame.child_seconds;
  if (self < 0.0) self = 0.0;

  CategoryStat& stat = totals_[static_cast<std::size_t>(frame.category)];
  stat.self_seconds += self;
  stat.total_seconds += elapsed;
  ++stat.count;

  auto& path = paths_[frame.path_key];
  path.first += self;
  ++path.second;

  if (!stack_.empty()) stack_.back().child_seconds += elapsed;
}

void WallProfiler::maybe_snapshot(double sim_time,
                                  std::uint64_t executed_events,
                                  std::size_t live_events,
                                  std::size_t heap_depth,
                                  std::size_t heap_high_water,
                                  std::size_t slab_high_water,
                                  std::uint64_t stale_drops,
                                  std::uint64_t boxed_pushed) {
  const Clock::time_point now = Clock::now();
  if (seconds_between(last_snapshot_wall_, now) < snapshot_interval_) return;
  record_snapshot(now, sim_time, executed_events, live_events, heap_depth,
                  heap_high_water, slab_high_water, stale_drops, boxed_pushed);
}

void WallProfiler::force_snapshot(double sim_time,
                                  std::uint64_t executed_events,
                                  std::size_t live_events,
                                  std::size_t heap_depth,
                                  std::size_t heap_high_water,
                                  std::size_t slab_high_water,
                                  std::uint64_t stale_drops,
                                  std::uint64_t boxed_pushed) {
  record_snapshot(Clock::now(), sim_time, executed_events, live_events,
                  heap_depth, heap_high_water, slab_high_water, stale_drops,
                  boxed_pushed);
}

void WallProfiler::record_snapshot(Clock::time_point now, double sim_time,
                                   std::uint64_t executed_events,
                                   std::size_t live_events,
                                   std::size_t heap_depth,
                                   std::size_t heap_high_water,
                                   std::size_t slab_high_water,
                                   std::uint64_t stale_drops,
                                   std::uint64_t boxed_pushed) {
  ProfileSnapshot snap;
  snap.wall_seconds = seconds_between(epoch_, now);
  snap.sim_time = sim_time;
  snap.executed_events = executed_events;
  const double wall_dt = seconds_between(last_snapshot_wall_, now);
  if (wall_dt > 0.0) {
    snap.events_per_second =
        static_cast<double>(executed_events - last_snapshot_events_) / wall_dt;
    snap.speedup = (sim_time - last_snapshot_sim_) / wall_dt;
  }
  snap.live_events = live_events;
  snap.heap_depth = heap_depth;
  snap.heap_high_water = heap_high_water;
  snap.slab_high_water = slab_high_water;
  snap.stale_drops = stale_drops;
  snap.boxed_pushed = boxed_pushed;
  snapshots_.push_back(snap);

  last_snapshot_wall_ = now;
  last_snapshot_sim_ = sim_time;
  last_snapshot_events_ = executed_events;
}

std::vector<WallProfiler::PathStat> WallProfiler::folded() const {
  std::vector<PathStat> rows;
  rows.reserve(paths_.size());
  for (const auto& [key, stat] : paths_) {
    PathStat row;
    // Decode the packed key: the deepest frame sits in the low byte, so
    // collect low-to-high then reverse for a root-first path.
    std::uint64_t k = key;
    while (k != 0) {
      row.path.push_back(static_cast<ProfileCategory>((k & 0xffu) - 1));
      k >>= 8;
    }
    std::reverse(row.path.begin(), row.path.end());
    row.self_seconds = stat.first;
    row.count = stat.second;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const PathStat& a, const PathStat& b) {
    return a.path < b.path;
  });
  return rows;
}

void WallProfiler::drain_into(WallProfiler& target) {
  for (std::size_t i = 0; i < kProfileCategoryCount; ++i) {
    CategoryStat& from = totals_[i];
    CategoryStat& to = target.totals_[i];
    to.self_seconds += from.self_seconds;
    to.total_seconds += from.total_seconds;
    to.count += from.count;
    from = CategoryStat{};
  }
  for (const auto& [key, stat] : paths_) {
    auto& into = target.paths_[key];
    into.first += stat.first;
    into.second += stat.second;
  }
  paths_.clear();
}

double WallProfiler::wall_seconds() const {
  return seconds_between(epoch_, Clock::now());
}

double WallProfiler::covered_seconds() const {
  double sum = 0.0;
  for (const CategoryStat& stat : totals_) sum += stat.self_seconds;
  return sum;
}

}  // namespace cloudprov
