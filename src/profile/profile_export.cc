#include "profile/profile_export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/csv.h"

namespace cloudprov {
namespace {

// Same JSON conventions as telemetry/export.cc (file-local there): numbers
// round-trip at precision 17 and non-finite values become 0.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

std::string json_string(const std::string& text) {
  std::string escaped = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      case '\r': escaped += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  escaped += '"';
  return escaped;
}

std::string folded_path(const std::vector<ProfileCategory>& path) {
  std::string joined;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) joined += ';';
    joined += to_string(path[i]);
  }
  return joined;
}

struct CounterField {
  const char* name;
  double (*value)(const ProfileSnapshot&);
};

constexpr CounterField kCounterFields[] = {
    {"events_per_second",
     [](const ProfileSnapshot& s) { return s.events_per_second; }},
    {"sim_speedup", [](const ProfileSnapshot& s) { return s.speedup; }},
    {"live_events",
     [](const ProfileSnapshot& s) {
       return static_cast<double>(s.live_events);
     }},
    {"heap_depth",
     [](const ProfileSnapshot& s) {
       return static_cast<double>(s.heap_depth);
     }},
    {"heap_high_water",
     [](const ProfileSnapshot& s) {
       return static_cast<double>(s.heap_high_water);
     }},
    {"slab_high_water",
     [](const ProfileSnapshot& s) {
       return static_cast<double>(s.slab_high_water);
     }},
    {"stale_drops",
     [](const ProfileSnapshot& s) {
       return static_cast<double>(s.stale_drops);
     }},
    {"boxed_pushed",
     [](const ProfileSnapshot& s) {
       return static_cast<double>(s.boxed_pushed);
     }},
    {"executed_events",
     [](const ProfileSnapshot& s) {
       return static_cast<double>(s.executed_events);
     }},
    {"sim_time", [](const ProfileSnapshot& s) { return s.sim_time; }},
};

}  // namespace

void write_profile_csv(std::ostream& out, const WallProfiler& profiler) {
  CsvWriter csv(out);
  csv.write_header({"record", "wall_seconds", "sim_seconds", "name", "value"});
  for (const ProfileSnapshot& snap : profiler.snapshots()) {
    const std::string wall = CsvWriter::format(snap.wall_seconds);
    const std::string sim = CsvWriter::format(snap.sim_time);
    for (const CounterField& field : kCounterFields) {
      csv.write_row({"snapshot", wall, sim, field.name,
                     CsvWriter::format(field.value(snap))});
    }
  }
  const std::string wall_now = CsvWriter::format(profiler.wall_seconds());
  const auto& totals = profiler.totals();
  for (std::size_t i = 0; i < totals.size(); ++i) {
    const auto& stat = totals[i];
    if (stat.count == 0) continue;
    const char* name = to_string(static_cast<ProfileCategory>(i));
    csv.write_row({"category_self", wall_now, "", name,
                   CsvWriter::format(stat.self_seconds)});
    csv.write_row({"category_total", wall_now, "", name,
                   CsvWriter::format(stat.total_seconds)});
    csv.write_row({"category_count", wall_now, "", name,
                   CsvWriter::format(static_cast<std::int64_t>(stat.count))});
  }
}

void write_profile_chrome_trace(std::ostream& out,
                                const WallProfiler& profiler) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) out << ",\n";
    first = false;
    out << "  " << line;
  };
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
       "\"args\":{\"name\":\"cloudprov wall profile\"}}");
  for (const ProfileSnapshot& snap : profiler.snapshots()) {
    const std::string ts = json_number(snap.wall_seconds * 1e6);
    for (const CounterField& field : kCounterFields) {
      emit("{\"name\":" + json_string(field.name) +
           ",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":" + ts +
           ",\"args\":{" + json_string(field.name) + ":" +
           json_number(field.value(snap)) + "}}");
    }
  }
  // Category breakdown as complete events laid end-to-end on tid 1: not a
  // real timeline (scopes interleave), but it makes relative subsystem cost
  // visible next to the counter tracks.
  double cursor_us = 0.0;
  const auto& totals = profiler.totals();
  for (std::size_t i = 0; i < totals.size(); ++i) {
    const auto& stat = totals[i];
    if (stat.count == 0) continue;
    const char* name = to_string(static_cast<ProfileCategory>(i));
    const double dur_us = stat.self_seconds * 1e6;
    emit("{\"name\":" + json_string(name) +
         ",\"cat\":\"wall\",\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":" +
         json_number(cursor_us) + ",\"dur\":" + json_number(dur_us) +
         ",\"args\":{\"count\":" +
         json_number(static_cast<double>(stat.count)) + "}}");
    cursor_us += dur_us;
  }
  out << "\n]}\n";
}

void write_folded_stacks(std::ostream& out, const WallProfiler& profiler) {
  for (const WallProfiler::PathStat& row : profiler.folded()) {
    // flamegraph.pl expects integer sample counts; self-microseconds keeps
    // sub-millisecond scopes visible.
    const auto micros =
        static_cast<long long>(std::llround(row.self_seconds * 1e6));
    out << folded_path(row.path) << ' ' << micros << '\n';
  }
}

void write_profile_summary(std::ostream& out, const WallProfiler& profiler,
                           double wall_seconds) {
  struct Row {
    const char* name;
    WallProfiler::CategoryStat stat;
  };
  std::vector<Row> rows;
  const auto& totals = profiler.totals();
  for (std::size_t i = 0; i < totals.size(); ++i) {
    if (totals[i].count == 0) continue;
    rows.push_back({to_string(static_cast<ProfileCategory>(i)), totals[i]});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.stat.self_seconds > b.stat.self_seconds;
  });

  const double covered = profiler.covered_seconds();
  out << "Wall-time breakdown (" << std::fixed << std::setprecision(3)
      << covered << "s attributed";
  if (wall_seconds > 0.0) {
    out << ", " << std::setprecision(1) << 100.0 * covered / wall_seconds
        << "% of " << std::setprecision(3) << wall_seconds << "s wall";
  }
  out << ")\n";
  out << "  " << std::left << std::setw(18) << "category" << std::right
      << std::setw(12) << "self_s" << std::setw(12) << "total_s"
      << std::setw(12) << "count" << std::setw(9) << "% wall" << '\n';
  for (const Row& row : rows) {
    out << "  " << std::left << std::setw(18) << row.name << std::right
        << std::fixed << std::setprecision(4) << std::setw(12)
        << row.stat.self_seconds << std::setw(12) << row.stat.total_seconds
        << std::setw(12) << row.stat.count << std::setprecision(1)
        << std::setw(8)
        << (wall_seconds > 0.0 ? 100.0 * row.stat.self_seconds / wall_seconds
                               : 0.0)
        << '%' << '\n';
  }
  out.unsetf(std::ios::fixed);
}

}  // namespace cloudprov
