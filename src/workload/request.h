// End-user service requests (r_l in the paper's notation).
//
// Requests are independent (web requests / Bag-of-Tasks tasks, Section III-B):
// no inter-request communication, all data available on the serving VM.
// Priority and deadline fields support the paper's future-work extension
// (Section VII) of serving high-priority requests first under contention;
// the baseline experiments leave them at their defaults.
#pragma once

#include <cstdint>
#include <limits>

#include "util/units.h"

namespace cloudprov {

struct Request {
  std::uint64_t id = 0;
  /// t_l: arrival time at the application provisioner.
  SimTime arrival_time = 0.0;
  /// Seconds of work on a unit-speed application instance.
  double service_demand = 0.0;
  /// Larger value = more important (extension; 0 in the paper's experiments).
  int priority = 0;
  /// Absolute completion deadline (extension; +inf in the paper's experiments).
  SimTime deadline = std::numeric_limits<SimTime>::infinity();
  /// Key-value object addressed by this request (src/apptier cache tier);
  /// 0 for keyless workloads.
  std::uint64_t key = 0;
};

}  // namespace cloudprov
