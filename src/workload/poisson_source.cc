#include "workload/poisson_source.h"

#include "util/check.h"

namespace cloudprov {

PoissonSource::PoissonSource(double rate, DistributionPtr service_demand,
                             SimTime start, SimTime end)
    : rate_(rate),
      service_demand_(std::move(service_demand)),
      end_(end),
      cursor_(start) {
  ensure_arg(rate >= 0.0, "PoissonSource: rate must be >= 0");
  ensure_arg(service_demand_ != nullptr, "PoissonSource: null demand distribution");
  ensure_arg(start <= end, "PoissonSource: start must be <= end");
}

std::optional<Arrival> PoissonSource::next(Rng& rng) {
  if (rate_ == 0.0) return std::nullopt;
  cursor_ += rng.exponential(rate_);
  if (cursor_ >= end_) return std::nullopt;
  return Arrival{cursor_, service_demand_->sample(rng)};
}

double PoissonSource::expected_rate(SimTime t) const {
  return (t < end_) ? rate_ : 0.0;
}

std::string PoissonSource::name() const {
  return "Poisson(rate=" + std::to_string(rate_) + ")";
}

}  // namespace cloudprov
