// Flash-crowd overlay: superimposes an unannounced Poisson burst on top of
// any base workload.
//
// Models the paper's "highly variable load spikes in demand ... depending on
// ... the popularity of an application" (Section I): the base workload's
// published model (and therefore the profile predictor built from it) knows
// nothing about the spike. expected_rate() deliberately reports only the
// base rate — the spike is invisible to model-derived predictors, exactly
// like a real flash crowd.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "util/distributions.h"
#include "workload/source.h"

namespace cloudprov {

struct SpikeConfig {
  SimTime start = 0.0;
  SimTime end = 0.0;
  /// Additional Poisson arrival rate during [start, end).
  double extra_rate = 0.0;
  /// Service demand of spike requests.
  DistributionPtr service_demand;
};

class SpikeOverlaySource final : public RequestSource {
 public:
  /// `base` is owned by the overlay.
  SpikeOverlaySource(std::unique_ptr<RequestSource> base, SpikeConfig spike);

  std::optional<Arrival> next(Rng& rng) override;

  /// Base workload's rate only: flash crowds are not in the model.
  double expected_rate(SimTime t) const override {
    return base_->expected_rate(t);
  }

  /// Ground truth including the spike (for analysis, not for predictors).
  double true_rate(SimTime t) const;

  std::string name() const override;

 private:
  void refill_spike(Rng& rng);

  std::unique_ptr<RequestSource> base_;
  SpikeConfig spike_;
  std::optional<Arrival> pending_base_;
  std::optional<Arrival> pending_spike_;
  SimTime spike_cursor_;
};

}  // namespace cloudprov
