// Homogeneous Poisson arrival process with pluggable service-demand
// distribution. The elementary workload used by the quickstart example, the
// M/M/1/k validation suite, and as a building block for piecewise-constant
// rate sources.
#pragma once

#include <cstdint>
#include <string>

#include "util/distributions.h"
#include "workload/source.h"

namespace cloudprov {

class PoissonSource final : public RequestSource {
 public:
  /// Arrivals at `rate` per second over [start, end); demands drawn from
  /// `service_demand`.
  PoissonSource(double rate, DistributionPtr service_demand, SimTime start = 0.0,
                SimTime end = std::numeric_limits<SimTime>::infinity());

  std::optional<Arrival> next(Rng& rng) override;
  double expected_rate(SimTime t) const override;
  std::string name() const override;

 private:
  double rate_;
  DistributionPtr service_demand_;
  SimTime end_;
  SimTime cursor_;
};

}  // namespace cloudprov
