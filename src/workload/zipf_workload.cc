#include "workload/zipf_workload.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudprov {

ZipfWorkload::ZipfWorkload(ZipfWorkloadConfig config)
    : config_(config),
      service_demand_(config.service_base, config.service_spread) {
  ensure_arg(config_.num_keys >= 1, "ZipfWorkload: need at least one key");
  ensure_arg(config_.alpha >= 0.0, "ZipfWorkload: alpha must be >= 0");
  ensure_arg(config_.base_rate >= 0.0, "ZipfWorkload: base_rate must be >= 0");
  ensure_arg(config_.rate_interval > 0.0,
             "ZipfWorkload: rate_interval must be > 0");
  ensure_arg(config_.rate_noise_fraction >= 0.0,
             "ZipfWorkload: noise fraction must be >= 0");
  ensure_arg(config_.horizon > 0.0, "ZipfWorkload: horizon must be > 0");
  ensure_arg(config_.scale > 0.0, "ZipfWorkload: scale must be > 0");
  for (const auto& flash : config_.flash) {
    ensure_arg(flash.end >= flash.begin && flash.multiplier >= 0.0,
               "ZipfWorkload: malformed flash-crowd window");
  }
  shift_stride_ = config_.hot_shift_stride != 0 ? config_.hot_shift_stride
                                                : config_.num_keys / 3;

  // Precompute the popularity CDF once: P[rank <= r] ~ H(r) / H(num_keys).
  cdf_.resize(config_.num_keys);
  double harmonic = 0.0;
  for (std::uint64_t r = 1; r <= config_.num_keys; ++r) {
    harmonic += std::pow(static_cast<double>(r), -config_.alpha);
    cdf_[r - 1] = harmonic;
  }
  for (double& c : cdf_) c /= harmonic;
  cdf_.back() = 1.0;  // guard against rounding
}

double ZipfWorkload::expected_rate(SimTime t) const {
  if (t < 0.0 || t >= config_.horizon) return 0.0;
  double rate = config_.base_rate * config_.scale;
  for (const auto& flash : config_.flash) {
    if (t >= flash.begin && t < flash.end) rate *= flash.multiplier;
  }
  return rate;
}

std::uint64_t ZipfWorkload::key_for_rank(std::uint64_t rank, SimTime t) const {
  std::uint64_t shifts = 0;
  for (SimTime at : config_.hot_shift_at) {
    if (t >= at) ++shifts;
  }
  const std::uint64_t offset = (shifts * shift_stride_) % config_.num_keys;
  return (rank - 1 + offset) % config_.num_keys + 1;
}

std::uint64_t ZipfWorkload::sample_rank(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin()) + 1;
}

void ZipfWorkload::begin_interval(SimTime t, Rng& rng) {
  const double base = expected_rate(t);
  const double noisy =
      base * (1.0 + config_.rate_noise_fraction * rng.normal(0.0, 1.0));
  interval_rate_ = std::max(0.0, noisy);
  const double intervals_done = std::floor(t / config_.rate_interval);
  interval_end_ = (intervals_done + 1.0) * config_.rate_interval;
}

void ZipfWorkload::save_state(std::vector<double>& out) const {
  out.push_back(cursor_);
  out.push_back(interval_end_);
  out.push_back(interval_rate_);
}

void ZipfWorkload::load_state(const std::vector<double>& in) {
  ensure_arg(in.size() == 3, "ZipfWorkload::load_state: bad encoding");
  cursor_ = in[0];
  interval_end_ = in[1];
  interval_rate_ = in[2];
}

std::optional<Arrival> ZipfWorkload::next(Rng& rng) {
  if (interval_rate_ < 0.0) begin_interval(cursor_, rng);
  for (;;) {
    if (cursor_ >= config_.horizon) return std::nullopt;
    if (interval_rate_ <= 0.0) {
      cursor_ = interval_end_;
      begin_interval(cursor_, rng);
      continue;
    }
    const SimTime candidate = cursor_ + rng.exponential(interval_rate_);
    if (candidate >= interval_end_) {
      // Memoryless restart at the rate boundary, exactly like WebWorkload.
      cursor_ = interval_end_;
      begin_interval(cursor_, rng);
      continue;
    }
    cursor_ = candidate;
    if (cursor_ >= config_.horizon) return std::nullopt;
    // Fixed draw order after the arrival time: service demand, then key.
    Arrival arrival{cursor_, service_demand_.sample(rng)};
    arrival.key = key_for_rank(sample_rank(rng), cursor_);
    return arrival;
  }
}

}  // namespace cloudprov
