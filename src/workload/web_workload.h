// Web workload (Section V-B1): a simplified model of the English Wikipedia
// access traces (Urdaneta et al.).
//
// The arrival rate follows Equation 2 of the paper,
//
//     r(t) = Rmin + (Rmax - Rmin) * sin(pi * t / 86400),
//
// where t is seconds since midnight and (Rmin, Rmax) come from the per-weekday
// Table II — trough at midnight, peak at noon, 12 hours apart. The data
// center re-samples the rate every 60 seconds with a 5% relative standard
// deviation; within an interval arrivals are Poisson at the sampled rate.
// Each request needs 100 ms on an idle server plus a uniformly distributed
// 0–10% heterogeneity term. Simulation starts Monday 12 a.m. and runs one
// week.
#pragma once

#include <array>
#include <string>

#include "util/distributions.h"
#include "workload/source.h"

namespace cloudprov {

/// One Table II row: requests/second bounds for a day of the week.
struct DayRates {
  double max = 0.0;
  double min = 0.0;
};

struct WebWorkloadConfig {
  /// Table II, indexed by day offset from the simulation start.
  /// The simulation starts Monday (paper, Section V-B1), so index 0 = Monday.
  std::array<DayRates, 7> week = {{
      {1000.0, 500.0},  // Monday
      {1200.0, 500.0},  // Tuesday
      {1200.0, 500.0},  // Wednesday
      {1200.0, 500.0},  // Thursday
      {1200.0, 500.0},  // Friday
      {1000.0, 500.0},  // Saturday
      {900.0, 400.0},   // Sunday
  }};

  /// Rate re-sampling interval ("requests are received by the data center in
  /// intervals of 60 seconds").
  SimTime rate_interval = 60.0;

  /// Relative standard deviation applied to each interval's Equation-2 rate.
  double rate_noise_fraction = 0.05;

  /// Base request processing time on an idle server (100 ms) and the
  /// uniform 0-10% heterogeneity spread.
  double service_base = 0.100;
  double service_spread = 0.10;

  /// Workload horizon (one week in the paper).
  SimTime horizon = 7.0 * 86400.0;

  /// Multiplies all arrival rates; 1.0 reproduces paper scale (~500M
  /// requests/week). Benches default to 0.1 for tractable single-core runs.
  double scale = 1.0;
};

class WebWorkload final : public RequestSource {
 public:
  explicit WebWorkload(WebWorkloadConfig config = {});

  std::optional<Arrival> next(Rng& rng) override;

  /// Equation 2 evaluated at t (scaled); the noise-free ground truth.
  double expected_rate(SimTime t) const override;

  std::string name() const override { return "WebWorkload(wikipedia)"; }

  const WebWorkloadConfig& config() const { return config_; }

  void save_state(std::vector<double>& out) const override;
  void load_state(const std::vector<double>& in) override;

 private:
  /// Enters the interval containing `t` and samples its noisy rate.
  void begin_interval(SimTime t, Rng& rng);

  WebWorkloadConfig config_;
  ScaledUniformDistribution service_demand_;
  SimTime cursor_ = 0.0;
  SimTime interval_end_ = 0.0;
  double interval_rate_ = -1.0;  // <0 means "not started"
};

}  // namespace cloudprov
