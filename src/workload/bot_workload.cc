#include "workload/bot_workload.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudprov {

BotWorkload::BotWorkload(BotWorkloadConfig config)
    : config_(config),
      service_demand_(config.service_base, config.service_spread),
      size_class_(config.size_shape, config.size_scale),
      peak_interarrival_(config.peak_interarrival_shape,
                         config.peak_interarrival_scale),
      offpeak_count_(config.offpeak_count_shape, config.offpeak_count_scale) {
  ensure_arg(config_.peak_start >= 0.0 && config_.peak_start < config_.peak_end &&
                 config_.peak_end <= duration::kDay,
             "BotWorkload: peak window must lie within the day");
  ensure_arg(config_.offpeak_window > 0.0, "BotWorkload: window must be > 0");
  ensure_arg(config_.horizon > 0.0, "BotWorkload: horizon must be > 0");
  ensure_arg(config_.scale > 0.0, "BotWorkload: scale must be > 0");
}

bool BotWorkload::in_peak(SimTime t) const {
  const SimTime tod = seconds_into_day(t);
  return tod >= config_.peak_start && tod < config_.peak_end;
}

double BotWorkload::mean_tasks_per_job() const {
  // E[max(1, floor(S))] = 1 + sum_{n>=2} P(S >= n), S ~ Weibull(alpha, beta).
  const double alpha = config_.size_shape;
  const double beta = config_.size_scale;
  double mean = 1.0;
  for (int n = 2; n < 10000; ++n) {
    const double survival = std::exp(-std::pow(static_cast<double>(n) / beta, alpha));
    mean += survival;
    if (survival < 1e-12) break;
  }
  return mean;
}

double BotWorkload::interarrival_mode() const { return peak_interarrival_.mode(); }
double BotWorkload::offpeak_count_mode() const { return offpeak_count_.mode(); }
double BotWorkload::size_mode() const { return size_class_.mode(); }

double BotWorkload::expected_rate(SimTime t) const {
  if (t < 0.0 || t >= config_.horizon) return 0.0;
  const double tasks = mean_tasks_per_job();
  if (in_peak(t)) {
    const double mean_interarrival = peak_interarrival_.mean() / config_.scale;
    return tasks / mean_interarrival;
  }
  // Window counts are floored at generation time; E[floor(X)] ~ E[X] - 0.5
  // for a smooth X well above zero.
  const double mean_jobs =
      std::max(0.0, offpeak_count_.mean() * config_.scale - 0.5);
  return mean_jobs * tasks / config_.offpeak_window;
}

void BotWorkload::emit_job(SimTime t, Rng& rng) {
  const double raw = size_class_.sample(rng);
  const auto tasks = static_cast<std::uint64_t>(std::max(1.0, std::floor(raw)));
  for (std::uint64_t i = 0; i < tasks; ++i) {
    pending_.push_back(Arrival{t, service_demand_.sample(rng)});
  }
}

void BotWorkload::generate_offpeak_window(SimTime window_start, Rng& rng) {
  const double raw = offpeak_count_.sample(rng) * config_.scale;
  const auto jobs = static_cast<std::uint64_t>(std::max(0.0, std::floor(raw)));
  if (jobs == 0) return;
  // "Jobs arrive in equal intervals inside the 30 minutes period."
  const SimTime spacing = config_.offpeak_window / static_cast<double>(jobs);
  for (std::uint64_t j = 0; j < jobs; ++j) {
    const SimTime t = window_start + spacing * static_cast<double>(j);
    if (t >= config_.horizon) break;
    // Skip slots that precede the entry point into this window (only possible
    // with non-window-aligned custom peak boundaries).
    if (t < cursor_) continue;
    emit_job(t, rng);
  }
}

void BotWorkload::refill(Rng& rng) {
  while (pending_.empty() && cursor_ < config_.horizon) {
    if (in_peak(cursor_)) {
      const SimTime peak_end_abs =
          static_cast<double>(day_index(cursor_)) * duration::kDay +
          config_.peak_end;
      const SimTime gap = peak_interarrival_.sample(rng) / config_.scale;
      const SimTime candidate = cursor_ + gap;
      if (candidate >= peak_end_abs) {
        cursor_ = peak_end_abs;  // switch to off-peak at the boundary
        continue;
      }
      cursor_ = candidate;
      if (cursor_ >= config_.horizon) break;
      emit_job(cursor_, rng);
    } else {
      // Off-peak windows are aligned to multiples of the window length
      // (peak boundaries at 8:00/17:00 are multiples of 30 minutes).
      const SimTime window_start =
          std::floor(cursor_ / config_.offpeak_window) * config_.offpeak_window;
      generate_offpeak_window(window_start, rng);
      cursor_ = window_start + config_.offpeak_window;
    }
  }
}

void BotWorkload::save_state(std::vector<double>& out) const {
  out.push_back(cursor_);
  out.push_back(static_cast<double>(pending_.size()));
  for (const Arrival& a : pending_) {
    out.push_back(a.time);
    out.push_back(a.service_demand);
    out.push_back(static_cast<double>(a.priority));
    out.push_back(a.deadline);
  }
}

void BotWorkload::load_state(const std::vector<double>& in) {
  ensure_arg(in.size() >= 2, "BotWorkload::load_state: bad encoding");
  cursor_ = in[0];
  const auto count = static_cast<std::size_t>(in[1]);
  ensure_arg(in.size() == 2 + 4 * count, "BotWorkload::load_state: bad encoding");
  pending_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    Arrival a;
    a.time = in[2 + 4 * i];
    a.service_demand = in[3 + 4 * i];
    a.priority = static_cast<int>(in[4 + 4 * i]);
    a.deadline = in[5 + 4 * i];
    pending_.push_back(a);
  }
}

std::optional<Arrival> BotWorkload::next(Rng& rng) {
  if (pending_.empty()) refill(rng);
  if (pending_.empty()) return std::nullopt;
  Arrival a = pending_.front();
  pending_.pop_front();
  return a;
}

}  // namespace cloudprov
