// Key-value workload with Zipf(alpha) key popularity (src/apptier cache
// tier's traffic model).
//
// Requests address a finite key space 1..num_keys whose popularity follows a
// Zipf law: the probability of rank r is r^-alpha / H(num_keys, alpha). The
// hot head of the distribution is what a cache tier absorbs; alpha ~ 0.9-1.0
// matches measured memcached/web-object traces. Arrivals are Poisson at a
// flat base rate, re-sampled with Gaussian noise every rate_interval like the
// web workload, with two deterministic seeded disturbance classes:
//
//  * flash crowds: [begin, end) windows multiplying the arrival rate;
//  * hot-key shifts: at each hot_shift_at time the popularity ranking
//    rotates by hot_shift_stride keys, so yesterday's cold keys become the
//    new hot head (cache-warmup transient without any pool change).
//
// Both are pure functions of the clock, so the generator's mutable state
// stays the same 3 doubles as the web workload and snapshot/restore reuses
// the identical encoding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/distributions.h"
#include "workload/source.h"

namespace cloudprov {

struct ZipfWorkloadConfig {
  /// Size of the key space; keys are 1-based (0 is the keyless sentinel).
  std::uint64_t num_keys = 20000;
  /// Zipf skew; 0 degenerates to uniform popularity.
  double alpha = 0.9;
  /// Flat expected arrival rate (requests/second) before scale, noise, and
  /// flash-crowd multipliers.
  double base_rate = 1000.0;

  /// Rate re-sampling cadence and relative noise, matching the web workload.
  SimTime rate_interval = 60.0;
  double rate_noise_fraction = 0.05;

  /// Backend service demand of a cache miss: base x U(1, 1 + spread).
  /// (Cache hits are served with the cache tier's own, much smaller demand.)
  double service_base = 0.100;
  double service_spread = 0.10;

  SimTime horizon = 86400.0;  ///< one day by default
  double scale = 1.0;

  /// Flash crowd: arrival rate multiplied by `multiplier` over [begin, end).
  struct FlashCrowd {
    SimTime begin = 0.0;
    SimTime end = 0.0;
    double multiplier = 1.0;
  };
  std::vector<FlashCrowd> flash;

  /// Hot-key shift times: at each, the rank->key mapping rotates by
  /// hot_shift_stride (default num_keys / 3 when 0).
  std::vector<SimTime> hot_shift_at;
  std::uint64_t hot_shift_stride = 0;
};

class ZipfWorkload final : public RequestSource {
 public:
  explicit ZipfWorkload(ZipfWorkloadConfig config = {});

  std::optional<Arrival> next(Rng& rng) override;

  /// scale * base_rate * flash multiplier at t; the noise-free ground truth.
  double expected_rate(SimTime t) const override;

  std::string name() const override { return "ZipfWorkload(key-value)"; }

  const ZipfWorkloadConfig& config() const { return config_; }

  /// Key a popularity rank (1-based) maps to at time t, after any hot-key
  /// shifts; exposed for tests.
  std::uint64_t key_for_rank(std::uint64_t rank, SimTime t) const;

  void save_state(std::vector<double>& out) const override;
  void load_state(const std::vector<double>& in) override;

 private:
  void begin_interval(SimTime t, Rng& rng);
  std::uint64_t sample_rank(Rng& rng) const;

  ZipfWorkloadConfig config_;
  ScaledUniformDistribution service_demand_;
  /// Cumulative Zipf probabilities by rank (cdf_[r-1] = P[rank <= r]).
  std::vector<double> cdf_;
  std::uint64_t shift_stride_ = 0;
  SimTime cursor_ = 0.0;
  SimTime interval_end_ = 0.0;
  double interval_rate_ = -1.0;  // <0 means "not started"
};

}  // namespace cloudprov
