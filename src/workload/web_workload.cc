#include "workload/web_workload.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace cloudprov {

WebWorkload::WebWorkload(WebWorkloadConfig config)
    : config_(config),
      service_demand_(config.service_base, config.service_spread) {
  ensure_arg(config_.rate_interval > 0.0, "WebWorkload: rate_interval must be > 0");
  ensure_arg(config_.rate_noise_fraction >= 0.0,
             "WebWorkload: noise fraction must be >= 0");
  ensure_arg(config_.horizon > 0.0, "WebWorkload: horizon must be > 0");
  ensure_arg(config_.scale > 0.0, "WebWorkload: scale must be > 0");
  for (const DayRates& day : config_.week) {
    ensure_arg(day.min >= 0.0 && day.max >= day.min,
               "WebWorkload: need 0 <= min <= max for every day");
  }
}

double WebWorkload::expected_rate(SimTime t) const {
  if (t < 0.0 || t >= config_.horizon) return 0.0;
  const auto day = static_cast<std::size_t>(day_index(t) % 7);
  const DayRates& rates = config_.week[day];
  const SimTime tod = seconds_into_day(t);
  // Equation 2: trough Rmin at midnight, peak Rmax at noon.
  const double r = rates.min + (rates.max - rates.min) *
                                   std::sin(std::numbers::pi * tod /
                                            duration::kDay);
  return r * config_.scale;
}

void WebWorkload::begin_interval(SimTime t, Rng& rng) {
  const double base = expected_rate(t);
  const double noisy =
      base * (1.0 + config_.rate_noise_fraction * rng.normal(0.0, 1.0));
  interval_rate_ = std::max(0.0, noisy);
  const double intervals_done = std::floor(t / config_.rate_interval);
  interval_end_ = (intervals_done + 1.0) * config_.rate_interval;
}

void WebWorkload::save_state(std::vector<double>& out) const {
  out.push_back(cursor_);
  out.push_back(interval_end_);
  out.push_back(interval_rate_);
}

void WebWorkload::load_state(const std::vector<double>& in) {
  ensure_arg(in.size() == 3, "WebWorkload::load_state: bad encoding");
  cursor_ = in[0];
  interval_end_ = in[1];
  interval_rate_ = in[2];
}

std::optional<Arrival> WebWorkload::next(Rng& rng) {
  if (interval_rate_ < 0.0) begin_interval(cursor_, rng);
  for (;;) {
    if (cursor_ >= config_.horizon) return std::nullopt;
    if (interval_rate_ <= 0.0) {
      // Idle interval: jump to the next one.
      cursor_ = interval_end_;
      begin_interval(cursor_, rng);
      continue;
    }
    const SimTime candidate = cursor_ + rng.exponential(interval_rate_);
    if (candidate >= interval_end_) {
      // Rate changes at the boundary; restart there (exponential arrivals
      // are memoryless, so this is an exact thinning-free piecewise
      // construction).
      cursor_ = interval_end_;
      begin_interval(cursor_, rng);
      continue;
    }
    cursor_ = candidate;
    if (cursor_ >= config_.horizon) return std::nullopt;
    return Arrival{cursor_, service_demand_.sample(rng)};
  }
}

}  // namespace cloudprov
