#include "workload/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/check.h"
#include "util/csv.h"

namespace cloudprov {

WorkloadTrace WorkloadTrace::record(RequestSource& source, Rng& rng,
                                    std::size_t max_arrivals) {
  WorkloadTrace trace;
  while (trace.arrivals.size() < max_arrivals) {
    auto arrival = source.next(rng);
    if (!arrival) break;
    trace.arrivals.push_back(*arrival);
  }
  return trace;
}

void WorkloadTrace::write_csv(std::ostream& out) const {
  CsvWriter writer(out);
  writer.write_header({"time", "service_demand", "priority", "deadline"});
  for (const Arrival& a : arrivals) {
    writer.write_row({CsvWriter::format(a.time), CsvWriter::format(a.service_demand),
                      CsvWriter::format(static_cast<std::int64_t>(a.priority)),
                      CsvWriter::format(a.deadline)});
  }
}

WorkloadTrace WorkloadTrace::read_csv(std::istream& in) {
  CsvReader reader(in);
  WorkloadTrace trace;
  bool header_skipped = false;
  while (auto row = reader.next_row()) {
    if (!header_skipped) {
      header_skipped = true;
      continue;
    }
    if (row->empty() || (row->size() == 1 && (*row)[0].empty())) continue;
    ensure_arg(row->size() >= 2, "trace CSV row needs at least time,service_demand");
    Arrival a;
    a.time = std::stod((*row)[0]);
    a.service_demand = std::stod((*row)[1]);
    if (row->size() > 2) a.priority = std::stoi((*row)[2]);
    if (row->size() > 3) a.deadline = std::stod((*row)[3]);
    trace.arrivals.push_back(a);
  }
  ensure_arg(std::is_sorted(trace.arrivals.begin(), trace.arrivals.end(),
                            [](const Arrival& x, const Arrival& y) {
                              return x.time < y.time;
                            }),
             "trace CSV must be sorted by time");
  return trace;
}

TraceSource::TraceSource(WorkloadTrace trace, SimTime rate_window)
    : trace_(std::move(trace)), rate_window_(rate_window) {
  ensure_arg(rate_window > 0.0, "TraceSource: rate window must be > 0");
  ensure_arg(std::is_sorted(trace_.arrivals.begin(), trace_.arrivals.end(),
                            [](const Arrival& x, const Arrival& y) {
                              return x.time < y.time;
                            }),
             "TraceSource: trace must be sorted by time");
}

std::optional<Arrival> TraceSource::next(Rng&) {
  if (position_ >= trace_.arrivals.size()) return std::nullopt;
  return trace_.arrivals[position_++];
}

double TraceSource::expected_rate(SimTime t) const {
  const auto& a = trace_.arrivals;
  const SimTime lo = t - rate_window_ / 2.0;
  const SimTime hi = t + rate_window_ / 2.0;
  const auto begin = std::lower_bound(
      a.begin(), a.end(), lo,
      [](const Arrival& x, SimTime value) { return x.time < value; });
  const auto end = std::lower_bound(
      a.begin(), a.end(), hi,
      [](const Arrival& x, SimTime value) { return x.time < value; });
  return static_cast<double>(end - begin) / rate_window_;
}

}  // namespace cloudprov
