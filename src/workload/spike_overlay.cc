#include "workload/spike_overlay.h"

#include "util/check.h"

namespace cloudprov {

SpikeOverlaySource::SpikeOverlaySource(std::unique_ptr<RequestSource> base,
                                       SpikeConfig spike)
    : base_(std::move(base)), spike_(std::move(spike)), spike_cursor_(spike_.start) {
  ensure_arg(base_ != nullptr, "SpikeOverlaySource: null base source");
  ensure_arg(spike_.start <= spike_.end, "SpikeOverlaySource: start must be <= end");
  ensure_arg(spike_.extra_rate >= 0.0, "SpikeOverlaySource: negative spike rate");
  if (spike_.extra_rate > 0.0) {
    ensure_arg(spike_.service_demand != nullptr,
               "SpikeOverlaySource: spike needs a demand distribution");
  }
}

double SpikeOverlaySource::true_rate(SimTime t) const {
  double rate = base_->expected_rate(t);
  if (t >= spike_.start && t < spike_.end) rate += spike_.extra_rate;
  return rate;
}

void SpikeOverlaySource::refill_spike(Rng& rng) {
  if (pending_spike_.has_value() || spike_.extra_rate <= 0.0) return;
  while (spike_cursor_ < spike_.end) {
    spike_cursor_ += rng.exponential(spike_.extra_rate);
    if (spike_cursor_ >= spike_.end) break;
    pending_spike_ = Arrival{spike_cursor_, spike_.service_demand->sample(rng)};
    return;
  }
}

std::optional<Arrival> SpikeOverlaySource::next(Rng& rng) {
  if (!pending_base_.has_value()) pending_base_ = base_->next(rng);
  refill_spike(rng);

  if (!pending_base_.has_value() && !pending_spike_.has_value()) {
    return std::nullopt;
  }
  const bool take_spike =
      pending_spike_.has_value() &&
      (!pending_base_.has_value() || pending_spike_->time <= pending_base_->time);
  if (take_spike) {
    const Arrival a = *pending_spike_;
    pending_spike_.reset();
    return a;
  }
  const Arrival a = *pending_base_;
  pending_base_.reset();
  return a;
}

std::string SpikeOverlaySource::name() const {
  return "SpikeOverlay(" + base_->name() + ")";
}

}  // namespace cloudprov
