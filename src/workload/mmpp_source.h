// Markov-modulated Poisson process (MMPP) source.
//
// A hidden continuous-time Markov chain switches between states, each with
// its own Poisson arrival rate — the standard model for bursty traffic whose
// bursts are *not* time-of-day-periodic (unlike the paper's web model). Used
// to stress history-based predictors: an MMPP's next burst is unpredictable
// by construction, so only reactive headroom protects QoS.
#pragma once

#include <string>
#include <vector>

#include "util/distributions.h"
#include "workload/source.h"

namespace cloudprov {

struct MmppState {
  double arrival_rate = 0.0;   ///< Poisson rate while in this state
  double mean_holding = 1.0;   ///< exponential mean sojourn in seconds
};

struct MmppConfig {
  std::vector<MmppState> states;
  /// Next state is drawn uniformly among the *other* states (a generalized
  /// ON/OFF process when there are two states).
  DistributionPtr service_demand;
  SimTime horizon = 0.0;  ///< 0 means unbounded
};

class MmppSource final : public RequestSource {
 public:
  explicit MmppSource(MmppConfig config);

  std::optional<Arrival> next(Rng& rng) override;

  /// Long-run average rate (time-stationary mixture); the instantaneous
  /// state is hidden, as it would be in production.
  double expected_rate(SimTime t) const override;

  std::string name() const override { return "MMPP"; }

  std::size_t current_state() const { return state_; }

 private:
  void enter_next_state(Rng& rng);

  MmppConfig config_;
  std::size_t state_ = 0;
  SimTime cursor_ = 0.0;
  SimTime state_end_ = 0.0;
  bool started_ = false;
};

}  // namespace cloudprov
