// Request-source abstraction.
//
// A RequestSource is a pull-based generator of arrivals with nondecreasing
// timestamps. The broker entity drains it into the simulation; tests drain it
// directly. Sources also expose their ground-truth expected arrival rate,
// which drives the Figure 3/4 reproductions and the oracle predictor used in
// the predictor-ablation bench.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace cloudprov {

/// One generated arrival: when it reaches the provisioner and how much work
/// it carries.
struct Arrival {
  SimTime time = 0.0;
  double service_demand = 0.0;
  int priority = 0;
  SimTime deadline = std::numeric_limits<SimTime>::infinity();
  /// Key-value object addressed by the request (src/apptier cache tier);
  /// 0 for keyless workloads (web/BoT), where the cache tier is a no-op.
  std::uint64_t key = 0;
};

class RequestSource {
 public:
  virtual ~RequestSource() = default;

  /// Produces the next arrival, or nullopt when the workload is exhausted.
  /// Returned times never decrease.
  virtual std::optional<Arrival> next(Rng& rng) = 0;

  /// Ground-truth expected arrival rate (requests/second) at time t, before
  /// random noise. Used for plots and the oracle predictor, not by policies.
  virtual double expected_rate(SimTime t) const = 0;

  virtual std::string name() const = 0;

  // --- checkpoint support (src/lookahead) --------------------------------
  /// Appends the source's mutable position (interval cursors, buffered
  /// arrivals) to `out` as a flat double encoding; load_state consumes the
  /// same encoding on an identically configured source. Sources without
  /// mutable state keep the default no-ops. The RNG is external (the
  /// broker's stream), so restoring (state, rng) reproduces the arrival
  /// sequence exactly.
  virtual void save_state(std::vector<double>& out) const { (void)out; }
  virtual void load_state(const std::vector<double>& in) { (void)in; }
};

}  // namespace cloudprov
