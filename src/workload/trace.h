// Workload trace record and replay.
//
// Any RequestSource can be recorded to a trace (in memory or CSV) and played
// back later; replays are deterministic and ignore the Rng. This supports
// (a) comparing policies on *identical* arrival sequences instead of merely
// identically-distributed ones, and (b) feeding real production traces into
// the provisioner, which is how the paper's model would be used outside a
// simulator.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/source.h"

namespace cloudprov {

/// Flat in-memory trace of arrivals sorted by time.
struct WorkloadTrace {
  std::vector<Arrival> arrivals;

  /// Drains `source` (up to max_arrivals) into a trace.
  static WorkloadTrace record(RequestSource& source, Rng& rng,
                              std::size_t max_arrivals = SIZE_MAX);

  /// CSV round-trip: columns time,service_demand,priority,deadline.
  void write_csv(std::ostream& out) const;
  static WorkloadTrace read_csv(std::istream& in);
};

/// Replays a trace as a RequestSource. expected_rate() is estimated from
/// arrival counts in a sliding window.
class TraceSource final : public RequestSource {
 public:
  explicit TraceSource(WorkloadTrace trace, SimTime rate_window = 60.0);

  std::optional<Arrival> next(Rng& rng) override;
  double expected_rate(SimTime t) const override;
  std::string name() const override { return "TraceSource"; }

  std::size_t remaining() const { return trace_.arrivals.size() - position_; }

 private:
  WorkloadTrace trace_;
  SimTime rate_window_;
  std::size_t position_ = 0;
};

}  // namespace cloudprov
