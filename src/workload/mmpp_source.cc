#include "workload/mmpp_source.h"

#include <limits>

#include "util/check.h"

namespace cloudprov {

MmppSource::MmppSource(MmppConfig config) : config_(std::move(config)) {
  ensure_arg(!config_.states.empty(), "MmppSource: need at least one state");
  for (const MmppState& state : config_.states) {
    ensure_arg(state.arrival_rate >= 0.0, "MmppSource: negative arrival rate");
    ensure_arg(state.mean_holding > 0.0, "MmppSource: holding time must be > 0");
  }
  ensure_arg(config_.service_demand != nullptr,
             "MmppSource: null demand distribution");
  ensure_arg(config_.horizon >= 0.0, "MmppSource: negative horizon");
}

double MmppSource::expected_rate(SimTime t) const {
  if (config_.horizon > 0.0 && (t < 0.0 || t >= config_.horizon)) return 0.0;
  // Stationary distribution of the uniform-switching chain is proportional
  // to the mean holding times.
  double weighted = 0.0;
  double total = 0.0;
  for (const MmppState& state : config_.states) {
    weighted += state.arrival_rate * state.mean_holding;
    total += state.mean_holding;
  }
  return weighted / total;
}

void MmppSource::enter_next_state(Rng& rng) {
  if (config_.states.size() > 1) {
    // Uniform among the other states.
    auto next = static_cast<std::size_t>(
        rng.uniform_int(0, config_.states.size() - 2));
    if (next >= state_) ++next;
    state_ = next;
  }
  state_end_ = cursor_ + rng.exponential(1.0 / config_.states[state_].mean_holding);
}

std::optional<Arrival> MmppSource::next(Rng& rng) {
  const SimTime horizon = config_.horizon > 0.0
                              ? config_.horizon
                              : std::numeric_limits<SimTime>::infinity();
  if (!started_) {
    started_ = true;
    state_ = 0;
    state_end_ = rng.exponential(1.0 / config_.states[0].mean_holding);
  }
  for (;;) {
    if (cursor_ >= horizon) return std::nullopt;
    const double rate = config_.states[state_].arrival_rate;
    if (rate <= 0.0) {
      cursor_ = state_end_;
      if (cursor_ >= horizon) return std::nullopt;
      enter_next_state(rng);
      continue;
    }
    const SimTime candidate = cursor_ + rng.exponential(rate);
    if (candidate >= state_end_) {
      // Memoryless: restart the arrival clock at the state boundary.
      cursor_ = state_end_;
      enter_next_state(rng);
      continue;
    }
    cursor_ = candidate;
    if (cursor_ >= horizon) return std::nullopt;
    return Arrival{cursor_, config_.service_demand->sample(rng)};
  }
}

}  // namespace cloudprov
