// Scientific workload (Section V-B2): Bag-of-Tasks grid jobs following the
// workload model of Iosup et al. (HPDC'08), with the parameters the paper
// uses:
//
//  * peak time (8 a.m. – 5 p.m.): job interarrival time ~ Weibull(4.25, 7.86)
//    seconds (mode 7.379 s);
//  * off-peak: the number of jobs in each 30-minute window ~
//    Weibull(1.79, 24.16) (mode 15.298), jobs evenly spaced in the window;
//  * each job carries size-class tasks ~ Weibull(1.76, 2.11) (mode 1.309),
//    floored with a minimum of one task; every task is one request;
//  * each request needs 300 s on an idle instance plus uniform 0-10%
//    heterogeneity.
//
// Simulation covers one day starting at midnight (daily-cycle workload).
#pragma once

#include <deque>
#include <string>

#include "util/distributions.h"
#include "workload/source.h"

namespace cloudprov {

struct BotWorkloadConfig {
  /// Peak window boundaries (seconds into the day).
  SimTime peak_start = 8.0 * 3600.0;
  SimTime peak_end = 17.0 * 3600.0;

  /// Weibull(shape, scale) of job interarrival seconds during peak time.
  double peak_interarrival_shape = 4.25;
  double peak_interarrival_scale = 7.86;

  /// Weibull(shape, scale) of the job count per off-peak window.
  double offpeak_count_shape = 1.79;
  double offpeak_count_scale = 24.16;
  SimTime offpeak_window = 30.0 * 60.0;

  /// Weibull(shape, scale) of the BoT size class (tasks per job).
  double size_shape = 1.76;
  double size_scale = 2.11;

  /// Request processing time: 300 s base, uniform 0-10% spread.
  double service_base = 300.0;
  double service_spread = 0.10;

  /// Workload horizon (one day in the paper).
  SimTime horizon = 86400.0;

  /// Multiplies arrival intensity (1.0 = paper scale, ~8-10k requests/day).
  double scale = 1.0;
};

class BotWorkload final : public RequestSource {
 public:
  explicit BotWorkload(BotWorkloadConfig config = {});

  std::optional<Arrival> next(Rng& rng) override;

  /// Expected request rate at t: mean tasks-per-job divided by the mean job
  /// interarrival (peak) or divided into the mean window count (off-peak).
  /// Uses the *realized* task-count mean E[max(1, floor(S))], not the
  /// continuous Weibull mean.
  double expected_rate(SimTime t) const override;

  std::string name() const override { return "BotWorkload(iosup-bot)"; }

  const BotWorkloadConfig& config() const { return config_; }

  void save_state(std::vector<double>& out) const override;
  void load_state(const std::vector<double>& in) override;

  /// Mean of max(1, floor(S)) with S ~ Weibull(size_shape, size_scale);
  /// evaluated numerically from the Weibull CDF.
  double mean_tasks_per_job() const;

  /// Most likely value of the job interarrival / window count / size class —
  /// the statistics the paper's predictor is built on.
  double interarrival_mode() const;
  double offpeak_count_mode() const;
  double size_mode() const;

 private:
  bool in_peak(SimTime t) const;
  /// Emits all tasks of a job arriving at `t` into the pending queue.
  void emit_job(SimTime t, Rng& rng);
  /// Generates job arrivals until at least one task is pending or the
  /// horizon is reached.
  void refill(Rng& rng);
  /// Generates the off-peak window starting at `window_start`.
  void generate_offpeak_window(SimTime window_start, Rng& rng);

  BotWorkloadConfig config_;
  ScaledUniformDistribution service_demand_;
  WeibullDistribution size_class_;
  WeibullDistribution peak_interarrival_;
  WeibullDistribution offpeak_count_;
  SimTime cursor_ = 0.0;  // next candidate job-arrival instant
  std::deque<Arrival> pending_;
};

}  // namespace cloudprov
