#include "sim/event_queue.h"

#include <utility>

#include "util/check.h"

namespace cloudprov {

EventId EventQueue::push(SimTime time, std::function<void()> action) {
  const EventId id = next_id_++;
  heap_.push_back(Event{time, id, std::move(action)});
  sift_up(heap_.size() - 1);
  return id;
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty() && cancelled_.contains(heap_.front().id)) {
    cancelled_.erase(heap_.front().id);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

Event EventQueue::pop() {
  drop_cancelled_top();
  ensure(!heap_.empty(), "pop() on empty event queue");
  Event top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  cancelled_.insert(id);
}

bool EventQueue::empty() {
  drop_cancelled_top();
  return heap_.empty();
}

SimTime EventQueue::next_time() {
  drop_cancelled_top();
  ensure(!heap_.empty(), "next_time() on empty event queue");
  return heap_.front().time;
}

void EventQueue::clear() {
  heap_.clear();
  cancelled_.clear();
}

void EventQueue::sift_up(std::size_t index) {
  while (index > 0) {
    const std::size_t parent = (index - 1) / 2;
    if (!(heap_[parent] > heap_[index])) break;
    std::swap(heap_[parent], heap_[index]);
    index = parent;
  }
}

void EventQueue::sift_down(std::size_t index) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * index + 1;
    if (left >= n) return;
    std::size_t smallest = left;
    const std::size_t right = left + 1;
    if (right < n && heap_[left] > heap_[right]) smallest = right;
    if (!(heap_[index] > heap_[smallest])) return;
    std::swap(heap_[index], heap_[smallest]);
    index = smallest;
  }
}

}  // namespace cloudprov
