#include "sim/event_queue.h"

#include <algorithm>

#include "util/check.h"

namespace cloudprov {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoSlot;
    return slot;
  }
  ensure(slots_.size() < kNoSlot, "EventQueue: slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.gen;
  if (s.gen == 0) s.gen = 1;  // generation 0 is reserved for kInvalidEventId
  s.next_free = free_head_;
  free_head_ = slot;
}

EventId EventQueue::push(SimTime time, EventAction action) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  if (action.is_boxed()) ++boxed_pushed_;
  s.action = std::move(action);
  heap_.push_back(HeapEntry{time, ++pushed_, slot, s.gen});
  if (heap_.size() > heap_high_water_) heap_high_water_ = heap_.size();
  sift_up(heap_.size() - 1);
  ++live_;
  return pack(slot, s.gen);
}

std::optional<EventStamp> EventQueue::stamp(EventId id) const {
  if (id == kInvalidEventId) return std::nullopt;
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen) return std::nullopt;
  for (const HeapEntry& entry : heap_) {
    if (entry.slot == slot && entry.gen == gen) {
      return EventStamp{entry.time, entry.seq};
    }
  }
  return std::nullopt;
}

EventId EventQueue::push_stamped(const EventStamp& stamp, EventAction action) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  if (action.is_boxed()) ++boxed_pushed_;
  s.action = std::move(action);
  heap_.push_back(HeapEntry{stamp.time, stamp.seq, slot, s.gen});
  if (heap_.size() > heap_high_water_) heap_high_water_ = heap_.size();
  sift_up(heap_.size() - 1);
  ++live_;
  return pack(slot, s.gen);
}

void EventQueue::drop_dead_tops() {
  while (!heap_.empty() &&
         slots_[heap_.front().slot].gen != heap_.front().gen) {
    ++stale_drops_;
    pop_top();
  }
}

Event EventQueue::pop() {
  drop_dead_tops();
  ensure(!heap_.empty(), "pop() on empty event queue");
  const HeapEntry top = heap_.front();
  Event event;
  event.time = top.time;
  event.id = pack(top.slot, top.gen);
  event.action = std::move(slots_[top.slot].action);
  release_slot(top.slot);
  --live_;
  pop_top();
  return event;
}

bool EventQueue::pop_due(SimTime until, SimTime& time_out,
                         EventAction& action_out) {
  drop_dead_tops();
  if (heap_.empty() || heap_.front().time > until) return false;
  const HeapEntry top = heap_.front();
  time_out = top.time;
  action_out = std::move(slots_[top.slot].action);
  release_slot(top.slot);
  --live_;
  pop_top();
  return true;
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;   // never issued
  if (slots_[slot].gen != gen) return;  // already executed/cancelled: no-op
  slots_[slot].action.reset();
  release_slot(slot);
  --live_;
  // The heap entry stays behind as a stale record; drop_dead_tops() discards
  // it in O(1) when it surfaces. Under cancel-heavy workloads stale records
  // can outnumber live ones before surfacing — compact when they dominate so
  // heap memory stays O(live).
  if (heap_.size() >= 64 && live_ < heap_.size() / 2) compact();
}

SimTime EventQueue::next_time() {
  drop_dead_tops();
  ensure(!heap_.empty(), "next_time() on empty event queue");
  return heap_.front().time;
}

void EventQueue::clear() {
  for (const HeapEntry& entry : heap_) {
    Slot& s = slots_[entry.slot];
    if (s.gen == entry.gen) {  // live event: release its body
      s.action.reset();
      release_slot(entry.slot);
    }
  }
  heap_.clear();
  live_ = 0;
}

void EventQueue::compact() {
  // Keep only entries whose generation still matches their slot, then
  // re-heapify. Pop order is unaffected: (time, seq) is a strict total order,
  // so the extraction sequence is independent of the heap's internal layout.
  std::size_t keep = 0;
  for (const HeapEntry& entry : heap_) {
    if (slots_[entry.slot].gen == entry.gen) heap_[keep++] = entry;
  }
  stale_drops_ += heap_.size() - keep;
  heap_.resize(keep);
  if (keep > 1) {
    for (std::size_t i = (keep - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
}

void EventQueue::pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::sift_up(std::size_t index) {
  const HeapEntry entry = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / 4;
    if (!earlier(entry, heap_[parent])) break;
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = entry;
}

void EventQueue::sift_down(std::size_t index) {
  const std::size_t n = heap_.size();
  const HeapEntry entry = heap_[index];
  for (;;) {
    const std::size_t first = 4 * index + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t child = first + 1; child < last; ++child) {
      if (earlier(heap_[child], heap_[best])) best = child;
    }
    if (!earlier(heap_[best], entry)) break;
    heap_[index] = heap_[best];
    index = best;
  }
  heap_[index] = entry;
}

}  // namespace cloudprov
