// Pending-event set for the discrete-event kernel.
//
// A binary min-heap over (time, id). The web scenario at paper scale pops
// ~1.5 billion events, so the queue avoids per-event allocation beyond the
// std::function payload and supports O(1) lazy cancellation: cancelled ids
// go into a hash set and are skipped at pop time. The pending set stays small
// (one departure per busy VM plus one arrival plus periodic controls), so the
// heap never grows past a few hundred entries in practice.
#pragma once

#include <cstddef>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/event.h"

namespace cloudprov {

class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules `action` at absolute time `time`. Returns a handle usable
  /// with cancel().
  EventId push(SimTime time, std::function<void()> action);

  /// Removes the event with the earliest (time, id) and returns it.
  /// Precondition: !empty().
  Event pop();

  /// Marks an event as cancelled; it will be dropped when reached.
  /// Cancelling an already-executed or unknown id is a no-op.
  void cancel(EventId id);

  /// True when no live (non-cancelled) events remain. May compact the heap.
  bool empty();

  /// Live events currently pending.
  std::size_t size() const { return heap_.size() - cancelled_.size(); }

  /// Earliest pending event time. Precondition: !empty().
  SimTime next_time();

  /// Total events ever pushed (diagnostics / determinism checks).
  std::uint64_t pushed_count() const { return next_id_ - 1; }

  void clear();

 private:
  void drop_cancelled_top();
  void sift_up(std::size_t index);
  void sift_down(std::size_t index);

  std::vector<Event> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;  // 0 is kInvalidEventId
};

}  // namespace cloudprov
