// Pending-event set for the discrete-event kernel.
//
// Layout tuned for the ~1.5-billion-pop paper-scale web scenario:
//
//  - Event bodies (their EventAction) live in a free-listed slab; the heap
//    itself orders 24-byte POD HeapEntry records {time, seq, slot, gen}, so
//    sift operations move 24 bytes instead of a 48-byte std::function event.
//  - The heap is 4-ary: ~half the levels of a binary heap for the same size
//    and all four children on one cache line pair, which wins for the
//    shallow pending sets this simulator keeps (one departure per busy VM
//    plus one arrival plus periodic controls — a few hundred entries).
//  - Cancellation is O(1) and hash-free: each slab slot carries a
//    generation, bumped whenever the slot is released (pop or cancel). A
//    heap entry or user handle whose generation no longer matches its slot
//    is stale and is dropped when it reaches the top. Cancelling an
//    already-executed, already-cancelled, or unknown id is a true no-op —
//    nothing is ever inserted or leaked — and size() counts live events
//    exactly.
//
// Steady state allocates nothing per event: the slab and heap reuse their
// capacity, and inline EventActions carry their captures in-place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/event.h"

namespace cloudprov {

/// Snapshot identity of a pending event: its scheduled time and the push
/// sequence number that breaks FIFO ties among equal times. (slot, gen) are
/// storage details that differ between a queue and its restored twin;
/// (time, seq) is the total order pop() follows, so it is the only thing a
/// checkpoint must preserve for a restored run to replay bit-identically.
struct EventStamp {
  SimTime time = 0.0;
  std::uint64_t seq = 0;
};

class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules `action` at absolute time `time`. Returns a handle usable
  /// with cancel().
  EventId push(SimTime time, EventAction action);

  /// Convenience: wraps any callable (inline when small, boxed otherwise).
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventAction>)
  EventId push(SimTime time, F&& f) {
    return push(time, EventAction::make(std::forward<F>(f)));
  }

  /// Removes the event with the earliest (time, push order) and returns it.
  /// Precondition: !empty().
  Event pop();

  /// If a live event exists with time <= `until`, pops it into `time_out` /
  /// `action_out` and returns true; otherwise returns false. The
  /// single-scan hot-path form of empty()/next_time()/pop() used by the
  /// run loop.
  bool pop_due(SimTime until, SimTime& time_out, EventAction& action_out);

  /// Cancels a pending event in O(1). Stale handles (already executed,
  /// already cancelled, unknown) are ignored.
  void cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Live events currently pending.
  std::size_t size() const { return live_; }

  /// Earliest pending event time. Precondition: !empty().
  SimTime next_time();

  /// Total events ever pushed (diagnostics / determinism checks).
  std::uint64_t pushed_count() const { return pushed_; }

  // --- snapshot/restore support (src/lookahead) --------------------------

  /// Stamp of a live pending event, or nullopt when the handle is stale
  /// (already executed / cancelled / never issued). O(heap) scan — meant
  /// for snapshots, never for the event hot path.
  std::optional<EventStamp> stamp(EventId id) const;

  /// Re-inserts an event captured by stamp() into a restored queue under
  /// its original (time, seq), so FIFO tie-breaks replay identically. Does
  /// not advance the push counter; call set_push_counter() once after all
  /// components re-pushed their pending events.
  EventId push_stamped(const EventStamp& stamp, EventAction action);

  /// Restores the monotone push counter so events scheduled after a restore
  /// continue the original seq sequence.
  void set_push_counter(std::uint64_t pushed) { pushed_ = pushed; }

  /// Events that took the boxed (heap-allocated) escape hatch; stays 0 on
  /// the steady-state serve path (see the zero-allocation test).
  std::uint64_t boxed_pushed_count() const { return boxed_pushed_; }

  // --- kernel internals surfaced for the wall-clock profiler -------------

  /// Current heap entries, including stale records of cancelled events
  /// (>= size(); the gap is the lazily-dropped cancel backlog).
  std::size_t heap_depth() const { return heap_.size(); }

  /// Largest heap entry count ever reached.
  std::size_t heap_high_water() const { return heap_high_water_; }

  /// Slab slots ever allocated. The slab never shrinks, so this is the
  /// occupancy high-water mark (peak simultaneously-stored event bodies).
  std::size_t slab_high_water() const { return slots_.size(); }

  /// Stale heap records discarded so far (lazy top drops + compactions).
  std::uint64_t stale_drops() const { return stale_drops_; }

  void clear();

 private:
  /// Heap record: POD, 24 bytes. `seq` is the monotone push counter that
  /// breaks ties on time (FIFO among equal times); `slot`/`gen` locate and
  /// validate the event body in the slab.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  static_assert(sizeof(HeapEntry) == 24);

  struct Slot {
    EventAction action;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoSlot;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  static EventId pack(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  std::uint32_t acquire_slot();
  /// Bumps the slot's generation (invalidating outstanding handles and heap
  /// entries) and returns it to the free list. The action must already be
  /// moved out or reset.
  void release_slot(std::uint32_t slot);
  /// Removes stale heap entries (generation mismatch) from the top.
  void drop_dead_tops();
  void compact();
  void pop_top();
  void sift_up(std::size_t index);
  void sift_down(std::size_t index);

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t boxed_pushed_ = 0;
  std::size_t heap_high_water_ = 0;
  std::uint64_t stale_drops_ = 0;
};

}  // namespace cloudprov
