#include "sim/simulation.h"

#include <utility>

#include "profile/wall_profiler.h"
#include "telemetry/telemetry.h"
#include "util/check.h"

namespace cloudprov {

EventId Simulation::schedule_at(SimTime time, EventAction action) {
  ensure_arg(time >= now_, "schedule_at: cannot schedule in the past");
  return queue_.push(time, std::move(action));
}

EventId Simulation::schedule_in(SimTime delay, EventAction action) {
  ensure_arg(delay >= 0.0, "schedule_in: negative delay");
  return queue_.push(now_ + delay, std::move(action));
}

std::uint64_t Simulation::run(SimTime until) {
  stop_requested_ = false;
  std::uint64_t count = 0;
  SimTime time = 0.0;
  EventAction action;
  // One scope around the whole loop (not per event: two clock reads per
  // ~170ns dispatch would dwarf the work). Subsystem scopes opened inside
  // dispatched actions nest under it, so engine self time = loop minus them.
  ProfileScope profile_run(profiler_, ProfileCategory::kEngineRun);
  // Single-scan dispatch: pop_due() combines the empty / next_time / pop
  // checks, so each event costs one heap pop plus one indirect call.
  while (!stop_requested_ && queue_.pop_due(until, time, action)) {
    now_ = time;
    action();
    action.reset();
    ++executed_;
    ++count;
    if (telemetry_ != nullptr && executed_ % sample_stride_ == 0) {
      telemetry_->engine_sample(now_, executed_, queue_.size());
    }
    if (profiler_ != nullptr &&
        (executed_ & (WallProfiler::kSnapshotStride - 1)) == 0) {
      profiler_->maybe_snapshot(now_, executed_, queue_.size(),
                                queue_.heap_depth(), queue_.heap_high_water(),
                                queue_.slab_high_water(), queue_.stale_drops(),
                                queue_.boxed_pushed_count());
    }
  }
  // Advance the clock to the horizon even if the model went quiet earlier,
  // so time-weighted statistics cover the full observation window.
  if (!stop_requested_ && until > now_ &&
      until < std::numeric_limits<SimTime>::infinity()) {
    now_ = until;
  }
  return count;
}

void Simulation::set_telemetry(Telemetry* telemetry,
                               std::uint64_t sample_stride) {
  ensure_arg(sample_stride >= 1, "set_telemetry: stride must be >= 1");
  telemetry_ = telemetry;
  sample_stride_ = sample_stride;
}

bool Simulation::step() {
  SimTime time = 0.0;
  EventAction action;
  if (!queue_.pop_due(std::numeric_limits<SimTime>::infinity(), time, action)) {
    return false;
  }
  now_ = time;
  action();
  ++executed_;
  return true;
}

PeriodicProcess::PeriodicProcess(Simulation& sim, SimTime first_time,
                                 SimTime period, std::function<void(SimTime)> action)
    : sim_(sim), period_(period), action_(std::move(action)) {
  ensure_arg(period > 0.0, "PeriodicProcess: period must be positive");
  pending_ = sim_.schedule_at(first_time,
                              EventAction::method<&PeriodicProcess::fire>(this));
}

PeriodicProcess::PeriodicProcess(Simulation& sim, const EventStamp& stamp,
                                 SimTime period,
                                 std::function<void(SimTime)> action)
    : sim_(sim), period_(period), action_(std::move(action)) {
  ensure_arg(period > 0.0, "PeriodicProcess: period must be positive");
  pending_ = sim_.schedule_stamped(
      stamp, EventAction::method<&PeriodicProcess::fire>(this));
}

std::optional<EventStamp> PeriodicProcess::pending_stamp() const {
  if (!running_) return std::nullopt;
  return sim_.stamp(pending_);
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = kInvalidEventId;
}

void PeriodicProcess::fire() {
  if (!running_) return;
  pending_ = sim_.schedule_in(period_,
                              EventAction::method<&PeriodicProcess::fire>(this));
  action_(sim_.now());
}

}  // namespace cloudprov
