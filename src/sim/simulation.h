// Discrete-event simulation engine.
//
// The C++ substrate standing in for CloudSim (which the paper's evaluation
// used): a clock, a deterministic pending-event set, and scheduling helpers.
// Model code (hosts, VMs, provisioners, workload sources) schedules typed
// EventActions — small callables dispatched through the kernel's inline
// delegate with no per-event heap allocation; the engine executes them in
// nondecreasing time order (FIFO among equal times).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <type_traits>
#include <utility>

#include "sim/event_queue.h"
#include "util/units.h"

namespace cloudprov {

class Telemetry;
class WallProfiler;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedules `action` at absolute simulated time `time` (>= now()).
  EventId schedule_at(SimTime time, EventAction action);

  /// Schedules `action` after `delay` seconds (>= 0).
  EventId schedule_in(SimTime delay, EventAction action);

  /// Convenience overloads: wrap any callable in an EventAction (inline —
  /// zero-allocation — when it is small and trivially copyable, boxed on
  /// the heap otherwise).
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventAction>)
  EventId schedule_at(SimTime time, F&& f) {
    return schedule_at(time, EventAction::make(std::forward<F>(f)));
  }
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventAction>)
  EventId schedule_in(SimTime delay, F&& f) {
    return schedule_in(delay, EventAction::make(std::forward<F>(f)));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the event queue drains or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed. Returns the number of
  /// events executed by this call.
  std::uint64_t run(SimTime until = std::numeric_limits<SimTime>::infinity());

  /// Executes exactly one event if available. Returns false when idle.
  bool step();

  /// Requests run() to return before dispatching the next event.
  void stop() { stop_requested_ = true; }

  bool idle() const { return queue_.size() == 0; }
  std::uint64_t executed_events() const { return executed_; }
  EventQueue& queue() { return queue_; }

  // --- snapshot/restore support (src/lookahead) --------------------------

  /// Stamp of a live scheduled event; nullopt for stale handles.
  std::optional<EventStamp> stamp(EventId id) const { return queue_.stamp(id); }

  /// Re-inserts an event captured by stamp() under its original
  /// (time, seq) into a restored world's queue.
  EventId schedule_stamped(const EventStamp& stamp, EventAction action) {
    return queue_.push_stamped(stamp, std::move(action));
  }
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventAction>)
  EventId schedule_stamped(const EventStamp& stamp, F&& f) {
    return queue_.push_stamped(stamp, EventAction::make(std::forward<F>(f)));
  }

  std::uint64_t event_push_counter() const { return queue_.pushed_count(); }

  /// Restores the clock, the executed-event counter (which paces the
  /// telemetry engine-sample stride), and the queue's push counter to a
  /// snapshot's values. Call once after every component re-pushed its
  /// pending events.
  void restore_clock(SimTime now, std::uint64_t executed,
                     std::uint64_t push_counter) {
    now_ = now;
    executed_ = executed;
    queue_.set_push_counter(push_counter);
  }

  /// Attaches an engine self-profile collector: every `sample_stride`
  /// executed events, run() records executed-event count and pending-queue
  /// depth. Null (the default) disables sampling; the run loop then pays a
  /// single predicted branch per event.
  void set_telemetry(Telemetry* telemetry, std::uint64_t sample_stride = 1024);
  Telemetry* telemetry() const { return telemetry_; }

  /// Attaches a wall-clock profiler: run() wraps the dispatch loop in an
  /// engine.run scope and polls for a periodic engine snapshot every
  /// WallProfiler::kSnapshotStride events. Output-only — never touches the
  /// event stream. Null (the default) disables profiling; the run loop then
  /// pays one predicted branch per event.
  void set_profiler(WallProfiler* profiler) { profiler_ = profiler; }
  WallProfiler* profiler() const { return profiler_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  Telemetry* telemetry_ = nullptr;
  std::uint64_t sample_stride_ = 1024;
  WallProfiler* profiler_ = nullptr;
};

/// Repeating action helper (monitor ticks, provisioning cycles, rate
/// re-sampling). The action runs every `period` seconds starting at
/// `first_time` until stop() or simulation end.
class PeriodicProcess {
 public:
  PeriodicProcess(Simulation& sim, SimTime first_time, SimTime period,
                  std::function<void(SimTime)> action);
  /// Restore form: re-arms the tick captured by `stamp` (checkpoint path)
  /// instead of scheduling a fresh first fire.
  PeriodicProcess(Simulation& sim, const EventStamp& stamp, SimTime period,
                  std::function<void(SimTime)> action);
  ~PeriodicProcess() { stop(); }
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  void stop();
  bool running() const { return running_; }
  SimTime period() const { return period_; }
  /// Stamp of the armed tick, for snapshots; nullopt when stopped.
  std::optional<EventStamp> pending_stamp() const;

 private:
  void fire();

  Simulation& sim_;
  SimTime period_;
  std::function<void(SimTime)> action_;
  EventId pending_ = kInvalidEventId;
  bool running_ = true;
};

}  // namespace cloudprov
