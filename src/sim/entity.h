// Base class for named simulation participants.
//
// Entities hold a reference to their Simulation and a human-readable name for
// logging. They are not copyable: model objects have identity.
#pragma once

#include <string>
#include <utility>

#include "sim/simulation.h"

namespace cloudprov {

class Entity {
 public:
  Entity(Simulation& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}
  virtual ~Entity() = default;
  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  const std::string& name() const { return name_; }
  Simulation& sim() { return sim_; }
  const Simulation& sim() const { return sim_; }
  SimTime now() const { return sim_.now(); }

 private:
  Simulation& sim_;
  std::string name_;
};

}  // namespace cloudprov
