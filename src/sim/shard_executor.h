// Conservative parallel window execution over per-shard event kernels.
//
// The paper's control loop makes time naturally window-structured: arrivals
// are analyzed and Algorithm 1 decisions are committed once per analysis
// window (60 s). Multi-tenant runs exploit that structure for parallelism:
// tenants are partitioned across shards, each shard drives its own
// Simulation kernel, and shards only ever interact inside a *serial commit
// section* executed at every window boundary while all workers are parked
// on a barrier. Within a window, shard state is disjoint by construction,
// so this is a conservative PDES scheme: no rollbacks, no cross-shard event
// traffic, and — because the commit section runs in a fixed deterministic
// order regardless of which worker arrives last — results are bit-identical
// for every shard count, including the threadless shards == 1 path.
//
// The executor is policy-free: it knows nothing about tenants, capacity, or
// markets. Callers supply two callbacks:
//   advance(shard, t) — advance shard's kernel to sim time t (inclusive),
//                       called concurrently, one worker thread per shard;
//   commit(t)         — the serial barrier section at boundary t, run by
//                       exactly one thread while every other worker is
//                       parked (mutex + condvar, so it happens-before the
//                       next window on every shard).
// Optional hooks bracket each worker's barrier wait so callers can
// attribute parked wall time (profile category shard.barrier).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/units.h"

namespace cloudprov {

/// Per-worker instrumentation hooks; every member may be empty. Invoked on
/// the worker's own thread, outside the barrier mutex.
struct ShardExecutorHooks {
  std::function<void(std::size_t shard)> barrier_enter;
  std::function<void(std::size_t shard)> barrier_leave;
};

/// Drives `shards` kernels from t = 0 to `horizon` in lockstep windows of
/// `window` sim seconds: advance every shard to boundary k*window, run
/// commit(k*window) serially, repeat, then advance every shard to the
/// horizon (no commit fires at or beyond the horizon). Boundaries are
/// computed as window * k — one multiplication, not accumulation — so the
/// sequential and threaded paths see bit-identical boundary times.
/// Returns the number of commit sections executed.
///
/// shards == 1 runs everything inline on the calling thread (no thread is
/// spawned); shards > 1 spawns one worker per shard. `commit` may touch any
/// cross-shard state; `advance` must touch only its own shard's.
std::uint64_t run_sharded_windows(
    std::size_t shards, SimTime window, SimTime horizon,
    const std::function<void(std::size_t shard, SimTime t)>& advance,
    const std::function<void(SimTime t)>& commit,
    const ShardExecutorHooks& hooks = {});

}  // namespace cloudprov
