// Simulation events.
//
// An event is a (time, sequence, action) triple. Ties on time are broken by
// the monotone sequence number, which makes the execution order — and
// therefore the whole simulation — fully deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "util/units.h"

namespace cloudprov {

/// Stable identifier for a scheduled event; used for cancellation.
using EventId = std::uint64_t;

/// Sentinel returned when no event handle is needed.
inline constexpr EventId kInvalidEventId = 0;

/// Deferred action executed when the simulation clock reaches `time`.
struct Event {
  SimTime time = 0.0;
  EventId id = kInvalidEventId;
  std::function<void()> action;

  /// Min-heap order: earliest time first, FIFO among equal times.
  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }
};

}  // namespace cloudprov
