// Simulation events: typed POD event bodies and the inline delegate that
// dispatches them.
//
// The paper-scale web scenario pops ~1.5 billion events per replication, so
// the event representation is built for the hot path:
//
//  - EventAction is a fixed-size inline delegate: a plain function pointer
//    plus 16 bytes of inline storage for the callable's captures (typically
//    a target-entity pointer and a small payload). Scheduling a small,
//    trivially-copyable callable performs no heap allocation and dispatch is
//    a single indirect call — no std::function, no type-erased virtual call.
//  - Callables that don't fit (large captures, non-trivial types) take the
//    rare-path escape hatch: the callable is boxed on the heap and a destroy
//    hook is recorded so cancelled events release it. Model code on the
//    steady-state serve path (arrivals, completions, periodic controls)
//    captures at most two pointers/doubles and always stays inline.
//  - Ties on time are broken by a monotone per-push sequence number held in
//    the queue's heap entries, which makes execution order — and therefore
//    the whole simulation — fully deterministic for a fixed seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/units.h"

namespace cloudprov {

/// Stable identifier for a scheduled event; used for cancellation. Encodes
/// the event's slab slot (low 32 bits) and the slot's generation at push
/// time (high 32 bits), so a stale handle — already executed, already
/// cancelled, or from a reused slot — is rejected in O(1) without hashing.
using EventId = std::uint64_t;

/// Sentinel returned when no event handle is needed. Generations start at 1,
/// so no live event ever packs to 0.
inline constexpr EventId kInvalidEventId = 0;

/// Fixed-size inline delegate: the deferred action executed when the
/// simulation clock reaches the event's time.
///
/// Move-only and self-cleaning: inline callables are trivially discarded,
/// boxed ones are deleted by reset()/the destructor, so cancelled events
/// never leak their payload.
class EventAction {
 public:
  /// Inline capture budget: a target-entity pointer plus one pointer-sized
  /// payload word (or two doubles). Chosen so every steady-state serve-path
  /// event fits without allocation.
  static constexpr std::size_t kInlineCapacity = 16;

  EventAction() = default;
  EventAction(EventAction&& other) noexcept
      : invoke_(other.invoke_), destroy_(other.destroy_) {
    std::memcpy(storage_, other.storage_, kInlineCapacity);
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }
  EventAction& operator=(EventAction&& other) noexcept {
    if (this != &other) {
      reset();
      invoke_ = other.invoke_;
      destroy_ = other.destroy_;
      std::memcpy(storage_, other.storage_, kInlineCapacity);
      other.invoke_ = nullptr;
      other.destroy_ = nullptr;
    }
    return *this;
  }
  EventAction(const EventAction&) = delete;
  EventAction& operator=(const EventAction&) = delete;
  ~EventAction() { reset(); }

  /// True when a callable fits the inline fast path.
  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineCapacity && alignof(D) <= alignof(void*) &&
      std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>;

  /// Wraps any callable. Small trivially-copyable callables are stored
  /// inline (zero allocation); anything else is boxed on the heap — the
  /// rare-path escape hatch for genuinely capturing closures.
  template <typename F>
  static EventAction make(F&& f) {
    using D = std::decay_t<F>;
    EventAction action;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(action.storage_)) D(std::forward<F>(f));
      action.invoke_ = [](void* storage) {
        (*std::launder(reinterpret_cast<D*>(storage)))();
      };
    } else {
      D* boxed = new D(std::forward<F>(f));
      std::memcpy(action.storage_, &boxed, sizeof(boxed));
      action.invoke_ = [](void* storage) {
        D* callable;
        std::memcpy(&callable, storage, sizeof(callable));
        (*callable)();
      };
      action.destroy_ = [](void* storage) {
        D* callable;
        std::memcpy(&callable, storage, sizeof(callable));
        delete callable;
      };
    }
    return action;
  }

  /// Binds a member function on a target entity: the typed
  /// {target, method} form of an event, e.g.
  /// `EventAction::method<&Vm::finish_service>(this)`. Always inline.
  template <auto Method, typename T>
  static EventAction method(T* target) {
    return make([target] { (target->*Method)(); });
  }

  /// Invokes the callable. Precondition: valid (not moved-from/reset).
  void operator()() { invoke_(storage_); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// True when this action took the boxed (heap) escape hatch.
  bool is_boxed() const { return destroy_ != nullptr; }

  /// Releases a boxed payload (no-op for inline actions) and empties.
  void reset() {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  using InvokeFn = void (*)(void* storage);
  using DestroyFn = void (*)(void* storage);

  InvokeFn invoke_ = nullptr;
  DestroyFn destroy_ = nullptr;  // non-null only for boxed actions
  alignas(void*) unsigned char storage_[kInlineCapacity];
};

/// A popped event: execution time, the handle it was scheduled under, and
/// the action to run. Returned by EventQueue::pop(); never stored in the
/// heap (the heap holds 24-byte POD entries, see event_queue.h).
struct Event {
  SimTime time = 0.0;
  EventId id = kInvalidEventId;
  EventAction action;
};

}  // namespace cloudprov
