#include "sim/shard_executor.h"

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"

namespace cloudprov {
namespace {

/// Boundary k (1-based) of a window schedule. Multiplication, not
/// accumulation: every shard and the sequential path compute the exact same
/// double for boundary k.
SimTime boundary(SimTime window, std::uint64_t k) {
  return window * static_cast<double>(k);
}

}  // namespace

std::uint64_t run_sharded_windows(
    std::size_t shards, SimTime window, SimTime horizon,
    const std::function<void(std::size_t shard, SimTime t)>& advance,
    const std::function<void(SimTime t)>& commit,
    const ShardExecutorHooks& hooks) {
  ensure_arg(shards >= 1, "run_sharded_windows: shards must be >= 1");
  ensure_arg(window > 0.0, "run_sharded_windows: window must be positive");
  ensure_arg(horizon >= 0.0, "run_sharded_windows: horizon must be >= 0");

  // Commit fires at every boundary strictly below the horizon; the segment
  // from the last boundary to the horizon runs without a trailing commit
  // (there is nothing left to reconcile once the run is over).
  std::uint64_t windows = 0;
  for (std::uint64_t k = 1; boundary(window, k) < horizon; ++k) ++windows;

  if (shards == 1) {
    for (std::uint64_t k = 1; k <= windows; ++k) {
      advance(0, boundary(window, k));
      commit(boundary(window, k));
    }
    advance(0, horizon);
    return windows;
  }

  // Cyclic barrier: the last worker to arrive runs the serial commit under
  // the mutex (every peer is parked on the condvar), then opens the next
  // generation. The mutex hand-off gives commit-to-next-window
  // happens-before edges on every shard.
  std::mutex mutex;
  std::condition_variable released;
  std::size_t waiting = 0;
  std::uint64_t generation = 0;

  const auto barrier = [&](const std::function<void()>& serial) {
    std::unique_lock<std::mutex> lock(mutex);
    const std::uint64_t arrived_generation = generation;
    if (++waiting == shards) {
      serial();
      waiting = 0;
      ++generation;
      released.notify_all();
    } else {
      released.wait(lock,
                    [&] { return generation != arrived_generation; });
    }
  };

  const auto worker = [&](std::size_t shard) {
    for (std::uint64_t k = 1; k <= windows; ++k) {
      advance(shard, boundary(window, k));
      if (hooks.barrier_enter) hooks.barrier_enter(shard);
      barrier([&] { commit(boundary(window, k)); });
      if (hooks.barrier_leave) hooks.barrier_leave(shard);
    }
    advance(shard, horizon);
  };

  std::vector<std::thread> threads;
  threads.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    threads.emplace_back(worker, shard);
  }
  for (std::thread& thread : threads) thread.join();
  return windows;
}

}  // namespace cloudprov
