// Quickstart: provision a SaaS application under a Poisson workload.
//
// Demonstrates the minimal wiring of the library's public API:
//   workload source -> broker -> application provisioner (admission +
//   round-robin dispatch) <- adaptive policy (analyzer + Algorithm 1).
//
// The workload is a flat 40 req/s Poisson stream of 100 ms requests with a
// 250 ms response-time target. Offered load is ~4.2 busy servers, so the
// adaptive policy should settle near 5 instances; watch the printed
// decisions to see Algorithm 1 converge.
#include <cstdio>
#include <memory>

#include "cloud/broker.h"
#include "cloud/datacenter.h"
#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "predict/ewma.h"
#include "telemetry/telemetry.h"
#include "workload/poisson_source.h"

using namespace cloudprov;

int main() {
  Simulation sim;

  // SLO burn-rate alerting rides along for free: the monitor piggybacks on
  // the request hooks and never schedules events. A healthy steady-state run
  // like this one should finish with zero alerts.
  TelemetryOptions telemetry_options;
  telemetry_options.slo_enabled = true;
  Telemetry telemetry(telemetry_options);

  // A small IaaS data center: 20 hosts of 8 cores each.
  DatacenterConfig dc_config;
  dc_config.host_count = 20;
  Datacenter datacenter(sim, dc_config, std::make_unique<LeastLoadedPlacement>());

  // QoS contract: 250 ms response time, no rejections, 80% utilization floor.
  QosTargets qos;
  qos.max_response_time = 0.250;
  qos.min_utilization = 0.80;

  ProvisionerConfig prov_config;
  prov_config.initial_service_time_estimate = 0.105;
  ApplicationProvisioner provisioner(sim, datacenter, qos, prov_config);
  provisioner.set_telemetry(&telemetry);

  // Workload: Poisson arrivals at 40 req/s, 100 ms (+0-10%) demands, 1 hour.
  Rng rng(7);
  PoissonSource source(
      40.0, std::make_shared<ScaledUniformDistribution>(0.100, 0.10),
      /*start=*/0.0, /*end=*/3600.0);
  Broker broker(sim, source, provisioner, rng.split());

  // Adaptive policy: history-based EWMA predictor + Algorithm 1.
  ModelerConfig modeler;
  modeler.max_vms = 100;
  AnalyzerConfig analyzer;
  analyzer.analysis_interval = 30.0;
  AdaptivePolicy policy(sim, std::make_shared<EwmaPredictor>(0.5, 0.15), modeler,
                        analyzer);

  policy.attach(provisioner);
  broker.start();
  sim.run(3600.0);

  std::printf("generated:        %llu requests\n",
              static_cast<unsigned long long>(broker.generated()));
  std::printf("accepted:         %llu  rejected: %llu (%.3f%%)\n",
              static_cast<unsigned long long>(provisioner.accepted()),
              static_cast<unsigned long long>(provisioner.rejected()),
              100.0 * provisioner.rejection_rate());
  std::printf("mean response:    %.1f ms (p99 %.1f ms, target %.0f ms)\n",
              1e3 * provisioner.response_time_stats().mean(),
              1e3 * provisioner.response_p99(), 1e3 * qos.max_response_time);
  std::printf("QoS violations:   %llu\n",
              static_cast<unsigned long long>(provisioner.qos_violations()));
  std::printf("VM hours:         %.2f (utilization %.1f%%)\n",
              datacenter.vm_hours(), 100.0 * datacenter.utilization());
  telemetry.slo()->evaluate(sim.now());  // final reading at the horizon
  std::printf("SLO alerts:       %llu response, %llu rejection "
              "(worst burn %.2fx budget)\n",
              static_cast<unsigned long long>(telemetry.slo()->response_alerts()),
              static_cast<unsigned long long>(telemetry.slo()->rejection_alerts()),
              telemetry.slo()->worst_burn_rate());

  std::printf("\nfirst provisioning decisions:\n");
  std::size_t shown = 0;
  for (const auto& d : policy.decisions()) {
    if (shown++ == 8) break;
    std::printf("  t=%6.0fs  expected rate %6.2f req/s -> %zu instances\n",
                d.time, d.expected_rate, d.achieved_instances);
  }
  return 0;
}
