// Extending the library: a custom provisioning policy and a custom admission
// policy through the public interfaces.
//
// The policy implemented here is a deliberately naive "reactive threshold"
// autoscaler (the kind the paper's related-work section contrasts against,
// e.g. Chieu et al.): every interval, look at the *observed* arrival rate —
// no prediction, no queueing model — and size the pool at observed_rate * Tm
// / 0.7. Running it side by side with the paper's mechanism on the same
// workload shows why the analytic model + proactive alerts matter. The
// scientific workload is the right stress: its arrival rate jumps ~12x at
// 8 a.m. (Figure 4), and requests run for 300 s, so reacting one interval
// late strands a full ramp of rejected work.
#include <cstdio>
#include <memory>
#include <optional>

#include "cloud/broker.h"
#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "core/provisioning_policy.h"
#include "experiment/scenario.h"
#include "predict/periodic_profile.h"

using namespace cloudprov;

/// Reactive threshold autoscaler: no model, no prediction.
class ReactiveThresholdPolicy final : public ProvisioningPolicy {
 public:
  ReactiveThresholdPolicy(Simulation& sim, SimTime interval, double target_rho)
      : sim_(sim), interval_(interval), target_rho_(target_rho) {}

  void attach(ApplicationProvisioner& provisioner) override {
    provisioner_ = &provisioner;
    provisioner.scale_to(1);
    process_.emplace(sim_, interval_, interval_, [this](SimTime) {
      const double observed_rate =
          static_cast<double>(provisioner_->take_window_arrivals()) / interval_;
      const double erlangs =
          observed_rate * provisioner_->monitored_service_time();
      const auto target = static_cast<std::size_t>(erlangs / target_rho_) + 1;
      provisioner_->scale_to(target);
    });
  }

  std::string name() const override { return "ReactiveThreshold"; }

 private:
  Simulation& sim_;
  SimTime interval_;
  double target_rho_;
  ApplicationProvisioner* provisioner_ = nullptr;
  std::optional<PeriodicProcess> process_;
};

struct Outcome {
  double rejection;
  double vm_hours;
  double utilization;
};

template <typename MakePolicy>
Outcome run(const ScenarioConfig& config, MakePolicy make_policy) {
  Simulation sim;
  Datacenter datacenter(sim, config.datacenter,
                        std::make_unique<LeastLoadedPlacement>());
  ProvisionerConfig prov_config;
  prov_config.initial_service_time_estimate = config.initial_service_time_estimate;
  ApplicationProvisioner provisioner(sim, datacenter, config.qos, prov_config);
  BotWorkload workload(config.bot);
  Broker broker(sim, workload, provisioner, Rng(99));
  std::unique_ptr<ProvisioningPolicy> policy = make_policy(sim);
  policy->attach(provisioner);
  broker.start();
  sim.run(config.horizon);
  return Outcome{provisioner.rejection_rate(), datacenter.vm_hours(),
                 datacenter.utilization()};
}

int main() {
  ScenarioConfig config = scientific_scenario(1.0);

  const Outcome reactive = run(config, [&](Simulation& sim) {
    return std::make_unique<ReactiveThresholdPolicy>(sim, 60.0, 0.7);
  });
  const Outcome adaptive = run(config, [&](Simulation& sim) {
    auto predictor = std::make_shared<PeriodicProfilePredictor>(
        bot_profile_predictor(config.bot));
    return std::make_unique<AdaptivePolicy>(sim, predictor, config.modeler,
                                            config.analyzer);
  });

  std::printf("one day of the scientific BoT workload (paper scale):\n\n");
  std::printf("%-22s %-12s %-10s %-12s\n", "policy", "rejection", "VM-hours",
              "utilization");
  std::printf("%-22s %-12.4f %-10.1f %-12.3f\n", "ReactiveThreshold",
              reactive.rejection, reactive.vm_hours, reactive.utilization);
  std::printf("%-22s %-12.4f %-10.1f %-12.3f\n", "Adaptive (paper)",
              adaptive.rejection, adaptive.vm_hours, adaptive.utilization);
  std::printf(
      "\nThe reactive policy only reacts *after* arrivals already queued or\n"
      "were rejected; the paper's mechanism resizes before the rate change\n"
      "(workload analyzer lead time) and sizes the pool from the M/M/1/k\n"
      "model rather than a raw utilization ratio.\n");
  return 0;
}
